//! Private inference shoot-out: DarKnight vs Slalom (§7.2).
//!
//! Runs the same model through both systems, checks both match the
//! plain result, measures wall time on this host, and then demonstrates
//! the structural difference the paper stresses: after one weight
//! update Slalom's precomputed blinding factors are stale and it cannot
//! continue, while DarKnight trains on.
//!
//! Run with: `cargo run --release --example private_inference`

use darknight::baselines::SlalomSession;
use darknight::core::{DarknightConfig, DarknightSession};
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;
use darknight::nn::loss::softmax_cross_entropy;
use darknight::nn::optim::Sgd;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = 8usize;
    let x = Tensor::<f32>::from_fn(&[4, 3, hw, hw], |i| ((i % 13) as f32 - 6.0) * 0.06);
    let mut plain_model = mini_vgg(hw, 4, 21);
    let reference = plain_model.forward(&x, false);

    // DarKnight, virtual batch 4.
    let cfg = DarknightConfig::new(4, 1);
    let cluster = GpuCluster::honest(cfg.workers_required(), 1);
    let mut dk = DarknightSession::new(cfg, cluster)?;
    let mut dk_model = mini_vgg(hw, 4, 21);
    let t0 = Instant::now();
    let dk_out = dk.private_inference(&mut dk_model, &x)?;
    let dk_time = t0.elapsed();

    // Slalom.
    let mut slalom = SlalomSession::new(GpuCluster::honest(1, 2), false, 3);
    let mut sl_model = mini_vgg(hw, 4, 21);
    slalom.precompute(&mut sl_model, 64)?;
    let t0 = Instant::now();
    let sl_out = slalom.inference(&mut sl_model, &x)?;
    let sl_time = t0.elapsed();

    println!("Private inference comparison (MiniVGG, batch 4)");
    println!("-----------------------------------------------");
    println!("DarKnight(4): max |Δ| vs plain = {:.4}, {dk_time:?}", dk_out.max_abs_diff(&reference));
    println!("Slalom:       max |Δ| vs plain = {:.4}, {sl_time:?}", sl_out.max_abs_diff(&reference));
    println!(
        "Slalom fetched {:.1} KB of sealed unblinding factors from untrusted memory.",
        slalom.stats().unblind_bytes_fetched as f64 / 1024.0
    );

    // Now train one step and try again.
    println!("\nAfter one SGD weight update:");
    let mut sgd = Sgd::new(0.05);
    sl_model.zero_grad();
    let logits = sl_model.forward(&x, true);
    let (_, dl) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
    sl_model.backward(&dl);
    sgd.step(&mut sl_model);
    match slalom.inference(&mut sl_model, &x) {
        Err(e) => println!("  Slalom:    {e}"),
        Ok(_) => println!("  Slalom:    unexpectedly survived (bug!)"),
    }

    let mut sgd = Sgd::new(0.05);
    let report = dk.train_step(&mut dk_model, &x, &[0, 1, 2, 3], &mut sgd)?;
    let after = dk.private_inference(&mut dk_model, &x)?;
    println!(
        "  DarKnight: trained through the update (loss {:.3}) and keeps serving (Δ output norm {:.4})",
        report.loss,
        after.max_abs_diff(&dk_out)
    );
    Ok(())
}
