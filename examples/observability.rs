//! End-to-end observability: spans, metrics, and fleet health under fire.
//!
//! Two serving bursts run against a 2-worker session pool with the full
//! `dk_obs` stack enabled:
//!
//! 1. a **tampered** burst — one GPU worker adds noise to every result,
//!    so every virtual batch trips the redundant integrity equation and
//!    flows through localize → quarantine → repair;
//! 2. a **worker-crash** burst — one GPU worker dies mid-burst and the
//!    recovery path recomputes its share inside the TEE.
//!
//! Afterwards the example prints the Prometheus scrape (server counters
//! plus the global registry), the per-worker fleet-health table, and
//! writes the retained spans as a chrome://tracing JSON document to
//! `target/observability_trace.json` (load it via chrome://tracing or
//! <https://ui.perfetto.dev>). It then self-checks — valid trace with at
//! least two concurrently-active lanes, parseable exposition, repairs
//! actually recorded — and exits nonzero on any failure, so CI can run
//! it as a smoke test.
//!
//! Run with: `cargo run --release --example observability`

use darknight::core::DarknightConfig;
use darknight::gpu::{Behavior, GpuCluster};
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;
use darknight::obs;
use darknight::serve::{InferenceRequest, Server, ServerConfig, ServerMetrics};
use std::time::Duration;

const HW: usize = 8;
const CLIENTS: usize = 4;
const PER_CLIENT: usize = 8;

fn sample(client: u64, i: u64) -> Tensor<f32> {
    Tensor::from_fn(&[3, HW, HW], |j| {
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(client * 131 + i * 17);
        ((h % 23) as f32 - 11.0) * 0.04
    })
}

/// Push `CLIENTS x PER_CLIENT` requests through a fresh server over the
/// given cluster and return its final metrics. Every response must be
/// produced (the faulty worker is repaired around, not surfaced).
fn burst(label: &str, cluster: &GpuCluster, cfg: DarknightConfig) -> (ServerMetrics, String) {
    let model = mini_vgg(HW, 4, 2021);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW])
            .with_workers(2)
            .with_queue_capacity(128)
            .with_max_batch_wait(Duration::from_millis(1)),
        &model,
        cluster,
    )
    .expect("server start");
    let handle = server.handle();

    std::thread::scope(|scope| {
        for c in 0..CLIENTS as u64 {
            let handle = server.handle();
            scope.spawn(move || {
                let tickets: Vec<_> = (0..PER_CLIENT as u64)
                    .map(|i| handle.submit(InferenceRequest::new(sample(c, i))).expect("admitted"))
                    .collect();
                for ticket in tickets {
                    let resp = ticket.wait().expect("server alive");
                    resp.output.expect("fault must be repaired, not surfaced");
                }
            });
        }
    });

    // Scrape while the server is still alive — the `/metrics`-style
    // dump a sidecar would poll.
    let scrape = handle.render_metrics();
    println!("--- {label}: live scrape (excerpt) ---");
    for line in scrape.lines().filter(|l| !l.starts_with('#') && !l.contains("_bucket")).take(10) {
        println!("{line}");
    }
    println!();
    let metrics = server.shutdown();
    assert_eq!(metrics.served as usize, CLIENTS * PER_CLIENT, "{label}: every request served");
    (metrics, scrape)
}

/// Every non-comment exposition line must be `name{labels} value` with
/// a finite numeric value.
fn check_prometheus(text: &str, what: &str) {
    let mut lines = 0usize;
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("{what}: exposition line without value: {line:?}");
        });
        assert!(!name.is_empty(), "{what}: empty metric name in {line:?}");
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("{what}: non-numeric sample {value:?} in {line:?}"));
        assert!(v.is_finite(), "{what}: non-finite sample in {line:?}");
        lines += 1;
    }
    assert!(lines > 0, "{what}: exposition is empty");
}

fn main() {
    obs::enable();

    // Burst 1: one worker tampers with every result (additive noise);
    // integrity + recovery repair every batch inside the TEE.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::AdditiveNoise;
    let (tampered, tampered_scrape) =
        burst("tampered burst", &GpuCluster::with_behaviors(&behaviors, 11), cfg);
    assert!(tampered.repaired > 0, "tampering must trip the integrity check and be repaired");
    assert!(tampered.quarantined > 0, "the tamperer must be quarantined");
    assert_eq!(tampered.failed, 0, "recovery must keep tampered batches servable");

    // Burst 2: one worker crashes mid-burst; the fault-dispatch path
    // recomputes its jobs and the burst completes.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    let crasher = behaviors.len() - 1;
    behaviors[crasher] = Behavior::Crash { after: 4 };
    let (crashed, _) = burst("worker-crash burst", &GpuCluster::with_behaviors(&behaviors, 13), cfg);
    assert_eq!(crashed.failed, 0, "crash must be absorbed, not surfaced");

    // ---- global registry scrape (dispatch / recovery counters) -------
    let global = obs::global().render_prometheus();
    println!("--- global registry scrape ---");
    for line in global.lines().filter(|l| !l.starts_with('#') && !l.contains("_bucket")) {
        println!("{line}");
    }
    check_prometheus(&global, "global registry");

    // ---- per-worker fleet health -------------------------------------
    println!();
    println!("{}", obs::fleet().render_table());

    // ---- span trace ---------------------------------------------------
    let spans = obs::trace::snapshot();
    let mut lanes: Vec<usize> = spans.iter().map(|s| s.lane).collect();
    lanes.sort_unstable();
    lanes.dedup();
    assert!(
        lanes.len() >= 2,
        "expected spans from >=2 lanes (pool threads), got {}",
        lanes.len()
    );
    // At least one pair of spans on *different* lanes must overlap in
    // wall time — the pool really ran concurrently.
    let overlap = spans.iter().any(|a| {
        let a_end = a.start_us + a.dur_ns / 1000;
        spans
            .iter()
            .any(|b| b.lane != a.lane && b.start_us <= a_end && a.start_us <= b.start_us + b.dur_ns / 1000)
    });
    assert!(overlap, "no overlapping spans across lanes — pool did not run concurrently?");
    assert!(
        spans.iter().any(|s| s.stage == obs::Stage::Repair),
        "tampered burst must leave Repair spans in the trace"
    );

    let chrome = obs::trace::export_chrome();
    assert!(chrome.starts_with("{\"traceEvents\":["), "chrome export must be a trace document");
    assert!(chrome.matches("\"ph\":\"M\"").count() >= 2, "thread-name metadata per lane");
    assert!(chrome.matches("\"ph\":\"X\"").count() >= spans.len(), "one complete event per span");
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write("target/observability_trace.json", &chrome).expect("write trace");

    // ---- serve-side exposition self-check -----------------------------
    check_prometheus(&tampered_scrape, "serve registry");

    println!();
    println!(
        "spans: {} across {} lanes ({} repair); trace -> target/observability_trace.json",
        spans.len(),
        lanes.len(),
        spans.iter().filter(|s| s.stage == obs::Stage::Repair).count()
    );
    println!(
        "tampered burst: served={} repaired={} quarantined={} | crash burst: served={} \
         worker_lost={} repaired_rows={}",
        tampered.served,
        tampered.repaired,
        tampered.quarantined,
        crashed.served,
        crashed.worker_lost,
        crashed.repaired_rows
    );
    println!("observability example: all self-checks passed");
}
