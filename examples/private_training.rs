//! Private end-to-end training (the paper's headline capability).
//!
//! Trains the same model twice from identical initialization — once on
//! raw floats, once through DarKnight's masked TEE+GPU pipeline with
//! Algorithm 2 large-batch aggregation — and prints the accuracy curves
//! side by side (the paper's Fig. 4 claim: no degradation).
//!
//! Run with: `cargo run --release --example private_training`

use darknight::core::engine::{EngineOptions, PipelineEngine};
use darknight::core::virtual_batch::LargeBatchTrainer;
use darknight::core::DarknightConfig;
use darknight::gpu::GpuCluster;
use darknight::nn::arch::mini_resnet;
use darknight::nn::data::Dataset;
use darknight::nn::optim::Sgd;
use darknight::nn::train;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (classes, hw, epochs) = (5, 8, 10);
    let data = Dataset::synthetic(classes, 30, (3, hw, hw), 0.5, 99);
    let (train_set, eval_set) = data.split(0.8);

    // Plaintext reference.
    let mut raw_model = mini_resnet(hw, classes, 1234);
    let mut sgd = Sgd::new(0.01);
    let raw_report = train::train(&mut raw_model, &train_set, Some(&eval_set), epochs, 4, &mut sgd);

    // DarKnight training with Algorithm 2: virtual batches of K=2
    // aggregated into large batches of 4 via sealed eviction, executed
    // on the pipelined engine (TEE lanes over persistent GPU worker
    // threads — bit-for-bit equal to the sequential session).
    let cfg = DarknightConfig::new(2, 1).with_seed(5);
    let cluster = GpuCluster::honest(cfg.workers_required(), 6);
    let engine = PipelineEngine::new(cfg, cluster, EngineOptions::default())?;
    let mut trainer = LargeBatchTrainer::pipelined(engine, 4096);
    let mut dk_model = mini_resnet(hw, classes, 1234); // same init
    let mut sgd = Sgd::new(0.01);
    let mut dk_acc = Vec::new();
    let mut seal_ops = 0u64;
    for _ in 0..epochs {
        for (x, labels) in train_set.batches(4) {
            let report = trainer.train_large_batch(&mut dk_model, &x, labels, &mut sgd)?;
            seal_ops += report.seal_ops;
        }
        dk_acc.push(train::evaluate(&mut dk_model, &eval_set, 4));
    }

    println!("Private training (MiniResNet, synthetic 5-class task)");
    println!("------------------------------------------------------");
    println!("epoch      raw    darknight");
    for (e, (raw, dk)) in raw_report.epoch_eval_acc.iter().zip(&dk_acc).enumerate() {
        println!("{:>5}   {raw:>6.2}   {dk:>9.2}", e + 1);
    }
    println!(
        "\nfinal accuracy gap: {:+.3} (paper reports < 0.01 on CIFAR-10)",
        raw_report.epoch_eval_acc[epochs - 1] - dk_acc[epochs - 1]
    );
    println!(
        "note: DarKnight's batch-norm sees K=2 virtual-batch statistics while the raw run\n\
         sees the full batch of 4, so convergence is slightly slower at equal step count\n\
         (an inherent property of the paper's virtual-batch design, §6)."
    );
    println!("Algorithm 2 sealed {seal_ops} gradient shards to untrusted memory along the way.");
    Ok(())
}
