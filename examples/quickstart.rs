//! Quickstart: one private inference through DarKnight.
//!
//! Builds a small CNN, a cluster of simulated GPU workers, and a
//! DarKnight session; runs a masked forward pass; and verifies the
//! result matches plain execution while the workers only ever saw
//! uniformly-random field elements.
//!
//! Run with: `cargo run --release --example quickstart`

use darknight::core::{privacy, DarknightConfig, DarknightSession};
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Virtual batch of K=2 images, M=1 noise vector, plus the redundant
    // integrity equation: needs K+M+1 = 4 workers.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 42);
    let mut session = DarknightSession::new(cfg, cluster)?;

    let mut model = mini_vgg(16, 10, 7);
    let mut reference = model.clone();

    // Two private images (any structured data works the same).
    let x = Tensor::<f32>::from_fn(&[2, 3, 16, 16], |i| ((i % 23) as f32 - 11.0) * 0.04);

    let masked_logits = session.private_inference(&mut model, &x)?;
    let plain_logits = reference.forward(&x, false);

    println!("DarKnight quickstart");
    println!("--------------------");
    println!("virtual batch K = {}, noise M = {}, workers = {}", 2, 1, 4);
    println!(
        "masked vs plain max |Δ|: {:.5} (quantization error only)",
        masked_logits.max_abs_diff(&plain_logits)
    );

    // What did the untrusted workers actually see? Uniform noise. The
    // observation record is populated by the stored encodings, which
    // inference skips as a perf win — run one train-mode forward (same
    // masked vectors, stored this time) so there is something to audit.
    session.private_forward(&mut model, &x, true)?;
    let chi2 = privacy::gpu_view_chi_square(session.cluster(), 16).expect("observations exist");
    println!(
        "chi-square of the GPU view vs uniform: {chi2:.1} (99.9% threshold ≈ {:.1})",
        darknight::gpu::collusion::chi_square_threshold_999(15)
    );
    println!(
        "offload stats: {} linear jobs, {:.1} KB to GPUs, {} integrity checks",
        session.stats().linear_jobs,
        session.stats().bytes_to_gpus as f64 / 1024.0,
        session.stats().integrity_checks
    );
    Ok(())
}
