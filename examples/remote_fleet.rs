//! Remote GPU fleet over loopback TCP: real worker *processes*.
//!
//! The example re-executes itself twice with `--worker` to get two
//! genuine OS processes running the `dk_gpu_worker` accept loop
//! (ephemeral ports, discovered race-free from their `LISTEN <addr>`
//! lines). A fleet manifest points two logical workers at each
//! process, and a `DarknightSession` runs private inference over the
//! wire — every response verified **bit-for-bit** against an
//! in-process `GpuCluster` session. Then one worker process is killed
//! outright: the session quarantines its two workers, the TEE repairs
//! their rows, and the answers stay bit-identical.
//!
//! Run with: `cargo run --release --example remote_fleet`

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::process::{Child, Command, Stdio};

use darknight::core::{DarknightConfig, DarknightSession};
use darknight::gpu::{serve_fleet_worker, FleetManifest, GpuCluster, TcpFleet, WorkerId};
use darknight::linalg::{Conv2dShape, Tensor};
use darknight::nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use darknight::nn::Sequential;
use darknight::tee::EpcConfig;

const REQUESTS: usize = 6;

fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
    ])
}

fn sample(i: u64) -> Tensor<f32> {
    Tensor::from_fn(&[2, 2, 6, 6], |j| (((j as u64 * 31 + i * 7) % 17) as f32 - 8.0) * 0.06)
}

/// Child mode: the body of the `dk_gpu_worker` binary, inlined so the
/// example is self-contained for `cargo run --example`.
fn worker_mode() -> Result<(), Box<dyn std::error::Error>> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    println!("LISTEN {}", listener.local_addr()?);
    serve_fleet_worker(listener)?;
    Ok(())
}

/// Spawns this executable as a worker process and reads back the
/// address it bound (port 0 → kernel-assigned, so no port races).
fn spawn_worker_process() -> Result<(Child, String), Box<dyn std::error::Error>> {
    let mut child = Command::new(std::env::current_exe()?)
        .arg("--worker")
        .stdout(Stdio::piped())
        .spawn()?;
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line)?;
    let addr = line
        .trim()
        .strip_prefix("LISTEN ")
        .ok_or_else(|| format!("worker process said {line:?}, expected LISTEN <addr>"))?
        .to_string();
    Ok((child, addr))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().nth(1).as_deref() == Some("--worker") {
        return worker_mode();
    }

    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(61);
    let n = cfg.workers_required();

    // The in-process oracle: same config, local honest workers.
    let mut local = DarknightSession::new(cfg, GpuCluster::honest(n, 61))?;
    let mut local_model = model(61);

    // Two real worker processes, two logical workers on each — wired up
    // through the same manifest text format `dk_gpu_worker` fleets use.
    let (child_a, addr_a) = spawn_worker_process()?;
    let (mut child_b, addr_b) = spawn_worker_process()?;
    println!("remote_fleet: worker processes at {addr_a} (pid {}) and {addr_b} (pid {})",
        child_a.id(), child_b.id());
    let manifest = FleetManifest::parse(&format!(
        "# two logical workers per process\n\
         worker {addr_a}\nworker {addr_a}\nworker {addr_b}\nworker {addr_b}\n\
         io_timeout_ms 10000\n"
    ))?;
    let mut remote =
        DarknightSession::with_backend(cfg, TcpFleet::from_manifest(&manifest), EpcConfig::default())?;
    let mut remote_model = model(61);

    println!("phase 1: {REQUESTS} private-inference requests over TCP vs in-process cluster");
    for i in 0..REQUESTS as u64 {
        let x = sample(i);
        let want = local.private_inference(&mut local_model, &x)?;
        let got = remote.private_inference(&mut remote_model, &x)?;
        assert_eq!(got.as_slice(), want.as_slice(), "request {i}: remote must be bit-identical");
        println!("  request {i}: bit-exact ({} outputs)", got.as_slice().len());
    }
    assert!(remote.quarantined().is_empty());
    assert_eq!(remote.stats().recoveries, 0);

    println!("phase 2: kill worker process {addr_b} (pid {}) mid-service", child_b.id());
    child_b.kill()?;
    child_b.wait()?;
    let x = sample(REQUESTS as u64);
    let want = local.private_inference(&mut local_model, &x)?;
    let got = remote.private_inference(&mut remote_model, &x)?;
    assert_eq!(got.as_slice(), want.as_slice(), "repaired output must be bit-identical");
    assert!(remote.stats().recoveries > 0, "process death must surface as a recovery");
    for w in [WorkerId(2), WorkerId(3)] {
        assert!(remote.quarantined().contains(&w), "worker {w:?} on the dead host: quarantined");
    }
    println!(
        "  request {REQUESTS}: bit-exact after repair; quarantined {:?}, recoveries {}",
        remote.quarantined(),
        remote.stats().recoveries
    );

    // `shutdown` tells the surviving process to stop accepting; it
    // exits cleanly and the spawned children are fully reaped.
    remote.cluster_mut().shutdown();
    let status = child_a.wait_with_output()?.status;
    assert!(status.success(), "surviving worker process must exit cleanly, got {status}");
    println!("remote_fleet: all checks passed — wire fleet is bit-exact and survives process loss");
    Ok(())
}
