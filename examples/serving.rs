//! Concurrent private-inference serving with `dk_serve`.
//!
//! 96 requests from 8 concurrent client threads flow through a
//! 3-worker session pool as K=4 virtual batches (full batches on the
//! hot path, deadline-padded partials otherwise). Every client
//! verifies every response **bit-for-bit** against
//! `QuantizedReference` run on that request alone — aggregation,
//! batch-mates, and padding must not perturb anyone's answer — and the
//! redundant integrity equation runs on every offloaded layer with
//! zero false positives.
//!
//! Run with: `cargo run --release --example serving`

use darknight::core::{DarknightConfig, DarknightSession, QuantizedReference};
use darknight::field::QuantConfig;
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;
use darknight::nn::Sequential;
use darknight::perf::report::serving_table;
use darknight::perf::ServingRow;
use darknight::serve::{InferenceRequest, Priority, Server, ServerConfig};
use std::time::{Duration, Instant};

const HW: usize = 8;
const CLASSES: usize = 4;
const CLIENTS: usize = 8;
const PER_CLIENT: usize = 12;
const K: usize = 4;

/// Deterministic per-request input; the magnitude factor varies wildly
/// between requests so virtual batches mix rows of very different
/// scales (the case per-sample quantization exists for).
fn sample(client: u64, i: u64) -> Tensor<f32> {
    let magnitude = 0.01 * (1 + (client * 7 + i * 13) % 60) as f32;
    Tensor::from_fn(&[3, HW, HW], |j| {
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(client * 977 + i * 31);
        ((h % 29) as f32 - 14.0) * magnitude
    })
}

/// The exactness oracle: this request alone, quantization-matched.
fn solo_reference(model: &Sequential, x: &Tensor<f32>, quant: QuantConfig) -> Tensor<f32> {
    QuantizedReference::forward_solo(model, x, quant).expect("reference forward")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = mini_vgg(HW, CLASSES, 2024);
    let cfg = DarknightConfig::new(K, 1).with_integrity(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 9);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW])
            .with_workers(3)
            .with_queue_capacity(128)
            .with_max_batch_wait(Duration::from_millis(2)),
        &model,
        &cluster,
    )?;

    println!("dk_serve: {CLIENTS} clients x {PER_CLIENT} requests -> 3-worker pool, K={K}");
    println!("--------------------------------------------------------------------");

    // Concurrent clients submit with mixed priorities and collect
    // their responses; verification happens after shutdown so the
    // serving window measures only the server.
    let answered: Vec<(Tensor<f32>, Tensor<f32>)> = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS as u64)
            .map(|c| {
                let handle = server.handle();
                scope.spawn(move || {
                    let tickets: Vec<_> = (0..PER_CLIENT as u64)
                        .map(|i| {
                            let x = sample(c, i);
                            let priority = match (c + i) % 3 {
                                0 => Priority::High,
                                1 => Priority::Normal,
                                _ => Priority::Low,
                            };
                            let req = InferenceRequest::new(x.clone()).with_priority(priority);
                            (x, handle.submit(req).expect("admitted"))
                        })
                        .collect();
                    tickets
                        .into_iter()
                        .map(|(x, ticket)| {
                            let resp = ticket.wait().expect("server alive");
                            let y = resp
                                .output
                                .expect("honest cluster: integrity must not fire (false positive)");
                            (x, y)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        clients
            .into_iter()
            .flat_map(|c| c.join().expect("client thread"))
            .collect()
    });

    let metrics = server.shutdown();
    // Bit-for-bit verification of every response against the request
    // run *alone* through the quantization-matched reference.
    let mut verified = 0usize;
    for (x, y) in &answered {
        assert_eq!(
            y.as_slice(),
            solo_reference(&model, x, cfg.quant()).as_slice(),
            "served response must be bit-identical to the solo reference"
        );
        verified += 1;
    }
    assert_eq!(verified, CLIENTS * PER_CLIENT, "every request verified");
    assert_eq!(metrics.failed, 0, "zero integrity false positives");
    assert_eq!(metrics.served as usize, CLIENTS * PER_CLIENT);

    // Baseline: the same traffic pushed through one synchronous
    // session as pre-formed full batches (no aggregation, no pool).
    let mut direct = DarknightSession::new(cfg, cluster.fork(77))?;
    let mut direct_model = model.clone();
    let total = CLIENTS * PER_CLIENT;
    let t0 = Instant::now();
    for b in 0..(total / K) as u64 {
        let mut x = Tensor::<f32>::zeros(&[K, 3, HW, HW]);
        for r in 0..K as u64 {
            let i = b * K as u64 + r;
            x.batch_item_mut(r as usize)
                .copy_from_slice(sample(i / PER_CLIENT as u64, i % PER_CLIENT as u64).as_slice());
        }
        direct.private_inference_per_sample(&mut direct_model, &x)?;
    }
    let direct_wall = t0.elapsed();
    let direct_row = ServingRow {
        label: "direct 1-session".into(),
        throughput_rps: total as f64 / direct_wall.as_secs_f64(),
        p50_queue_ms: 0.0,
        p95_queue_ms: 0.0,
        batch_fill: 1.0,
        served: total as u64,
        shed: 0,
    };

    println!("{}", serving_table(&[metrics.row("pool=3 K=4"), direct_row]));
    println!(
        "verified {verified}/{total} responses bit-for-bit against QuantizedReference \
         (integrity checks: all passed, {} shed)",
        metrics.shed
    );
    println!(
        "batches: {} dispatched, fill ratio {:.1}% ({} real rows, {} padded)",
        metrics.batches,
        metrics.batch_fill_ratio * 100.0,
        metrics.real_rows,
        metrics.padded_rows
    );
    Ok(())
}
