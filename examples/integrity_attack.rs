//! Fault injection: a malicious GPU tampers with its results.
//!
//! Demonstrates §4.4: with the redundant equation enabled, DarKnight
//! detects every corruption class a worker can mount; without it, the
//! same attacks silently corrupt the output. Also shows the dynamic
//! adversary (a worker turning malicious mid-session).
//!
//! Run with: `cargo run --release --example integrity_attack`

use darknight::core::{DarknightConfig, DarknightError, DarknightSession};
use darknight::gpu::{Behavior, GpuCluster, WorkerId};
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) * 0.1);
    let attacks = [
        ("additive noise on every element", Behavior::AdditiveNoise),
        ("single corrupted element", Behavior::SingleElement),
        ("all-zero (lazy) output", Behavior::ZeroOutput),
        ("scaled output (x3)", Behavior::Scale(3)),
        ("stale input replay", Behavior::StaleInput),
    ];

    println!("DarKnight integrity detection (§4.4)");
    println!("------------------------------------");
    for (name, behavior) in attacks {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = behavior;
        let cluster = GpuCluster::with_behaviors(&behaviors, 3);
        let mut session = DarknightSession::new(cfg, cluster)?;
        let mut model = mini_vgg(8, 4, 5);
        match session.private_inference(&mut model, &x) {
            Err(DarknightError::IntegrityViolation { layer_id, phase, mismatches }) => {
                println!("  {name:<35} DETECTED at layer {layer_id} ({phase}, {mismatches} mismatches)");
            }
            Err(e) => println!("  {name:<35} error: {e}"),
            Ok(_) => println!("  {name:<35} *** UNDETECTED ***"),
        }
    }

    // Without the redundant equation the attack silently lands.
    let cfg = DarknightConfig::new(2, 1).with_integrity(false);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::AdditiveNoise;
    let cluster = GpuCluster::with_behaviors(&behaviors, 4);
    let mut session = DarknightSession::new(cfg, cluster)?;
    let mut model = mini_vgg(8, 4, 5);
    let mut clean = model.clone();
    let corrupted = session.private_inference(&mut model, &x)?;
    let reference = clean.forward(&x, false);
    println!(
        "\nwithout integrity: inference 'succeeds' but outputs are wrong by {:.3} (silent corruption)",
        corrupted.max_abs_diff(&reference)
    );

    // Recovery extension: localize the liar, repair in the TEE, continue.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[1] = Behavior::AdditiveNoise;
    let cluster = GpuCluster::with_behaviors(&behaviors, 8);
    let mut session = DarknightSession::new(cfg, cluster)?;
    let mut model = mini_vgg(8, 4, 5);
    let mut clean = model.clone();
    let repaired = session.private_inference(&mut model, &x)?;
    println!(
        "\nwith recovery: attacked inference completes correctly (|Δ| = {:.4}), quarantined: {:?}",
        repaired.max_abs_diff(&clean.forward(&x, false)),
        session.quarantined()
    );

    // Dynamic adversary: honest for one step, malicious the next.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 9);
    let mut session = DarknightSession::new(cfg, cluster)?;
    let mut model = mini_vgg(8, 4, 5);
    assert!(session.private_inference(&mut model, &x).is_ok());
    session.cluster_mut().worker_mut(WorkerId(2)).set_behavior(Behavior::SingleElement);
    let caught = session.private_inference(&mut model, &x).is_err();
    println!("dynamic adversary (turns malicious mid-session): detected = {caught}");
    Ok(())
}
