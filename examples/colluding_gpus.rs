//! Collusion tolerance (§4.5/§5): the boundary is exactly M.
//!
//! Runs a real session sized for M=2 colluding workers, then audits the
//! live encoding scheme: any coalition of ≤ M workers cannot cancel the
//! masking noise (their observations stay uniformly random), while a
//! hypothetical coalition of M+1 recovers a noise-free linear
//! combination of the private inputs — demonstrating the tolerance is
//! tight, not conservative.
//!
//! Run with: `cargo run --release --example colluding_gpus`

use darknight::core::{privacy, DarknightConfig, DarknightSession, EncodingScheme};
use darknight::field::{FieldRng, P25};
use darknight::gpu::collusion::chi_square_threshold_999;
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // K=2 inputs, M=2 noise vectors -> tolerates any 2 colluding GPUs.
    let (k, m) = (2usize, 2usize);
    let cfg = DarknightConfig::new(k, m).with_seed(31);
    let cluster = GpuCluster::honest(cfg.workers_required(), 32);
    let mut session = DarknightSession::new(cfg, cluster)?;
    let mut model = mini_vgg(8, 4, 11);
    let x = Tensor::<f32>::from_fn(&[k, 3, 8, 8], |i| if i % 2 == 0 { 0.7 } else { -0.7 });
    // Train-mode forwards store the masked encodings on the workers,
    // which is what populates the observation record audited below
    // (inference sends the same masked vectors but skips the store).
    for _ in 0..8 {
        session.private_forward(&mut model, &x, true)?;
    }

    println!("Collusion tolerance audit (K={k}, M={m}, workers={})", k + m);
    println!("----------------------------------------------------");
    let chi2 = privacy::gpu_view_chi_square(session.cluster(), 16).expect("observed");
    println!(
        "all-worker observation uniformity: chi2={chi2:.1} (threshold {:.1}) -> {}",
        chi_square_threshold_999(15),
        if chi2 < chi_square_threshold_999(15) { "UNIFORM" } else { "BIASED" }
    );

    // White-box algebra audit on a fresh scheme with known inputs.
    let mut rng = FieldRng::seed_from(77);
    let scheme = EncodingScheme::generate(k, m, false, &mut rng);
    let inputs: Vec<Vec<_>> = (0..k).map(|_| rng.uniform_vec::<P25>(64)).collect();
    let noise: Vec<Vec<_>> = (0..m).map(|_| rng.uniform_vec::<P25>(64)).collect();

    for coalition in [vec![0usize, 1], vec![1, 3], vec![0, 2, 3]] {
        let outcome = privacy::audit_collusion_boundary(&scheme, &coalition, &inputs, &noise);
        println!(
            "coalition {:?} (size {}): {}",
            coalition,
            coalition.len(),
            if outcome.is_breach() {
                "NOISE CANCELLED -> inputs exposed (size > M, as theory predicts)"
            } else {
                "cannot cancel noise -> perfect privacy holds"
            }
        );
    }

    // Two-world distinguishing game from a single worker's view.
    let adv = privacy::distinguishing_advantage(k, m, 64, 400, 123);
    println!("single-worker distinguishing advantage over coin flip: {adv:.3} (≈0 is perfect)");
    Ok(())
}
