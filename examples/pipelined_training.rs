//! Pipelined private training (§7.1): the staged engine vs the
//! sequential session, on the same Algorithm 2 workload.
//!
//! The engine streams independent virtual batches through three stages —
//! TEE encode, GPU linear ops, TEE decode + integrity check — so the
//! enclave encodes batch `t+1` "under the shadow of GPU execution time"
//! for batch `t`. The GPU fleet here is simulated on the host CPU, so
//! the workers carry a modeled accelerator latency profile
//! (`dk_gpu::LatencyModel`): wall clock then reflects device occupancy,
//! and the overlap is measurable exactly as it would be against real
//! hardware.
//!
//! The punchline is printed twice: the measured speedup, and the proof
//! that it costs nothing — final weights are **bit-for-bit identical**
//! between the two modes (per-(batch, layer) seed derivation makes the
//! masks independent of execution order).
//!
//! Run with: `cargo run --release --example pipelined_training`

use darknight::core::engine::{compare_training_modes, EngineOptions};
use darknight::core::DarknightConfig;
use darknight::gpu::{GpuCluster, LatencyModel};
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = DarknightConfig::new(2, 1).with_seed(1234);
    // One fleet model for both modes: parallel dispatch (the paper's
    // K' concurrent GPUs) plus a modeled per-job device latency.
    let fleet = GpuCluster::honest(cfg.workers_required(), 99)
        .with_parallel_dispatch(true)
        .with_latency(Some(LatencyModel { base_ns: 150_000, ns_per_kmac: 500 }));
    let model = mini_vgg(8, 4, 7);
    let x = Tensor::from_fn(&[8, 3, 8, 8], |i| ((i % 23) as f32 - 11.0) * 0.04);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();

    let epochs = 3;
    let (report, diff) = compare_training_modes(
        cfg,
        &fleet,
        &model,
        &x,
        &labels,
        epochs,
        0.05,
        EngineOptions::default(),
    )?;

    println!("Pipelined Algorithm 2 training (MiniVGG, {} virtual batches)", report.batches);
    println!("---------------------------------------------------------------");
    println!("sequential session : {:>10.1?}", report.sequential);
    println!("pipelined engine   : {:>10.1?}", report.pipelined);
    println!("speedup            : {:>9.2}x", report.speedup());
    println!("max weight diff    : {diff} (bit-for-bit equality required)");
    assert_eq!(diff, 0.0, "pipelined training diverged from sequential");
    println!("\nBoth modes produced identical weights — the overlap is free.");
    Ok(())
}
