//! Cross-crate integration: full private training against the plaintext
//! reference, across all three mini architectures and the Algorithm 2
//! large-batch path.

use darknight::core::virtual_batch::LargeBatchTrainer;
use darknight::core::{DarknightConfig, DarknightSession, QuantizedReference};
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::{mini_mobilenet, mini_resnet, mini_vgg};
use darknight::nn::data::Dataset;
use darknight::nn::loss::softmax_cross_entropy;
use darknight::nn::optim::Sgd;
use darknight::nn::{train, Sequential};

fn session(k: usize, m: usize, seed: u64) -> DarknightSession {
    let cfg = DarknightConfig::new(k, m).with_seed(seed);
    let cluster = GpuCluster::honest(cfg.workers_required(), seed ^ 0xAA);
    DarknightSession::new(cfg, cluster).expect("cluster sized from config")
}

/// Session with the paper's l=8 quantization (higher precision; the
/// mini models' fan-in keeps worst-case dot products in range).
fn session_l8(k: usize, m: usize, seed: u64) -> DarknightSession {
    let cfg = DarknightConfig::new(k, m)
        .with_seed(seed)
        .with_quant(darknight::field::QuantConfig::new(8));
    let cluster = GpuCluster::honest(cfg.workers_required(), seed ^ 0xAA);
    DarknightSession::new(cfg, cluster).expect("cluster sized from config")
}

/// One gradient step computed privately must match the *quantized*
/// reference step exactly, for every architecture family.
///
/// The oracle is [`QuantizedReference`]: a clear-text executor running
/// the identical Algorithm 1 normalize→quantize→field-op→dequantize
/// pipeline with no masking. DarKnight's encoding/decoding is exact in
/// `F_p`, so the private step and the reference step must agree bit for
/// bit — comparing against the *float* model instead would conflate
/// the privacy layer with fixed-point noise (including ReLU gates
/// flipping on near-zero pre-activations, which perturbs downstream
/// gradients by far more than one quantization ulp).
#[test]
fn single_step_equivalence_all_architectures() {
    type Builder = fn(usize, usize, u64) -> Sequential;
    let builders: [(&str, Builder); 3] = [
        ("mini_vgg", mini_vgg),
        ("mini_resnet", mini_resnet),
        ("mini_mobilenet", mini_mobilenet),
    ];
    for (name, build) in builders {
        let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i * 7 % 23) as f32 - 11.0) * 0.04);
        let labels = [0usize, 3];
        let mut sess = session_l8(2, 1, 99);

        let mut reference = QuantizedReference::new(2, sess.config().quant());
        let mut ref_model = build(8, 4, 77);
        ref_model.zero_grad();
        let logits_r = reference.forward(&mut ref_model, &x, true).unwrap();
        let (_, dlr) = softmax_cross_entropy(&logits_r, &labels);
        reference.backward(&mut ref_model, &dlr).unwrap();
        let mut ref_grads = Vec::new();
        ref_model.visit_params(&mut |_, g| ref_grads.push(g.clone()));

        let mut private = build(8, 4, 77);
        private.zero_grad();
        sess.begin_virtual_batch();
        let logits_p = sess.private_forward(&mut private, &x, true).unwrap();
        let (_, dlp) = softmax_cross_entropy(&logits_p, &labels);
        sess.private_backward(&mut private, &dlp).unwrap();
        let mut priv_grads = Vec::new();
        private.visit_params(&mut |_, g| priv_grads.push(g.clone()));

        // The masking layer adds zero error: logits and every gradient
        // agree exactly with the quantized reference.
        assert_eq!(logits_p.max_abs_diff(&logits_r), 0.0, "{name}: logits diverged");
        assert_eq!(ref_grads.len(), priv_grads.len(), "{name}");
        for (i, (a, b)) in ref_grads.iter().zip(&priv_grads).enumerate() {
            assert_eq!(a.max_abs_diff(b), 0.0, "{name} param {i}: private != reference");
        }

        // Sanity against the float model: the quantized step still
        // points the same way overall. Per-parameter bounds would be
        // chasing ReLU gate flips, so compare the concatenated
        // gradient's direction, which is what one SGD step applies.
        let mut plain = build(8, 4, 77);
        plain.zero_grad();
        let logits = plain.forward(&x, true);
        let (_, dl) = softmax_cross_entropy(&logits, &labels);
        plain.backward(&dl);
        let mut plain_grads = Vec::new();
        plain.visit_params(&mut |_, g| plain_grads.push(g.clone()));
        let (mut dot, mut na, mut nb) = (0.0f64, 0.0f64, 0.0f64);
        for (a, b) in plain_grads.iter().zip(&priv_grads) {
            for (&u, &v) in a.as_slice().iter().zip(b.as_slice()) {
                dot += u as f64 * v as f64;
                na += u as f64 * u as f64;
                nb += v as f64 * v as f64;
            }
        }
        let cosine = dot / (na.sqrt() * nb.sqrt()).max(1e-12);
        assert!(cosine > 0.9, "{name}: overall gradient cosine vs float {cosine}");
    }
}

/// Training a model privately must reach the same accuracy as the
/// plaintext reference (Fig. 4's claim), here on the VGG-style model
/// where virtual-batch BN statistics play no role.
#[test]
fn training_accuracy_parity_minivgg() {
    let data = Dataset::synthetic(4, 24, (3, 8, 8), 0.4, 555);
    let (train_set, eval_set) = data.split(0.75);

    let mut raw = mini_vgg(8, 4, 13);
    let mut sgd = Sgd::new(0.01);
    let raw_report = train::train(&mut raw, &train_set, Some(&eval_set), 8, 2, &mut sgd);

    let mut sess = session(2, 1, 321);
    let mut dk = mini_vgg(8, 4, 13);
    let mut sgd = Sgd::new(0.01);
    for _ in 0..8 {
        for (x, labels) in train_set.batches(2) {
            sess.train_step(&mut dk, &x, labels, &mut sgd).unwrap();
        }
    }
    let dk_acc = train::evaluate(&mut dk, &eval_set, 2);
    let raw_acc = raw_report.final_accuracy();
    assert!(raw_acc > 0.7, "reference failed to learn: {raw_acc}");
    assert!(
        (raw_acc - dk_acc).abs() < 0.15,
        "accuracy diverged: raw={raw_acc} darknight={dk_acc}"
    );
}

/// Algorithm 2 path: multi-virtual-batch training with sealed gradient
/// eviction converges and keeps all sealing counters consistent.
#[test]
fn large_batch_training_converges() {
    let data = Dataset::synthetic(3, 16, (3, 8, 8), 0.3, 808);
    let mut trainer = LargeBatchTrainer::new(session(2, 1, 11), 2048);
    let mut model = mini_vgg(8, 3, 22);
    let mut sgd = Sgd::new(0.02);
    let mut first = None;
    let mut last = 0.0;
    for _ in 0..10 {
        for (x, labels) in data.batches(8) {
            let report = trainer.train_large_batch(&mut model, &x, labels, &mut sgd).unwrap();
            assert_eq!(report.virtual_batches, 4);
            assert_eq!(report.seal_ops, report.unseal_ops);
            assert!(report.bytes_evicted >= report.bytes_reloaded);
            last = report.mean_loss();
            first.get_or_insert(last);
        }
    }
    let first = first.unwrap();
    assert!(last < first * 0.7, "no convergence: first={first} last={last}");
}

/// Inference in eval mode must be deterministic across repeated calls
/// (fresh masks each time, same decoded result).
#[test]
fn repeated_private_inference_is_stable() {
    let mut sess = session(2, 1, 2222);
    let mut model = mini_resnet(8, 4, 5);
    // Populate BN running stats once.
    let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.09);
    let first = sess.private_inference(&mut model, &x).unwrap();
    for _ in 0..3 {
        let again = sess.private_inference(&mut model, &x).unwrap();
        // Fresh random masks every round; output identical up to fresh
        // quantization noise.
        assert!(first.max_abs_diff(&again) < 0.05);
    }
}

/// Different collusion tolerances (M) must all decode *exactly*: extra
/// noise vectors change the masking, never the decoded result. The
/// oracle is the quantization-matched reference (M plays no part in
/// it); a loose float-model bound guards overall fidelity.
#[test]
fn higher_collusion_tolerance_still_exact() {
    for m in 1..=3 {
        let mut sess = session(2, m, 4000 + m as u64);
        let mut model = mini_vgg(8, 4, 9);
        let mut plain = model.clone();
        let mut reference = QuantizedReference::new(2, sess.config().quant());
        let mut ref_model = model.clone();
        let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i % 7) as f32 - 3.0) * 0.1);
        let yp = sess.private_inference(&mut model, &x).unwrap();
        let yq = reference.forward(&mut ref_model, &x, false).unwrap();
        assert_eq!(yp.max_abs_diff(&yq), 0.0, "m={m}: masking changed the decoded output");
        let yr = plain.forward(&x, false);
        assert!(yp.max_abs_diff(&yr) < 0.1, "m={m}: {}", yp.max_abs_diff(&yr));
    }
}
