//! Loopback-TCP fleet suite: the wire-protocol backend must be
//! indistinguishable from the in-process cluster — bit for bit — and a
//! worker process dying mid-batch must be survivable exactly like an
//! in-process crash.
//!
//! Worker processes are modeled by threads running
//! [`darknight::gpu::serve_fleet_worker`] (the same loop behind the
//! `dk_gpu_worker` binary) on ephemeral loopback ports; the
//! `remote_fleet` example exercises real OS processes.

use std::net::{TcpListener, TcpStream};

use darknight::core::{DarknightConfig, DarknightSession};
use darknight::gpu::wire::{self, WireMsg};
use darknight::gpu::{
    serve_fleet_worker, Behavior, FleetManifest, GpuCluster, GpuWorker, TcpFleet, WorkerId,
};
use darknight::linalg::{Conv2dShape, Tensor};
use darknight::nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use darknight::nn::optim::Sgd;
use darknight::nn::Sequential;
use darknight::tee::EpcConfig;

fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
    ])
}

fn input(seed: u64) -> Tensor<f32> {
    Tensor::from_fn(&[2, 2, 6, 6], |i| (((i as u64 * 31 + seed * 7) % 17) as f32 - 8.0) * 0.06)
}

/// Binds an ephemeral loopback port and serves fleet-worker connections
/// on it from a background thread (detached: it exits when the fleet
/// sends `Shutdown`).
fn spawn_worker_host() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || serve_fleet_worker(listener));
    addr
}

fn fleet_for(addr: &str, workers: usize) -> TcpFleet {
    TcpFleet::from_manifest(&FleetManifest {
        workers: vec![addr.to_string(); workers],
        io_timeout_ms: 10_000,
        ..FleetManifest::default()
    })
}

/// One worker host, every logical worker connected to it: inference and
/// a full training step produce exactly the bits the in-process cluster
/// produces.
#[test]
fn tcp_fleet_matches_in_process_cluster_bit_for_bit() {
    let cfg =
        DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(21);
    let n = cfg.workers_required();

    let mut local = DarknightSession::new(cfg, GpuCluster::honest(n, 500)).unwrap();
    let mut local_model = model(21);
    let local_y = local.private_inference(&mut local_model, &input(21)).unwrap();
    local.train_step(&mut local_model, &input(21), &[0, 2], &mut Sgd::new(0.05)).unwrap();

    let addr = spawn_worker_host();
    let mut remote =
        DarknightSession::with_backend(cfg, fleet_for(&addr, n), EpcConfig::default()).unwrap();
    let mut remote_model = model(21);
    let remote_y = remote.private_inference(&mut remote_model, &input(21)).unwrap();
    assert_eq!(remote_y.as_slice(), local_y.as_slice(), "inference must be bit-identical");
    remote.train_step(&mut remote_model, &input(21), &[0, 2], &mut Sgd::new(0.05)).unwrap();
    assert_eq!(
        remote_model.max_param_diff(&local_model.snapshot_params()),
        0.0,
        "training over TCP must land identical weights"
    );
    assert!(remote.quarantined().is_empty());
    assert_eq!(remote.stats().recoveries, 0);
    remote.cluster_mut().shutdown();
}

/// Severing a connection between steps is invisible: the fleet redials,
/// replays its stored encodings, and the next step is bit-identical —
/// no quarantine, no recovery, just a reconnect.
#[test]
fn severed_connection_reconnects_transparently() {
    let cfg =
        DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(22);
    let n = cfg.workers_required();

    let mut local_model = model(22);
    let mut local = DarknightSession::new(cfg, GpuCluster::honest(n, 501)).unwrap();
    for step in 0..2u64 {
        local.train_step(&mut local_model, &input(22 + step), &[0, 2], &mut Sgd::new(0.05)).unwrap();
    }

    let addr = spawn_worker_host();
    let mut remote =
        DarknightSession::with_backend(cfg, fleet_for(&addr, n), EpcConfig::default()).unwrap();
    let mut remote_model = model(22);
    remote.train_step(&mut remote_model, &input(22), &[0, 2], &mut Sgd::new(0.05)).unwrap();
    remote.cluster_mut().sever_connection(WorkerId(1));
    remote.train_step(&mut remote_model, &input(23), &[0, 2], &mut Sgd::new(0.05)).unwrap();
    assert_eq!(remote_model.max_param_diff(&local_model.snapshot_params()), 0.0);
    assert!(remote.cluster().reconnects() >= 1, "the severed worker must have redialed");
    assert!(remote.quarantined().is_empty(), "a clean reconnect is not a fault");
    assert_eq!(remote.stats().recoveries, 0);
    remote.cluster_mut().shutdown();
}

/// A worker host whose first connection dies mid-step (after the
/// forward stores/jobs, before the backward reply): the session
/// quarantines the lost worker, the TEE reconstructs its row, the step
/// completes bit-identically — and the *replacement* connection the
/// fleet later dials gets the stored encodings replayed.
#[test]
fn worker_process_death_mid_batch_is_repaired() {
    let cfg =
        DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(23);
    let n = cfg.workers_required();

    let mut local_model = model(23);
    DarknightSession::new(cfg, GpuCluster::honest(n, 502)).unwrap().train_step(
        &mut local_model,
        &input(23),
        &[0, 2],
        &mut Sgd::new(0.05),
    ).unwrap();

    // Healthy host for everyone except the victim.
    let healthy = spawn_worker_host();
    // Victim host: its FIRST connection dies while the 5th
    // post-handshake frame is in flight — it has served Store+Run for
    // both forward layers, then swallows the first backward job without
    // replying, so the TEE observes a worker dying mid-batch (not a
    // stale connection it could transparently redial). Reconnections
    // are served faithfully (with the fleet's replayed stores).
    let victim_listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let victim_addr = victim_listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let mut first = true;
        for conn in victim_listener.incoming() {
            let Ok(stream) = conn else { return };
            let die_after = if first { Some(5) } else { None };
            first = false;
            std::thread::spawn(move || flaky_connection(stream, die_after));
        }
    });

    let victim = 1usize;
    let mut addrs = vec![healthy.clone(); n];
    addrs[victim] = victim_addr;
    let fleet = TcpFleet::from_manifest(&FleetManifest {
        workers: addrs,
        io_timeout_ms: 10_000,
        ..FleetManifest::default()
    });
    let mut session = DarknightSession::with_backend(cfg, fleet, EpcConfig::default()).unwrap();
    let mut m = model(23);
    session.train_step(&mut m, &input(23), &[0, 2], &mut Sgd::new(0.05)).unwrap();
    assert_eq!(
        m.max_param_diff(&local_model.snapshot_params()),
        0.0,
        "step through a dying worker process must land identical weights"
    );
    assert!(session.stats().recoveries > 0, "the death must surface as a recovery");
    assert!(session.quarantined().contains(&WorkerId(victim)));
    session.cluster_mut().shutdown();
}

/// Serves one worker connection like the real host, but optionally
/// hangs up (process death) with the `die_after`-th post-handshake
/// frame swallowed — read but never answered, like a process killed
/// mid-execution.
fn flaky_connection(mut stream: TcpStream, die_after: Option<usize>) {
    let Ok(WireMsg::Hello { worker_id, seed, .. }) = wire::read_msg(&mut stream) else {
        return;
    };
    let mut worker = GpuWorker::new(WorkerId(worker_id as usize), Behavior::Honest, seed);
    if wire::write_msg(&mut stream, &WireMsg::HelloAck).is_err() {
        return;
    }
    let mut frames = 0usize;
    loop {
        let msg = wire::read_msg(&mut stream);
        frames += 1;
        if die_after == Some(frames) {
            return; // simulated process death: the frame dies with us
        }
        match msg {
            Ok(WireMsg::Run { job }) => {
                let reply = if worker.can_execute(&job) {
                    WireMsg::Output { tensor: worker.execute(&job) }
                } else {
                    WireMsg::Fail { message: "no stored encoding".into() }
                };
                if wire::write_msg(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Ok(WireMsg::Store { ctx_id, tensor }) => worker.store_encoding(ctx_id, tensor),
            Ok(WireMsg::Release { ctx_id }) => worker.remove_encoding(ctx_id),
            _ => return,
        }
    }
}
