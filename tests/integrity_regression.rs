//! Integrity regression suite: the §4.4 redundant-equation check as a
//! detector, characterized across many fresh scheme instances.
//!
//! Two sides of the same guarantee:
//!
//! * **completeness** — a cluster with one tampering worker is caught,
//!   whatever position the liar occupies and whichever minimal
//!   corruption it applies;
//! * **soundness** — an honest cluster never trips the detector, across
//!   100 independently-seeded sessions (fresh `A`, `B`, `Γ`, masks and
//!   noise each time), so the check cannot be dismissed as flaky.

use darknight::core::{DarknightConfig, DarknightError, DarknightSession};
use darknight::gpu::{Behavior, GpuCluster};
use darknight::linalg::{Conv2dShape, Tensor};
use darknight::nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use darknight::nn::optim::Sgd;
use darknight::nn::Sequential;

/// A small conv+dense model: one offloaded layer of each kind keeps the
/// 100-seed sweep fast while still exercising both job shapes.
fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
    ])
}

fn input(seed: u64) -> Tensor<f32> {
    Tensor::from_fn(&[2, 2, 6, 6], |i| (((i as u64 * 31 + seed * 7) % 17) as f32 - 8.0) * 0.06)
}

/// Completeness: a single tampering worker — in any position, with the
/// hardest-to-see corruption (one element, one layer) — is detected.
#[test]
fn single_tampering_worker_is_detected_in_every_position() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    for seed in 0..8u64 {
        for victim in 0..cfg.workers_required() {
            let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
            behaviors[victim] = Behavior::SingleElement;
            let cluster = GpuCluster::with_behaviors(&behaviors, 1000 + seed);
            let mut session =
                DarknightSession::new(cfg.with_seed(seed), cluster).unwrap();
            let result = session.private_inference(&mut model(seed), &input(seed));
            assert!(
                matches!(result, Err(DarknightError::IntegrityViolation { .. })),
                "seed {seed}: tampering worker {victim} escaped the redundant-equation check"
            );
        }
    }
}

/// Completeness during training: the backward-phase checks catch the
/// liar too, and no weight update lands.
#[test]
fn tampering_worker_detected_during_training_step() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    for seed in 0..8u64 {
        let victim = (seed as usize) % cfg.workers_required();
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[victim] = Behavior::AdditiveNoise;
        let cluster = GpuCluster::with_behaviors(&behaviors, 2000 + seed);
        let mut session = DarknightSession::new(cfg.with_seed(seed), cluster).unwrap();
        let mut m = model(seed);
        let snapshot = m.snapshot_params();
        let mut sgd = Sgd::new(0.05);
        let result = session.train_step(&mut m, &input(seed), &[0, 2], &mut sgd);
        assert!(result.is_err(), "seed {seed}: corrupted training step must fail");
        assert_eq!(
            m.max_param_diff(&snapshot),
            0.0,
            "seed {seed}: weights must be untouched after a detected violation"
        );
    }
}

/// Soundness: across 100 independently-seeded sessions (each with fresh
/// scheme matrices, masks, and noise), an honest cluster never triggers
/// a violation — in inference or in a full training step.
#[test]
fn honest_cluster_never_false_positives_across_100_seeds() {
    for seed in 0..100u64 {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(seed);
        let cluster = GpuCluster::honest(cfg.workers_required(), 3000 + seed);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut m = model(seed);
        session
            .private_inference(&mut m, &input(seed))
            .unwrap_or_else(|e| panic!("seed {seed}: honest inference flagged: {e}"));
        let mut sgd = Sgd::new(0.05);
        session
            .train_step(&mut m, &input(seed), &[1, 0], &mut sgd)
            .unwrap_or_else(|e| panic!("seed {seed}: honest training step flagged: {e}"));
        assert!(session.stats().integrity_checks > 0, "seed {seed}: checks must run");
    }
}
