//! Cross-crate integration: the full §3 deployment story — attested key
//! exchange, encrypted client→TEE data delivery, secure TEE↔GPU
//! channels, then private execution.

use darknight::core::{DarknightConfig, DarknightSession};
use darknight::gpu::GpuCluster;
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;
use darknight::tee::attestation::{attested_key_exchange, PlatformKey};
use darknight::tee::channel::SecureChannel;
use darknight::tee::crypto::sha256::Sha256;
use darknight::tee::crypto::{bytes_to_f32s, f32s_to_bytes};
use dk_field::FieldRng;

/// The client verifies the enclave, establishes a session key, sends
/// encrypted images; the enclave decrypts and runs a private inference.
#[test]
fn client_to_result_pipeline() {
    let mut rng = FieldRng::seed_from(1);
    // 1. Attestation: client checks it is talking to the right code.
    let platform = PlatformKey::from_seed(7);
    let expected = Sha256::digest(b"darknight enclave v1");
    let (client_key, enclave_key) =
        attested_key_exchange(&platform, expected, &expected, &mut rng).expect("genuine enclave");
    assert_eq!(client_key, enclave_key);

    // 2. Client encrypts its private batch for the enclave.
    let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.08);
    let mut client_chan = SecureChannel::new(&client_key, "client->enclave");
    let envelope = client_chan.encrypt(&f32s_to_bytes(x.as_slice()));

    // 3. Enclave decrypts (only it can) and reconstructs the batch.
    let mut enclave_chan = SecureChannel::new(&enclave_key, "client->enclave");
    let plain = enclave_chan.decrypt(&envelope).expect("authentic ciphertext");
    let recovered = Tensor::from_vec(x.shape(), bytes_to_f32s(&plain));
    assert_eq!(recovered.as_slice(), x.as_slice());

    // 4. Private inference over the recovered batch.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 2);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 3);
    let mut reference = model.clone();
    let y = session.private_inference(&mut model, &recovered).unwrap();
    assert!(y.max_abs_diff(&reference.forward(&x, false)) < 0.05);
}

/// A tampered enclave (different measurement) is rejected before any
/// data leaves the client.
#[test]
fn evil_enclave_rejected_at_attestation() {
    let mut rng = FieldRng::seed_from(2);
    let platform = PlatformKey::from_seed(7);
    let good = Sha256::digest(b"darknight enclave v1");
    let evil = Sha256::digest(b"darknight enclave v1 + backdoor");
    assert!(attested_key_exchange(&platform, evil, &good, &mut rng).is_err());
}

/// An attacker in the network cannot replay or corrupt the client's
/// encrypted upload.
#[test]
fn network_adversary_cannot_tamper_upload() {
    let key = [9u8; 32];
    let mut tx = SecureChannel::new(&key, "client->enclave");
    let mut rx = SecureChannel::new(&key, "client->enclave");
    let env = tx.encrypt(b"private image bytes");
    // Corruption attempt.
    let mut bad = env.clone();
    bad.ciphertext[5] ^= 0x80;
    assert!(rx.decrypt(&bad).is_err());
    // The genuine message still arrives…
    assert!(rx.decrypt(&env).is_ok());
    // …and cannot be replayed.
    assert!(rx.decrypt(&env).is_err());
}
