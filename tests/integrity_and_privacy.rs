//! Cross-crate integration: the integrity guarantee (§4.4) against the
//! full adversarial behaviour matrix, and the privacy guarantee (§5)
//! validated on live sessions.

use darknight::core::{privacy, DarknightConfig, DarknightError, DarknightSession};
use darknight::field::{FieldRng, P25};
use darknight::gpu::collusion::chi_square_threshold_999;
use darknight::gpu::{Behavior, GpuCluster, WorkerId};
use darknight::linalg::Tensor;
use darknight::nn::arch::mini_vgg;
use darknight::nn::optim::Sgd;

fn input() -> Tensor<f32> {
    Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) * 0.1)
}

const ATTACKS: [Behavior; 5] = [
    Behavior::AdditiveNoise,
    Behavior::SingleElement,
    Behavior::ZeroOutput,
    Behavior::Scale(5),
    Behavior::StaleInput,
];

/// Every behaviour class, on every worker position, is detected in the
/// forward pass.
#[test]
fn every_attack_on_every_worker_detected() {
    for attack in ATTACKS {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        for victim in 0..cfg.workers_required() {
            let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
            behaviors[victim] = attack;
            let cluster = GpuCluster::with_behaviors(&behaviors, 7);
            let mut session = DarknightSession::new(cfg, cluster).unwrap();
            let mut model = mini_vgg(8, 4, 3);
            let result = session.private_inference(&mut model, &input());
            assert!(
                matches!(result, Err(DarknightError::IntegrityViolation { .. })),
                "{attack:?} on worker {victim} was not detected"
            );
        }
    }
}

/// A malicious worker is also caught during the backward pass (training
/// aborts without a weight update).
#[test]
fn training_step_detects_corruption() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::SingleElement;
    let cluster = GpuCluster::with_behaviors(&behaviors, 9);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 4);
    let snapshot = model.snapshot_params();
    let mut sgd = Sgd::new(0.1);
    let result = session.train_step(&mut model, &input(), &[0, 1], &mut sgd);
    assert!(result.is_err(), "corrupted training step must fail");
    assert_eq!(model.max_param_diff(&snapshot), 0.0, "no update may land on error");
}

/// The dynamic adversary: honest history does not help a worker that
/// turns malicious later.
#[test]
fn dynamic_adversary_detected_when_it_turns() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 10);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 5);
    for _ in 0..2 {
        assert!(session.private_inference(&mut model, &input()).is_ok());
    }
    session.cluster_mut().worker_mut(WorkerId(1)).set_behavior(Behavior::Scale(2));
    assert!(session.private_inference(&mut model, &input()).is_err());
    // And back to honest: the system recovers (corrective action is
    // re-dispatch in the paper's terms).
    session.cluster_mut().worker_mut(WorkerId(1)).set_behavior(Behavior::Honest);
    assert!(session.private_inference(&mut model, &input()).is_ok());
}

/// Lemma 1, empirically: everything the workers observe across a real
/// multi-layer, multi-round session is uniform on F_p, even though the
/// underlying data is maximally structured.
#[test]
fn gpu_view_uniform_across_structured_inputs() {
    let cfg = DarknightConfig::new(2, 1).with_seed(606);
    let cluster = GpuCluster::honest(cfg.workers_required(), 607);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 6);
    // Constant, checkerboard, and impulse inputs — worst cases for any
    // leaky masking.
    let patterns: [Box<dyn Fn(usize) -> f32>; 3] = [
        Box::new(|_| 0.9),
        Box::new(|i| if i % 2 == 0 { 0.9 } else { -0.9 }),
        Box::new(|i| if i == 0 { 1.0 } else { 0.0 }),
    ];
    // Train-mode forwards: those store the encodings on the workers,
    // which is what populates the observation record this test audits
    // (inference sends the same masked vectors but skips the store).
    for p in &patterns {
        let x = Tensor::from_fn(&[2, 3, 8, 8], p);
        for _ in 0..4 {
            session.private_forward(&mut model, &x, true).unwrap();
        }
    }
    let chi2 = privacy::gpu_view_chi_square(session.cluster(), 16).unwrap();
    assert!(chi2 < chi_square_threshold_999(15), "GPU view biased: chi2={chi2}");
}

/// The collusion boundary on a live session scheme is exactly M, for
/// several (K, M) configurations.
#[test]
fn collusion_boundary_matrix() {
    let mut rng = FieldRng::seed_from(99);
    for (k, m) in [(2usize, 1usize), (2, 2), (3, 2), (4, 3)] {
        let cfg = DarknightConfig::new(k, m).with_seed(17);
        let cluster = GpuCluster::honest(cfg.workers_required(), 18);
        let session = DarknightSession::new(cfg, cluster).unwrap();
        let scheme = session.scheme();
        let inputs: Vec<Vec<_>> = (0..k).map(|_| rng.uniform_vec::<P25>(32)).collect();
        let noise: Vec<Vec<_>> = (0..m).map(|_| rng.uniform_vec::<P25>(32)).collect();
        // Any coalition of exactly M: safe.
        let coalition: Vec<usize> = (0..m).collect();
        assert!(
            !privacy::audit_collusion_boundary(scheme, &coalition, &inputs, &noise).is_breach(),
            "k={k} m={m}: coalition of {m} breached"
        );
        // Any coalition of M+1: breached.
        let coalition: Vec<usize> = (0..=m).collect();
        assert!(
            privacy::audit_collusion_boundary(scheme, &coalition, &inputs, &noise).is_breach(),
            "k={k} m={m}: coalition of {} not breached", m + 1
        );
    }
}

/// A single worker's view gives no usable distinguishing advantage
/// between two maximally-different input worlds.
#[test]
fn distinguishing_advantage_negligible() {
    let adv = privacy::distinguishing_advantage(2, 1, 128, 500, 404);
    assert!(adv < 0.12, "advantage={adv}");
}

/// Recovery extension: with localization enabled, an attacked inference
/// completes with the *correct* result and the liar is quarantined.
/// "Correct" means bit-identical to what an all-honest cluster produces
/// under the same seeds — repair must leave no trace of the attack.
#[test]
fn recovery_repairs_and_quarantines() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
    let honest_cluster = GpuCluster::honest(cfg.workers_required(), 55);
    let mut honest_session = DarknightSession::new(cfg, honest_cluster).unwrap();
    let mut honest_model = mini_vgg(8, 4, 8);
    let y_honest = honest_session.private_inference(&mut honest_model, &input()).unwrap();
    for attack in ATTACKS {
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[2] = attack;
        let cluster = GpuCluster::with_behaviors(&behaviors, 55);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = mini_vgg(8, 4, 8);
        let y = session
            .private_inference(&mut model, &input())
            .unwrap_or_else(|e| panic!("{attack:?}: recovery failed: {e}"));
        assert_eq!(y.max_abs_diff(&y_honest), 0.0, "{attack:?}: repaired output wrong");
        assert_eq!(session.quarantined(), &[WorkerId(2)], "{attack:?}");
        assert!(session.stats().recoveries > 0);
    }
}

/// Recovery with several simultaneous liars still produces the correct
/// result and quarantines all of them.
#[test]
fn recovery_handles_multiple_liars() {
    let cfg = DarknightConfig::new(2, 2).with_integrity(true).with_recovery(true);
    let honest_cluster = GpuCluster::honest(cfg.workers_required(), 56);
    let mut honest_session = DarknightSession::new(cfg, honest_cluster).unwrap();
    let mut honest_model = mini_vgg(8, 4, 9);
    let y_honest = honest_session.private_inference(&mut honest_model, &input()).unwrap();
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::Scale(4);
    behaviors[3] = Behavior::SingleElement;
    let cluster = GpuCluster::with_behaviors(&behaviors, 56);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 9);
    let y = session.private_inference(&mut model, &input()).unwrap();
    assert_eq!(y.max_abs_diff(&y_honest), 0.0, "repair must match the honest cluster exactly");
    let mut q = session.quarantined().to_vec();
    q.sort();
    assert_eq!(q, vec![WorkerId(0), WorkerId(3)]);
}

/// Recovery never fires on honest clusters (no false quarantines).
#[test]
fn recovery_has_no_false_positives() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true);
    let cluster = GpuCluster::honest(cfg.workers_required(), 57);
    let mut session = DarknightSession::new(cfg, cluster).unwrap();
    let mut model = mini_vgg(8, 4, 10);
    for _ in 0..3 {
        session.private_inference(&mut model, &input()).unwrap();
    }
    assert!(session.quarantined().is_empty());
    assert_eq!(session.stats().recoveries, 0);
}

/// Recovered training: a full train step under attack lands the same
/// update as an honest cluster would (the repaired forward feeds an
/// honest backward).
#[test]
fn recovery_preserves_training_updates() {
    let x = input();
    let labels = [0usize, 1];
    // Honest run.
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(70);
    let cluster = GpuCluster::honest(cfg.workers_required(), 58);
    let mut honest_session = DarknightSession::new(cfg, cluster).unwrap();
    let mut honest_model = mini_vgg(8, 4, 11);
    let mut sgd = Sgd::new(0.05);
    honest_session.train_step(&mut honest_model, &x, &labels, &mut sgd).unwrap();
    // Attacked-but-recovered run (same seeds everywhere).
    let cfg = DarknightConfig::new(2, 1)
        .with_integrity(true)
        .with_recovery(true)
        .with_seed(70);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[1] = Behavior::AdditiveNoise;
    let cluster = GpuCluster::with_behaviors(&behaviors, 58);
    let mut attacked_session = DarknightSession::new(cfg, cluster).unwrap();
    let mut attacked_model = mini_vgg(8, 4, 11);
    let mut sgd = Sgd::new(0.05);
    // With recovery on, forward repair + deterministic backward
    // duplicate verification yield the same update the honest cluster
    // produced (identical RNG streams; bit-identical masks).
    attacked_session.train_step(&mut attacked_model, &x, &labels, &mut sgd).unwrap();
    assert!(!attacked_session.quarantined().is_empty(), "liar must be quarantined");
    let snap = honest_model.snapshot_params();
    let diff = attacked_model.max_param_diff(&snap);
    assert!(diff < 1e-5, "recovered update diverged from honest run: {diff}");
}
