//! Worker-loss regression suite: losing an accelerator mid-batch must
//! never kill the enclave.
//!
//! The recovery extension already treats a *tampering* worker as a
//! survivable event (quarantine + TEE repair). This suite pins down the
//! same contract for the fail-stop fault classes introduced by the
//! typed-fault execution backends:
//!
//! * a worker that **crashes** (thread death, process death) mid-batch
//!   is quarantined and the batch completes with bit-identical outputs;
//! * a worker that **stalls** past the dispatcher's reply deadline is
//!   treated the same way;
//! * with recovery disabled the same faults fail *closed*, as typed
//!   [`DarknightError::GpuFault`] values — never a panic.

use std::sync::Arc;
use std::time::Duration;

use darknight::core::{DarknightConfig, DarknightError, DarknightSession};
use darknight::gpu::{Behavior, DispatchClient, GpuCluster, GpuError, LatencyModel, WorkerId};
use darknight::linalg::{Conv2dShape, Tensor};
use darknight::nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use darknight::nn::optim::Sgd;
use darknight::nn::Sequential;
use darknight::tee::EpcConfig;

fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
    ])
}

fn input(seed: u64) -> Tensor<f32> {
    Tensor::from_fn(&[2, 2, 6, 6], |i| (((i as u64 * 31 + seed * 7) % 17) as f32 - 8.0) * 0.06)
}

fn recovery_cfg(seed: u64) -> DarknightConfig {
    DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(seed)
}

/// A worker that dies before executing a single job — in every fleet
/// position — is quarantined, and inference completes with exactly the
/// bits an all-honest fleet produces.
#[test]
fn crash_during_forward_is_repaired_bit_identically() {
    for seed in 0..3u64 {
        let cfg = recovery_cfg(seed);
        let n = cfg.workers_required();
        let honest = DarknightSession::new(cfg, GpuCluster::honest(n, 100 + seed))
            .unwrap()
            .private_inference(&mut model(seed), &input(seed))
            .unwrap();
        for victim in 0..n {
            let mut behaviors = vec![Behavior::Honest; n];
            behaviors[victim] = Behavior::Crash { after: 0 };
            let cluster = GpuCluster::with_behaviors(&behaviors, 100 + seed);
            let mut session = DarknightSession::new(cfg, cluster).unwrap();
            let y = session
                .private_inference(&mut model(seed), &input(seed))
                .unwrap_or_else(|e| panic!("seed {seed} victim {victim}: {e}"));
            assert_eq!(
                y.as_slice(),
                honest.as_slice(),
                "seed {seed} victim {victim}: repaired output must be bit-identical"
            );
            assert!(session.stats().recoveries > 0, "loss must be visible as a recovery");
            assert!(
                session.quarantined().contains(&WorkerId(victim)),
                "seed {seed}: dead worker {victim} must be quarantined"
            );
        }
    }
}

/// A worker that survives the forward pass and dies entering the
/// backward pass: the TEE reconstructs its stored encoding from the
/// retained context and the training step lands bit-identical weights.
#[test]
fn crash_during_backward_is_repaired_bit_identically() {
    for seed in 0..3u64 {
        let cfg = recovery_cfg(seed);
        let n = cfg.workers_required();
        let mut honest_model = model(seed);
        DarknightSession::new(cfg, GpuCluster::honest(n, 200 + seed))
            .unwrap()
            .train_step(&mut honest_model, &input(seed), &[0, 2], &mut Sgd::new(0.05))
            .unwrap();
        for victim in 0..n {
            let mut behaviors = vec![Behavior::Honest; n];
            // Two linear layers → two forward jobs per worker; the
            // third job a worker sees belongs to the backward pass.
            behaviors[victim] = Behavior::Crash { after: 2 };
            let cluster = GpuCluster::with_behaviors(&behaviors, 200 + seed);
            let mut session = DarknightSession::new(cfg, cluster).unwrap();
            let mut m = model(seed);
            session
                .train_step(&mut m, &input(seed), &[0, 2], &mut Sgd::new(0.05))
                .unwrap_or_else(|e| panic!("seed {seed} victim {victim}: {e}"));
            assert_eq!(
                m.max_param_diff(&honest_model.snapshot_params()),
                0.0,
                "seed {seed} victim {victim}: repaired step must land identical weights"
            );
            assert!(session.stats().recoveries > 0);
            assert!(session.quarantined().contains(&WorkerId(victim)));
        }
    }
}

/// Without recovery there is nothing to repair with: the loss surfaces
/// as a fail-closed typed error carrying the underlying fault — and the
/// model is untouched.
#[test]
fn crash_without_recovery_fails_closed() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(7);
    let n = cfg.workers_required();
    let mut behaviors = vec![Behavior::Honest; n];
    behaviors[1] = Behavior::Crash { after: 0 };
    let mut session =
        DarknightSession::new(cfg, GpuCluster::with_behaviors(&behaviors, 300)).unwrap();
    let mut m = model(7);
    let snapshot = m.snapshot_params();
    let err = session.train_step(&mut m, &input(7), &[0, 2], &mut Sgd::new(0.05)).unwrap_err();
    match err {
        DarknightError::GpuFault { phase: "forward", fault, .. } => {
            assert!(matches!(fault, GpuError::WorkerLost { worker: WorkerId(1), .. }), "{fault}");
        }
        other => panic!("expected GpuFault, got {other}"),
    }
    assert_eq!(m.max_param_diff(&snapshot), 0.0, "failed step must not update weights");
}

/// A crash mid-backward without recovery also fails closed (the stored
/// jobs cannot be replayed, and the session must not try).
#[test]
fn backward_crash_without_recovery_fails_closed() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(8);
    let n = cfg.workers_required();
    let mut behaviors = vec![Behavior::Honest; n];
    behaviors[0] = Behavior::Crash { after: 2 };
    let mut session =
        DarknightSession::new(cfg, GpuCluster::with_behaviors(&behaviors, 301)).unwrap();
    let err = session
        .train_step(&mut model(8), &input(8), &[0, 2], &mut Sgd::new(0.05))
        .unwrap_err();
    assert!(
        matches!(err, DarknightError::GpuFault { phase: "backward", .. }),
        "expected backward GpuFault, got {err}"
    );
}

/// A straggler past the dispatcher's reply deadline is indistinguishable
/// from a lost worker: quarantined, repaired, bit-identical output.
#[test]
fn timeout_is_quarantined_and_repaired() {
    let cfg = recovery_cfg(11);
    let n = cfg.workers_required();
    let honest = DarknightSession::new(cfg, GpuCluster::honest(n, 400))
        .unwrap()
        .private_inference(&mut model(11), &input(11))
        .unwrap();
    let mut cluster = GpuCluster::honest(n, 400);
    cluster
        .worker_mut(WorkerId(2))
        .set_latency(Some(LatencyModel { base_ns: 150_000_000, ns_per_kmac: 0 }));
    let dispatcher =
        Arc::new(cluster.into_dispatcher(4).with_reply_timeout(Some(Duration::from_millis(20))));
    let mut session = DarknightSession::with_backend(
        cfg,
        DispatchClient::new(dispatcher.clone()),
        EpcConfig::default(),
    )
    .unwrap();
    let y = session.private_inference(&mut model(11), &input(11)).unwrap();
    assert_eq!(y.as_slice(), honest.as_slice(), "timeout repair must be bit-identical");
    assert!(session.quarantined().contains(&WorkerId(2)), "straggler must be quarantined");
    assert!(session.stats().recoveries > 0);
    drop(session);
    // The straggler is still alive (just slow); the dispatcher must
    // join it cleanly rather than panic over the abandoned replies.
    let (cluster, lost) = Arc::try_unwrap(dispatcher).unwrap().join();
    assert!(lost.is_empty());
    assert_eq!(cluster.len(), n);
}
