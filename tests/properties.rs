//! Property-based tests over the core cryptographic and numerical
//! invariants, spanning crates.

use darknight::core::EncodingScheme;
use darknight::field::vandermonde::{is_mds, mds_matrix};
use darknight::field::{F25, FieldMatrix, FieldRng, QuantConfig, P25};
use darknight::tee::crypto::SealKey;
use proptest::prelude::*;

fn arb_seed() -> impl Strategy<Value = u64> {
    any::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Field axioms on random triples: associativity, commutativity,
    /// distributivity, inverses.
    #[test]
    fn field_axioms(a in 0u64..P25, b in 0u64..P25, c in 0u64..P25) {
        let (x, y, z) = (F25::new(a), F25::new(b), F25::new(c));
        prop_assert_eq!((x + y) + z, x + (y + z));
        prop_assert_eq!((x * y) * z, x * (y * z));
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!(x * (y + z), x * y + x * z);
        prop_assert_eq!(x + (-x), F25::ZERO);
        if !x.is_zero() {
            prop_assert_eq!(x * x.inv().unwrap(), F25::ONE);
        }
    }

    /// Centered lift inverts the signed embedding over the full safe
    /// range.
    #[test]
    fn centered_lift_round_trip(v in -((P25 as i64)/2)..=(P25 as i64)/2) {
        prop_assert_eq!(F25::from_i64(v).to_centered_i64(), v);
    }

    /// Random square matrices over F_p invert correctly whenever an
    /// inverse exists.
    #[test]
    fn matrix_inverse_round_trip(seed in arb_seed(), n in 1usize..6) {
        let mut rng = FieldRng::seed_from(seed);
        let m = FieldMatrix::<P25>::random(n, n, &mut rng);
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(&m * &inv, FieldMatrix::identity(n));
            prop_assert_eq!(&inv * &m, FieldMatrix::identity(n));
        }
    }

    /// Vandermonde-based generator always yields MDS matrices.
    #[test]
    fn mds_generator_property(seed in arb_seed(), rows in 1usize..4, extra in 0usize..4) {
        let mut rng = FieldRng::seed_from(seed);
        let cols = rows + extra;
        let m = mds_matrix::<P25>(rows, cols, &mut rng);
        prop_assert!(is_mds(&m));
    }

    /// Encode→decode is the identity for any (K, M, integrity, length).
    #[test]
    fn encode_decode_identity(
        seed in arb_seed(),
        k in 1usize..5,
        m in 1usize..4,
        integrity in any::<bool>(),
        n in 1usize..40,
    ) {
        let mut rng = FieldRng::seed_from(seed);
        let scheme = EncodingScheme::generate(k, m, integrity, &mut rng);
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let encodings = scheme.encode(&inputs, &noise);
        let decoded = scheme.decode_forward(&encodings, 0).unwrap();
        prop_assert_eq!(decoded, inputs);
    }

    /// Any single-element corruption of any worker output is detected
    /// when integrity is enabled.
    #[test]
    fn integrity_catches_arbitrary_corruption(
        seed in arb_seed(),
        k in 1usize..4,
        m in 1usize..3,
        victim_sel in any::<u32>(),
        elem_sel in any::<u32>(),
        bump in 1u64..P25,
    ) {
        let mut rng = FieldRng::seed_from(seed);
        let scheme = EncodingScheme::generate(k, m, true, &mut rng);
        let n = 8;
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let mut outputs = scheme.encode(&inputs, &noise);
        let victim = victim_sel as usize % outputs.len();
        let elem = elem_sel as usize % n;
        outputs[victim][elem] += F25::new(bump);
        prop_assert!(scheme.decode_forward(&outputs, 0).is_err());
    }

    /// The Eq. 5 relation holds for every sampled scheme.
    #[test]
    fn backward_relation_always_holds(
        seed in arb_seed(),
        k in 1usize..5,
        m in 1usize..4,
        integrity in any::<bool>(),
    ) {
        let mut rng = FieldRng::seed_from(seed);
        let scheme = EncodingScheme::generate(k, m, integrity, &mut rng);
        prop_assert!(scheme.verify_relation());
    }

    /// Quantization round-trips within the documented error bound for
    /// all in-range floats.
    #[test]
    fn quantization_error_bound(v in -100.0f64..100.0, l in 4u32..10) {
        let q = QuantConfig::new(l);
        let x = q.quantize::<P25>(v).unwrap();
        let back = q.dequantize_input(x);
        prop_assert!((back - v).abs() <= q.unit_error() + 1e-9);
    }

    /// Seal→unseal is the identity; any single-byte corruption of the
    /// ciphertext is rejected.
    #[test]
    fn sealing_round_trip_and_tamper(
        payload in proptest::collection::vec(any::<u8>(), 0..256),
        corrupt_at in any::<u32>(),
    ) {
        let mut key = SealKey::derive(b"prop");
        let blob = key.seal(&payload);
        prop_assert_eq!(key.unseal(&blob).unwrap(), payload.clone());
        if !blob.ciphertext.is_empty() {
            let mut bad = blob.clone();
            let i = corrupt_at as usize % bad.ciphertext.len();
            bad.ciphertext[i] ^= 0x01;
            prop_assert!(key.unseal(&bad).is_err());
        }
    }

    /// The masked view leaks nothing: for ANY two fixed input batches,
    /// the marginal of each encoding is uniform — checked here via the
    /// weaker but testable invariant that encodings of identical inputs
    /// under fresh noise never repeat.
    #[test]
    fn fresh_noise_never_repeats_encodings(seed in arb_seed(), n in 1usize..32) {
        let mut rng = FieldRng::seed_from(seed);
        let scheme = EncodingScheme::generate(2, 1, false, &mut rng);
        let inputs: Vec<Vec<F25>> = (0..2).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let n1: Vec<Vec<F25>> = vec![rng.uniform_vec::<P25>(n)];
        let n2: Vec<Vec<F25>> = vec![rng.uniform_vec::<P25>(n)];
        if n1 != n2 {
            let e1 = scheme.encode(&inputs, &n1);
            let e2 = scheme.encode(&inputs, &n2);
            prop_assert_ne!(e1, e2);
        }
    }
}
