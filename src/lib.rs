//! DarKnight — privacy and integrity preserving deep learning with
//! trusted hardware, reproduced in Rust.
//!
//! This facade crate re-exports the full workspace API. See the README
//! for the architecture overview and `DESIGN.md` for the per-experiment
//! reproduction index.

pub use dk_baselines as baselines;
pub use dk_core as core;
pub use dk_field as field;
pub use dk_gpu as gpu;
pub use dk_linalg as linalg;
pub use dk_nn as nn;
pub use dk_obs as obs;
pub use dk_perf as perf;
pub use dk_serve as serve;
pub use dk_tee as tee;
