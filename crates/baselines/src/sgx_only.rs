//! The SGX-only baseline: the whole model runs inside the enclave.
//!
//! Functionally this is plain float execution; the point of the wrapper
//! is *memory accounting* — every activation and weight access is
//! charged against the enclave's protected-memory budget, so the paging
//! behaviour that dominates the paper's baseline measurements (Table 1,
//! Fig. 7) is observable.

use dk_linalg::Tensor;
use dk_nn::loss::softmax_cross_entropy;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_tee::{Enclave, EpcConfig};

/// Runs models fully inside the enclave simulator.
#[derive(Debug)]
pub struct SgxOnlyRunner {
    enclave: Enclave,
}

impl SgxOnlyRunner {
    /// Creates a runner with the given protected-memory budget.
    pub fn new(epc: EpcConfig) -> Self {
        Self { enclave: Enclave::new(epc, b"sgx-only-baseline") }
    }

    /// Creates a runner with the paper's SGXv1 budget.
    pub fn sgx_v1() -> Self {
        Self::new(EpcConfig::sgx_v1())
    }

    /// Enclave statistics (peak memory, paging events).
    pub fn enclave_stats(&self) -> dk_tee::MemoryStats {
        self.enclave.stats()
    }

    /// Charges the model's parameter residency once (weights live in
    /// the enclave for the whole run in this baseline).
    pub fn load_model(&mut self, model: &mut Sequential) {
        let params = model.num_params();
        let _ = self.enclave.alloc_paged(params * 4 * 2); // weights + grads
    }

    /// In-enclave forward pass with memory accounting per layer.
    pub fn forward(&mut self, model: &mut Sequential, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        // Walk layers manually so each activation allocation is charged.
        let mut h = x.clone();
        let _ = self.enclave.alloc_paged(h.len() * 4);
        for layer in model.layers_mut() {
            let out = layer.forward(&h, train);
            let _ = self.enclave.alloc_paged(out.len() * 4);
            // The previous activation must stay resident for backward;
            // this baseline keeps everything in (paged) enclave memory.
            h = out;
        }
        h
    }

    /// In-enclave training step.
    pub fn train_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> f32 {
        model.zero_grad();
        let logits = self.forward(model, x, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        let _ = self.enclave.alloc_paged(dlogits.len() * 4);
        model.backward(&dlogits);
        sgd.step(model);
        // Activations/gradients of this step are dead now.
        let current = self.enclave.stats().current_bytes;
        let _ = self.enclave.release(current.min(current));
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_nn::arch::mini_vgg;

    #[test]
    fn forward_matches_plain_model() {
        let mut runner = SgxOnlyRunner::sgx_v1();
        let mut m1 = mini_vgg(16, 10, 5);
        let mut m2 = mini_vgg(16, 10, 5);
        let x = Tensor::from_fn(&[2, 3, 16, 16], |i| (i % 7) as f32 * 0.1);
        let a = runner.forward(&mut m1, &x, false);
        let b = m2.forward(&x, false);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn memory_is_charged() {
        let mut runner = SgxOnlyRunner::new(EpcConfig::with_capacity(1024));
        let mut m = mini_vgg(16, 10, 6);
        runner.load_model(&mut m);
        let x = Tensor::from_fn(&[2, 3, 16, 16], |i| (i % 5) as f32 * 0.1);
        let _ = runner.forward(&mut m, &x, false);
        let stats = runner.enclave_stats();
        assert!(stats.peak_bytes > 1024, "working set should exceed the tiny EPC");
        assert!(stats.paging_events > 0, "tiny EPC must cause paging");
    }

    #[test]
    fn training_works_in_enclave() {
        let mut runner = SgxOnlyRunner::sgx_v1();
        let mut m = mini_vgg(8, 4, 7);
        let mut sgd = Sgd::new(0.05);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) * 0.1);
        let first = runner.train_step(&mut m, &x, &[0, 1], &mut sgd);
        let mut last = first;
        for _ in 0..10 {
            last = runner.train_step(&mut m, &x, &[0, 1], &mut sgd);
        }
        assert!(last < first, "first={first} last={last}");
    }
}
