//! The non-private GPU baseline (Table 4 upper bound).
//!
//! Functionally identical to plain float execution; exists so the
//! benchmark harness has a named, instrumented "unprotected GPUs"
//! configuration (no encoding, no enclave, no privacy guarantee — the
//! paper's Table 4 row).

use dk_linalg::Tensor;
use dk_nn::loss::softmax_cross_entropy;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;

/// Counters for the plain-GPU run.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlainGpuStats {
    /// Forward+backward linear MACs executed (all on GPU).
    pub steps: u64,
}

/// Trains/infers with no protection at all.
#[derive(Debug, Default)]
pub struct PlainGpuRunner {
    stats: PlainGpuStats,
}

impl PlainGpuRunner {
    /// Creates the runner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Statistics so far.
    pub fn stats(&self) -> PlainGpuStats {
        self.stats
    }

    /// Unprotected forward pass.
    pub fn forward(&mut self, model: &mut Sequential, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        model.forward(x, train)
    }

    /// Unprotected training step; returns the loss.
    pub fn train_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> f32 {
        self.stats.steps += 1;
        model.zero_grad();
        let logits = model.forward(x, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        model.backward(&dlogits);
        sgd.step(model);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_nn::arch::mini_mobilenet;

    #[test]
    fn trains_without_protection() {
        let mut runner = PlainGpuRunner::new();
        let mut m = mini_mobilenet(8, 4, 1);
        let mut sgd = Sgd::new(0.05);
        let x = Tensor::from_fn(&[4, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.08);
        let labels = [0usize, 1, 2, 3];
        let first = runner.train_step(&mut m, &x, &labels, &mut sgd);
        let mut last = first;
        for _ in 0..10 {
            last = runner.train_step(&mut m, &x, &labels, &mut sgd);
        }
        assert!(last < first);
        assert_eq!(runner.stats().steps, 11);
    }
}
