//! Comparison baselines for DarKnight's evaluation.
//!
//! The paper compares against three systems; all are implemented here so
//! the benchmark harness exercises real code, not constants:
//!
//! * [`sgx_only`] — everything (linear *and* non-linear) computed inside
//!   the enclave simulator, with protected-memory accounting. This is
//!   the paper's baseline for every training speedup.
//! * [`slalom`] — Tramèr & Boneh's blinded inference (§7.2): additive
//!   stream-cipher blinding `x + r` with *precomputed* unblinding
//!   factors `W·r` sealed in untrusted memory, plus Freivalds-style
//!   integrity checks. Includes the demonstration of **why Slalom cannot
//!   train**: weight updates invalidate the precomputed factors.
//! * [`gpu_plain`] — non-private GPU execution (Table 4's upper bound).

pub mod gpu_plain;
pub mod sgx_only;
pub mod slalom;

pub use sgx_only::SgxOnlyRunner;
pub use slalom::{SlalomError, SlalomSession};
