//! Slalom (Tramèr & Boneh, ICLR'19) — blinded inference with
//! precomputed unblinding factors.
//!
//! Slalom blinds each activation with an additive one-time pad
//! `x̄ = x + r` in `F_p`, offloads `⟨W, x̄⟩` to the GPU and unblinds by
//! subtracting the **precomputed** `u = ⟨W, r⟩` inside the enclave. The
//! `(r, u)` pairs are generated ahead of time, sealed, and parked in
//! untrusted memory (the paper's §7.2 description: "Slalom's
//! implementation encrypts W·r and stores them outside of SGX memory").
//!
//! Two structural properties matter for DarKnight's comparison, and both
//! are reproduced faithfully:
//!
//! 1. **Precomputation is consumable**: each inference consumes one
//!    `(r, u)` pair per linear layer; an exhausted pool is an error.
//! 2. **Training is impossible**: `u = ⟨W, r⟩` is tied to the weights.
//!    After any weight update the pool is stale — detected here by a
//!    weight fingerprint — and recomputing `u` inside the enclave would
//!    be exactly the linear work Slalom set out to offload.
//!
//! Integrity ("Slalom+Integrity" in Fig. 6a) uses a Freivalds-style
//! random projection: the enclave keeps a secret vector `s`, precomputes
//! the projected weights once, and checks `sᵀ·ȳ = (sᵀW)·x̄` per layer.

use dk_field::{F25, FieldRng, P25, QuantConfig};
use dk_gpu::{GpuCluster, LinearJob};
use dk_linalg::conv::conv2d_forward;
use dk_linalg::{matmul_at_b, ops, Conv2dShape, Tensor};
use dk_nn::layers::{Conv2d, Dense, Layer};
use dk_nn::Sequential;
use dk_tee::crypto::SealedBlob;
use dk_tee::{Enclave, EpcConfig, UntrustedStore};
use std::collections::HashMap;
use std::sync::Arc;

/// Slalom failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlalomError {
    /// `precompute` was never run for this model.
    NotPrecomputed {
        /// The offending linear layer index.
        layer: u64,
    },
    /// The `(r, u)` pool for a layer ran dry.
    PrecomputeExhausted {
        /// The offending linear layer index.
        layer: u64,
    },
    /// The model weights changed since precomputation — the structural
    /// reason Slalom cannot train (§7.2).
    StaleWeights {
        /// The offending linear layer index.
        layer: u64,
    },
    /// The Freivalds check failed: the GPU returned a wrong product.
    IntegrityViolation {
        /// The offending linear layer index.
        layer: u64,
    },
    /// Quantization failure.
    Quant(dk_field::QuantError),
    /// Sealed blob failed authentication.
    Seal,
    /// Residual blocks are not supported by this Slalom port (the
    /// original targets VGG/MobileNet-style sequential models).
    UnsupportedLayer(&'static str),
}

impl std::fmt::Display for SlalomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlalomError::NotPrecomputed { layer } => {
                write!(f, "layer {layer} has no precomputed blinding factors")
            }
            SlalomError::PrecomputeExhausted { layer } => {
                write!(f, "layer {layer} exhausted its precomputed (r, W·r) pool")
            }
            SlalomError::StaleWeights { layer } => {
                write!(f, "layer {layer} weights changed since precomputation; Slalom cannot train")
            }
            SlalomError::IntegrityViolation { layer } => {
                write!(f, "Freivalds check failed at layer {layer}")
            }
            SlalomError::Quant(e) => write!(f, "quantization error: {e}"),
            SlalomError::Seal => write!(f, "sealed blinding factor failed authentication"),
            SlalomError::UnsupportedLayer(k) => write!(f, "slalom port does not support {k} layers"),
        }
    }
}

impl std::error::Error for SlalomError {}

impl From<dk_field::QuantError> for SlalomError {
    fn from(e: dk_field::QuantError) -> Self {
        SlalomError::Quant(e)
    }
}

/// Freivalds state for one layer.
#[derive(Debug, Clone)]
enum Freivalds {
    Dense {
        s: Vec<F25>,
        /// `sᵀ·W_q ∈ F^in`.
        proj: Vec<F25>,
    },
    Conv {
        s: Vec<F25>,
        /// `Σ_oc s_oc·W_q[oc]` — a single-output-channel filter.
        proj_filter: Tensor<F25>,
        shape: Conv2dShape,
    },
}

#[derive(Debug)]
struct LayerPrecompute {
    norm_w: f32,
    weights_q: Arc<Tensor<F25>>,
    weight_fingerprint: u64,
    blob_ids: Vec<u64>,
    next_blob: usize,
    freivalds: Option<Freivalds>,
    kind: LayerKind,
}

#[derive(Debug, Clone, Copy)]
enum LayerKind {
    Conv(Conv2dShape),
    Dense,
}

/// Counters for Slalom runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SlalomStats {
    /// Samples inferred.
    pub samples: u64,
    /// Sealed bytes fetched from untrusted memory at inference time.
    pub unblind_bytes_fetched: u64,
    /// Precomputed pairs consumed.
    pub pairs_consumed: u64,
    /// Freivalds checks run.
    pub freivalds_checks: u64,
}

/// A Slalom inference session.
#[derive(Debug)]
pub struct SlalomSession {
    quant: QuantConfig,
    rng: FieldRng,
    enclave: Enclave,
    store: UntrustedStore,
    cluster: GpuCluster,
    layers: HashMap<u64, LayerPrecompute>,
    integrity: bool,
    auto_refill: bool,
    next_blob_id: u64,
    stats: SlalomStats,
}

impl SlalomSession {
    /// Creates a session. `integrity` enables the Freivalds checks
    /// ("Slalom+Integrity" in the paper's Fig. 6a).
    pub fn new(cluster: GpuCluster, integrity: bool, seed: u64) -> Self {
        Self {
            quant: QuantConfig::new(6),
            rng: FieldRng::seed_from(seed),
            enclave: Enclave::new(EpcConfig::default(), b"slalom-enclave"),
            store: UntrustedStore::new(),
            cluster,
            layers: HashMap::new(),
            integrity,
            auto_refill: false,
            next_blob_id: 0,
            stats: SlalomStats::default(),
        }
    }

    /// Enables on-demand pool refills (benchmark convenience; a real
    /// deployment precomputes offline — refills at inference time are
    /// exactly the cost Slalom tries to avoid).
    pub fn with_auto_refill(mut self, on: bool) -> Self {
        self.auto_refill = on;
        self
    }

    /// Run statistics.
    pub fn stats(&self) -> SlalomStats {
        self.stats
    }

    /// Precomputes `pool_size` blinding pairs per linear layer. Must be
    /// re-run whenever the model weights change — which is exactly what
    /// makes the scheme unusable for training.
    ///
    /// # Errors
    ///
    /// Quantization failure or unsupported layers.
    pub fn precompute(&mut self, model: &mut Sequential, pool_size: usize) -> Result<(), SlalomError> {
        self.layers.clear();
        let mut id = 0u64;
        // Traverse top-level layers only (Slalom targets sequential CNNs).
        for layer in model.layers_mut() {
            match layer {
                Layer::Conv2d(conv) => {
                    let pc = self.precompute_conv(conv, pool_size)?;
                    self.layers.insert(id, pc);
                    id += 1;
                }
                Layer::Dense(dense) => {
                    let pc = self.precompute_dense(dense, pool_size)?;
                    self.layers.insert(id, pc);
                    id += 1;
                }
                Layer::Residual(_) => return Err(SlalomError::UnsupportedLayer("residual")),
                _ => {}
            }
        }
        Ok(())
    }

    fn quantize_weights(&self, w: &Tensor<f32>) -> Result<(Vec<F25>, f32), SlalomError> {
        let max_abs = w.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let norm = if max_abs > 0.0 { max_abs } else { 1.0 };
        let inv = 1.0 / norm;
        let mut out = Vec::with_capacity(w.len());
        for &v in w.as_slice() {
            out.push(self.quant.quantize::<P25>((v * inv) as f64)?);
        }
        Ok((out, norm))
    }

    fn fingerprint(w: &Tensor<f32>) -> u64 {
        // FNV-1a over the weight bit patterns.
        let mut h = 0xcbf29ce484222325u64;
        for v in w.as_slice() {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    fn seal_pair(&mut self, r: &[F25], u: &[F25]) -> u64 {
        let mut bytes = Vec::with_capacity((r.len() + u.len()) * 8 + 8);
        bytes.extend_from_slice(&(r.len() as u64).to_le_bytes());
        for v in r.iter().chain(u) {
            bytes.extend_from_slice(&v.value().to_le_bytes());
        }
        let blob = self.enclave.seal(&bytes);
        let id = self.next_blob_id;
        self.next_blob_id += 1;
        self.store.put(id, blob);
        id
    }

    fn unseal_pair(&mut self, blob: &SealedBlob) -> Result<(Vec<F25>, Vec<F25>), SlalomError> {
        let bytes = self.enclave.unseal(blob).map_err(|_| SlalomError::Seal)?;
        let r_len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let vals: Vec<F25> = bytes[8..]
            .chunks_exact(8)
            .map(|c| F25::new(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect();
        let (r, u) = vals.split_at(r_len);
        Ok((r.to_vec(), u.to_vec()))
    }

    fn precompute_conv(
        &mut self,
        conv: &Conv2d,
        pool_size: usize,
    ) -> Result<LayerPrecompute, SlalomError> {
        let shape = *conv.shape();
        let (wq, norm_w) = self.quantize_weights(conv.weights())?;
        let weights_q = Arc::new(Tensor::from_vec(&shape.weight_shape(), wq));
        // Input spatial size is discovered lazily at first inference; we
        // need it now for r. Defer r generation by storing empty pool and
        // filling on first use? Simpler: pool is generated per input
        // size on demand in `ensure_pool`.
        let freivalds = if self.integrity && shape.groups == 1 {
            let s: Vec<F25> = (0..shape.out_channels).map(|_| self.rng.uniform_nonzero::<P25>()).collect();
            let krows = shape.cg_in() * shape.kernel.0 * shape.kernel.1;
            let mut proj = vec![F25::ZERO; krows];
            for (oc, &s_oc) in s.iter().enumerate() {
                let filt = &weights_q.as_slice()[oc * krows..(oc + 1) * krows];
                for (p, &w) in proj.iter_mut().zip(filt) {
                    *p = F25::mul_add(s_oc, w, *p);
                }
            }
            let proj_filter = Tensor::from_vec(&[1, shape.cg_in(), shape.kernel.0, shape.kernel.1], proj);
            Some(Freivalds::Conv { s, proj_filter, shape })
        } else {
            None
        };
        let _ = pool_size; // pools are filled lazily per input geometry
        Ok(LayerPrecompute {
            norm_w,
            weights_q,
            weight_fingerprint: Self::fingerprint(conv.weights()),
            blob_ids: Vec::new(),
            next_blob: 0,
            freivalds,
            kind: LayerKind::Conv(shape),
        })
    }

    fn precompute_dense(
        &mut self,
        dense: &Dense,
        pool_size: usize,
    ) -> Result<LayerPrecompute, SlalomError> {
        let (in_f, out_f) = (dense.in_features(), dense.out_features());
        let (wq, norm_w) = self.quantize_weights(dense.weights())?;
        let weights_q = Arc::new(Tensor::from_vec(&[out_f, in_f], wq));
        let freivalds = if self.integrity {
            let s: Vec<F25> = (0..out_f).map(|_| self.rng.uniform_nonzero::<P25>()).collect();
            // proj = sᵀ·W ∈ F^in  (W stored [out, in])
            let proj = matmul_at_b(weights_q.as_slice(), &{
                let mut id = vec![F25::ZERO; out_f];
                id.copy_from_slice(&s);
                id
            }, in_f, out_f, 1);
            Some(Freivalds::Dense { s, proj })
        } else {
            None
        };
        let mut pc = LayerPrecompute {
            norm_w,
            weights_q,
            weight_fingerprint: Self::fingerprint(dense.weights()),
            blob_ids: Vec::new(),
            next_blob: 0,
            freivalds,
            kind: LayerKind::Dense,
        };
        // Dense geometry is static; fill the pool now.
        for _ in 0..pool_size {
            let r = self.rng.uniform_vec::<P25>(in_f);
            let u = {
                let rt = Tensor::from_vec(&[1, in_f], r.clone());
                LinearJob::DenseForward { weights: pc.weights_q.clone(), x: rt }
                    .execute()
                    .into_vec()
            };
            let id = self.seal_pair(&r, &u);
            pc.blob_ids.push(id);
        }
        Ok(pc)
    }

    /// Tops up a dense layer's pool on demand (auto-refill mode).
    fn ensure_dense_pool(&mut self, layer: u64, needed: usize) {
        let (in_f, weights_q) = {
            let Some(pc) = self.layers.get(&layer) else { return };
            let LayerKind::Dense = pc.kind else { return };
            (pc.weights_q.shape()[1], pc.weights_q.clone())
        };
        {
            let pc = self.layers.get_mut(&layer).expect("layer exists");
            if pc.blob_ids.len() - pc.next_blob >= needed {
                return;
            }
        }
        let mut new_ids = Vec::new();
        for _ in 0..needed {
            let r = self.rng.uniform_vec::<P25>(in_f);
            let rt = Tensor::from_vec(&[1, in_f], r.clone());
            let u = LinearJob::DenseForward { weights: weights_q.clone(), x: rt }
                .execute()
                .into_vec();
            new_ids.push(self.seal_pair(&r, &u));
        }
        let pc = self.layers.get_mut(&layer).expect("layer exists");
        pc.blob_ids.extend(new_ids);
    }

    /// Lazily fills a conv layer's pool once the input geometry is known.
    fn ensure_conv_pool(&mut self, layer: u64, hw: (usize, usize), needed: usize) {
        let (shape, weights_q) = {
            let pc = self.layers.get(&layer).expect("layer exists");
            let LayerKind::Conv(shape) = pc.kind else { return };
            (shape, pc.weights_q.clone())
        };
        let n = shape.in_channels * hw.0 * hw.1;
        let mut new_ids = Vec::new();
        {
            let pc = self.layers.get_mut(&layer).expect("layer exists");
            if pc.blob_ids.len() - pc.next_blob >= needed {
                return;
            }
        }
        for _ in 0..needed {
            let r = self.rng.uniform_vec::<P25>(n);
            let rt = Tensor::from_vec(&[1, shape.in_channels, hw.0, hw.1], r.clone());
            let u = conv2d_forward(&rt, &weights_q, &shape).into_vec();
            new_ids.push(self.seal_pair(&r, &u));
        }
        let pc = self.layers.get_mut(&layer).expect("layer exists");
        pc.blob_ids.extend(new_ids);
    }

    /// Blinded inference over a batch `[n, ...]`.
    ///
    /// # Errors
    ///
    /// Stale weights, exhausted pools, failed Freivalds checks, or
    /// unsupported layers.
    pub fn inference(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, SlalomError> {
        let n = x.shape()[0];
        self.stats.samples += n as u64;
        let mut h = x.clone();
        let mut id = 0u64;
        let layer_count = model.layers_mut().len();
        for li in 0..layer_count {
            let layer = &mut model.layers_mut()[li];
            h = match layer {
                Layer::Conv2d(conv) => {
                    let this = id;
                    id += 1;
                    self.blinded_conv(this, conv, &h)?
                }
                Layer::Dense(dense) => {
                    let this = id;
                    id += 1;
                    self.blinded_dense(this, dense, &h)?
                }
                Layer::Residual(_) => return Err(SlalomError::UnsupportedLayer("residual")),
                other => other.forward(&h, false),
            };
        }
        Ok(h)
    }

    fn quantize_input(&self, vals: &[f32]) -> Result<(Vec<F25>, f32), SlalomError> {
        let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let norm = if max_abs > 0.0 { max_abs } else { 1.0 };
        let inv = 1.0 / norm;
        let mut out = Vec::with_capacity(vals.len());
        for &v in vals {
            out.push(self.quant.quantize::<P25>((v * inv) as f64)?);
        }
        Ok((out, norm))
    }

    fn take_pair(&mut self, layer: u64) -> Result<(Vec<F25>, Vec<F25>), SlalomError> {
        let blob_id = {
            let pc = self.layers.get_mut(&layer).ok_or(SlalomError::NotPrecomputed { layer })?;
            if pc.next_blob >= pc.blob_ids.len() {
                return Err(SlalomError::PrecomputeExhausted { layer });
            }
            let b = pc.blob_ids[pc.next_blob];
            pc.next_blob += 1;
            b
        };
        let blob = self.store.get(blob_id).ok_or(SlalomError::Seal)?;
        self.stats.unblind_bytes_fetched += blob.len() as u64;
        self.stats.pairs_consumed += 1;
        self.unseal_pair(&blob)
    }

    fn blinded_conv(
        &mut self,
        layer: u64,
        conv: &mut Conv2d,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, SlalomError> {
        let n = x.shape()[0];
        let hw = (x.shape()[2], x.shape()[3]);
        {
            let pc = self.layers.get(&layer).ok_or(SlalomError::NotPrecomputed { layer })?;
            if pc.weight_fingerprint != Self::fingerprint(conv.weights()) {
                return Err(SlalomError::StaleWeights { layer });
            }
        }
        self.ensure_conv_pool(layer, hw, n);
        let (shape, weights_q, norm_w) = {
            let pc = self.layers.get(&layer).expect("checked above");
            let LayerKind::Conv(shape) = pc.kind else { unreachable!() };
            (shape, pc.weights_q.clone(), pc.norm_w)
        };
        let (xq, norm_x) = self.quantize_input(x.as_slice())?;
        let rest: usize = x.shape()[1..].iter().product();
        let (oh, ow) = shape.out_hw(hw);
        let mut y = Tensor::zeros(&[n, shape.out_channels, oh, ow]);
        for i in 0..n {
            let (r, u) = self.take_pair(layer)?;
            // Blind: x̄ = x_q + r.
            let mut blinded = xq[i * rest..(i + 1) * rest].to_vec();
            for (b, &rv) in blinded.iter_mut().zip(&r) {
                *b += rv;
            }
            let xt = Tensor::from_vec(&[1, shape.in_channels, hw.0, hw.1], blinded.clone());
            let job = LinearJob::ConvForward { weights: weights_q.clone(), x: xt, shape };
            let out = self.cluster.worker_mut(dk_gpu::WorkerId(0)).execute(&job);
            if let Some(Freivalds::Conv { s, proj_filter, shape }) =
                self.layers.get(&layer).and_then(|pc| pc.freivalds.clone()).as_ref()
            {
                self.stats.freivalds_checks += 1;
                // lhs = Σ_oc s_oc · ȳ[oc]  (per output pixel)
                let plane = oh * ow;
                let mut lhs = vec![F25::ZERO; plane];
                for (oc, &s_oc) in s.iter().enumerate() {
                    let src = &out.as_slice()[oc * plane..(oc + 1) * plane];
                    for (l, &v) in lhs.iter_mut().zip(src) {
                        *l = F25::mul_add(s_oc, v, *l);
                    }
                }
                // rhs = conv(x̄, Σ_oc s_oc·W[oc]) computed in the TEE.
                let xt2 = Tensor::from_vec(&[1, shape.in_channels, hw.0, hw.1], blinded);
                let proj_shape = Conv2dShape::new(
                    shape.in_channels,
                    1,
                    shape.kernel,
                    shape.stride,
                    shape.padding,
                    1,
                );
                let rhs = conv2d_forward(&xt2, proj_filter, &proj_shape);
                if lhs != rhs.as_slice() {
                    return Err(SlalomError::IntegrityViolation { layer });
                }
            }
            // Unblind: y_q = ȳ − u.
            let scale = norm_w * norm_x;
            for (dst, (&o, &uv)) in
                y.batch_item_mut(i).iter_mut().zip(out.as_slice().iter().zip(&u))
            {
                let clean = o - uv;
                *dst = self.quant.dequantize_product(clean) as f32 * scale;
            }
        }
        ops::add_bias_nchw(&mut y, conv.bias().as_slice());
        Ok(y)
    }

    fn blinded_dense(
        &mut self,
        layer: u64,
        dense: &mut Dense,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, SlalomError> {
        let n = x.shape()[0];
        let (in_f, out_f) = (dense.in_features(), dense.out_features());
        if self.auto_refill {
            self.ensure_dense_pool(layer, n);
        }
        let (weights_q, norm_w) = {
            let pc = self.layers.get(&layer).ok_or(SlalomError::NotPrecomputed { layer })?;
            if pc.weight_fingerprint != Self::fingerprint(dense.weights()) {
                return Err(SlalomError::StaleWeights { layer });
            }
            (pc.weights_q.clone(), pc.norm_w)
        };
        let (xq, norm_x) = self.quantize_input(x.as_slice())?;
        let mut y = Tensor::zeros(&[n, out_f]);
        for i in 0..n {
            let (r, u) = self.take_pair(layer)?;
            let mut blinded = xq[i * in_f..(i + 1) * in_f].to_vec();
            for (b, &rv) in blinded.iter_mut().zip(&r) {
                *b += rv;
            }
            let xt = Tensor::from_vec(&[1, in_f], blinded.clone());
            let job = LinearJob::DenseForward { weights: weights_q.clone(), x: xt };
            let out = self.cluster.worker_mut(dk_gpu::WorkerId(0)).execute(&job);
            if let Some(Freivalds::Dense { s, proj }) =
                self.layers.get(&layer).and_then(|pc| pc.freivalds.clone()).as_ref()
            {
                self.stats.freivalds_checks += 1;
                let lhs: F25 = s.iter().zip(out.as_slice()).map(|(&a, &b)| a * b).sum();
                let rhs: F25 = proj.iter().zip(&blinded).map(|(&a, &b)| a * b).sum();
                if lhs != rhs {
                    return Err(SlalomError::IntegrityViolation { layer });
                }
            }
            let scale = norm_w * norm_x;
            for (dst, (&o, &uv)) in
                y.batch_item_mut(i).iter_mut().zip(out.as_slice().iter().zip(&u))
            {
                let clean = o - uv;
                *dst = self.quant.dequantize_product(clean) as f32 * scale;
            }
        }
        ops::add_bias_rows(&mut y, dense.bias().as_slice());
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_gpu::Behavior;
    use dk_nn::arch::mini_vgg;
    use dk_nn::optim::Sgd;

    fn cluster(behavior: Behavior) -> GpuCluster {
        GpuCluster::with_behaviors(&[behavior], 41)
    }

    #[test]
    fn blinded_inference_matches_plain() {
        let mut slalom = SlalomSession::new(cluster(Behavior::Honest), false, 42);
        let mut model = mini_vgg(8, 4, 9);
        let mut plain = model.clone();
        slalom.precompute(&mut model, 8).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) * 0.1);
        let y_slalom = slalom.inference(&mut model, &x).unwrap();
        let y_plain = plain.forward(&x, false);
        let diff = y_slalom.max_abs_diff(&y_plain);
        assert!(diff < 0.05, "diff={diff}");
    }

    #[test]
    fn pool_exhaustion_detected() {
        let mut slalom = SlalomSession::new(cluster(Behavior::Honest), false, 43);
        let mut model = mini_vgg(8, 4, 10);
        slalom.precompute(&mut model, 2).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 5) as f32 * 0.1);
        // First batch consumes the dense pools (2 pairs per dense layer).
        slalom.inference(&mut model, &x).unwrap();
        let err = slalom.inference(&mut model, &x).unwrap_err();
        assert!(matches!(err, SlalomError::PrecomputeExhausted { .. }));
    }

    #[test]
    fn training_invalidates_precompute() {
        // THE §7.2 point: after one SGD step the precomputed W·r is
        // stale and Slalom refuses (a real deployment would silently
        // produce garbage).
        let mut slalom = SlalomSession::new(cluster(Behavior::Honest), false, 44);
        let mut model = mini_vgg(8, 4, 11);
        slalom.precompute(&mut model, 8).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 7) as f32 * 0.1);
        slalom.inference(&mut model, &x).unwrap();
        // One plain training step updates W.
        let mut sgd = Sgd::new(0.05);
        model.zero_grad();
        let logits = model.forward(&x, true);
        let (_, dl) = dk_nn::loss::softmax_cross_entropy(&logits, &[0, 1]);
        model.backward(&dl);
        sgd.step(&mut model);
        let err = slalom.inference(&mut model, &x).unwrap_err();
        assert!(matches!(err, SlalomError::StaleWeights { .. }));
    }

    #[test]
    fn freivalds_accepts_honest_gpu() {
        let mut slalom = SlalomSession::new(cluster(Behavior::Honest), true, 45);
        let mut model = mini_vgg(8, 4, 12);
        slalom.precompute(&mut model, 4).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 5) as f32 * 0.1);
        assert!(slalom.inference(&mut model, &x).is_ok());
        assert!(slalom.stats().freivalds_checks > 0);
    }

    #[test]
    fn freivalds_catches_malicious_gpu() {
        let mut slalom = SlalomSession::new(cluster(Behavior::SingleElement), true, 46);
        let mut model = mini_vgg(8, 4, 13);
        slalom.precompute(&mut model, 4).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 5) as f32 * 0.1);
        let err = slalom.inference(&mut model, &x).unwrap_err();
        assert!(matches!(err, SlalomError::IntegrityViolation { .. }));
    }

    #[test]
    fn without_freivalds_malice_is_undetected() {
        let mut slalom = SlalomSession::new(cluster(Behavior::SingleElement), false, 47);
        let mut model = mini_vgg(8, 4, 14);
        let mut plain = model.clone();
        slalom.precompute(&mut model, 4).unwrap();
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 5) as f32 * 0.1);
        let y = slalom.inference(&mut model, &x).unwrap();
        // No error, but outputs are wrong — the attack the check exists for.
        let diff = y.max_abs_diff(&plain.forward(&x, false));
        assert!(diff > 0.01, "diff={diff}");
    }

    #[test]
    fn unblinding_pairs_are_consumed_per_sample() {
        let mut slalom = SlalomSession::new(cluster(Behavior::Honest), false, 48);
        let mut model = mini_vgg(8, 4, 15);
        slalom.precompute(&mut model, 16).unwrap();
        let x = Tensor::from_fn(&[4, 3, 8, 8], |i| (i % 5) as f32 * 0.1);
        slalom.inference(&mut model, &x).unwrap();
        // 3 conv + 2 dense layers, 4 samples each.
        assert_eq!(slalom.stats().pairs_consumed, 5 * 4);
        assert!(slalom.stats().unblind_bytes_fetched > 0);
    }
}
