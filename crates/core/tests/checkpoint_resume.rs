//! Kill-and-resume determinism for sealed training checkpoints.
//!
//! The claim (ISSUE tentpole 2): a training run killed at *any*
//! large-batch step boundary and resumed from its sealed checkpoint —
//! by a fresh enclave, over a fresh fleet, even under a different
//! thread cap or an adversarial fleet — lands **bit-identical** to the
//! uninterrupted run: same per-step losses, same final weights, same
//! BatchNorm running statistics. This holds because every per-batch
//! mask/scheme derives from `(seed, batch#)` and the checkpoint carries
//! exactly `(seed, batch cursor)` plus the model/optimizer state.
//!
//! Lives in its own integration binary because the `DK_THREADS` cap
//! override is process-global.

use dk_core::virtual_batch::LargeBatchTrainer;
use dk_core::{DarknightConfig, DarknightError, DarknightSession, EngineOptions, PipelineEngine};
use dk_gpu::{Behavior, GpuCluster};
use dk_linalg::Tensor;
use dk_nn::layers::{BatchNorm2d, Conv2d, Dense, Flatten, Layer, Relu};
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_linalg::Conv2dShape;
use dk_tee::UntrustedStore;

const K: usize = 2;
const SEED: u64 = 0xC4C4;
const STEPS: u64 = 4;
const LR: f32 = 0.2;
const MOMENTUM: f32 = 0.9;

/// A small model *with* BatchNorm, so resume has running statistics to
/// get wrong.
fn model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::BatchNorm2d(BatchNorm2d::new(4)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 4 * 4, 3, seed ^ 1)),
    ])
}

fn sgd() -> Sgd {
    Sgd::new(LR).with_momentum(MOMENTUM)
}

fn config() -> DarknightConfig {
    DarknightConfig::new(K, 1).with_seed(SEED)
}

fn batch(n: usize) -> (Tensor<f32>, Vec<usize>) {
    let x = Tensor::from_fn(&[n, 2, 4, 4], |i| ((i % 13) as f32 - 6.0) * 0.07);
    let labels = (0..n).map(|i| i % 3).collect();
    (x, labels)
}

type BnStats = Vec<(Vec<f32>, Vec<f32>)>;

fn bn_stats(m: &mut Sequential) -> BnStats {
    let mut out = Vec::new();
    m.visit_leaf_layers_mut(&mut |l| {
        if let Layer::BatchNorm2d(bn) = l {
            let (mean, var) = bn.running_stats();
            out.push((mean.to_vec(), var.to_vec()));
        }
    });
    out
}

/// The uninterrupted reference: `STEPS` large-batch steps on one
/// trainer. Returns per-step mean losses, final params, final BN stats.
fn uninterrupted(cfg: DarknightConfig) -> (Vec<f32>, Vec<Tensor<f32>>, BnStats) {
    let cluster = GpuCluster::honest(cfg.workers_required(), 21);
    let session = DarknightSession::new(cfg, cluster).unwrap();
    let mut t = LargeBatchTrainer::new(session, 16);
    let mut m = model(7);
    let mut opt = sgd();
    let (x, labels) = batch(2 * K);
    let mut losses = Vec::new();
    for _ in 0..STEPS {
        losses.push(t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap().mean_loss());
    }
    (losses, m.snapshot_params(), bn_stats(&mut m))
}

#[test]
fn resume_at_every_step_boundary_is_bit_identical() {
    let cfg = config();
    let (ref_losses, ref_params, ref_bn) = uninterrupted(cfg);
    let (x, labels) = batch(2 * K);

    for kill_after in 1..STEPS {
        // Phase 1: train to the kill point, checkpointing every step.
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        let session = DarknightSession::new(cfg, cluster).unwrap();
        let mut t = LargeBatchTrainer::new(session, 16).with_checkpoint_interval(1);
        let mut m = model(7);
        let mut opt = sgd();
        for s in 0..kill_after {
            let loss = t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap().mean_loss();
            assert_eq!(loss.to_bits(), ref_losses[s as usize].to_bits());
        }
        let blob = t.latest_checkpoint().expect("interval-1 trainer has a checkpoint");
        drop(t); // the "kill": trainer, session, enclave, fleet all gone

        // Phase 2: a fresh enclave + fresh fleet resume from the blob.
        let cluster = GpuCluster::honest(cfg.workers_required(), 99); // different fleet seed
        let session = DarknightSession::new(cfg, cluster).unwrap();
        let mut m2 = model(1234); // wrong init, must be overwritten
        let mut opt2 = Sgd::new(LR).with_momentum(MOMENTUM);
        let mut t2 = LargeBatchTrainer::resume(session, 16, &blob, &mut m2, &mut opt2).unwrap();
        assert_eq!(t2.steps(), kill_after);
        for s in kill_after..STEPS {
            let loss = t2.train_large_batch(&mut m2, &x, &labels, &mut opt2).unwrap().mean_loss();
            assert_eq!(
                loss.to_bits(),
                ref_losses[s as usize].to_bits(),
                "loss diverged at step {s} after resume from step {kill_after}"
            );
        }
        assert_eq!(
            m2.max_param_diff(&ref_params),
            0.0,
            "weights diverged after resume from step {kill_after}"
        );
        assert_eq!(bn_stats(&mut m2), ref_bn, "BN stats diverged (kill at {kill_after})");
    }
}

#[test]
fn resume_under_a_different_thread_cap_is_bit_identical() {
    // Uninterrupted reference ran under whatever cap the process has;
    // kill at step 2, then resume PIPELINED under a serial cap — the
    // engine's sequential-equivalence guarantee says nothing changes.
    let cfg = config();
    let (ref_losses, ref_params, ref_bn) = uninterrupted(cfg);
    let (x, labels) = batch(2 * K);

    let cluster = GpuCluster::honest(cfg.workers_required(), 21);
    let session = DarknightSession::new(cfg, cluster).unwrap();
    let mut t = LargeBatchTrainer::new(session, 16).with_checkpoint_interval(2);
    let mut m = model(7);
    let mut opt = sgd();
    for _ in 0..2 {
        t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap();
    }
    let blob = t.latest_checkpoint().unwrap();
    drop(t);

    dk_linalg::set_max_threads(1);
    let cluster = GpuCluster::honest(cfg.workers_required(), 5);
    let engine = PipelineEngine::new(cfg, cluster, EngineOptions::default().with_lanes(2)).unwrap();
    let mut m2 = model(0);
    let mut opt2 = sgd();
    let resumed = LargeBatchTrainer::resume_pipelined(engine, 16, &blob, &mut m2, &mut opt2);
    let mut t2 = match resumed {
        Ok(t2) => t2,
        Err(e) => {
            dk_linalg::set_max_threads(0);
            panic!("resume_pipelined failed: {e}");
        }
    };
    let mut resumed_losses = Vec::new();
    for _ in 2..STEPS {
        match t2.train_large_batch(&mut m2, &x, &labels, &mut opt2) {
            Ok(r) => resumed_losses.push(r.mean_loss()),
            Err(e) => {
                dk_linalg::set_max_threads(0);
                panic!("resumed step failed: {e}");
            }
        }
    }
    dk_linalg::set_max_threads(0);
    let expected: Vec<u32> = ref_losses[2..].iter().map(|l| l.to_bits()).collect();
    let got: Vec<u32> = resumed_losses.iter().map(|l| l.to_bits()).collect();
    assert_eq!(got, expected, "pipelined resume under serial cap diverged");
    assert_eq!(m2.max_param_diff(&ref_params), 0.0);
    assert_eq!(bn_stats(&mut m2), ref_bn);
}

#[test]
fn resume_with_an_adversarial_fleet_is_bit_identical_and_still_detects() {
    // Integrity + recovery on; worker 0 tampers in both halves. The
    // TEE detects and repairs every batch, so training results are the
    // honest results — and the resumed half must re-detect on its own.
    let cfg = config().with_integrity(true).with_recovery(true);
    let adversarial = |fleet_seed: u64| {
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[0] = Behavior::AdditiveNoise;
        GpuCluster::with_behaviors(&behaviors, fleet_seed)
    };
    let (x, labels) = batch(2 * K);

    // Uninterrupted adversarial run.
    let session = DarknightSession::new(cfg, adversarial(31)).unwrap();
    let mut t = LargeBatchTrainer::new(session, 16).with_checkpoint_interval(1);
    let mut m = model(7);
    let mut opt = sgd();
    let mut ref_losses = Vec::new();
    let mut blob_at_2 = None;
    for s in 0..STEPS {
        ref_losses.push(t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap().mean_loss());
        if s == 1 {
            blob_at_2 = t.latest_checkpoint();
        }
    }
    assert!(!t.session().quarantined().is_empty(), "tampering must be caught");
    let ref_params = m.snapshot_params();

    // Killed at step 2, resumed over a *fresh* adversarial fleet.
    let session = DarknightSession::new(cfg, adversarial(87)).unwrap();
    let mut m2 = model(7);
    let mut opt2 = sgd();
    let mut t2 =
        LargeBatchTrainer::resume(session, 16, &blob_at_2.unwrap(), &mut m2, &mut opt2).unwrap();
    for s in 2..STEPS {
        let loss = t2.train_large_batch(&mut m2, &x, &labels, &mut opt2).unwrap().mean_loss();
        assert_eq!(loss.to_bits(), ref_losses[s as usize].to_bits());
    }
    assert_eq!(m2.max_param_diff(&ref_params), 0.0);
    assert!(
        !t2.session().quarantined().is_empty(),
        "the resumed session must re-detect the tamperer itself"
    );
}

#[test]
fn tampered_checkpoint_blob_is_rejected() {
    let cfg = config();
    let session = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 21)).unwrap();
    let mut t = LargeBatchTrainer::new(session, 16);
    let mut m = model(7);
    let mut opt = sgd();
    let (x, labels) = batch(2 * K);
    t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap();
    let blob = t.checkpoint(&mut m, &opt);

    // Route the blob through an untrusted store that flips one byte.
    let mut store = UntrustedStore::new();
    store.put(0, blob);
    assert!(store.tamper(0, 17));
    let tampered = store.get(0).unwrap();

    let session = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 21)).unwrap();
    let mut m2 = model(7);
    let mut opt2 = sgd();
    let err = LargeBatchTrainer::resume(session, 16, &tampered, &mut m2, &mut opt2).unwrap_err();
    assert!(
        matches!(err, DarknightError::Enclave(_) | DarknightError::Checkpoint { .. }),
        "got {err:?}"
    );
}

#[test]
fn checkpoint_config_mismatch_is_rejected_with_a_typed_error() {
    let cfg = config();
    let session = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 21)).unwrap();
    let mut t = LargeBatchTrainer::new(session, 16);
    let mut m = model(7);
    let mut opt = sgd();
    let (x, labels) = batch(2 * K);
    t.train_large_batch(&mut m, &x, &labels, &mut opt).unwrap();
    let blob = t.checkpoint(&mut m, &opt);

    // A session with a different seed derives different mask streams —
    // resuming into it would silently break determinism, so it must be
    // refused outright.
    let other = DarknightConfig::new(K, 1).with_seed(SEED ^ 1);
    let session =
        DarknightSession::new(other, GpuCluster::honest(other.workers_required(), 21)).unwrap();
    let mut m2 = model(7);
    let mut opt2 = sgd();
    let err = LargeBatchTrainer::resume(session, 16, &blob, &mut m2, &mut opt2).unwrap_err();
    assert!(matches!(err, DarknightError::Checkpoint { .. }), "got {err:?}");
}
