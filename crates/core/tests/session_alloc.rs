//! The zero-allocation invariant of the *private* steady-state path,
//! enforced by a counting global allocator.
//!
//! `dk_nn`'s `alloc_regression` covers the plain model hot path; this
//! binary covers the full DarKnight session round-trip — quantize,
//! mask, dispatch to the worker fleet, decode, dequantize — and asserts
//! that a warm serving step (step plan installed, outputs recycled)
//! performs **zero** heap allocations, and a warm training step a small
//! bounded constant.
//!
//! Everything runs inside one `#[test]` so no concurrent test thread
//! can pollute the counters.

use dk_core::{DarknightConfig, DarknightSession, StepPlan};
use dk_gpu::GpuCluster;
use dk_linalg::workspace::{alloc_counts as counts, CountingAllocator};
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_nn::optim::Sgd;
use std::sync::Arc;

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn private_session_steady_state_allocation_budget() {
    // Kernel threading spawns scoped threads (which allocate); the
    // invariant under test is the single-lane hot path.
    dk_linalg::set_max_threads(1);

    // ----- serving: exactly zero allocations once warm ----------------
    {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let quant = cfg.quant();
        let fleet = GpuCluster::honest(cfg.workers_required(), 41);
        let mut session = DarknightSession::new(cfg, fleet).expect("session");
        let mut model = mini_vgg(8, 4, 42);
        let plan = StepPlan::extract(&model, quant).expect("plan");
        session.set_step_plan(Some(Arc::new(plan)));
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
        for _ in 0..3 {
            let y = session.private_inference(&mut model, &x).expect("warmup");
            session.recycle_output(y);
        }
        let misses_warm = session.workspace_stats().misses;
        let (a0, b0) = counts();
        for _ in 0..5 {
            let y = session.private_inference(&mut model, &x).expect("steady");
            session.recycle_output(y);
        }
        let (a1, b1) = counts();
        assert_eq!(
            a1 - a0,
            0,
            "warm private inference must be allocation-free \
             (got {} allocs / {} bytes over 5 steps)",
            a1 - a0,
            b1 - b0
        );
        assert_eq!(
            session.workspace_stats().misses,
            misses_warm,
            "warm session workspace must not miss"
        );
    }

    // ----- training: a bounded constant per step ----------------------
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let fleet = GpuCluster::honest(cfg.workers_required(), 43);
    let mut session = DarknightSession::new(cfg, fleet).expect("session");
    let mut model = mini_vgg(8, 4, 44);
    let mut sgd = Sgd::new(0.05).with_momentum(0.9);
    let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.06);
    let labels = [1usize, 3];
    for _ in 0..6 {
        session.train_step(&mut model, &x, &labels, &mut sgd).expect("warmup");
    }
    let mut deltas = [0u64; 8];
    for d in deltas.iter_mut() {
        let (a0, _) = counts();
        session.train_step(&mut model, &x, &labels, &mut sgd).expect("step");
        let (a1, _) = counts();
        *d = a1 - a0;
    }
    let first = deltas[0];
    assert!(
        deltas.iter().all(|&d| d == first),
        "private training-step allocation count must be a steady constant \
         (got {deltas:?})"
    );
    // The constant covers work that is inherently per-step: the
    // stored-encoding clone handed to the workers (the paper keeps
    // encoded inputs resident in GPU memory for the backward pass), the
    // adversary-view audit copies, β-row staging and bias-gradient
    // tensors. Measured at 298/step today; the bound leaves a little
    // headroom while catching any drift back toward the old per-step
    // thousands.
    assert!(first <= 320, "private training step allocates too much: {first} per step");
}
