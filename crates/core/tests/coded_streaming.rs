//! Streamed scheme ≡ definition, bit-for-bit.
//!
//! The encode/decode fast path streams the coded combines (one pass
//! over the stacked rows, fused RNG noise, fused §4.4 check) — every
//! output bit must still match the scheme's textbook definition,
//! reconstructed here directly from the white-box coefficient views:
//!
//! * `encode` / `encode_row` vs `x̄_j = Σ_i Aᵀ[j][i]·x_i + Σ_t
//!   Aᵀ[j][K+t]·r_t` evaluated per-MAC in ascending order;
//! * `encode_fused_ws` vs materialize-the-noise-then-encode, **and**
//!   the RNG must land on the identical stream position (the fused
//!   chunks consume exactly the draws the materialized rows would);
//! * `decode_forward` vs `Y = (A_sq⁻¹)ᵀ·Ȳ` plus the
//!   `w = A_sq⁻¹·a_last` redundant-equation count — including that a
//!   tampered worker output still raises `IntegrityViolation` with the
//!   exact mismatch count;
//! * `decode_backward` vs the γ-weighted sum;
//! * all of it on workspaces whose pooled buffers were deliberately
//!   poisoned with garbage, since every hot-path buffer is recycled.
//!
//! Shapes sweep `n ∈ {0, 1}` and a deterministic case past the 2^14
//! `F25` fold boundary. One `#[test]` drives the property functions
//! sequentially (the linalg thread cap is process-global and other
//! integration binaries churn it).

use dk_core::error::DarknightError;
use dk_core::scheme::EncodingScheme;
use dk_field::{F25, FieldRng, P25};
use dk_linalg::Workspace;
use proptest::prelude::*;

fn poisoned_ws(k: usize, m: usize, integrity: bool, n: usize) -> Workspace {
    // Seed the pool with garbage-filled buffers of exactly the sizes the
    // streamed paths recycle; a correct implementation must be
    // insensitive to stale contents.
    let mut ws = Workspace::new();
    let s_cols = k + m + usize::from(integrity);
    for _ in 0..s_cols + 2 {
        ws.give(vec![F25::new(0x1ABBA6E); n.max(1)]);
    }
    ws.give(vec![vec![F25::new(7); n.max(1)]; s_cols]);
    ws.give(vec![F25::new(13); 64]); // noise-chunk sized odd buffer
    ws
}

fn gen_rows(r: &mut FieldRng, rows: usize, n: usize) -> Vec<Vec<F25>> {
    (0..rows)
        .map(|_| {
            let mut v = r.uniform_vec::<P25>(n);
            // Sprinkle zeros so the kernels' zero-skip is exercised.
            for x in v.iter_mut().step_by(7) {
                *x = F25::ZERO;
            }
            v
        })
        .collect()
}

/// `x̄_j` from the definition, per-MAC in ascending stacked-row order.
fn naive_encoding(scheme: &EncodingScheme, j: usize, inputs: &[Vec<F25>], noise: &[Vec<F25>]) -> Vec<F25> {
    let n = inputs.first().map_or(0, Vec::len);
    let crow = scheme.a_transpose().row(j);
    let mut out = vec![F25::ZERO; n];
    for (p, row) in inputs.iter().chain(noise).enumerate() {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += crow[p] * v;
        }
    }
    out
}

fn scheme_for(seed: u64, k: usize, m: usize, integrity: bool) -> (EncodingScheme, FieldRng) {
    let mut r = FieldRng::seed_from(seed);
    let scheme = EncodingScheme::generate(k, m, integrity, &mut r);
    (scheme, r)
}

/// encode / encode_ws / encode_row_ws ≡ the definition, on a poisoned
/// workspace.
fn assert_encode_matches(seed: u64, k: usize, m: usize, integrity: bool, n: usize) {
    let (scheme, mut r) = scheme_for(seed, k, m, integrity);
    let inputs = gen_rows(&mut r, k, n);
    let noise = gen_rows(&mut r, m, n);
    let want: Vec<Vec<F25>> =
        (0..scheme.num_encodings()).map(|j| naive_encoding(&scheme, j, &inputs, &noise)).collect();
    assert_eq!(scheme.encode(&inputs, &noise), want, "encode at k={k} m={m} n={n}");
    let mut ws = poisoned_ws(k, m, integrity, n);
    assert_eq!(
        scheme.encode_ws(&inputs, &noise, &mut ws),
        want,
        "encode_ws (poisoned ws) at k={k} m={m} n={n}"
    );
    for (j, wj) in want.iter().enumerate() {
        assert_eq!(
            &scheme.encode_row_ws(j, &inputs, &noise, &mut ws),
            wj,
            "encode_row_ws at j={j} k={k} m={m} n={n}"
        );
    }
}

/// encode_fused_ws ≡ materialize + encode_ws, and the RNG stream lands
/// on the identical position.
fn assert_fused_encode_matches(seed: u64, k: usize, m: usize, integrity: bool, n: usize) {
    let (scheme, mut r) = scheme_for(seed, k, m, integrity);
    let inputs = gen_rows(&mut r, k, n);
    let mut rng_mat = FieldRng::seed_from(seed ^ 0x4e4f_4953);
    let mut rng_fused = rng_mat.clone();
    let noise: Vec<Vec<F25>> = (0..m).map(|_| rng_mat.uniform_vec::<P25>(n)).collect();
    let want = scheme.encode_ws(&inputs, &noise, &mut Workspace::new());
    let mut ws = poisoned_ws(k, m, integrity, n);
    let got = scheme.encode_fused_ws(&inputs, &mut rng_fused, &mut ws);
    assert_eq!(got, want, "fused encode at k={k} m={m} n={n}");
    for d in 0..4 {
        assert_eq!(
            rng_fused.uniform::<P25>(),
            rng_mat.uniform::<P25>(),
            "RNG stream diverged {d} draws after fused encode at k={k} m={m} n={n}"
        );
    }
}

/// decode_forward ≡ `(A_sq⁻¹)ᵀ·Ȳ` + the redundant-equation count, with
/// tampering detected exactly.
fn assert_decode_forward_matches(seed: u64, k: usize, m: usize, integrity: bool, n: usize, taint: usize) {
    let (scheme, mut r) = scheme_for(seed, k, m, integrity);
    let s_sq = k + m;
    let mut outputs = gen_rows(&mut r, scheme.num_encodings(), n);
    if integrity {
        // Make the redundant row consistent: ȳ_last = Σ_p w_p·ȳ_p.
        let w = scheme.integrity_weights().to_vec();
        let last = scheme.num_encodings() - 1;
        outputs[last] = (0..n)
            .map(|j| (0..s_sq).map(|p| w[p] * outputs[p][j]).fold(F25::ZERO, |a, b| a + b))
            .collect();
    }
    let inv_t = scheme.a_sq_inv_transpose();
    let want: Vec<Vec<F25>> = (0..k)
        .map(|i| {
            let crow = inv_t.row(i);
            let mut out = vec![F25::ZERO; n];
            for p in 0..s_sq {
                for (o, &v) in out.iter_mut().zip(&outputs[p]) {
                    *o += crow[p] * v;
                }
            }
            out
        })
        .collect();
    let mut ws = poisoned_ws(k, m, integrity, n);
    assert_eq!(
        scheme.decode_forward_ws(&outputs, 7, &mut ws).expect("consistent outputs decode"),
        want,
        "decode_forward at k={k} m={m} n={n}"
    );
    if integrity && n > 0 {
        // Tamper `taint` distinct positions of one worker's output: the
        // fused check must report exactly that many mismatches.
        let hits = taint.clamp(1, n);
        for j in 0..hits {
            outputs[s_sq / 2][j * (n / hits).max(1)] += F25::ONE;
        }
        // Each tampered ȳ column perturbs the redundant equation at
        // that column (w entries are nonzero with overwhelming
        // probability for sampled schemes; the seed sweep keeps this
        // deterministic per case).
        match scheme.decode_forward_ws(&outputs, 9, &mut ws) {
            Err(DarknightError::IntegrityViolation { layer_id, phase, mismatches }) => {
                assert_eq!((layer_id, phase), (9, "forward"));
                assert!(
                    mismatches >= 1 && mismatches <= hits,
                    "expected 1..={hits} mismatches, got {mismatches}"
                );
            }
            other => panic!("tampered decode must fail, got {other:?}"),
        }
    }
}

/// decode_backward ≡ the γ-weighted sum.
fn assert_decode_backward_matches(seed: u64, k: usize, m: usize, integrity: bool, n: usize) {
    let (scheme, mut r) = scheme_for(seed, k, m, integrity);
    let s_sq = k + m;
    let eqs = gen_rows(&mut r, scheme.num_encodings(), n);
    let gamma = scheme.gamma_coeffs();
    let mut want = vec![F25::ZERO; n];
    for (j, eq) in eqs.iter().take(s_sq).enumerate() {
        for (o, &v) in want.iter_mut().zip(eq) {
            *o += gamma[j] * v;
        }
    }
    assert_eq!(scheme.decode_backward(&eqs), want, "decode_backward at k={k} m={m} n={n}");
    let mut ws = poisoned_ws(k, m, integrity, n);
    assert_eq!(
        scheme.decode_backward_ws(&eqs, &mut ws),
        want,
        "decode_backward_ws (poisoned ws) at k={k} m={m} n={n}"
    );
}

fn check_all(seed: u64, k: usize, m: usize, integrity: bool, n: usize, taint: usize) {
    assert_encode_matches(seed, k, m, integrity, n);
    assert_fused_encode_matches(seed, k, m, integrity, n);
    assert_decode_forward_matches(seed, k, m, integrity, n, taint);
    assert_decode_backward_matches(seed, k, m, integrity, n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Shape sweep including the degenerate widths n ∈ {0, 1}.
    fn streamed_scheme_matches_definition(
        seed in any::<u64>(),
        k in 1usize..5,
        m in 1usize..4,
        integrity in any::<bool>(),
        n in 0usize..48,
        taint in 1usize..6,
    ) {
        check_all(seed, k, m, integrity, n, taint);
    }
}

#[test]
fn streamed_scheme_is_bit_identical_to_definition() {
    streamed_scheme_matches_definition();
    // Deterministic wide case: n past the 2^14 F25 fold boundary, so
    // the streamed column chunks cross a Barrett-fold-relevant width
    // and the column fan-out heuristic actually engages.
    dk_linalg::set_max_threads(1);
    check_all(0xDEC0DE, 4, 2, true, (1 << 14) + 33, 3);
    dk_linalg::set_max_threads(4);
    check_all(0xDEC0DE, 4, 2, true, (1 << 14) + 33, 3);
    dk_linalg::set_max_threads(0);
}
