//! Serial-vs-threaded determinism of the encode/decode path.
//!
//! The streaming coded-combine kernels partition output columns when
//! the kernel policy would fan out; serial and threaded runs must be
//! bit-identical.
//! This lives in its own integration binary because the thread-cap
//! override is process-global and unit tests run concurrently.

use dk_core::scheme::EncodingScheme;
use dk_field::{F25, FieldRng, P25};

#[test]
fn threaded_encode_decode_bit_identical_to_serial() {
    // Large enough that the streaming coded combine fans out across
    // column chunks (MACs ≥ 2^18) when the thread cap allows it.
    let mut r = FieldRng::seed_from(0xC0DE);
    let (k, m, n) = (3, 2, 32_768);
    let scheme = EncodingScheme::generate(k, m, true, &mut r);
    let inputs: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(n)).collect();
    let noise: Vec<Vec<F25>> = (0..m).map(|_| r.uniform_vec::<P25>(n)).collect();
    dk_linalg::set_max_threads(1);
    let enc_serial = scheme.encode(&inputs, &noise);
    let dec_serial = scheme.decode_forward(&enc_serial, 0).unwrap();
    dk_linalg::set_max_threads(4);
    assert_eq!(scheme.encode(&inputs, &noise), enc_serial);
    assert_eq!(scheme.decode_forward(&enc_serial, 0).unwrap(), dec_serial);
    dk_linalg::set_max_threads(0);
    // Identity-op round trip: decoding the encodings recovers the inputs.
    assert_eq!(dec_serial, inputs);
}
