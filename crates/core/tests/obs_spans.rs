//! Session-level tracing: the spans one pipelined batch records must
//! spell out the protocol order — quantize → encode → dispatch → decode
//! per offloaded layer — and carry the right (batch, layer) labels.
//!
//! Runs as its own integration binary: span rings and the observability
//! switch are process-global, so exact-sequence assertions need a
//! process to themselves.

use dk_core::engine::{EngineOptions, PipelineEngine};
use dk_core::DarknightConfig;
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use dk_nn::Sequential;
use dk_obs::{trace, Stage};

fn model() -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(dk_linalg::Conv2dShape::simple(2, 4, 3, 1, 1), 5)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, 6)),
    ])
}

#[test]
fn pipelined_batch_spans_follow_protocol_order() {
    dk_obs::enable();
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(41);
    let fleet = GpuCluster::honest(cfg.workers_required(), 17);
    let inputs: Vec<Tensor<f32>> = (0..4)
        .map(|b| {
            Tensor::from_fn(&[2, 2, 6, 6], move |i| (((i + b) % 11) as f32 - 5.0) * 0.05)
        })
        .collect();
    let mut engine =
        PipelineEngine::new(cfg, fleet, EngineOptions::default().with_lanes(2)).unwrap();
    let outcomes = engine.infer_batches(&model(), &inputs, false).unwrap();
    assert_eq!(outcomes.len(), inputs.len());

    let spans = trace::snapshot();
    assert!(!spans.is_empty(), "enabled tracing must have recorded spans");
    let first_batch = spans.iter().map(|s| s.batch).min().unwrap();

    // The model has two offloaded linear layers (ordinals 0 and 1). A
    // batch runs start-to-finish on one lane, so per (batch, layer) the
    // lane-local sequence numbers give the true execution order.
    for layer in [0u64, 1] {
        let mut stage_seq: Vec<_> = spans
            .iter()
            .filter(|s| s.batch == first_batch && s.layer == layer)
            .map(|s| (s.seq, s.stage))
            .collect();
        stage_seq.sort_by_key(|&(seq, _)| seq);
        let stages: Vec<Stage> = stage_seq.into_iter().map(|(_, st)| st).collect();
        assert_eq!(
            stages,
            vec![Stage::Quantize, Stage::Encode, Stage::Dispatch, Stage::Decode],
            "batch {first_batch} layer {layer} recorded out-of-order stages"
        );
    }

    // The honest run never repairs, so no Repair span may appear.
    assert!(spans.iter().all(|s| s.stage != Stage::Repair));
}
