//! Property + regression suite: the pipelined engine is **bit-for-bit**
//! identical to sequential execution.
//!
//! DarKnight's §7.1 pipelining is only admissible if overlap changes
//! nothing observable: same outputs, same weights after training, same
//! integrity verdicts — whether the fleet is honest or actively
//! tampering, including the recovery extension's `Repaired` path. The
//! engine earns this via stateless per-(batch, layer) seed derivation
//! and batch-ordered reductions; this suite is the enforcement.

use dk_core::engine::{compare_inference_modes, compare_training_modes, EngineOptions, PipelineEngine};
use dk_core::virtual_batch::LargeBatchTrainer;
use dk_core::{DarknightConfig, DarknightError, DarknightSession};
use dk_gpu::{Behavior, GpuCluster};
use dk_linalg::Tensor;
use dk_nn::arch::mini_resnet;
use dk_nn::layers::{Conv2d, Dense, Flatten, Layer, Relu};
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use proptest::prelude::*;

fn small_model(seed: u64) -> Sequential {
    Sequential::new(vec![
        Layer::Conv2d(Conv2d::new(dk_linalg::Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
    ])
}

fn batches(n: usize, k: usize, seed: u64) -> Vec<Tensor<f32>> {
    (0..n)
        .map(|b| {
            Tensor::from_fn(&[k, 2, 6, 6], move |i| {
                let h = (i as u64 + 17 * b as u64).wrapping_mul(seed * 2 + 1);
                ((h % 23) as f32 - 11.0) * 0.05
            })
        })
        .collect()
}

fn training_batch(n: usize, seed: u64) -> (Tensor<f32>, Vec<usize>) {
    let x = Tensor::from_fn(&[n, 2, 6, 6], move |i| {
        (((i as u64).wrapping_mul(seed + 3) % 19) as f32 - 9.0) * 0.06
    });
    let labels = (0..n).map(|i| i % 3).collect();
    (x, labels)
}

// ---------------------------------------------------------------------
// Deterministic regressions
// ---------------------------------------------------------------------

/// Shared-scale inference: pipelined outputs are bitwise the sequential
/// session's, across several lanes' worth of in-flight batches.
#[test]
fn inference_bitwise_equal_honest() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(5);
    let fleet = GpuCluster::honest(cfg.workers_required(), 11);
    let model = small_model(6);
    let inputs = batches(9, 2, 7);
    for lanes in [1usize, 2, 3] {
        let (_, diff) = compare_inference_modes(
            cfg,
            &fleet,
            &model,
            &inputs,
            EngineOptions::default().with_lanes(lanes),
        )
        .unwrap();
        assert_eq!(diff, 0.0, "lanes={lanes}: pipelined inference diverged");
    }
}

/// Per-sample (serving-mode) inference: outputs and repaired flags are
/// identical to running the same numbered batches sequentially.
#[test]
fn per_sample_inference_bitwise_equal() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(9);
    let fleet = GpuCluster::honest(cfg.workers_required(), 13);
    let model = small_model(8);
    let inputs = batches(6, 2, 3);

    let mut m_seq = model.clone();
    let mut session = DarknightSession::new(cfg, fleet.fork(cfg.seed())).unwrap();
    let mut expected = Vec::new();
    for x in &inputs {
        expected.push(session.private_inference_per_sample(&mut m_seq, x).unwrap());
    }

    let mut engine =
        PipelineEngine::new(cfg, fleet.fork(cfg.seed()), EngineOptions::default().with_lanes(3))
            .unwrap();
    let outcomes = engine.infer_batches(&model, &inputs, true).unwrap();
    for (e, o) in expected.iter().zip(&outcomes) {
        assert!(!o.repaired);
        assert_eq!(e.as_slice(), o.output.as_ref().unwrap().as_slice());
    }
}

/// Multi-epoch training on a BatchNorm-bearing residual model: the
/// pipelined trainer's weights *and* BN running statistics must land
/// bitwise on the sequential result (running averages are
/// order-sensitive — the engine replays them in batch order).
#[test]
fn training_with_batchnorm_bitwise_equal_across_epochs() {
    let cfg = DarknightConfig::new(2, 1).with_seed(23);
    let fleet = GpuCluster::honest(cfg.workers_required(), 29);
    let model = mini_resnet(8, 4, 31);
    let x = Tensor::from_fn(&[8, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let (_, diff) = compare_training_modes(
        cfg,
        &fleet,
        &model,
        &x,
        &labels,
        3,
        0.03,
        EngineOptions::default().with_lanes(3),
    )
    .unwrap();
    assert_eq!(diff, 0.0, "BN-bearing pipelined training diverged");

    // Eval-mode forward uses the running statistics — equality there is
    // the BN-replay proof (compare_training_modes only compares
    // parameters, which exclude running stats).
    let mut seq_trainer =
        LargeBatchTrainer::new(DarknightSession::new(cfg, fleet.fork(cfg.seed())).unwrap(), 512);
    let engine = PipelineEngine::new(
        cfg,
        fleet.fork(cfg.seed()),
        EngineOptions::default().with_lanes(2),
    )
    .unwrap();
    let mut pipe_trainer = LargeBatchTrainer::pipelined(engine, 512);
    let mut m_seq = model.clone();
    let mut m_pipe = model.clone();
    let mut sgd_a = Sgd::new(0.03);
    let mut sgd_b = Sgd::new(0.03);
    for _ in 0..2 {
        seq_trainer.train_large_batch(&mut m_seq, &x, &labels, &mut sgd_a).unwrap();
        pipe_trainer.train_large_batch(&mut m_pipe, &x, &labels, &mut sgd_b).unwrap();
    }
    let eval_seq = m_seq.forward(&x, false);
    let eval_pipe = m_pipe.forward(&x, false);
    assert_eq!(
        eval_seq.as_slice(),
        eval_pipe.as_slice(),
        "BN running statistics diverged between modes"
    );
}

/// The `Repaired` path: an actively tampering worker under recovery
/// mode. Training must (a) succeed in both modes, (b) produce bitwise
/// equal weights (repairs land on TEE ground truth), and (c) quarantine
/// the same workers in the same batch order.
#[test]
fn tampering_with_recovery_bitwise_equal_and_same_quarantine() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(41);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::AdditiveNoise;
    let fleet = GpuCluster::with_behaviors(&behaviors, 43);
    let model = small_model(44);
    let (x, labels) = training_batch(6, 45);

    let mut seq_trainer =
        LargeBatchTrainer::new(DarknightSession::new(cfg, fleet.fork(cfg.seed())).unwrap(), 256);
    let engine = PipelineEngine::new(
        cfg,
        fleet.fork(cfg.seed()),
        EngineOptions::default().with_lanes(2),
    )
    .unwrap();
    let mut pipe_trainer = LargeBatchTrainer::pipelined(engine, 256);
    let mut m_seq = model.clone();
    let mut m_pipe = model.clone();
    let mut sgd_a = Sgd::new(0.05);
    let mut sgd_b = Sgd::new(0.05);
    for _ in 0..2 {
        let ra = seq_trainer.train_large_batch(&mut m_seq, &x, &labels, &mut sgd_a).unwrap();
        let rb = pipe_trainer.train_large_batch(&mut m_pipe, &x, &labels, &mut sgd_b).unwrap();
        assert_eq!(ra.losses, rb.losses);
    }
    assert_eq!(m_seq.max_param_diff(&m_pipe.snapshot_params()), 0.0);
    let seq_q = seq_trainer.session().quarantined().to_vec();
    let pipe_q = pipe_trainer.engine().unwrap().quarantined().to_vec();
    assert!(!seq_q.is_empty(), "recovery should have caught the liar");
    assert_eq!(seq_q, pipe_q, "quarantine lists must match in batch order");
    assert!(seq_trainer.session().stats().recoveries > 0);
    assert!(pipe_trainer.engine().unwrap().stats().recoveries > 0);
}

/// Serving-style repaired verdicts: per-sample inference over a
/// tampering fleet with recovery reports `repaired` on exactly the
/// batches the sequential session repairs (here: all of them), with
/// bitwise equal outputs.
#[test]
fn repaired_inference_outcomes_match_sequential() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(51);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[1] = Behavior::SingleElement;
    let fleet = GpuCluster::with_behaviors(&behaviors, 53);
    let model = small_model(54);
    let inputs = batches(4, 2, 55);

    let mut m_seq = model.clone();
    let mut session = DarknightSession::new(cfg, fleet.fork(cfg.seed())).unwrap();
    let mut expected = Vec::new();
    for x in &inputs {
        let rec0 = session.stats().recoveries;
        let y = session.private_inference_per_sample(&mut m_seq, x).unwrap();
        expected.push((y, session.stats().recoveries > rec0));
    }

    let mut engine =
        PipelineEngine::new(cfg, fleet.fork(cfg.seed()), EngineOptions::default().with_lanes(2))
            .unwrap();
    let outcomes = engine.infer_batches(&model, &inputs, true).unwrap();
    for ((y, repaired), o) in expected.iter().zip(&outcomes) {
        assert_eq!(*repaired, o.repaired, "repaired flags must agree per batch");
        assert!(*repaired, "the tampering fleet should force repairs");
        assert_eq!(y.as_slice(), o.output.as_ref().unwrap().as_slice());
    }
}

/// Without recovery, tampering aborts both modes with the same verdict
/// kind, and neither updates weights.
#[test]
fn tampering_without_recovery_fails_identically() {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(61);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[2] = Behavior::ZeroOutput;
    let fleet = GpuCluster::with_behaviors(&behaviors, 63);
    let model = small_model(64);
    let (x, labels) = training_batch(4, 65);

    let mut seq_trainer =
        LargeBatchTrainer::new(DarknightSession::new(cfg, fleet.fork(cfg.seed())).unwrap(), 256);
    let engine =
        PipelineEngine::new(cfg, fleet.fork(cfg.seed()), EngineOptions::default()).unwrap();
    let mut pipe_trainer = LargeBatchTrainer::pipelined(engine, 256);
    let mut m_seq = model.clone();
    let mut m_pipe = model.clone();
    let snap = m_seq.snapshot_params();
    let ea = seq_trainer
        .train_large_batch(&mut m_seq, &x, &labels, &mut Sgd::new(0.05))
        .unwrap_err();
    let eb = pipe_trainer
        .train_large_batch(&mut m_pipe, &x, &labels, &mut Sgd::new(0.05))
        .unwrap_err();
    assert!(matches!(ea, DarknightError::IntegrityViolation { .. }));
    assert!(matches!(eb, DarknightError::IntegrityViolation { .. }));
    assert_eq!(m_seq.max_param_diff(&snap), 0.0, "failed step must not update weights");
    assert_eq!(m_pipe.max_param_diff(&snap), 0.0, "failed step must not update weights");
}

// ---------------------------------------------------------------------
// Property test
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random configuration sweep: training and inference stay bitwise
    /// equal across seeds, batch geometry, lane counts, epochs, and
    /// honest vs tampering-with-recovery fleets.
    #[test]
    fn pipelined_equals_sequential(
        seed in 0u64..10_000,
        k in 2usize..4,
        m in 1usize..3,
        lanes in 1usize..4,
        epochs in 1usize..3,
        v_count in 2usize..4,
        tamper in any::<bool>(),
    ) {
        let mut cfg = DarknightConfig::new(k, m).with_integrity(true).with_seed(seed);
        let fleet = if tamper {
            cfg = cfg.with_recovery(true);
            let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
            behaviors[seed as usize % cfg.workers_required()] = Behavior::AdditiveNoise;
            GpuCluster::with_behaviors(&behaviors, seed ^ 0xF1EE7)
        } else {
            GpuCluster::honest(cfg.workers_required(), seed ^ 0xF1EE7)
        };
        let model = small_model(seed ^ 0xABCD);
        let (x, labels) = training_batch(v_count * k, seed);
        let opts = EngineOptions::default().with_lanes(lanes);
        let (_, diff) =
            compare_training_modes(cfg, &fleet, &model, &x, &labels, epochs, 0.05, opts).unwrap();
        prop_assert_eq!(diff, 0.0);
        let inputs = batches(lanes + 2, k, seed ^ 0x77);
        let (_, idiff) = compare_inference_modes(cfg, &fleet, &model, &inputs, opts).unwrap();
        prop_assert_eq!(idiff, 0.0);
    }
}
