//! Pipelined execution (§7.1, "Training Execution Time, Pipelined").
//!
//! The non-pipelined flow serializes TEE encoding → GPU compute → TEE
//! decoding per virtual batch. But consecutive virtual batches are
//! independent, so "while GPUs are performing linear operations, the
//! next virtual batch is encoded under the shadow of GPUs execution
//! time". This module implements that overlap for real with three
//! pipeline stages on OS threads connected by bounded channels, and
//! reports wall-clock for both modes so the overlap is measurable (the
//! paper's Fig. 5 derives the analogous analytical speedup in
//! `dk-perf`).

use crate::scheme::EncodingScheme;
use dk_field::{F25, FieldRng, P25, QuantConfig};
use dk_gpu::job::LinearJob;
use dk_linalg::{Conv2dShape, Tensor};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Workload description for the pipelining comparison: a stream of
/// virtual batches through one convolution layer.
#[derive(Debug, Clone, Copy)]
pub struct PipelineWorkload {
    /// Virtual batch size `K`.
    pub k: usize,
    /// Noise count `M`.
    pub m: usize,
    /// Convolution geometry.
    pub shape: Conv2dShape,
    /// Input spatial size.
    pub hw: (usize, usize),
    /// Number of independent virtual batches to stream.
    pub batches: usize,
}

/// Wall-clock results of the two execution modes.
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// Serialized encode→compute→decode wall time.
    pub sequential: Duration,
    /// Overlapped (3-stage pipeline) wall time.
    pub pipelined: Duration,
}

impl PipelineReport {
    /// Speedup of pipelined over sequential execution.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.pipelined.as_secs_f64().max(1e-12)
    }
}

struct EncodedBatch {
    jobs: Vec<LinearJob>,
    scheme: EncodingScheme,
}

fn make_weights(shape: &Conv2dShape, rng: &mut FieldRng) -> Arc<Tensor<F25>> {
    let ws: [usize; 4] = shape.weight_shape();
    Arc::new(Tensor::from_fn(&ws, |_| rng.uniform::<P25>()))
}

fn encode_batch(
    workload: &PipelineWorkload,
    weights: &Arc<Tensor<F25>>,
    quant: QuantConfig,
    rng: &mut FieldRng,
) -> EncodedBatch {
    let (c, (h, w)) = (workload.shape.in_channels, workload.hw);
    let n = c * h * w;
    let scheme = EncodingScheme::generate(workload.k, workload.m, false, rng);
    let inputs: Vec<Vec<F25>> = (0..workload.k)
        .map(|_| {
            (0..n)
                .map(|_| quant.quantize::<P25>(rng.uniform_f32(-1.0, 1.0) as f64).expect("in range"))
                .collect()
        })
        .collect();
    let noise: Vec<Vec<F25>> = (0..workload.m).map(|_| rng.uniform_vec::<P25>(n)).collect();
    let encodings = scheme.encode(&inputs, &noise);
    let jobs = encodings
        .into_iter()
        .map(|e| LinearJob::ConvForward {
            weights: weights.clone(),
            x: Tensor::from_vec(&[1, c, h, w], e),
            shape: workload.shape,
        })
        .collect();
    EncodedBatch { jobs, scheme }
}

fn compute_batch(batch: &EncodedBatch) -> Vec<Vec<F25>> {
    // The simulated accelerators execute on this host's CPU; run them
    // serially inside the compute stage so the pipeline comparison
    // isolates *stage overlap* (encode vs compute vs decode) rather
    // than competing with intra-batch parallelism for the same cores.
    batch.jobs.iter().map(|j| j.execute().into_vec()).collect()
}

fn decode_batch(scheme: &EncodingScheme, outputs: &[Vec<F25>], quant: QuantConfig) -> f32 {
    let decoded = scheme.decode_forward(outputs, 0).expect("honest pipeline");
    // Touch the floats so the dequantization work is not optimized out.
    let mut acc = 0.0f32;
    for d in &decoded {
        for &v in d {
            acc += quant.dequantize_product(v) as f32;
        }
    }
    acc
}

/// Runs the workload twice — serialized and pipelined — and reports
/// wall-clock for each. The pipelined run uses three stages (encode /
/// GPU compute / decode) on separate threads with bounded handoff
/// channels, exactly the overlap structure of §7.1.
pub fn compare_pipelining(workload: PipelineWorkload, seed: u64) -> PipelineReport {
    let quant = QuantConfig::new(6);
    // --- Sequential ---
    let mut rng = FieldRng::seed_from(seed);
    let weights = make_weights(&workload.shape, &mut rng);
    let t0 = Instant::now();
    let mut sink = 0.0f32;
    for _ in 0..workload.batches {
        let b = encode_batch(&workload, &weights, quant, &mut rng);
        let outs = compute_batch(&b);
        sink += decode_batch(&b.scheme, &outs, quant);
    }
    let sequential = t0.elapsed();
    std::hint::black_box(sink);

    // --- Pipelined ---
    let mut rng = FieldRng::seed_from(seed);
    let weights = make_weights(&workload.shape, &mut rng);
    let t0 = Instant::now();
    let (enc_tx, enc_rx) = std::sync::mpsc::sync_channel::<EncodedBatch>(2);
    let (out_tx, out_rx) = std::sync::mpsc::sync_channel::<(EncodingScheme, Vec<Vec<F25>>)>(2);
    let pipelined = std::thread::scope(|scope| {
        let wl = workload;
        let w2 = weights.clone();
        scope.spawn(move || {
            let mut rng = rng;
            for _ in 0..wl.batches {
                let b = encode_batch(&wl, &w2, quant, &mut rng);
                if enc_tx.send(b).is_err() {
                    return;
                }
            }
        });
        scope.spawn(move || {
            for batch in enc_rx.iter() {
                let outs = compute_batch(&batch);
                if out_tx.send((batch.scheme, outs)).is_err() {
                    return;
                }
            }
        });
        let mut sink = 0.0f32;
        for (scheme, outs) in out_rx.iter() {
            sink += decode_batch(&scheme, &outs, quant);
        }
        std::hint::black_box(sink);
        t0.elapsed()
    });
    PipelineReport { sequential, pipelined }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(batches: usize) -> PipelineWorkload {
        PipelineWorkload {
            k: 2,
            m: 1,
            shape: Conv2dShape::simple(4, 8, 3, 1, 1),
            hw: (12, 12),
            batches,
        }
    }

    #[test]
    fn both_modes_complete() {
        let report = compare_pipelining(workload(4), 3);
        assert!(report.sequential > Duration::ZERO);
        assert!(report.pipelined > Duration::ZERO);
    }

    #[test]
    fn pipelining_is_not_pathologically_slower() {
        // On a multi-core host the pipeline should be faster; CI
        // machines vary, so only guard against gross regression.
        let report = compare_pipelining(workload(8), 4);
        assert!(
            report.speedup() > 0.5,
            "pipelined run unexpectedly slow: {:?}",
            report
        );
    }
}
