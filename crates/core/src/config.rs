//! Session configuration.

use dk_field::QuantConfig;

/// DarKnight deployment parameters.
///
/// * `k` — virtual batch size (inputs linearly combined per encoding
///   round; the paper finds `K = 4` optimal under SGXv1 memory, Fig. 3).
/// * `m` — number of noise vectors = collusion tolerance (§4.5). The
///   base scheme of §4.1 is the `m = 1` case.
/// * `integrity` — adds one redundant equation (and thus one worker) for
///   fault detection (§4.4).
///
/// Worker requirement: `K' ≥ K + M (+1 with integrity)`.
///
/// # Example
///
/// ```
/// use dk_core::DarknightConfig;
///
/// let cfg = DarknightConfig::new(4, 1).with_integrity(true);
/// assert_eq!(cfg.num_encodings(), 6); // K + M + redundant
/// assert_eq!(cfg.workers_required(), 6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DarknightConfig {
    k: usize,
    m: usize,
    integrity: bool,
    recovery: bool,
    quant: QuantConfig,
    seed: u64,
}

impl DarknightConfig {
    /// Creates a configuration with virtual batch `k` and collusion
    /// tolerance `m` (defaults: integrity off, `l = 6` fractional bits,
    /// seed 0xDA2C).
    ///
    /// The default `l` is chosen so that worst-case dot products of the
    /// mini evaluation models stay inside `(−p/2, p/2)`; the paper's
    /// `l = 8` is available via [`DarknightConfig::with_quant`].
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m == 0` (at least one noise vector is
    /// required for the one-time-pad argument of §5).
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k > 0, "virtual batch size must be positive");
        assert!(m > 0, "at least one noise vector is required for privacy");
        Self { k, m, integrity: false, recovery: false, quant: QuantConfig::new(6), seed: 0xDA2C }
    }

    /// Enables/disables the redundant integrity equation.
    pub fn with_integrity(mut self, on: bool) -> Self {
        self.integrity = on;
        self
    }

    /// Enables fault localization and repair on integrity violations
    /// (extension beyond the paper — see [`crate::recovery`]). Implies
    /// nothing unless integrity is also on: without the redundant
    /// equation, violations are never detected in the first place.
    pub fn with_recovery(mut self, on: bool) -> Self {
        self.recovery = on;
        self
    }

    /// Overrides the quantization parameters.
    pub fn with_quant(mut self, quant: QuantConfig) -> Self {
        self.quant = quant;
        self
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Virtual batch size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Collusion tolerance / noise vector count `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Whether the redundant integrity equation is enabled.
    pub fn integrity(&self) -> bool {
        self.integrity
    }

    /// Whether integrity violations trigger TEE-side localization and
    /// repair instead of aborting.
    pub fn recovery(&self) -> bool {
        self.recovery
    }

    /// Quantization parameters.
    pub fn quant(&self) -> QuantConfig {
        self.quant
    }

    /// Master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of masked encodings produced per virtual batch:
    /// `K + M`, plus one if integrity is on.
    pub fn num_encodings(&self) -> usize {
        self.k + self.m + usize::from(self.integrity)
    }

    /// Minimum worker count `K'` (each worker receives at most one
    /// encoding, §3.1 step 4).
    pub fn workers_required(&self) -> usize {
        self.num_encodings()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoding_counts() {
        let base = DarknightConfig::new(4, 1);
        assert_eq!(base.num_encodings(), 5);
        assert_eq!(base.with_integrity(true).num_encodings(), 6);
        let collusion = DarknightConfig::new(2, 3).with_integrity(true);
        assert_eq!(collusion.num_encodings(), 6);
        assert_eq!(collusion.workers_required(), 6);
    }

    #[test]
    #[should_panic(expected = "noise vector")]
    fn zero_noise_rejected() {
        let _ = DarknightConfig::new(4, 0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_k_rejected() {
        let _ = DarknightConfig::new(0, 1);
    }

    #[test]
    fn builder_chains() {
        let cfg = DarknightConfig::new(2, 1)
            .with_integrity(true)
            .with_recovery(true)
            .with_quant(QuantConfig::new(8))
            .with_seed(99);
        assert!(cfg.integrity());
        assert!(cfg.recovery());
        assert_eq!(cfg.quant().frac_bits(), 8);
        assert_eq!(cfg.seed(), 99);
    }
}
