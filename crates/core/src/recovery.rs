//! Fault localization and recovery — an extension beyond the paper.
//!
//! §4.4 detects an integrity violation but leaves "corrective action,
//! such as executing on another GPU worker" out of scope. This module
//! implements the natural recovery: on detection the TEE *localizes* the
//! fault by recomputing each worker's bilinear job itself (it can —
//! it holds the quantized weights and can regenerate every encoding from
//! its retained inputs and noise), substitutes the correct results,
//! and quarantines the lying workers.
//!
//! Cost analysis: localization recomputes up to `K+M+1` bilinear ops
//! inside the TEE — roughly one SGX-only layer execution — so it is
//! `O(K')` times more expensive than the happy path. It runs only on
//! detection, so honest executions pay nothing; a system under active
//! attack degrades to SGX-only speed for the affected layers instead of
//! failing, which is the right trade.

use dk_field::F25;
use dk_gpu::{LinearJob, WorkerId};

/// Outcome of a recovery pass over one layer's worker outputs.
#[derive(Debug, Clone, Default)]
pub struct RecoveryOutcome {
    /// Workers whose returned output did not match the TEE recomputation.
    pub faulty: Vec<WorkerId>,
    /// Whether the layer's outputs were fully repaired.
    pub repaired: bool,
}

/// Recomputes every job inside the TEE, compares with the worker
/// outputs, and repairs `outputs` in place. Returns which workers lied.
///
/// `jobs[j]` must be the exact job dispatched to worker `j` (non-stored
/// variants only — the caller reconstructs stored-encoding jobs into
/// explicit ones before localization).
///
/// # Panics
///
/// Panics if `jobs.len() != outputs.len()` or a job is a `*Stored`
/// variant.
pub fn localize_and_repair(
    jobs: &[LinearJob],
    outputs: &mut [dk_linalg::Tensor<F25>],
) -> RecoveryOutcome {
    assert_eq!(jobs.len(), outputs.len(), "one output per job");
    let mut outcome = RecoveryOutcome { faulty: Vec::new(), repaired: true };
    for (j, (job, out)) in jobs.iter().zip(outputs.iter_mut()).enumerate() {
        let expected = job.execute();
        if expected.as_slice() != out.as_slice() {
            outcome.faulty.push(WorkerId(j));
            *out = expected;
        }
    }
    record_verdicts(jobs.len(), &outcome);
    outcome
}

/// Recovery verdict counters on the global registry. Cold path (runs
/// only after a detected violation), so the lazy handle lookup here is
/// fine; the `enabled` guard keeps the disabled cost to one load.
fn record_verdicts(jobs: usize, outcome: &RecoveryOutcome) {
    if !dk_obs::enabled() {
        return;
    }
    use std::sync::OnceLock;
    static PASSES: OnceLock<dk_obs::Counter> = OnceLock::new();
    static RECOMPUTED: OnceLock<dk_obs::Counter> = OnceLock::new();
    static FAULTY: OnceLock<dk_obs::Counter> = OnceLock::new();
    static CLEARED: OnceLock<dk_obs::Counter> = OnceLock::new();
    PASSES.get_or_init(|| dk_obs::global().counter("dk_recovery_passes_total")).inc();
    RECOMPUTED
        .get_or_init(|| dk_obs::global().counter("dk_recovery_jobs_recomputed_total"))
        .add(jobs as u64);
    FAULTY
        .get_or_init(|| dk_obs::global().counter("dk_recovery_faulty_jobs_total"))
        .add(outcome.faulty.len() as u64);
    CLEARED
        .get_or_init(|| dk_obs::global().counter("dk_recovery_cleared_jobs_total"))
        .add((jobs - outcome.faulty.len()) as u64);
    for w in &outcome.faulty {
        dk_obs::fleet().worker(w.0).repaired(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::{FieldRng, P25};
    use dk_linalg::Tensor;
    use std::sync::Arc;

    fn jobs_and_outputs(n: usize) -> (Vec<LinearJob>, Vec<Tensor<F25>>) {
        let mut rng = FieldRng::seed_from(5);
        let weights = Arc::new(Tensor::from_fn(&[4, 6], |i| F25::new(i as u64 + 1)));
        let jobs: Vec<LinearJob> = (0..n)
            .map(|_| LinearJob::DenseForward {
                weights: weights.clone(),
                x: Tensor::from_vec(&[1, 6], rng.uniform_vec::<P25>(6)),
            })
            .collect();
        let outputs: Vec<Tensor<F25>> = jobs.iter().map(|j| j.execute()).collect();
        (jobs, outputs)
    }

    #[test]
    fn honest_outputs_report_no_faults() {
        let (jobs, mut outputs) = jobs_and_outputs(4);
        let outcome = localize_and_repair(&jobs, &mut outputs);
        assert!(outcome.faulty.is_empty());
        assert!(outcome.repaired);
    }

    #[test]
    fn single_fault_located_and_repaired() {
        let (jobs, mut outputs) = jobs_and_outputs(4);
        let clean = outputs.clone();
        outputs[2].as_mut_slice()[1] += F25::ONE;
        let outcome = localize_and_repair(&jobs, &mut outputs);
        assert_eq!(outcome.faulty, vec![WorkerId(2)]);
        assert_eq!(outputs, clean, "repair must restore honest outputs");
    }

    #[test]
    fn multiple_faults_located() {
        let (jobs, mut outputs) = jobs_and_outputs(5);
        outputs[0].as_mut_slice()[0] += F25::new(7);
        outputs[4].as_mut_slice()[2] += F25::new(9);
        let outcome = localize_and_repair(&jobs, &mut outputs);
        assert_eq!(outcome.faulty, vec![WorkerId(0), WorkerId(4)]);
    }
}
