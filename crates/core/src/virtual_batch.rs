//! Large-batch weight aggregation — Algorithm 2 of the paper.
//!
//! SGX cannot hold the per-virtual-batch weight updates `∇W_v` of a full
//! training batch (e.g. 128 images = 32 virtual batches of `K = 4`), so
//! DarKnight:
//!
//! 1. computes `∇W_v` per virtual batch inside the enclave,
//! 2. splits it into **shards**, seals each shard (encrypt + MAC) and
//!    evicts it to untrusted memory (Algorithm 2 lines 9–10),
//! 3. after the last virtual batch, reloads shard-by-shard, unseals and
//!    accumulates inside the enclave (`UpdateAggregation`), and
//! 4. applies one SGD step with the batch-wide aggregate.
//!
//! Sharding bounds the enclave working set during aggregation to one
//! shard regardless of model size — the paper's "pipelined approach to
//! shard-wise aggregation".

use crate::checkpoint::TrainingCheckpoint;
use crate::engine::PipelineEngine;
use crate::error::DarknightError;
use crate::session::{DarknightSession, StepReport};
use dk_linalg::Tensor;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_tee::crypto::{bytes_to_f32s, f32s_to_bytes, SealedBlob};
use dk_tee::UntrustedStore;

/// Telemetry from one large-batch training step.
#[derive(Debug, Clone, Default)]
pub struct LargeBatchReport {
    /// Per-virtual-batch loss.
    pub losses: Vec<f32>,
    /// Per-virtual-batch training accuracy.
    pub accuracies: Vec<f32>,
    /// Number of virtual batches processed.
    pub virtual_batches: usize,
    /// Seal (encrypt+evict) operations performed.
    pub seal_ops: u64,
    /// Unseal (reload+decrypt) operations performed.
    pub unseal_ops: u64,
    /// Bytes moved to untrusted memory.
    pub bytes_evicted: u64,
    /// Bytes reloaded during aggregation.
    pub bytes_reloaded: u64,
}

impl LargeBatchReport {
    /// Mean loss across virtual batches.
    pub fn mean_loss(&self) -> f32 {
        if self.losses.is_empty() {
            0.0
        } else {
            self.losses.iter().sum::<f32>() / self.losses.len() as f32
        }
    }
}

/// How the trainer executes its virtual batches.
#[derive(Debug)]
enum Backend {
    /// Blocking reference: one batch at a time on one session.
    Sequential(Box<DarknightSession>),
    /// Overlapped execution on the pipelined engine ([`crate::engine`]);
    /// bit-for-bit identical results.
    Pipelined(Box<PipelineEngine>),
}

/// Trains on batches larger than the virtual batch by aggregating
/// sealed per-virtual-batch gradients (Algorithm 2), sequentially or —
/// the production path — pipelined across TEE lanes and persistent GPU
/// worker threads.
#[derive(Debug)]
pub struct LargeBatchTrainer {
    backend: Backend,
    store: UntrustedStore,
    shard_elems: usize,
    steps: u64,
    checkpoint_every: Option<u64>,
    /// Sealed checkpoints evicted to untrusted storage, keyed by step.
    checkpoints: UntrustedStore,
    latest_checkpoint_step: Option<u64>,
}

impl LargeBatchTrainer {
    /// Wraps a session (sequential reference mode). `shard_elems` is the
    /// shard granularity for sealed gradient blobs (Algorithm 2's
    /// sharding; the paper uses "a set of DNN layers" per shard —
    /// element-granular shards subsume that).
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems == 0`.
    pub fn new(session: DarknightSession, shard_elems: usize) -> Self {
        Self::with_backend(Backend::Sequential(Box::new(session)), shard_elems)
    }

    /// Wraps a pipelined engine: gradient accumulation streams the
    /// virtual batches of each large batch across the engine's lanes
    /// (weights are frozen until the step, so the batches are
    /// independent), with results bit-for-bit equal to
    /// [`LargeBatchTrainer::new`].
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems == 0`.
    pub fn pipelined(engine: PipelineEngine, shard_elems: usize) -> Self {
        Self::with_backend(Backend::Pipelined(Box::new(engine)), shard_elems)
    }

    fn with_backend(backend: Backend, shard_elems: usize) -> Self {
        assert!(shard_elems > 0, "shard size must be positive");
        Self {
            backend,
            store: UntrustedStore::new(),
            shard_elems,
            steps: 0,
            checkpoint_every: None,
            checkpoints: UntrustedStore::new(),
            latest_checkpoint_step: None,
        }
    }

    /// Enables automatic sealed checkpoints every `every` large-batch
    /// steps (see [`crate::checkpoint`]). Blobs accumulate in an
    /// untrusted store, retrievable via
    /// [`LargeBatchTrainer::latest_checkpoint`].
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_checkpoint_interval(mut self, every: u64) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = Some(every);
        self
    }

    /// Large-batch steps completed so far (across resume boundaries).
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The most recent sealed checkpoint, if any was taken.
    pub fn latest_checkpoint(&mut self) -> Option<SealedBlob> {
        let step = self.latest_checkpoint_step?;
        self.checkpoints.get(step)
    }

    /// Captures, seals and evicts a checkpoint of the current training
    /// state (call at a step boundary: after
    /// [`LargeBatchTrainer::train_large_batch`] returns, never between).
    pub fn checkpoint(&mut self, model: &mut Sequential, sgd: &Sgd) -> SealedBlob {
        let cursor = match &self.backend {
            Backend::Sequential(s) => s.batch_index(),
            Backend::Pipelined(e) => e.batches_consumed(),
        };
        let cfg = match &self.backend {
            Backend::Sequential(s) => *s.config(),
            Backend::Pipelined(e) => *e.config(),
        };
        let ckpt = TrainingCheckpoint::capture(&cfg, cursor, self.steps, model, sgd);
        let bytes = ckpt.to_bytes();
        let blob = match &mut self.backend {
            Backend::Sequential(s) => s.enclave_mut().seal(&bytes),
            Backend::Pipelined(e) => e.seal(&bytes),
        };
        self.checkpoints.put(self.steps, blob.clone());
        self.latest_checkpoint_step = Some(self.steps);
        blob
    }

    /// Resumes a sequential trainer from a sealed checkpoint: unseals
    /// with the fresh session's enclave (same code identity ⇒ same seal
    /// key), validates the configuration, installs weights / optimizer
    /// state / BatchNorm running statistics, and fast-forwards the
    /// virtual-batch cursor so every subsequent derived mask stream is
    /// bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Enclave authentication failure (tampered blob) or
    /// [`DarknightError::Checkpoint`] on any mismatch.
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems == 0`.
    pub fn resume(
        mut session: DarknightSession,
        shard_elems: usize,
        blob: &SealedBlob,
        model: &mut Sequential,
        sgd: &mut Sgd,
    ) -> Result<Self, DarknightError> {
        let bytes = session.enclave_mut().unseal(blob)?;
        let ckpt = TrainingCheckpoint::from_bytes(&bytes)?;
        ckpt.validate_config(session.config())?;
        ckpt.install(model, sgd)?;
        session.resume_at_batch(ckpt.next_batch);
        let mut t = Self::new(session, shard_elems);
        t.steps = ckpt.steps;
        Ok(t)
    }

    /// Resumes onto a pipelined engine — bit-identical to
    /// [`LargeBatchTrainer::resume`] by the engine's sequential
    /// equivalence, at any lane count or `DK_THREADS` cap.
    ///
    /// # Errors
    ///
    /// Same as [`LargeBatchTrainer::resume`].
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems == 0`.
    pub fn resume_pipelined(
        mut engine: PipelineEngine,
        shard_elems: usize,
        blob: &SealedBlob,
        model: &mut Sequential,
        sgd: &mut Sgd,
    ) -> Result<Self, DarknightError> {
        let bytes = engine.unseal(blob)?;
        let ckpt = TrainingCheckpoint::from_bytes(&bytes)?;
        ckpt.validate_config(engine.config())?;
        ckpt.install(model, sgd)?;
        engine.resume_at_batch(ckpt.next_batch);
        let mut t = Self::pipelined(engine, shard_elems);
        t.steps = ckpt.steps;
        Ok(t)
    }

    /// The wrapped session (sequential mode).
    ///
    /// # Panics
    ///
    /// Panics in pipelined mode — use [`LargeBatchTrainer::engine`].
    pub fn session(&self) -> &DarknightSession {
        match &self.backend {
            Backend::Sequential(s) => s,
            Backend::Pipelined(_) => panic!("pipelined trainer has no single session"),
        }
    }

    /// Mutable access to the wrapped session (sequential mode).
    ///
    /// # Panics
    ///
    /// Panics in pipelined mode — use [`LargeBatchTrainer::engine_mut`].
    pub fn session_mut(&mut self) -> &mut DarknightSession {
        match &mut self.backend {
            Backend::Sequential(s) => s,
            Backend::Pipelined(_) => panic!("pipelined trainer has no single session"),
        }
    }

    /// The wrapped engine, if this trainer is pipelined.
    pub fn engine(&self) -> Option<&PipelineEngine> {
        match &self.backend {
            Backend::Pipelined(e) => Some(e),
            Backend::Sequential(_) => None,
        }
    }

    /// Mutable access to the wrapped engine, if pipelined.
    pub fn engine_mut(&mut self) -> Option<&mut PipelineEngine> {
        match &mut self.backend {
            Backend::Pipelined(e) => Some(e),
            Backend::Sequential(_) => None,
        }
    }

    /// Consumes the trainer, returning the session (sequential mode).
    ///
    /// # Panics
    ///
    /// Panics in pipelined mode.
    pub fn into_session(self) -> DarknightSession {
        match self.backend {
            Backend::Sequential(s) => *s,
            Backend::Pipelined(_) => panic!("pipelined trainer has no single session"),
        }
    }

    /// Runs one large-batch step: `x` is `[N, ...]` with
    /// `N = V·K`, `labels.len() == N`. Performs Algorithm 2 and one SGD
    /// update.
    ///
    /// # Errors
    ///
    /// Any private-execution error; [`DarknightError::BatchShape`] if
    /// `N` is not a multiple of `K`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from `N`.
    pub fn train_large_batch(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> Result<LargeBatchReport, DarknightError> {
        let shard_elems = self.shard_elems;
        let report = match &mut self.backend {
            Backend::Pipelined(engine) => {
                engine.train_large_batch(model, x, labels, sgd, shard_elems)
            }
            Backend::Sequential(_) => self.train_sequential(model, x, labels, sgd),
        }?;
        self.steps += 1;
        if self.checkpoint_every.is_some_and(|every| self.steps.is_multiple_of(every)) {
            let _ = self.checkpoint(model, sgd);
        }
        Ok(report)
    }

    /// The blocking reference implementation of Algorithm 2.
    fn train_sequential(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> Result<LargeBatchReport, DarknightError> {
        let shard_elems = self.shard_elems;
        let store = &mut self.store;
        let Backend::Sequential(session) = &mut self.backend else {
            unreachable!("train_sequential called on a pipelined trainer")
        };
        let n = x.shape()[0];
        assert_eq!(labels.len(), n, "one label per sample");
        let k = session.config().k();
        if !n.is_multiple_of(k) || n == 0 {
            return Err(DarknightError::BatchShape { expected: k, actual: n });
        }
        let v_count = n / k;
        let mut report = LargeBatchReport { virtual_batches: v_count, ..Default::default() };
        let sample_elems: usize = x.shape()[1..].iter().product();
        let mut vb_shape = x.shape().to_vec();
        vb_shape[0] = k;

        let mut shard_count = 0usize;
        for v in 0..v_count {
            // Slice out virtual batch v.
            let mut vb = Tensor::zeros(&vb_shape);
            for i in 0..k {
                vb.batch_item_mut(i)
                    .copy_from_slice(&x.as_slice()[(v * k + i) * sample_elems..(v * k + i + 1) * sample_elems]);
            }
            let vb_labels = &labels[v * k..(v + 1) * k];
            // Compute ∇W_v (gradients land in the model's grad buffers).
            model.zero_grad();
            let StepReport { loss, accuracy } =
                session.accumulate_gradients(model, &vb, vb_labels)?;
            report.losses.push(loss);
            report.accuracies.push(accuracy);
            // Extract, shard, seal, evict (Algorithm 2 lines 8–10).
            let flat = model.grad_vector();
            shard_count = flat.len().div_ceil(shard_elems);
            for s in 0..shard_count {
                let lo = s * shard_elems;
                let hi = (lo + shard_elems).min(flat.len());
                let blob = session.enclave_mut().seal(&f32s_to_bytes(&flat[lo..hi]));
                report.seal_ops += 1;
                report.bytes_evicted += blob.len() as u64;
                store.put(Self::blob_id(v, s), blob);
            }
        }

        // UpdateAggregation (Algorithm 2 lines 14–21), shard-wise so the
        // enclave only ever holds one shard of the aggregate.
        let total = model.grad_vector().len();
        let mut aggregate = vec![0.0f32; total];
        for s in 0..shard_count {
            let lo = s * shard_elems;
            let mut acc: Vec<f32> = Vec::new();
            for v in 0..v_count {
                let blob = store
                    .remove(Self::blob_id(v, s))
                    .expect("sealed shard disappeared from untrusted store");
                report.bytes_reloaded += blob.len() as u64;
                let bytes = session.enclave_mut().unseal(&blob)?;
                report.unseal_ops += 1;
                let shard = bytes_to_f32s(&bytes);
                if acc.is_empty() {
                    acc = shard;
                } else {
                    for (a, b) in acc.iter_mut().zip(shard) {
                        *a += b;
                    }
                }
            }
            aggregate[lo..lo + acc.len()].copy_from_slice(&acc);
        }
        // Mean over virtual batches, install as the model's gradient and
        // step (line 12: W ← W − η·∇W).
        let inv_v = 1.0 / v_count as f32;
        for g in aggregate.iter_mut() {
            *g *= inv_v;
        }
        model.set_grad_vector(&aggregate);
        sgd.step(model);
        Ok(report)
    }

    fn blob_id(v: usize, s: usize) -> u64 {
        ((v as u64) << 32) | s as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DarknightConfig;
    use dk_gpu::GpuCluster;
    use dk_nn::layers::{Dense, Flatten, Layer, Relu};

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(18, 8, seed)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(8, 3, seed ^ 1)),
        ])
    }

    fn trainer(k: usize, shard: usize) -> LargeBatchTrainer {
        let cfg = DarknightConfig::new(k, 1).with_seed(77);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        LargeBatchTrainer::new(DarknightSession::new(cfg, cluster).unwrap(), shard)
    }

    fn batch(n: usize) -> (Tensor<f32>, Vec<usize>) {
        let x = Tensor::from_fn(&[n, 2, 3, 3], |i| ((i % 11) as f32 - 5.0) * 0.08);
        let labels = (0..n).map(|i| i % 3).collect();
        (x, labels)
    }

    #[test]
    fn large_batch_step_runs_and_counts() {
        let mut t = trainer(2, 16);
        let mut m = model(1);
        let mut sgd = Sgd::new(0.05);
        let (x, labels) = batch(8); // 4 virtual batches of K=2
        let report = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap();
        assert_eq!(report.virtual_batches, 4);
        assert_eq!(report.losses.len(), 4);
        // params = 18*8+8 + 8*3+3 = 179 -> ceil(179/16)=12 shards/VB
        assert_eq!(report.seal_ops, 4 * 12);
        assert_eq!(report.unseal_ops, 4 * 12);
        assert!(report.bytes_evicted > 0);
    }

    #[test]
    fn aggregate_matches_sum_of_virtual_batches() {
        // Running Algorithm 2 must equal accumulating all virtual
        // batches' gradients directly (same session RNG stream) and
        // stepping once with the mean.
        let (x, labels) = batch(4);
        let mut sgd_a = Sgd::new(0.1);
        let mut m_a = model(2);
        let mut t = trainer(2, 7);
        t.train_large_batch(&mut m_a, &x, &labels, &mut sgd_a).unwrap();

        // Reference: same masked execution (same seed), manual mean.
        let cfg = DarknightConfig::new(2, 1).with_seed(77);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut m_b = model(2);
        let mut grads_sum: Vec<f32> = Vec::new();
        for v in 0..2 {
            let mut vb = Tensor::zeros(&[2, 2, 3, 3]);
            for i in 0..2 {
                vb.batch_item_mut(i).copy_from_slice(x.batch_item(v * 2 + i));
            }
            m_b.zero_grad();
            session.accumulate_gradients(&mut m_b, &vb, &labels[v * 2..(v + 1) * 2]).unwrap();
            let mut flat = Vec::new();
            m_b.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
            if grads_sum.is_empty() {
                grads_sum = flat;
            } else {
                for (a, b) in grads_sum.iter_mut().zip(flat) {
                    *a += b;
                }
            }
        }
        let mut off = 0;
        m_b.visit_params(&mut |_, g| {
            for v in g.as_mut_slice() {
                *v = grads_sum[off] * 0.5;
                off += 1;
            }
        });
        let mut sgd_b = Sgd::new(0.1);
        sgd_b.step(&mut m_b);

        // The two models must end up with identical weights (sealing is
        // lossless; float sum order is identical shard-wise vs direct
        // because shards partition contiguous ranges).
        let snap_b = m_b.snapshot_params();
        let diff = m_a.max_param_diff(&snap_b);
        assert!(diff < 1e-6, "diff={diff}");
    }

    #[test]
    fn non_multiple_batch_rejected() {
        let mut t = trainer(2, 16);
        let mut m = model(3);
        let mut sgd = Sgd::new(0.1);
        let (x, labels) = batch(5);
        assert!(matches!(
            t.train_large_batch(&mut m, &x, &labels, &mut sgd),
            Err(DarknightError::BatchShape { .. })
        ));
    }

    #[test]
    fn training_over_epochs_reduces_loss() {
        let mut t = trainer(2, 64);
        let mut m = model(4);
        let mut sgd = Sgd::new(0.3);
        let (x, labels) = batch(8);
        let first = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap().mean_loss();
        let mut last = first;
        for _ in 0..30 {
            last = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap().mean_loss();
        }
        assert!(last < first * 0.6, "first={first} last={last}");
    }

    #[test]
    fn pipelined_trainer_is_bitwise_equal_to_sequential() {
        use crate::engine::{EngineOptions, PipelineEngine};
        let (x, labels) = batch(8);
        let mut m_seq = model(9);
        let mut m_pipe = model(9);
        let mut sgd_a = Sgd::new(0.1);
        let mut sgd_b = Sgd::new(0.1);
        let mut seq = trainer(2, 7);
        let cfg = DarknightConfig::new(2, 1).with_seed(77);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        let engine = PipelineEngine::new(cfg, cluster, EngineOptions::default()).unwrap();
        let mut pipe = LargeBatchTrainer::pipelined(engine, 7);
        assert!(pipe.engine().is_some());
        for _ in 0..3 {
            let ra = seq.train_large_batch(&mut m_seq, &x, &labels, &mut sgd_a).unwrap();
            let rb = pipe.train_large_batch(&mut m_pipe, &x, &labels, &mut sgd_b).unwrap();
            assert_eq!(ra.losses, rb.losses, "per-batch losses must match bitwise");
            assert_eq!(ra.seal_ops, rb.seal_ops);
            assert_eq!(ra.bytes_evicted, rb.bytes_evicted);
            assert_eq!(m_seq.max_param_diff(&m_pipe.snapshot_params()), 0.0);
        }
    }

    #[test]
    fn shard_size_does_not_change_result() {
        let (x, labels) = batch(4);
        let mut results = Vec::new();
        for shard in [4usize, 64, 4096] {
            let mut t = trainer(2, shard);
            let mut m = model(5);
            let mut sgd = Sgd::new(0.1);
            t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap();
            results.push(m.snapshot_params());
        }
        for pair in results.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert!(a.max_abs_diff(b) < 1e-6);
            }
        }
    }
}
