//! Large-batch weight aggregation — Algorithm 2 of the paper.
//!
//! SGX cannot hold the per-virtual-batch weight updates `∇W_v` of a full
//! training batch (e.g. 128 images = 32 virtual batches of `K = 4`), so
//! DarKnight:
//!
//! 1. computes `∇W_v` per virtual batch inside the enclave,
//! 2. splits it into **shards**, seals each shard (encrypt + MAC) and
//!    evicts it to untrusted memory (Algorithm 2 lines 9–10),
//! 3. after the last virtual batch, reloads shard-by-shard, unseals and
//!    accumulates inside the enclave (`UpdateAggregation`), and
//! 4. applies one SGD step with the batch-wide aggregate.
//!
//! Sharding bounds the enclave working set during aggregation to one
//! shard regardless of model size — the paper's "pipelined approach to
//! shard-wise aggregation".

use crate::error::DarknightError;
use crate::session::{DarknightSession, StepReport};
use dk_linalg::Tensor;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_tee::crypto::{bytes_to_f32s, f32s_to_bytes};
use dk_tee::UntrustedStore;

/// Telemetry from one large-batch training step.
#[derive(Debug, Clone, Default)]
pub struct LargeBatchReport {
    /// Per-virtual-batch loss.
    pub losses: Vec<f32>,
    /// Per-virtual-batch training accuracy.
    pub accuracies: Vec<f32>,
    /// Number of virtual batches processed.
    pub virtual_batches: usize,
    /// Seal (encrypt+evict) operations performed.
    pub seal_ops: u64,
    /// Unseal (reload+decrypt) operations performed.
    pub unseal_ops: u64,
    /// Bytes moved to untrusted memory.
    pub bytes_evicted: u64,
    /// Bytes reloaded during aggregation.
    pub bytes_reloaded: u64,
}

impl LargeBatchReport {
    /// Mean loss across virtual batches.
    pub fn mean_loss(&self) -> f32 {
        if self.losses.is_empty() {
            0.0
        } else {
            self.losses.iter().sum::<f32>() / self.losses.len() as f32
        }
    }
}

/// Trains on batches larger than the virtual batch by aggregating
/// sealed per-virtual-batch gradients (Algorithm 2).
#[derive(Debug)]
pub struct LargeBatchTrainer {
    session: DarknightSession,
    store: UntrustedStore,
    shard_elems: usize,
}

impl LargeBatchTrainer {
    /// Wraps a session. `shard_elems` is the shard granularity for
    /// sealed gradient blobs (Algorithm 2's sharding; the paper uses
    /// "a set of DNN layers" per shard — element-granular shards
    /// subsume that).
    ///
    /// # Panics
    ///
    /// Panics if `shard_elems == 0`.
    pub fn new(session: DarknightSession, shard_elems: usize) -> Self {
        assert!(shard_elems > 0, "shard size must be positive");
        Self { session, store: UntrustedStore::new(), shard_elems }
    }

    /// The wrapped session.
    pub fn session(&self) -> &DarknightSession {
        &self.session
    }

    /// Mutable access to the wrapped session.
    pub fn session_mut(&mut self) -> &mut DarknightSession {
        &mut self.session
    }

    /// Consumes the trainer, returning the session.
    pub fn into_session(self) -> DarknightSession {
        self.session
    }

    /// Runs one large-batch step: `x` is `[N, ...]` with
    /// `N = V·K`, `labels.len() == N`. Performs Algorithm 2 and one SGD
    /// update.
    ///
    /// # Errors
    ///
    /// Any private-execution error; [`DarknightError::BatchShape`] if
    /// `N` is not a multiple of `K`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len()` differs from `N`.
    pub fn train_large_batch(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> Result<LargeBatchReport, DarknightError> {
        let n = x.shape()[0];
        assert_eq!(labels.len(), n, "one label per sample");
        let k = self.session.config().k();
        if !n.is_multiple_of(k) || n == 0 {
            return Err(DarknightError::BatchShape { expected: k, actual: n });
        }
        let v_count = n / k;
        let mut report = LargeBatchReport { virtual_batches: v_count, ..Default::default() };
        let sample_elems: usize = x.shape()[1..].iter().product();
        let mut vb_shape = x.shape().to_vec();
        vb_shape[0] = k;

        let mut shard_count = 0usize;
        for v in 0..v_count {
            // Slice out virtual batch v.
            let mut vb = Tensor::zeros(&vb_shape);
            for i in 0..k {
                vb.batch_item_mut(i)
                    .copy_from_slice(&x.as_slice()[(v * k + i) * sample_elems..(v * k + i + 1) * sample_elems]);
            }
            let vb_labels = &labels[v * k..(v + 1) * k];
            // Compute ∇W_v (gradients land in the model's grad buffers).
            model.zero_grad();
            let StepReport { loss, accuracy } =
                self.session.accumulate_gradients(model, &vb, vb_labels)?;
            report.losses.push(loss);
            report.accuracies.push(accuracy);
            // Extract, shard, seal, evict (Algorithm 2 lines 8–10).
            let flat = Self::extract_grads(model);
            shard_count = flat.len().div_ceil(self.shard_elems);
            for s in 0..shard_count {
                let lo = s * self.shard_elems;
                let hi = (lo + self.shard_elems).min(flat.len());
                let blob = self.session.enclave_mut().seal(&f32s_to_bytes(&flat[lo..hi]));
                report.seal_ops += 1;
                report.bytes_evicted += blob.len() as u64;
                self.store.put(Self::blob_id(v, s), blob);
            }
        }

        // UpdateAggregation (Algorithm 2 lines 14–21), shard-wise so the
        // enclave only ever holds one shard of the aggregate.
        let total = Self::extract_grads(model).len();
        let mut aggregate = vec![0.0f32; total];
        for s in 0..shard_count {
            let lo = s * self.shard_elems;
            let mut acc: Vec<f32> = Vec::new();
            for v in 0..v_count {
                let blob = self
                    .store
                    .remove(Self::blob_id(v, s))
                    .expect("sealed shard disappeared from untrusted store");
                report.bytes_reloaded += blob.len() as u64;
                let bytes = self.session.enclave_mut().unseal(&blob)?;
                report.unseal_ops += 1;
                let shard = bytes_to_f32s(&bytes);
                if acc.is_empty() {
                    acc = shard;
                } else {
                    for (a, b) in acc.iter_mut().zip(shard) {
                        *a += b;
                    }
                }
            }
            aggregate[lo..lo + acc.len()].copy_from_slice(&acc);
        }
        // Mean over virtual batches, install as the model's gradient and
        // step (line 12: W ← W − η·∇W).
        let inv_v = 1.0 / v_count as f32;
        for g in aggregate.iter_mut() {
            *g *= inv_v;
        }
        Self::install_grads(model, &aggregate);
        sgd.step(model);
        Ok(report)
    }

    fn blob_id(v: usize, s: usize) -> u64 {
        ((v as u64) << 32) | s as u64
    }

    fn extract_grads(model: &mut Sequential) -> Vec<f32> {
        let mut flat = Vec::new();
        model.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
        flat
    }

    fn install_grads(model: &mut Sequential, flat: &[f32]) {
        let mut off = 0;
        model.visit_params(&mut |_, g| {
            let n = g.len();
            g.as_mut_slice().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "gradient vector arity changed");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DarknightConfig;
    use dk_gpu::GpuCluster;
    use dk_nn::layers::{Dense, Flatten, Layer, Relu};

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(18, 8, seed)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(8, 3, seed ^ 1)),
        ])
    }

    fn trainer(k: usize, shard: usize) -> LargeBatchTrainer {
        let cfg = DarknightConfig::new(k, 1).with_seed(77);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        LargeBatchTrainer::new(DarknightSession::new(cfg, cluster).unwrap(), shard)
    }

    fn batch(n: usize) -> (Tensor<f32>, Vec<usize>) {
        let x = Tensor::from_fn(&[n, 2, 3, 3], |i| ((i % 11) as f32 - 5.0) * 0.08);
        let labels = (0..n).map(|i| i % 3).collect();
        (x, labels)
    }

    #[test]
    fn large_batch_step_runs_and_counts() {
        let mut t = trainer(2, 16);
        let mut m = model(1);
        let mut sgd = Sgd::new(0.05);
        let (x, labels) = batch(8); // 4 virtual batches of K=2
        let report = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap();
        assert_eq!(report.virtual_batches, 4);
        assert_eq!(report.losses.len(), 4);
        // params = 18*8+8 + 8*3+3 = 179 -> ceil(179/16)=12 shards/VB
        assert_eq!(report.seal_ops, 4 * 12);
        assert_eq!(report.unseal_ops, 4 * 12);
        assert!(report.bytes_evicted > 0);
    }

    #[test]
    fn aggregate_matches_sum_of_virtual_batches() {
        // Running Algorithm 2 must equal accumulating all virtual
        // batches' gradients directly (same session RNG stream) and
        // stepping once with the mean.
        let (x, labels) = batch(4);
        let mut sgd_a = Sgd::new(0.1);
        let mut m_a = model(2);
        let mut t = trainer(2, 7);
        t.train_large_batch(&mut m_a, &x, &labels, &mut sgd_a).unwrap();

        // Reference: same masked execution (same seed), manual mean.
        let cfg = DarknightConfig::new(2, 1).with_seed(77);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut m_b = model(2);
        let mut grads_sum: Vec<f32> = Vec::new();
        for v in 0..2 {
            let mut vb = Tensor::zeros(&[2, 2, 3, 3]);
            for i in 0..2 {
                vb.batch_item_mut(i).copy_from_slice(x.batch_item(v * 2 + i));
            }
            m_b.zero_grad();
            session.accumulate_gradients(&mut m_b, &vb, &labels[v * 2..(v + 1) * 2]).unwrap();
            let mut flat = Vec::new();
            m_b.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
            if grads_sum.is_empty() {
                grads_sum = flat;
            } else {
                for (a, b) in grads_sum.iter_mut().zip(flat) {
                    *a += b;
                }
            }
        }
        let mut off = 0;
        m_b.visit_params(&mut |_, g| {
            for v in g.as_mut_slice() {
                *v = grads_sum[off] * 0.5;
                off += 1;
            }
        });
        let mut sgd_b = Sgd::new(0.1);
        sgd_b.step(&mut m_b);

        // The two models must end up with identical weights (sealing is
        // lossless; float sum order is identical shard-wise vs direct
        // because shards partition contiguous ranges).
        let snap_b = m_b.snapshot_params();
        let diff = m_a.max_param_diff(&snap_b);
        assert!(diff < 1e-6, "diff={diff}");
    }

    #[test]
    fn non_multiple_batch_rejected() {
        let mut t = trainer(2, 16);
        let mut m = model(3);
        let mut sgd = Sgd::new(0.1);
        let (x, labels) = batch(5);
        assert!(matches!(
            t.train_large_batch(&mut m, &x, &labels, &mut sgd),
            Err(DarknightError::BatchShape { .. })
        ));
    }

    #[test]
    fn training_over_epochs_reduces_loss() {
        let mut t = trainer(2, 64);
        let mut m = model(4);
        let mut sgd = Sgd::new(0.3);
        let (x, labels) = batch(8);
        let first = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap().mean_loss();
        let mut last = first;
        for _ in 0..30 {
            last = t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap().mean_loss();
        }
        assert!(last < first * 0.6, "first={first} last={last}");
    }

    #[test]
    fn shard_size_does_not_change_result() {
        let (x, labels) = batch(4);
        let mut results = Vec::new();
        for shard in [4usize, 64, 4096] {
            let mut t = trainer(2, shard);
            let mut m = model(5);
            let mut sgd = Sgd::new(0.1);
            t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap();
            results.push(m.snapshot_params());
        }
        for pair in results.windows(2) {
            for (a, b) in pair[0].iter().zip(&pair[1]) {
                assert!(a.max_abs_diff(b) < 1e-6);
            }
        }
    }
}
