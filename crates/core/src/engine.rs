//! Staged pipelined execution: overlap TEE encode / GPU compute / TEE
//! decode across independent virtual batches (§7.1).
//!
//! DarKnight's headline performance claim is that consecutive virtual
//! batches are independent, so the TEE can encode batch `t+1` "under
//! the shadow of GPU execution time" for batch `t` (and decode batch
//! `t−1` likewise). This module makes that real for the actual
//! workloads — the Algorithm 2 large-batch trainer and `dk_serve`'s
//! inference workers — rather than a synthetic demo:
//!
//! * The GPU fleet is driven through [`dk_gpu::GpuDispatcher`]:
//!   persistent per-worker OS threads behind bounded queues, fed by
//!   `submit → Ticket → complete`. Accelerator work proceeds while TEE
//!   threads do other batches' masking.
//! * A [`StepPlan`] is extracted from the [`Sequential`] once per step:
//!   weights are frozen within a step, so their quantization happens
//!   once instead of once per virtual batch and layer.
//! * `lanes` TEE threads stream numbered virtual batches through the
//!   three stages — encode (quantize + mask), GPU linear ops, decode +
//!   §4.4 integrity check. While lane A waits on the fleet for batch
//!   `t`, lane B encodes batch `t+1` and lane C decodes batch `t−1`;
//!   each lane owns a [`DarknightSession`] over a shared
//!   [`DispatchClient`], so the *same* protocol code runs in both
//!   modes.
//!
//! **Determinism.** Every per-batch mask, scheme and spot-check draw is
//! a pure function of `(seed, batch number, layer)` — see
//! [`crate::session`] — and gradient/running-stat reductions happen in
//! batch order after the lanes finish. Pipelined execution is therefore
//! **bit-for-bit identical** to sequential execution: same outputs, same
//! weights, same verdicts, honest or tampering fleet (asserted in
//! `tests/pipelined_equivalence.rs`).
//!
//! The EPC budget is split evenly across lanes: in-flight batches
//! genuinely co-occupy the enclave, so each lane accounts against its
//! share.

use crate::config::DarknightConfig;
use crate::error::DarknightError;
use crate::session::{DarknightSession, SessionStats};
use crate::virtual_batch::LargeBatchReport;
use dk_field::{F25, QuantConfig};
use dk_gpu::dispatch::DispatchClient;
use dk_gpu::{GpuCluster, GpuDispatcher, WorkerId};
use dk_linalg::Tensor;
use dk_nn::layers::Layer;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_tee::crypto::{bytes_to_f32s, f32s_to_bytes, SealedBlob};
use dk_tee::{Enclave, EpcConfig, MemoryStats};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Pre-quantized weights for one linear layer of a step plan.
#[derive(Debug, Clone)]
pub(crate) struct PlannedLinear {
    pub(crate) weights_q: Arc<Tensor<F25>>,
    pub(crate) norm_w: f32,
}

/// Per-step execution plan extracted from a [`Sequential`] once:
/// the quantized weights of every offloaded linear layer, indexed by the
/// layer's ordinal in the private executor's walk order (main path
/// before shortcut inside residual blocks).
///
/// Weights are frozen within a step — every virtual batch would quantize
/// the exact same floats to the exact same field elements — so the plan
/// is bit-transparent while removing per-batch re-quantization from the
/// hot path.
#[derive(Debug, Clone)]
pub struct StepPlan {
    linears: Vec<PlannedLinear>,
}

impl StepPlan {
    /// Extracts the plan (quantizes every linear layer's weights).
    ///
    /// # Errors
    ///
    /// [`DarknightError::Quant`] if any weight tensor fails Algorithm 1
    /// quantization.
    pub fn extract(model: &Sequential, quant: QuantConfig) -> Result<Self, DarknightError> {
        fn plan(
            vals: &[f32],
            shape: &[usize],
            quant: QuantConfig,
        ) -> Result<PlannedLinear, DarknightError> {
            let (wq, norm_w) = crate::reference::normalize_quantize(quant, vals)?;
            Ok(PlannedLinear { weights_q: Arc::new(Tensor::from_vec(shape, wq)), norm_w })
        }
        fn walk(
            layers: &[Layer],
            quant: QuantConfig,
            out: &mut Vec<PlannedLinear>,
        ) -> Result<(), DarknightError> {
            for l in layers {
                match l {
                    Layer::Conv2d(c) => {
                        out.push(plan(c.weights().as_slice(), &c.shape().weight_shape(), quant)?);
                    }
                    Layer::Dense(d) => {
                        out.push(plan(
                            d.weights().as_slice(),
                            &[d.out_features(), d.in_features()],
                            quant,
                        )?);
                    }
                    Layer::Residual(r) => {
                        walk(r.main(), quant, out)?;
                        walk(r.shortcut(), quant, out)?;
                    }
                    _ => {}
                }
            }
            Ok(())
        }
        let mut linears = Vec::new();
        walk(model.layers(), quant, &mut linears)?;
        Ok(Self { linears })
    }

    /// Number of offloaded linear layers covered.
    pub fn num_linear_layers(&self) -> usize {
        self.linears.len()
    }

    /// The planned weights for the layer with the given walk ordinal.
    pub(crate) fn linear(&self, ordinal: u64) -> Option<&PlannedLinear> {
        self.linears.get(ordinal as usize)
    }
}

/// Tuning knobs for the pipelined engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// In-flight virtual batches / TEE stage threads. 1 disables
    /// overlap (still dispatcher-backed).
    pub lanes: usize,
    /// Bounded inbox depth of each persistent GPU worker thread.
    pub gpu_queue_depth: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self { lanes: 2, gpu_queue_depth: 8 }
    }
}

impl EngineOptions {
    /// Sets the lane count.
    ///
    /// # Panics
    ///
    /// Panics if `lanes == 0`.
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes > 0, "the engine needs at least one lane");
        self.lanes = lanes;
        self
    }

    /// Sets the per-worker queue depth.
    ///
    /// # Panics
    ///
    /// Panics if `gpu_queue_depth == 0`.
    pub fn with_gpu_queue_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "worker queues need capacity");
        self.gpu_queue_depth = depth;
        self
    }
}

/// One streamed inference result (see
/// [`PipelineEngine::pump_inference`]).
#[derive(Debug)]
pub struct InferenceOutcome {
    /// The caller-assigned sequence number of the input batch.
    pub seq: u64,
    /// The input batch, handed back so the producer can recycle its
    /// buffer for the next batch (the `dk_serve` feeder keeps a pool of
    /// these — steady-state serving stops allocating batch tensors).
    /// `Option` so consumers can `take()` it without a sentinel.
    pub input: Option<Tensor<f32>>,
    /// The decoded logits, or the error that aborted the batch.
    pub output: Result<Tensor<f32>, DarknightError>,
    /// True if the batch needed TEE-side repair (recovery mode caught
    /// active tampering but served anyway).
    pub repaired: bool,
    /// Workers newly quarantined while serving this batch.
    pub quarantined: Vec<WorkerId>,
    /// Lane wall-clock spent on this batch.
    pub service: Duration,
}

/// One batch result of [`PipelineEngine::infer_batches`].
#[derive(Debug)]
pub struct BatchOutcome {
    /// The decoded logits, or the error that aborted the batch.
    pub output: Result<Tensor<f32>, DarknightError>,
    /// True if the batch needed TEE-side repair.
    pub repaired: bool,
}

#[derive(Default)]
struct LaneAgg {
    stats: SessionStats,
    mem: MemoryStats,
}

/// Captures each BatchNorm layer's per-batch statistics (walk order).
fn collect_bn_stats(model: &mut Sequential) -> Vec<(Vec<f32>, Vec<f32>)> {
    let mut v = Vec::new();
    model.visit_leaf_layers_mut(&mut |l| {
        if let Layer::BatchNorm2d(bn) = l {
            if let Some(s) = bn.take_batch_stats() {
                v.push(s);
            }
        }
    });
    v
}

/// Replays one batch's BatchNorm statistics onto the real model, in the
/// same walk order they were captured — restoring the exact sequential
/// running-average chain.
fn replay_bn_stats(model: &mut Sequential, stats: &[(Vec<f32>, Vec<f32>)]) {
    let mut i = 0;
    model.visit_leaf_layers_mut(&mut |l| {
        if let Layer::BatchNorm2d(bn) = l {
            let (mean, var) = &stats[i];
            bn.apply_running_update(mean, var);
            i += 1;
        }
    });
    assert_eq!(i, stats.len(), "BatchNorm layer arity changed mid-step");
}

/// The staged pipelined executor (see module docs).
#[derive(Debug)]
pub struct PipelineEngine {
    cfg: DarknightConfig,
    epc: EpcConfig,
    opts: EngineOptions,
    dispatcher: Arc<GpuDispatcher>,
    /// Aggregation enclave: shares the lane enclaves' code identity, so
    /// it unseals their Algorithm 2 gradient shards.
    tee: Enclave,
    /// Virtual batches are numbered globally across calls, continuing
    /// the same sequence a single sequential session would produce.
    next_batch: u64,
    stats: SessionStats,
    mem: MemoryStats,
    quarantined: Vec<WorkerId>,
}

impl PipelineEngine {
    /// Builds an engine over the fleet: moves the workers onto
    /// persistent dispatcher threads.
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if the fleet is smaller
    /// than the configuration requires.
    pub fn new(
        cfg: DarknightConfig,
        cluster: GpuCluster,
        opts: EngineOptions,
    ) -> Result<Self, DarknightError> {
        Self::with_enclave(cfg, cluster, opts, EpcConfig::default())
    }

    /// [`PipelineEngine::new`] with a custom EPC budget (split evenly
    /// across lanes).
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if the fleet is smaller
    /// than the configuration requires.
    pub fn with_enclave(
        cfg: DarknightConfig,
        cluster: GpuCluster,
        opts: EngineOptions,
        epc: EpcConfig,
    ) -> Result<Self, DarknightError> {
        assert!(opts.lanes > 0, "the engine needs at least one lane");
        if cluster.len() < cfg.workers_required() {
            return Err(DarknightError::InsufficientWorkers {
                required: cfg.workers_required(),
                available: cluster.len(),
            });
        }
        Ok(Self {
            cfg,
            epc,
            opts,
            dispatcher: Arc::new(cluster.into_dispatcher(opts.gpu_queue_depth)),
            tee: Enclave::new(epc, b"darknight-enclave-v1"),
            next_batch: 0,
            stats: SessionStats::default(),
            mem: MemoryStats::default(),
            quarantined: Vec::new(),
        })
    }

    /// The session configuration.
    pub fn config(&self) -> &DarknightConfig {
        &self.cfg
    }

    /// The engine options.
    pub fn options(&self) -> EngineOptions {
        self.opts
    }

    /// Aggregated offload counters across all lanes so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Aggregated enclave counters across all lane enclaves so far
    /// (peaks are summed: lanes are genuinely co-resident).
    pub fn enclave_stats(&self) -> MemoryStats {
        let mut m = self.mem;
        m.merge(&self.tee.stats());
        m
    }

    /// Workers caught lying by the recovery extension, merged across
    /// lanes in virtual-batch order (duplicates removed) — identical to
    /// the list a sequential session accumulates.
    pub fn quarantined(&self) -> &[WorkerId] {
        &self.quarantined
    }

    /// The number of virtual batches consumed so far — the batch cursor
    /// a checkpoint must carry so a resumed engine numbers its next
    /// batch exactly where the interrupted run would have.
    pub fn batches_consumed(&self) -> u64 {
        self.next_batch
    }

    /// Fast-forwards the batch cursor (checkpoint resume): the next
    /// pass will number its first virtual batch `cursor + 1`, so the
    /// derived masks, schemes and spot checks land bit-identical to an
    /// uninterrupted run.
    pub fn resume_at_batch(&mut self, cursor: u64) {
        self.next_batch = cursor;
    }

    /// Seals plaintext with the engine's enclave keys (checkpoint
    /// export). The seal key is derived from the enclave code identity,
    /// so a freshly started engine with the same identity can unseal.
    pub fn seal(&mut self, plaintext: &[u8]) -> SealedBlob {
        self.tee.seal(plaintext)
    }

    /// Unseals a blob produced by [`PipelineEngine::seal`] (or by any
    /// enclave with the same code identity).
    ///
    /// # Errors
    ///
    /// Propagates the enclave's authentication failure if the blob was
    /// tampered with.
    pub fn unseal(&mut self, blob: &SealedBlob) -> Result<Vec<u8>, DarknightError> {
        Ok(self.tee.unseal(blob)?)
    }

    /// Stops the dispatcher threads and returns the fleet with all
    /// accumulated worker state.
    ///
    /// # Panics
    ///
    /// Panics if lane threads are still running (they hold dispatcher
    /// references only during calls, so this cannot happen between
    /// calls).
    pub fn into_cluster(self) -> GpuCluster {
        // Workers lost mid-run were already quarantined (and repaired
        // around) by the lane sessions; `join` respawns them fresh, so
        // the lost list adds nothing here.
        let (cluster, _lost) = Arc::try_unwrap(self.dispatcher)
            .expect("dispatcher still shared — a lane outlived its call")
            .join();
        cluster
    }

    fn lane_session(&self) -> Result<DarknightSession<DispatchClient>, DarknightError> {
        let lane_epc =
            EpcConfig::with_capacity(self.epc.capacity_bytes / self.opts.lanes.max(1));
        DarknightSession::with_backend(
            self.cfg,
            DispatchClient::new(self.dispatcher.clone()),
            lane_epc,
        )
    }

    fn absorb_lane(&mut self, agg: LaneAgg) {
        self.stats.merge(&agg.stats);
        self.mem.merge(&agg.mem);
    }

    fn quarantine_in_order(&mut self, batches: impl Iterator<Item = Vec<WorkerId>>) {
        for delta in batches {
            for w in delta {
                if !self.quarantined.contains(&w) {
                    self.quarantined.push(w);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Inference
    // -----------------------------------------------------------------

    /// Streams virtual batches through the pipeline: reads `(seq, x)`
    /// items from `input` until it disconnects, serves them on `lanes`
    /// concurrent TEE threads over the shared dispatcher, and emits an
    /// [`InferenceOutcome`] per item on `output` (completion order; use
    /// `seq` to reorder). `dk_serve` workers wrap their dispatch queue
    /// in exactly this.
    ///
    /// Batch `seq` is numbered `next_batch + seq + 1`, so results are
    /// bit-for-bit those of a sequential session consuming the same
    /// stream in `seq` order.
    ///
    /// **Sequence numbers are safety-critical**: each batch's masks are
    /// a pure function of its number, so reusing a `seq` would apply
    /// the same one-time masks to two different plaintexts — exactly
    /// the noise-cancellation attack the scheme's freshness rule (§4.1)
    /// exists to prevent. `seq`s must therefore be strictly increasing;
    /// a violation panics rather than serve.
    ///
    /// # Errors
    ///
    /// Plan extraction failure (weight quantization); per-batch errors
    /// travel in the outcomes instead.
    ///
    /// # Panics
    ///
    /// Panics if the input stream yields a non-increasing `seq`.
    pub fn pump_inference(
        &mut self,
        model: &Sequential,
        per_sample: bool,
        input: mpsc::Receiver<(u64, Tensor<f32>)>,
        output: mpsc::Sender<InferenceOutcome>,
    ) -> Result<(), DarknightError> {
        let plan = Arc::new(StepPlan::extract(model, self.cfg.quant())?);
        let base = self.next_batch;
        struct SeqStream {
            rx: mpsc::Receiver<(u64, Tensor<f32>)>,
            last: Option<u64>,
        }
        let input = Mutex::new(SeqStream { rx: input, last: None });
        let agg = Mutex::new(LaneAgg::default());
        let seq_end = AtomicU64::new(0);
        let lanes = self.opts.lanes;
        let quarantine_log = Mutex::new(Vec::<(u64, Vec<WorkerId>)>::new());
        // Construct every lane session before spawning anything, so a
        // bad configuration fails fast with no threads to unwind.
        let mut sessions = Vec::with_capacity(lanes);
        for _ in 0..lanes {
            let mut s = self.lane_session()?;
            s.set_step_plan(Some(plan.clone()));
            sessions.push(s);
        }
        std::thread::scope(|scope| {
            for mut session in sessions {
                let mut lane_model = model.clone();
                let out = output.clone();
                let input = &input;
                let agg = &agg;
                let seq_end = &seq_end;
                let quarantine_log = &quarantine_log;
                scope.spawn(move || {
                    loop {
                        let item = {
                            let mut stream = input.lock().expect("engine input lock");
                            let item = stream.rx.recv();
                            if let Ok((seq, _)) = item {
                                assert!(
                                    stream.last.is_none_or(|l| seq > l),
                                    "pump_inference seq numbers must strictly increase \
                                     (a reused seq would reuse one-time masks)"
                                );
                                stream.last = Some(seq);
                            }
                            item
                        };
                        let Ok((seq, x)) = item else { break };
                        seq_end.fetch_max(seq + 1, Ordering::Relaxed);
                        let t0 = Instant::now();
                        session.begin_numbered_batch(base + seq + 1);
                        let rec0 = session.stats().recoveries;
                        let q0 = session.quarantined().len();
                        let result = if per_sample {
                            session.private_inference_per_sample(&mut lane_model, &x)
                        } else {
                            session.private_inference(&mut lane_model, &x)
                        };
                        let repaired = session.stats().recoveries > rec0;
                        let quarantined = session.quarantined()[q0..].to_vec();
                        if !quarantined.is_empty() {
                            quarantine_log
                                .lock()
                                .expect("quarantine log lock")
                                .push((seq, quarantined.clone()));
                        }
                        if out
                            .send(InferenceOutcome {
                                seq,
                                input: Some(x),
                                output: result,
                                repaired,
                                quarantined,
                                service: t0.elapsed(),
                            })
                            .is_err()
                        {
                            break; // receiver gone: stop consuming
                        }
                    }
                    let mut a = agg.lock().expect("lane agg lock");
                    a.stats.merge(&session.stats());
                    a.mem.merge(&session.enclave_stats());
                });
            }
        });
        drop(output);
        self.next_batch = base + seq_end.load(Ordering::Relaxed);
        let agg = agg.into_inner().expect("lane agg lock");
        self.absorb_lane(agg);
        let mut log = quarantine_log.into_inner().expect("quarantine log lock");
        log.sort_by_key(|(seq, _)| *seq);
        self.quarantine_in_order(log.into_iter().map(|(_, q)| q));
        Ok(())
    }

    /// Pipelined private inference over a slice of pre-formed virtual
    /// batches (each `[K, ...]`); results come back in input order.
    ///
    /// # Errors
    ///
    /// Plan extraction failure; per-batch errors are reported in the
    /// corresponding [`BatchOutcome`].
    pub fn infer_batches(
        &mut self,
        model: &Sequential,
        inputs: &[Tensor<f32>],
        per_sample: bool,
    ) -> Result<Vec<BatchOutcome>, DarknightError> {
        let (tx_in, rx_in) = mpsc::sync_channel(self.opts.lanes.max(1));
        let (tx_out, rx_out) = mpsc::channel();
        std::thread::scope(|scope| -> Result<(), DarknightError> {
            scope.spawn(move || {
                for (i, x) in inputs.iter().enumerate() {
                    if tx_in.send((i as u64, x.clone())).is_err() {
                        return;
                    }
                }
            });
            self.pump_inference(model, per_sample, rx_in, tx_out)
        })?;
        let mut results: Vec<Option<BatchOutcome>> = (0..inputs.len()).map(|_| None).collect();
        for o in rx_out.iter() {
            results[o.seq as usize] =
                Some(BatchOutcome { output: o.output, repaired: o.repaired });
        }
        Ok(results.into_iter().map(|r| r.expect("missing batch outcome")).collect())
    }

    // -----------------------------------------------------------------
    // Training (Algorithm 2, pipelined)
    // -----------------------------------------------------------------

    /// One pipelined Algorithm 2 large-batch step: `x` is `[N, ...]`
    /// with `N = V·K`, `labels.len() == N`. The `V` virtual batches
    /// stream through the lanes (weights are frozen until the step, so
    /// they are independent); each lane seals its per-batch gradient
    /// shards, the engine unseals and aggregates them **in batch
    /// order**, replays BatchNorm running statistics in batch order, and
    /// applies one SGD update — bit-for-bit the sequential
    /// [`crate::virtual_batch::LargeBatchTrainer`] result.
    ///
    /// # Errors
    ///
    /// Any private-execution error (the earliest failing batch wins; no
    /// weight update happens); [`DarknightError::BatchShape`] if `N` is
    /// not a positive multiple of `K`.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != N` or `shard_elems == 0`.
    pub fn train_large_batch(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
        shard_elems: usize,
    ) -> Result<LargeBatchReport, DarknightError> {
        assert!(shard_elems > 0, "shard size must be positive");
        let n = x.shape()[0];
        assert_eq!(labels.len(), n, "one label per sample");
        let k = self.cfg.k();
        if !n.is_multiple_of(k) || n == 0 {
            return Err(DarknightError::BatchShape { expected: k, actual: n });
        }
        let v_count = n / k;
        let plan = Arc::new(StepPlan::extract(model, self.cfg.quant())?);
        let base = self.next_batch;
        let sample_elems: usize = x.shape()[1..].iter().product();
        let mut vb_shape = x.shape().to_vec();
        vb_shape[0] = k;

        struct VbResult {
            loss: f32,
            accuracy: f32,
            blobs: Vec<SealedBlob>,
            bn: Vec<(Vec<f32>, Vec<f32>)>,
            quarantined: Vec<WorkerId>,
        }
        let results: Mutex<Vec<Option<Result<VbResult, DarknightError>>>> =
            Mutex::new((0..v_count).map(|_| None).collect());
        let next = AtomicU64::new(0);
        let abort = AtomicBool::new(false);
        let agg = Mutex::new(LaneAgg::default());
        let proto = &*model;
        let mut sessions = Vec::with_capacity(self.opts.lanes);
        for _ in 0..self.opts.lanes {
            let mut s = self.lane_session()?;
            s.set_step_plan(Some(plan.clone()));
            sessions.push(s);
        }
        std::thread::scope(|scope| {
            for mut session in sessions {
                let mut lane_model = proto.clone();
                let results = &results;
                let next = &next;
                let abort = &abort;
                let agg = &agg;
                let x = &x;
                let vb_shape = &vb_shape;
                scope.spawn(move || {
                    loop {
                        let v = next.fetch_add(1, Ordering::Relaxed) as usize;
                        if v >= v_count || abort.load(Ordering::Relaxed) {
                            break;
                        }
                        let mut vb = Tensor::zeros(vb_shape);
                        for i in 0..k {
                            vb.batch_item_mut(i).copy_from_slice(
                                &x.as_slice()
                                    [(v * k + i) * sample_elems..(v * k + i + 1) * sample_elems],
                            );
                        }
                        let vb_labels = &labels[v * k..(v + 1) * k];
                        lane_model.zero_grad();
                        session.begin_numbered_batch(base + v as u64 + 1);
                        let q0 = session.quarantined().len();
                        let outcome =
                            session.accumulate_gradients(&mut lane_model, &vb, vb_labels);
                        let entry = match outcome {
                            Ok(report) => {
                                // Extract, shard, seal (Algorithm 2
                                // lines 8–10); the blobs are the sealed
                                // shards living in untrusted memory.
                                let flat = lane_model.grad_vector();
                                let blobs: Vec<SealedBlob> = flat
                                    .chunks(shard_elems)
                                    .map(|c| session.enclave_mut().seal(&f32s_to_bytes(c)))
                                    .collect();
                                Ok(VbResult {
                                    loss: report.loss,
                                    accuracy: report.accuracy,
                                    blobs,
                                    bn: collect_bn_stats(&mut lane_model),
                                    quarantined: session.quarantined()[q0..].to_vec(),
                                })
                            }
                            Err(e) => {
                                abort.store(true, Ordering::Relaxed);
                                Err(e)
                            }
                        };
                        results.lock().expect("results lock")[v] = Some(entry);
                    }
                    let mut a = agg.lock().expect("lane agg lock");
                    a.stats.merge(&session.stats());
                    a.mem.merge(&session.enclave_stats());
                });
            }
        });
        self.next_batch = base + v_count as u64;
        self.absorb_lane(agg.into_inner().expect("lane agg lock"));
        let results = results.into_inner().expect("results lock");
        // Earliest failing batch wins (matches sequential order); no
        // weight update on failure.
        let mut per: Vec<VbResult> = Vec::with_capacity(v_count);
        for r in results {
            match r {
                Some(Ok(v)) => per.push(v),
                Some(Err(e)) => return Err(e),
                // Skipped after an abort elsewhere — only reachable
                // together with a Some(Err) at a smaller index... which
                // was returned above, so getting here means a lane
                // raced past the abort flag with no error recorded.
                None => unreachable!("virtual batch skipped without a recorded error"),
            }
        }
        self.quarantine_in_order(per.iter().map(|v| v.quarantined.clone()));

        let mut report = LargeBatchReport { virtual_batches: v_count, ..Default::default() };
        for v in &per {
            report.losses.push(v.loss);
            report.accuracies.push(v.accuracy);
            report.seal_ops += v.blobs.len() as u64;
            report.bytes_evicted += v.blobs.iter().map(|b| b.len() as u64).sum::<u64>();
        }

        // UpdateAggregation (Algorithm 2 lines 14–21), shard-wise and in
        // batch order — the identical float-sum order to sequential.
        let total: usize = model.grad_vector().len();
        let shard_count = total.div_ceil(shard_elems);
        let mut aggregate = vec![0.0f32; total];
        for s in 0..shard_count {
            let lo = s * shard_elems;
            let mut acc: Vec<f32> = Vec::new();
            for vb in &per {
                report.bytes_reloaded += vb.blobs[s].len() as u64;
                let bytes = self.tee.unseal(&vb.blobs[s])?;
                report.unseal_ops += 1;
                let shard = bytes_to_f32s(&bytes);
                if acc.is_empty() {
                    acc = shard;
                } else {
                    for (a, b) in acc.iter_mut().zip(shard) {
                        *a += b;
                    }
                }
            }
            aggregate[lo..lo + acc.len()].copy_from_slice(&acc);
        }
        let inv_v = 1.0 / v_count as f32;
        for g in aggregate.iter_mut() {
            *g *= inv_v;
        }
        model.set_grad_vector(&aggregate);
        // BatchNorm running statistics are order-sensitive: replay each
        // batch's captured stats onto the real model in batch order.
        for vb in &per {
            replay_bn_stats(model, &vb.bn);
        }
        sgd.step(model);
        Ok(report)
    }
}

// ---------------------------------------------------------------------
// Benchmark harness: sequential vs pipelined over real models
// ---------------------------------------------------------------------

/// Wall-clock of the two execution modes over the same workload (the
/// successor of the removed `dk_core::pipeline::compare_pipelining` toy;
/// this one runs the real engine against the real sequential session).
#[derive(Debug, Clone, Copy)]
pub struct PipelineReport {
    /// Sequential (blocking session) wall time.
    pub sequential: Duration,
    /// Pipelined (engine) wall time.
    pub pipelined: Duration,
    /// Virtual batches executed per mode.
    pub batches: usize,
}

impl PipelineReport {
    /// Speedup of pipelined over sequential execution.
    pub fn speedup(&self) -> f64 {
        self.sequential.as_secs_f64() / self.pipelined.as_secs_f64().max(1e-12)
    }
}

/// Runs `epochs` Algorithm 2 large-batch steps twice — sequential
/// trainer vs pipelined engine, identical seeds and fleet — and returns
/// the wall-clock report plus the final max parameter difference (which
/// must be 0.0: the modes are bit-identical).
///
/// # Errors
///
/// Any private-execution error in either mode.
#[allow(clippy::too_many_arguments)]
pub fn compare_training_modes(
    cfg: DarknightConfig,
    fleet: &GpuCluster,
    model: &Sequential,
    x: &Tensor<f32>,
    labels: &[usize],
    epochs: usize,
    lr: f32,
    opts: EngineOptions,
) -> Result<(PipelineReport, f32), DarknightError> {
    let shard = 4096;
    let batches = (x.shape()[0] / cfg.k()) * epochs;

    let mut m_seq = model.clone();
    let mut trainer = crate::virtual_batch::LargeBatchTrainer::new(
        DarknightSession::new(cfg, fleet.fork(cfg.seed()))?,
        shard,
    );
    let mut sgd = Sgd::new(lr);
    let t0 = Instant::now();
    for _ in 0..epochs {
        trainer.train_large_batch(&mut m_seq, x, labels, &mut sgd)?;
    }
    let sequential = t0.elapsed();

    let mut m_pipe = model.clone();
    let mut engine = PipelineEngine::new(cfg, fleet.fork(cfg.seed()), opts)?;
    let mut sgd = Sgd::new(lr);
    let t0 = Instant::now();
    for _ in 0..epochs {
        engine.train_large_batch(&mut m_pipe, x, labels, &mut sgd, shard)?;
    }
    let pipelined = t0.elapsed();

    let diff = m_seq.max_param_diff(&m_pipe.snapshot_params());
    Ok((PipelineReport { sequential, pipelined, batches }, diff))
}

/// Runs a stream of inference virtual batches twice — sequential session
/// vs pipelined engine — and returns the wall-clock report plus the max
/// absolute output difference (must be 0.0).
///
/// # Errors
///
/// Any private-execution error in either mode.
pub fn compare_inference_modes(
    cfg: DarknightConfig,
    fleet: &GpuCluster,
    model: &Sequential,
    inputs: &[Tensor<f32>],
    opts: EngineOptions,
) -> Result<(PipelineReport, f32), DarknightError> {
    let mut m_seq = model.clone();
    let mut session = DarknightSession::new(cfg, fleet.fork(cfg.seed()))?;
    let t0 = Instant::now();
    let mut seq_out = Vec::with_capacity(inputs.len());
    for x in inputs {
        seq_out.push(session.private_inference(&mut m_seq, x)?);
    }
    let sequential = t0.elapsed();

    let mut engine = PipelineEngine::new(cfg, fleet.fork(cfg.seed()), opts)?;
    let t0 = Instant::now();
    let outcomes = engine.infer_batches(model, inputs, false)?;
    let pipelined = t0.elapsed();

    let mut diff = 0.0f32;
    for (s, p) in seq_out.iter().zip(&outcomes) {
        match &p.output {
            Ok(y) => diff = diff.max(s.max_abs_diff(y)),
            Err(e) => return Err(e.clone()),
        }
    }
    Ok((PipelineReport { sequential, pipelined, batches: inputs.len() }, diff))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_nn::layers::{Dense, Flatten, Relu};

    fn model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(18, 8, seed)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(8, 3, seed ^ 1)),
        ])
    }

    #[test]
    fn step_plan_covers_linear_layers_in_walk_order() {
        let m = model(1);
        let plan = StepPlan::extract(&m, QuantConfig::new(6)).unwrap();
        assert_eq!(plan.num_linear_layers(), 2);
        assert_eq!(plan.linear(0).unwrap().weights_q.shape(), &[8, 18]);
        assert_eq!(plan.linear(1).unwrap().weights_q.shape(), &[3, 8]);
        assert!(plan.linear(2).is_none());
    }

    #[test]
    fn engine_inference_matches_sequential_bitwise() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let fleet = GpuCluster::honest(cfg.workers_required(), 9);
        let m = model(2);
        let inputs: Vec<Tensor<f32>> = (0..6)
            .map(|b| {
                Tensor::from_fn(&[2, 2, 3, 3], move |i| ((i + b) % 11) as f32 * 0.05 - 0.2)
            })
            .collect();
        let (report, diff) =
            compare_inference_modes(cfg, &fleet, &m, &inputs, EngineOptions::default()).unwrap();
        assert_eq!(report.batches, 6);
        assert_eq!(diff, 0.0, "pipelined inference must be bit-identical");
    }

    #[test]
    fn engine_training_matches_sequential_bitwise() {
        let cfg = DarknightConfig::new(2, 1).with_seed(77);
        let fleet = GpuCluster::honest(cfg.workers_required(), 21);
        let m = model(3);
        let x = Tensor::from_fn(&[8, 2, 3, 3], |i| ((i % 11) as f32 - 5.0) * 0.08);
        let labels: Vec<usize> = (0..8).map(|i| i % 3).collect();
        let (report, diff) =
            compare_training_modes(cfg, &fleet, &m, &x, &labels, 3, 0.1, EngineOptions::default())
                .unwrap();
        assert_eq!(report.batches, 12);
        assert_eq!(diff, 0.0, "pipelined training must be bit-identical");
    }

    #[test]
    fn engine_rejects_small_fleet() {
        let cfg = DarknightConfig::new(4, 2).with_integrity(true); // needs 7
        let fleet = GpuCluster::honest(5, 3);
        assert!(matches!(
            PipelineEngine::new(cfg, fleet, EngineOptions::default()),
            Err(DarknightError::InsufficientWorkers { required: 7, available: 5 })
        ));
    }

    #[test]
    fn into_cluster_returns_fleet_state() {
        let cfg = DarknightConfig::new(2, 1);
        let fleet = GpuCluster::honest(cfg.workers_required(), 4);
        let mut engine = PipelineEngine::new(cfg, fleet, EngineOptions::default()).unwrap();
        let m = model(5);
        let x = Tensor::from_fn(&[2, 2, 3, 3], |i| (i % 5) as f32 * 0.1);
        let _ = engine.infer_batches(&m, &[x], false).unwrap();
        assert!(engine.stats().linear_jobs > 0);
        let cluster = engine.into_cluster();
        assert!(cluster.total_macs() > 0, "worker state must survive the dispatcher");
    }

    /// Regression: lane sessions must retire their final batch on drop —
    /// the dispatcher workers are persistent, so a leaked context would
    /// accumulate activation-sized encodings on every engine call.
    #[test]
    fn retired_lanes_leave_no_stored_encodings_behind() {
        let cfg = DarknightConfig::new(2, 1);
        let fleet = GpuCluster::honest(cfg.workers_required(), 6);
        let mut engine = PipelineEngine::new(cfg, fleet, EngineOptions::default()).unwrap();
        let m = model(7);
        let inputs: Vec<Tensor<f32>> =
            (0..5).map(|b| Tensor::from_fn(&[2, 2, 3, 3], move |i| ((i + b) % 5) as f32 * 0.1)).collect();
        let n_batches = inputs.len() as u64;
        let _ = engine.infer_batches(&m, &inputs, false).unwrap();
        let cluster = engine.into_cluster();
        for w in cluster.workers() {
            for batch in 1..=n_batches {
                for layer in 0..2u64 {
                    assert!(
                        w.stored_encoding((batch << 32) + layer).is_none(),
                        "worker {} leaked encoding for batch {batch} layer {layer}",
                        w.id()
                    );
                }
            }
        }
    }
}
