//! The DarKnight encoding/decoding scheme (§4 of the paper).
//!
//! One [`EncodingScheme`] instance covers one virtual batch:
//!
//! * **Forward** (Eq. 1/10): `x̄_j = Σ_i A[i][j]·x_i + Σ_t A[K+t][j]·r_t`
//!   for `j = 1..S(+1)`, with `A = [A1; A2]` secret inside the TEE and
//!   the noise block `A2` built as an MDS (Vandermonde) matrix so any
//!   `≤ M` of its columns are full rank — the §5 collusion condition.
//! * **Forward decode** (Eq. 2): `Y = Ȳ·A_sq^{-1}`; the first `K`
//!   columns are the true outputs, the remaining `M` are `⟨W, r_t⟩` and
//!   are dropped (the paper's "that value is just dropped").
//! * **Integrity** (§4.4): with one extra masked equation, the decoded
//!   `Y` must also satisfy the redundant column; any additive error from
//!   up to `K'−1` workers breaks that consistency with probability
//!   `1 − 1/p` per element.
//! * **Backward** (Eq. 4–6/11–13): public `B` and secret diagonal `Γ`
//!   satisfy `Bᵀ·Γ·Aᵀ = [I_K | 0]`, so
//!   `Σ_j γ_j·Eq_j = Σ_i ⟨δ_i, x_i⟩` — the aggregate weight update —
//!   decodes with a single γ-weighted sum.

use crate::error::DarknightError;
use dk_field::{F25, FieldMatrix, FieldRng, P25};
use dk_linalg::coded::{CHECK_MAX_KDIM, CHECK_MAX_ROWS};
use dk_linalg::{
    coded_axpy_acc, coded_combine_acc, coded_combine_check_write, coded_combine_write, Workspace,
};

/// Columns per fused-noise draw: one `FieldRng` chunk is generated,
/// applied to every encoding row while cache-hot, then overwritten by
/// the next chunk — the full noise row never exists. Sized well inside
/// L1/L2 (32 KiB of `F25`s).
const NOISE_CHUNK: usize = 4096;

/// The coded kernels keep the whole stacked-row table on the stack when
/// the virtual batch fits this bound (`k+m` rows); larger schemes fall
/// back to one pass over the inputs plus one over the noise, which is
/// bit-identical (the passes split at a canonical fold boundary).
const XROWS_MAX: usize = 32;

/// Takes `rows` empty row buffers with capacity `n` plus their outer
/// vector from the workspace — the output shape of every streaming
/// coded combine. The rows are **not** zeroed: the `_write` kernels
/// store every element, so pre-zeroing would only add a `memset` plus a
/// read-back of zeroes to a memory-bound pass.
fn take_row_bufs(ws: &mut Workspace, rows: usize, n: usize) -> Vec<Vec<F25>> {
    let mut out: Vec<Vec<F25>> = ws.take_cleared(rows);
    for _ in 0..rows {
        let row = ws.take_cleared::<F25>(n);
        out.push(row);
    }
    out
}

/// Reusable buffers for in-place scheme regeneration. No semantic
/// content — just warm capacity carried across virtual batches so
/// resampling `A`, `B`, `Γ` every batch stops touching the allocator.
#[derive(Debug, Clone, Default)]
struct SchemeScratch {
    a_sq: FieldMatrix<P25>,
    a_sq_inv: FieldMatrix<P25>,
    inv_work: FieldMatrix<P25>,
    pivots: Vec<F25>,
    prefix: Vec<F25>,
    points: Vec<F25>,
    scales: Vec<F25>,
    gamma_inv: Vec<F25>,
}

/// The per-virtual-batch masking scheme.
#[derive(Debug, Clone)]
pub struct EncodingScheme {
    k: usize,
    m: usize,
    integrity: bool,
    /// `A ∈ F^{(K+M) × S_cols}`; columns are encodings.
    a: FieldMatrix<P25>,
    /// `Aᵀ`, cached so each encoding row is one contiguous
    /// coefficient-row × stacked-input matmul.
    a_t: FieldMatrix<P25>,
    /// `(A_sq⁻¹)ᵀ`, cached for row-at-a-time forward decoding.
    a_sq_inv_t: FieldMatrix<P25>,
    /// `A_sq⁻¹ · a_last`: folds the §4.4 integrity prediction into a
    /// single row-matmul against the *raw* worker outputs
    /// (`a_lastᵀ·Y = (A_sq⁻¹·a_last)ᵀ·Ȳ`, exactly, in the field).
    /// Empty when integrity is off.
    integrity_w: Vec<F25>,
    /// Public `B ∈ F^{S_cols × K}` (the redundant row, if any, is zero).
    b: FieldMatrix<P25>,
    /// Secret diagonal `Γ` entries.
    gamma: Vec<F25>,
    /// Regeneration scratch (see [`SchemeScratch`]).
    scratch: SchemeScratch,
}

impl EncodingScheme {
    /// Samples a fresh scheme (the paper regenerates `A`, `B`, `Γ` for
    /// every virtual batch — §4.1 "dynamically generated for each
    /// virtual batch").
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `m == 0`.
    pub fn generate(k: usize, m: usize, integrity: bool, rng: &mut FieldRng) -> Self {
        assert!(k > 0 && m > 0, "k and m must be positive");
        let s_sq = k + m;
        let s_cols = s_sq + usize::from(integrity);
        let mut scheme = Self {
            k,
            m,
            integrity,
            a: FieldMatrix::zeros(s_sq, s_cols),
            a_t: FieldMatrix::zeros(s_cols, s_sq),
            a_sq_inv_t: FieldMatrix::zeros(s_sq, s_sq),
            integrity_w: Vec::new(),
            b: FieldMatrix::zeros(s_cols, k),
            gamma: Vec::new(),
            scratch: SchemeScratch::default(),
        };
        scheme.regenerate(rng);
        scheme
    }

    /// Resamples `A`, `B`, `Γ` in place for the next virtual batch —
    /// the same draw as [`EncodingScheme::generate`] (bit-identical
    /// output and RNG consumption given the same RNG state), but reusing
    /// every coefficient buffer, so a warm session's per-batch key
    /// refresh performs zero heap allocations.
    pub fn regenerate(&mut self, rng: &mut FieldRng) {
        let (k, m, integrity) = (self.k, self.m, self.integrity);
        let s_sq = k + m;
        let s_cols = s_sq + usize::from(integrity);
        let scr = &mut self.scratch;
        if scr.a_sq.rows() != s_sq {
            scr.a_sq = FieldMatrix::zeros(s_sq, s_sq);
            scr.a_sq_inv = FieldMatrix::zeros(s_sq, s_sq);
            scr.inv_work = FieldMatrix::zeros(s_sq, s_sq);
        }
        // Rejection-sample A = [A1; A2] until its leading square block
        // is invertible, drawing in the historical order: A1's
        // k·s_cols uniforms, then the Vandermonde points of the MDS
        // noise block, then its column scales.
        loop {
            for v in self.a.as_mut_slice()[..k * s_cols].iter_mut() {
                *v = rng.uniform();
            }
            // Inline mds_matrix(m, s_cols): distinct nonzero points
            // (rejection), then one nonzero scale per column.
            scr.points.clear();
            while scr.points.len() < s_cols {
                let x = rng.uniform_nonzero::<P25>();
                if !scr.points.contains(&x) {
                    scr.points.push(x);
                }
            }
            scr.scales.clear();
            scr.scales.extend((0..s_cols).map(|_| rng.uniform_nonzero::<P25>()));
            for r in 0..m {
                for c in 0..s_cols {
                    self.a[(k + r, c)] = scr.points[c].pow(r as u64) * scr.scales[c];
                }
            }
            for r in 0..s_sq {
                for c in 0..s_sq {
                    scr.a_sq[(r, c)] = self.a[(r, c)];
                }
            }
            let ok = scr.a_sq.inverse_into(
                &mut scr.a_sq_inv,
                &mut scr.inv_work,
                &mut scr.pivots,
                &mut scr.prefix,
            );
            if ok {
                break;
            }
        }
        self.gamma.clear();
        self.gamma.extend((0..s_cols).map(|_| rng.uniform_nonzero::<P25>()));
        // (Aᵀ_sq)⁻¹ = (A_sq⁻¹)ᵀ — reuse the inverse the sampling loop
        // already produced instead of running Gauss–Jordan a second time.
        for r in 0..s_sq {
            for c in 0..s_sq {
                self.a_sq_inv_t[(r, c)] = scr.a_sq_inv[(c, r)];
            }
        }
        // Bᵀ = [I_K | 0] · (Aᵀ_sq)^{-1} · Γ^{-1}, so Bᵀ·Γ·Aᵀ_sq = [I | 0].
        // The identity selector keeps the first K rows of (A_sq⁻¹)ᵀ and
        // the diagonal right-factor is a column scaling, so the product
        // collapses to one multiply per entry — exact in the field,
        // bit-identical to materializing the sparse matrix products.
        scr.gamma_inv.clear();
        scr.gamma_inv.extend_from_slice(&self.gamma[..s_sq]);
        F25::batch_invert_with(&mut scr.gamma_inv, &mut scr.prefix);
        self.b.as_mut_slice().fill(F25::ZERO);
        for j in 0..s_sq {
            for i in 0..k {
                self.b[(j, i)] = self.a_sq_inv_t[(i, j)] * scr.gamma_inv[j];
            }
        }
        // Redundant row (if any) stays zero: the spare worker is the
        // integrity watchdog, not a gradient contributor.
        for r in 0..s_sq {
            for c in 0..s_cols {
                self.a_t[(c, r)] = self.a[(r, c)];
            }
        }
        self.integrity_w.clear();
        if integrity {
            let last = s_cols - 1;
            scr.points.clear(); // reused as a_last
            scr.points.extend((0..s_sq).map(|c| self.a[(c, last)]));
            scr.a_sq_inv.mul_vec_into(&scr.points, &mut self.integrity_w);
        }
    }

    /// Virtual batch size `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Noise vector count `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Total encodings produced (`K+M`, `+1` with integrity).
    pub fn num_encodings(&self) -> usize {
        self.a.cols()
    }

    /// Whether a redundant integrity column exists.
    pub fn has_integrity(&self) -> bool {
        self.integrity
    }

    /// The public `B` row for worker `j` (what the paper ships to GPUs).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn beta_row(&self, j: usize) -> Vec<F25> {
        self.b.row(j).to_vec()
    }

    /// The secret noise block `A2` columns (white-box collusion audits
    /// only; a deployment never reveals this).
    pub fn a2_block(&self) -> FieldMatrix<P25> {
        let rows: Vec<usize> = (self.k..self.k + self.m).collect();
        let cols: Vec<usize> = (0..self.a.cols()).collect();
        self.a.submatrix(&rows, &cols)
    }

    /// Encodes a virtual batch: `K` input vectors and `M` noise vectors,
    /// all of length `n`, into `num_encodings()` masked vectors.
    ///
    /// # Panics
    ///
    /// Panics if counts or lengths are inconsistent.
    pub fn encode(&self, inputs: &[Vec<F25>], noise: &[Vec<F25>]) -> Vec<Vec<F25>> {
        self.encode_ws(inputs, noise, &mut Workspace::new())
    }

    /// [`EncodingScheme::encode`] with the transient input-stacking
    /// buffer, the encoding rows and their outer vector all drawn from
    /// `ws`. The rows leave the TEE for the accelerators, but the
    /// session recycles them back into this pool once the workers'
    /// jobs retire, so the steady state allocates nothing.
    ///
    /// # Panics
    ///
    /// Panics if counts or lengths are inconsistent.
    pub fn encode_ws(
        &self,
        inputs: &[Vec<F25>],
        noise: &[Vec<F25>],
        ws: &mut Workspace,
    ) -> Vec<Vec<F25>> {
        assert_eq!(inputs.len(), self.k, "expected K input vectors");
        assert_eq!(noise.len(), self.m, "expected M noise vectors");
        let n = inputs[0].len();
        let kdim = self.k + self.m;
        // X̄ = Aᵀ[s_cols × (K+M)] · X[(K+M) × n], streamed: the input
        // and noise rows are referenced in place (no stacking copy) and
        // every column chunk of them is read exactly once while **all**
        // s_cols encodings are produced in that pass — the coefficient
        // matrix is the thing that stays resident, not the data. Write
        // mode: the recycled output rows are never zeroed or read.
        let mut enc = take_row_bufs(ws, self.a.cols(), n);
        if kdim <= XROWS_MAX {
            let mut xr: [&[F25]; XROWS_MAX] = [&[]; XROWS_MAX];
            for (d, s) in xr.iter_mut().zip(inputs.iter().chain(noise)) {
                *d = s.as_slice();
            }
            coded_combine_write(self.a_t.as_slice(), kdim, 0, &xr[..kdim], &mut enc, n);
        } else {
            coded_combine_write(self.a_t.as_slice(), kdim, 0, inputs, &mut enc, n);
            coded_combine_acc(self.a_t.as_slice(), kdim, self.k, noise, &mut enc, n);
        }
        enc
    }

    /// [`EncodingScheme::encode_ws`] with the noise rows **fused into
    /// the stream**: instead of materializing `M` noise vectors, the
    /// caller's RNG is drawn in row-major, ascending-column chunks and
    /// each chunk is applied to every encoding while still in cache.
    ///
    /// Draw-order faithful: the chunks consume exactly the draws (count
    /// and order) that filling `M` length-`n` rows with
    /// `uniform_extend` would, so the RNG stream position afterwards
    /// and every output bit match the materialized path.
    ///
    /// # Panics
    ///
    /// Panics if counts or lengths are inconsistent.
    pub fn encode_fused_ws(
        &self,
        inputs: &[Vec<F25>],
        nrng: &mut FieldRng,
        ws: &mut Workspace,
    ) -> Vec<Vec<F25>> {
        assert_eq!(inputs.len(), self.k, "expected K input vectors");
        let n = inputs[0].len();
        let kdim = self.k + self.m;
        let mut enc = take_row_bufs(ws, self.a.cols(), n);
        coded_combine_write(self.a_t.as_slice(), kdim, 0, inputs, &mut enc, n);
        let mut chunk = ws.take_cleared::<F25>(NOISE_CHUNK.min(n));
        for t in 0..self.m {
            let mut j0 = 0;
            while j0 < n {
                let w = (n - j0).min(NOISE_CHUNK);
                chunk.clear();
                nrng.uniform_extend::<P25>(w, &mut chunk);
                coded_axpy_acc(self.a_t.as_slice(), kdim, self.k + t, &chunk, &mut enc, j0);
                j0 += w;
            }
        }
        ws.give(chunk);
        enc
    }

    /// Computes a single encoding `x̄_j` — bit-identical to
    /// `encode(...)[j]`, at `1/num_encodings()` of the work. The
    /// backward spot check regenerates exactly one TEE-chosen encoding,
    /// so it calls this instead of materializing the whole batch. The
    /// row is written into a workspace buffer; give it back when done.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or counts/lengths are inconsistent.
    pub fn encode_row_ws(
        &self,
        j: usize,
        inputs: &[Vec<F25>],
        noise: &[Vec<F25>],
        ws: &mut Workspace,
    ) -> Vec<F25> {
        assert!(j < self.a.cols(), "encoding index out of range");
        assert_eq!(inputs.len(), self.k, "expected K input vectors");
        assert_eq!(noise.len(), self.m, "expected M noise vectors");
        let n = inputs[0].len();
        let kdim = self.k + self.m;
        let mut row = ws.take_cleared::<F25>(n);
        let outs = std::slice::from_mut(&mut row);
        if kdim <= XROWS_MAX {
            let mut xr: [&[F25]; XROWS_MAX] = [&[]; XROWS_MAX];
            for (d, s) in xr.iter_mut().zip(inputs.iter().chain(noise)) {
                *d = s.as_slice();
            }
            coded_combine_write(self.a_t.row(j), kdim, 0, &xr[..kdim], outs, n);
        } else {
            coded_combine_write(self.a_t.row(j), kdim, 0, inputs, outs, n);
            coded_combine_acc(self.a_t.row(j), kdim, self.k, noise, outs, n);
        }
        row
    }

    /// Decodes GPU outputs `ȳ_j = ⟨W, x̄_j⟩` back to the `K` true
    /// outputs, verifying the redundant equation when enabled.
    ///
    /// Returns the `K` decoded output vectors.
    ///
    /// # Errors
    ///
    /// [`DarknightError::IntegrityViolation`] if the redundant equation
    /// is inconsistent (some worker tampered with its result).
    ///
    /// # Panics
    ///
    /// Panics if the output count or lengths are inconsistent.
    pub fn decode_forward<S: AsRef<[F25]> + Sync>(
        &self,
        outputs: &[S],
        layer_id: u64,
    ) -> Result<Vec<Vec<F25>>, DarknightError> {
        self.decode_forward_ws(outputs, layer_id, &mut Workspace::new())
    }

    /// [`EncodingScheme::decode_forward`] with the stacking buffer, the
    /// integrity-prediction row and the decoded output rows all drawn
    /// from `ws`. Give the returned rows (and their outer vector) back
    /// once consumed to keep the steady state allocation-free.
    ///
    /// # Errors
    ///
    /// [`DarknightError::IntegrityViolation`] if the redundant equation
    /// is inconsistent (some worker tampered with its result).
    ///
    /// # Panics
    ///
    /// Panics if the output count or lengths are inconsistent.
    pub fn decode_forward_ws<S: AsRef<[F25]> + Sync>(
        &self,
        outputs: &[S],
        layer_id: u64,
        ws: &mut Workspace,
    ) -> Result<Vec<Vec<F25>>, DarknightError> {
        let s_sq = self.k + self.m;
        assert_eq!(outputs.len(), self.num_encodings(), "one output per encoding");
        let n = outputs[0].as_ref().len();
        for o in outputs {
            assert_eq!(o.as_ref().len(), n, "all outputs must have equal length");
        }
        // Y = (A_sq⁻¹)ᵀ · Ȳ, streamed over the worker output rows in
        // place (no stacking copy). Only the K true-output rows are ever
        // computed, and the §4.4 integrity check — the precomputed
        // `w = A_sq⁻¹·a_last` dotted against the same Ȳ rows and
        // compared to the redundant output (exactly `a_lastᵀ·Y`; field
        // arithmetic is associative and exact) — is fused into the same
        // pass, so every column chunk of Ȳ is read exactly once while
        // it is in cache.
        let ybar = &outputs[..s_sq];
        let mut decoded = take_row_bufs(ws, self.k, n);
        let mismatches = if self.integrity {
            let redundant = outputs[self.a.cols() - 1].as_ref();
            if s_sq <= CHECK_MAX_KDIM && self.k <= CHECK_MAX_ROWS {
                coded_combine_check_write(
                    self.a_sq_inv_t.as_slice(),
                    s_sq,
                    0,
                    ybar,
                    &mut decoded,
                    n,
                    &self.integrity_w,
                    redundant,
                )
            } else {
                // Shapes past the fused kernel's fan-out limit: same
                // math in two streamed passes.
                let mut pred = ws.take_cleared::<F25>(n);
                coded_combine_write(
                    &self.integrity_w,
                    s_sq,
                    0,
                    ybar,
                    std::slice::from_mut(&mut pred),
                    n,
                );
                let bad = pred.iter().zip(redundant.iter()).filter(|(p, r)| p != r).count();
                ws.give(pred);
                coded_combine_write(self.a_sq_inv_t.as_slice(), s_sq, 0, ybar, &mut decoded, n);
                bad
            }
        } else {
            coded_combine_write(self.a_sq_inv_t.as_slice(), s_sq, 0, ybar, &mut decoded, n);
            0
        };
        if mismatches > 0 {
            for row in decoded.drain(..) {
                ws.give(row);
            }
            ws.give(decoded);
            return Err(DarknightError::IntegrityViolation {
                layer_id,
                phase: "forward",
                mismatches,
            });
        }
        Ok(decoded)
    }

    /// Decodes the aggregate backward term: `Σ_j γ_j·Eq_j` over the
    /// `K+M` gradient-bearing equations (Eq. 6). The result is
    /// `Σ_i ⟨δ_i, x_i⟩` at product scale; the `1/K` averaging happens in
    /// the float domain after dequantization.
    ///
    /// # Panics
    ///
    /// Panics if the equation count or lengths are inconsistent.
    pub fn decode_backward<S: AsRef<[F25]> + Sync>(&self, eqs: &[S]) -> Vec<F25> {
        self.decode_backward_ws(eqs, &mut Workspace::new())
    }

    /// [`EncodingScheme::decode_backward`] with the stacking buffer and
    /// the aggregate row drawn from `ws` (give the returned row back
    /// once dequantized).
    ///
    /// # Panics
    ///
    /// Panics if the equation count or lengths are inconsistent.
    pub fn decode_backward_ws<S: AsRef<[F25]> + Sync>(&self, eqs: &[S], ws: &mut Workspace) -> Vec<F25> {
        let s_sq = self.k + self.m;
        assert!(eqs.len() >= s_sq, "need at least K+M equations");
        let n = eqs[0].as_ref().len();
        // γᵀ[1 × s_sq] · Eq[s_sq × n]: the γ-weighted sum as one
        // streamed pass over the equation rows in place.
        let mut out = ws.take_cleared::<F25>(n);
        coded_combine_write(
            &self.gamma[..s_sq],
            s_sq,
            0,
            &eqs[..s_sq],
            std::slice::from_mut(&mut out),
            n,
        );
        out
    }

    /// Verifies the defining relation `Bᵀ·Γ·Aᵀ = [I_K | 0]` (Eq. 5/13).
    /// Exposed so tests can check every sampled instance.
    pub fn verify_relation(&self) -> bool {
        let s_cols = self.a.cols();
        let gamma_diag = FieldMatrix::diagonal(&self.gamma);
        let bt = self.b.transpose(); // K × S_cols
        let product = &(&bt * &gamma_diag) * &self.a.transpose(); // K × (K+M)
        for i in 0..self.k {
            for c in 0..self.k + self.m {
                let expect = if i == c { F25::ONE } else { F25::ZERO };
                if product[(i, c)] != expect {
                    return false;
                }
            }
        }
        let _ = s_cols;
        true
    }

    /// White-box view of `Aᵀ` for equivalence tests (coefficient row
    /// `j` = encoding `j`). Not part of the stable API.
    #[doc(hidden)]
    pub fn a_transpose(&self) -> &FieldMatrix<P25> {
        &self.a_t
    }

    /// White-box view of `(A_sq⁻¹)ᵀ` for equivalence tests. Not part of
    /// the stable API.
    #[doc(hidden)]
    pub fn a_sq_inv_transpose(&self) -> &FieldMatrix<P25> {
        &self.a_sq_inv_t
    }

    /// White-box view of the precomputed `A_sq⁻¹·a_last` integrity row
    /// (empty when integrity is off). Not part of the stable API.
    #[doc(hidden)]
    pub fn integrity_weights(&self) -> &[F25] {
        &self.integrity_w
    }

    /// White-box view of the secret `Γ` diagonal for equivalence tests.
    /// Not part of the stable API.
    #[doc(hidden)]
    pub fn gamma_coeffs(&self) -> &[F25] {
        &self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::vandermonde::is_mds;

    fn rng() -> FieldRng {
        FieldRng::seed_from(0xC0DE)
    }

    /// Builds synthetic "GPU outputs" for a *scalar linear functional*
    /// `f(v) = Σ_e w_e v_e`, which commutes with the encoding exactly
    /// like any bilinear op.
    fn apply_functional(w: &[F25], v: &[F25]) -> F25 {
        w.iter().zip(v).map(|(&a, &b)| a * b).sum()
    }

    #[test]
    fn encode_decode_round_trip_no_integrity() {
        let mut r = rng();
        for (k, m) in [(1, 1), (2, 1), (4, 1), (2, 3), (3, 2)] {
            let scheme = EncodingScheme::generate(k, m, false, &mut r);
            let n = 16;
            let inputs: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(n)).collect();
            let noise: Vec<Vec<F25>> = (0..m).map(|_| r.uniform_vec::<P25>(n)).collect();
            let encodings = scheme.encode(&inputs, &noise);
            assert_eq!(encodings.len(), k + m);
            // "GPU" applies a random linear functional elementwise — here
            // we simply treat identity: ȳ_j = x̄_j (identity is bilinear
            // with W = I).
            let decoded = scheme.decode_forward(&encodings, 0).unwrap();
            assert_eq!(decoded, inputs, "k={k} m={m}");
        }
    }

    #[test]
    fn decode_commutes_with_linear_op() {
        let mut r = rng();
        let (k, m, n, out_n) = (3, 2, 12, 5);
        let scheme = EncodingScheme::generate(k, m, true, &mut r);
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| r.uniform_vec::<P25>(n)).collect();
        let encodings = scheme.encode(&inputs, &noise);
        // W is an out_n x n matrix; GPUs compute W · x̄_j.
        let w: Vec<Vec<F25>> = (0..out_n).map(|_| r.uniform_vec::<P25>(n)).collect();
        let gpu = |v: &Vec<F25>| -> Vec<F25> { w.iter().map(|row| apply_functional(row, v)).collect() };
        let outputs: Vec<Vec<F25>> = encodings.iter().map(gpu).collect();
        let decoded = scheme.decode_forward(&outputs, 0).unwrap();
        for i in 0..k {
            assert_eq!(decoded[i], gpu(&inputs[i]), "input {i}");
        }
    }

    #[test]
    fn integrity_detects_single_corruption() {
        let mut r = rng();
        let scheme = EncodingScheme::generate(2, 1, true, &mut r);
        let n = 8;
        let inputs: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(n)).collect();
        let noise = vec![r.uniform_vec::<P25>(n)];
        let mut outputs = scheme.encode(&inputs, &noise); // identity op
        // Corrupt one element of one worker's output.
        outputs[1][3] += F25::ONE;
        let err = scheme.decode_forward(&outputs, 7).unwrap_err();
        match err {
            DarknightError::IntegrityViolation { layer_id, phase, mismatches } => {
                assert_eq!(layer_id, 7);
                assert_eq!(phase, "forward");
                assert!(mismatches >= 1);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    #[test]
    fn integrity_detects_corruption_of_every_worker() {
        let mut r = rng();
        let scheme = EncodingScheme::generate(2, 2, true, &mut r);
        let n = 6;
        let inputs: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(n)).collect();
        let clean = scheme.encode(&inputs, &noise);
        for victim in 0..clean.len() {
            let mut outputs = clean.clone();
            outputs[victim][0] += F25::new(42);
            assert!(
                scheme.decode_forward(&outputs, 0).is_err(),
                "corruption of worker {victim} undetected"
            );
        }
    }

    #[test]
    fn integrity_detects_multi_worker_corruption() {
        // (K'-1)-security: corrupt all but one worker.
        let mut r = rng();
        let scheme = EncodingScheme::generate(3, 1, true, &mut r);
        let n = 6;
        let inputs: Vec<Vec<F25>> = (0..3).map(|_| r.uniform_vec::<P25>(n)).collect();
        let noise = vec![r.uniform_vec::<P25>(n)];
        let mut outputs = scheme.encode(&inputs, &noise);
        for out in outputs.iter_mut().take(4) {
            for v in out.iter_mut() {
                *v += r.uniform_nonzero::<P25>();
            }
        }
        assert!(scheme.decode_forward(&outputs, 0).is_err());
    }

    #[test]
    fn clean_outputs_pass_integrity() {
        let mut r = rng();
        for _ in 0..20 {
            let scheme = EncodingScheme::generate(2, 1, true, &mut r);
            let inputs: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(10)).collect();
            let noise = vec![r.uniform_vec::<P25>(10)];
            let outputs = scheme.encode(&inputs, &noise);
            assert!(scheme.decode_forward(&outputs, 0).is_ok());
        }
    }

    #[test]
    fn relation_eq5_holds_for_every_instance() {
        let mut r = rng();
        for (k, m, integ) in [(1, 1, false), (2, 1, true), (4, 2, true), (3, 3, false)] {
            for _ in 0..5 {
                let scheme = EncodingScheme::generate(k, m, integ, &mut r);
                assert!(scheme.verify_relation(), "k={k} m={m} integ={integ}");
            }
        }
    }

    #[test]
    fn backward_decode_recovers_aggregate() {
        // Scalar model: x_i, delta_i are vectors; Eq_j = ⟨Σ_i β_ji δ_i, x̄_j⟩
        // as an outer-product-free scalar: use elementwise product then sum
        // — i.e., the bilinear form is the dot product.
        let mut r = rng();
        let (k, m, n) = (3, 2, 10);
        let scheme = EncodingScheme::generate(k, m, false, &mut r);
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| r.uniform_vec::<P25>(n)).collect();
        let deltas: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(n)).collect();
        let encodings = scheme.encode(&inputs, &noise);
        // Worker j computes Eq_j[e] = δ̃_j[e] * x̄_j[e] (elementwise
        // bilinear form; decoding is elementwise too).
        let eqs: Vec<Vec<F25>> = (0..scheme.num_encodings())
            .map(|j| {
                let beta = scheme.beta_row(j);
                let mut dt = vec![F25::ZERO; n];
                for (i, d) in deltas.iter().enumerate() {
                    for (o, &v) in dt.iter_mut().zip(d) {
                        *o = F25::mul_add(beta[i], v, *o);
                    }
                }
                dt.iter().zip(&encodings[j]).map(|(&a, &b)| a * b).collect()
            })
            .collect();
        let decoded = scheme.decode_backward(&eqs);
        // Expected: Σ_i δ_i ⊙ x_i elementwise.
        let mut expect = vec![F25::ZERO; n];
        for i in 0..k {
            for e in 0..n {
                expect[e] = F25::mul_add(deltas[i][e], inputs[i][e], expect[e]);
            }
        }
        assert_eq!(decoded, expect);
    }

    #[test]
    fn a2_block_is_mds() {
        let mut r = rng();
        for (k, m) in [(2, 1), (2, 3), (4, 2)] {
            let scheme = EncodingScheme::generate(k, m, true, &mut r);
            assert!(is_mds(&scheme.a2_block()), "k={k} m={m}");
        }
    }

    #[test]
    fn beta_rows_public_shape() {
        let mut r = rng();
        let scheme = EncodingScheme::generate(3, 1, true, &mut r);
        assert_eq!(scheme.num_encodings(), 5);
        for j in 0..5 {
            assert_eq!(scheme.beta_row(j).len(), 3);
        }
        // The watchdog row is zero: it contributes no gradient.
        assert!(scheme.beta_row(4).iter().all(|v| v.is_zero()));
    }

    #[test]
    fn encode_row_matches_full_encode() {
        let mut r = rng();
        let mut ws = Workspace::new();
        for (k, m, integ) in [(2, 1, false), (3, 2, true)] {
            let scheme = EncodingScheme::generate(k, m, integ, &mut r);
            let inputs: Vec<Vec<F25>> = (0..k).map(|_| r.uniform_vec::<P25>(9)).collect();
            let noise: Vec<Vec<F25>> = (0..m).map(|_| r.uniform_vec::<P25>(9)).collect();
            let full = scheme.encode(&inputs, &noise);
            for (j, want) in full.iter().enumerate() {
                let row = scheme.encode_row_ws(j, &inputs, &noise, &mut ws);
                assert_eq!(&row, want, "k={k} m={m} row {j}");
                ws.give(row);
            }
        }
    }

    #[test]
    fn ws_decode_recycles_without_misses() {
        let mut r = rng();
        let scheme = EncodingScheme::generate(3, 2, true, &mut r);
        let inputs: Vec<Vec<F25>> = (0..3).map(|_| r.uniform_vec::<P25>(32)).collect();
        let noise: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(32)).collect();
        let mut ws = Workspace::new();
        let recycle = |ws: &mut Workspace, mut rows: Vec<Vec<F25>>| {
            for row in rows.drain(..) {
                ws.give(row);
            }
            ws.give(rows);
        };
        // Warm-up, then the pool must stop missing.
        let enc = scheme.encode_ws(&inputs, &noise, &mut ws);
        let dec = scheme.decode_forward_ws(&enc, 0, &mut ws).unwrap();
        recycle(&mut ws, dec);
        let misses = ws.stats().misses;
        for round in 0..5 {
            let dec = scheme.decode_forward_ws(&enc, round, &mut ws).unwrap();
            assert_eq!(dec.len(), 3);
            recycle(&mut ws, dec);
        }
        assert_eq!(ws.stats().misses, misses, "warm decode must not allocate");
    }

    #[test]
    fn regenerate_matches_generate_bitwise() {
        for (k, m, integ) in [(1, 1, false), (2, 1, true), (3, 2, true), (2, 3, false)] {
            let mut r1 = FieldRng::seed_from(0x5EED);
            let mut r2 = FieldRng::seed_from(0x5EED);
            let fresh = EncodingScheme::generate(k, m, integ, &mut r1);
            // A stale scheme of the same shape, re-keyed in place, must
            // land on the identical coefficients from the same RNG state.
            let mut reused = EncodingScheme::generate(k, m, integ, &mut FieldRng::seed_from(999));
            reused.regenerate(&mut r2);
            assert_eq!(fresh.a.as_slice(), reused.a.as_slice(), "k={k} m={m}");
            assert_eq!(fresh.a_t.as_slice(), reused.a_t.as_slice());
            assert_eq!(fresh.a_sq_inv_t.as_slice(), reused.a_sq_inv_t.as_slice());
            assert_eq!(fresh.b.as_slice(), reused.b.as_slice());
            assert_eq!(fresh.gamma, reused.gamma);
            assert_eq!(fresh.integrity_w, reused.integrity_w);
            assert!(reused.verify_relation());
            // And both RNG streams stay in lockstep afterwards.
            assert_eq!(r1.uniform_vec::<P25>(4), r2.uniform_vec::<P25>(4));
        }
    }

    #[test]
    fn decode_accepts_tensor_rows() {
        use dk_linalg::Tensor;
        let mut r = rng();
        let scheme = EncodingScheme::generate(2, 1, true, &mut r);
        let inputs: Vec<Vec<F25>> = (0..2).map(|_| r.uniform_vec::<P25>(8)).collect();
        let noise = vec![r.uniform_vec::<P25>(8)];
        let outputs = scheme.encode(&inputs, &noise);
        let as_tensors: Vec<Tensor<F25>> =
            outputs.iter().map(|o| Tensor::from_vec(&[o.len()], o.clone())).collect();
        assert_eq!(
            scheme.decode_forward(&outputs, 0).unwrap(),
            scheme.decode_forward(&as_tensors, 0).unwrap(),
        );
    }

    #[test]
    fn schemes_are_fresh_per_generation() {
        let mut r = rng();
        let s1 = EncodingScheme::generate(2, 1, false, &mut r);
        let s2 = EncodingScheme::generate(2, 1, false, &mut r);
        let x = vec![r.uniform_vec::<P25>(4), r.uniform_vec::<P25>(4)];
        let noise = vec![r.uniform_vec::<P25>(4)];
        assert_ne!(s1.encode(&x, &noise), s2.encode(&x, &noise));
    }
}
