//! The DarKnight session: the §3.1 execution flow.
//!
//! One session owns the (simulated) enclave and an execution backend
//! over the GPU fleet, and drives a [`dk_nn::Sequential`] model through
//! private forward/backward passes:
//!
//! 1. activations are max-abs normalized and quantized into the field
//!    (Algorithm 1) **inside the TEE**;
//! 2. the virtual batch of `K` activations plus `M` fresh noise vectors
//!    is masked by the current [`EncodingScheme`] and shipped to GPUs,
//!    which also *store* the encodings for backward reuse (§6);
//! 3. GPUs run the bilinear op; the TEE decodes with `A^{-1}`, checks
//!    the redundant equation, dequantizes, adds bias and runs the
//!    non-linear layers on plaintext floats;
//! 4. backward: bias gradients and non-linear backprop stay in the TEE;
//!    data gradients are offloaded unencoded (they carry no input
//!    information, §4.2); weight gradients come back only as the
//!    aggregate `∇W = (1/K)·Σ_j γ_j Eq_j`.
//!
//! Because the encoding mixes the `K` samples linearly, all samples of a
//! virtual batch share one quantization scale per layer — otherwise the
//! γ-weighted aggregate would blend incompatible fixed-point scales.
//!
//! Backward integrity: the paper dedicates the spare worker to
//! "redundant computation to verify the results" (§4.5). Here the spare
//! recomputes one TEE-chosen `Eq_{j*}` (the TEE regenerates `x̄_{j*}`
//! from its retained quantized inputs and noise) and the session
//! compares; it also recomputes the unencoded data-gradient job. A
//! mismatch aborts the step.
//!
//! # Execution backends and determinism
//!
//! The session is generic over a [`GpuExec`] backend. With the default
//! [`GpuCluster`] it is the **sequential reference**: one virtual batch
//! in flight, blocking dispatch. The pipelined engine
//! ([`crate::engine`]) runs the *same* session code over a
//! [`dk_gpu::DispatchClient`], with several numbered batches in flight
//! on different TEE lanes.
//!
//! What makes the two modes bit-for-bit identical is that **all
//! per-batch randomness is derived statelessly**: batch `b` of a session
//! seeded `s` draws its scheme from `derive(s, b)` and its layer-`l`
//! noise from `derive(derive(s, b), l)` — never from a shared mutable
//! RNG stream whose position would depend on execution order. The same
//! derivation also makes recovery/replay deterministic.
//!
//! # Virtual-batch lifecycle
//!
//! [`DarknightSession::begin_virtual_batch`] is the *single owner* of
//! batch state: it retires the previous batch (contexts, stored
//! encodings, retained enclave bytes) and installs the next numbered
//! batch. Every public pass entry point routes through it — a pass on a
//! batch that already ran one auto-begins the next batch, so stale
//! contexts can never be reused across entry points.

use crate::config::DarknightConfig;
use crate::engine::StepPlan;
use crate::error::DarknightError;
use crate::scheme::EncodingScheme;
use dk_field::{derive_seed, F25, FieldRng, P25};
use dk_gpu::{GpuCluster, GpuExec, LinearJob, WorkerId};
use dk_linalg::{ops, Tensor, Workspace};
use dk_nn::layers::{Conv2d, Dense, Layer, Residual};
use dk_nn::loss::softmax_cross_entropy;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_tee::{Enclave, EpcConfig};
use std::collections::HashMap;
use std::sync::Arc;

/// Domain separators for the stateless per-batch seed derivation.
const DOMAIN_SCHEME: u64 = 0x5343_4845;
const DOMAIN_NOISE: u64 = 0x4e4f_4953;
const DOMAIN_JSTAR: u64 = 0x4a53_5441;

/// Counters describing one session's offload traffic and work.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionStats {
    /// Linear jobs dispatched to GPUs.
    pub linear_jobs: u64,
    /// Field elements produced by TEE encoding.
    pub encoded_elems: u64,
    /// Field elements consumed by TEE decoding.
    pub decoded_elems: u64,
    /// Bytes of masked data sent TEE→GPU.
    pub bytes_to_gpus: u64,
    /// Bytes of results received GPU→TEE.
    pub bytes_from_gpus: u64,
    /// Redundant-equation / spot checks performed.
    pub integrity_checks: u64,
    /// Elements processed by non-linear TEE ops.
    pub nonlinear_elems: u64,
    /// Layers repaired by TEE-side fault localization (recovery mode).
    pub recoveries: u64,
}

impl SessionStats {
    /// Adds another session's counters into this one (the pipelined
    /// engine aggregates its lanes this way).
    pub fn merge(&mut self, o: &SessionStats) {
        self.linear_jobs += o.linear_jobs;
        self.encoded_elems += o.encoded_elems;
        self.decoded_elems += o.decoded_elems;
        self.bytes_to_gpus += o.bytes_to_gpus;
        self.bytes_from_gpus += o.bytes_from_gpus;
        self.integrity_checks += o.integrity_checks;
        self.nonlinear_elems += o.nonlinear_elems;
        self.recoveries += o.recoveries;
    }
}

/// Result of one private training step.
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// Mean softmax cross-entropy of the virtual batch.
    pub loss: f32,
    /// Training accuracy of the virtual batch.
    pub accuracy: f32,
}

/// Per-linear-layer state the TEE keeps between forward and backward.
#[derive(Debug, Clone)]
struct LinearCtx {
    norm_x: f32,
    norm_w: f32,
    input_shape: Vec<usize>,
    weights_q: Arc<Tensor<F25>>,
    /// Noise vectors used at this layer (needed to regenerate `x̄_{j*}`
    /// for the backward spot check).
    noise: Vec<Vec<F25>>,
    /// Quantized inputs, kept for the same check.
    inputs_q: Vec<Vec<F25>>,
    enclave_bytes: usize,
}

/// A DarKnight execution session (see module docs). Generic over the
/// [`GpuExec`] backend; `DarknightSession` (the default) is the blocking
/// sequential reference over a [`GpuCluster`].
#[derive(Debug)]
pub struct DarknightSession<X: GpuExec = GpuCluster> {
    cfg: DarknightConfig,
    enclave: Enclave,
    cluster: X,
    scheme: EncodingScheme,
    ctxs: HashMap<u64, LinearCtx>,
    stats: SessionStats,
    /// Number of the installed virtual batch; batch `b`'s randomness is
    /// derived from `(cfg.seed, b)` alone.
    batch_index: u64,
    batch_seed: u64,
    /// Context ids of the installed batch start here (`batch << 32`),
    /// so concurrently in-flight batches never collide on a worker.
    ctx_base: u64,
    next_id: u64,
    /// True once a pass ran on the installed batch: the next pass entry
    /// auto-begins a fresh batch instead of reusing stale contexts.
    pass_started: bool,
    /// Context ids whose encodings the backend currently stores for this
    /// batch (released when the batch retires).
    stored_ctxs: Vec<u64>,
    /// Optional pre-quantized weights for the current step (weights are
    /// frozen within a step, so the engine extracts them once).
    plan: Option<Arc<StepPlan>>,
    quarantined: Vec<WorkerId>,
    /// The session's TEE-side buffer pool: quantization rows, noise
    /// vectors, stacking buffers, decoded rows and float activations
    /// all cycle through it across virtual batches, so the steady state
    /// stops re-allocating per layer per batch. Each pipelined lane
    /// owns one session and therefore one workspace — no sharing.
    ws: Workspace,
}

impl DarknightSession<GpuCluster> {
    /// Creates a session over the given cluster with the default SGXv1
    /// enclave budget.
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if the cluster is smaller
    /// than `K + M (+1)`.
    pub fn new(cfg: DarknightConfig, cluster: GpuCluster) -> Result<Self, DarknightError> {
        Self::with_enclave(cfg, cluster, EpcConfig::default())
    }

    /// Creates a session with a custom enclave memory budget (memory
    /// experiments shrink it to force paging).
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if the cluster is smaller
    /// than `K + M (+1)`.
    pub fn with_enclave(
        cfg: DarknightConfig,
        cluster: GpuCluster,
        epc: EpcConfig,
    ) -> Result<Self, DarknightError> {
        Self::with_backend(cfg, cluster, epc)
    }
}

impl<X: GpuExec> DarknightSession<X> {
    /// Creates a session over an arbitrary execution backend (the
    /// pipelined engine builds its TEE lanes this way, sharing one
    /// [`dk_gpu::GpuDispatcher`] across lanes).
    ///
    /// # Errors
    ///
    /// [`DarknightError::InsufficientWorkers`] if the backend exposes
    /// fewer workers than `K + M (+1)`.
    pub fn with_backend(
        cfg: DarknightConfig,
        cluster: X,
        epc: EpcConfig,
    ) -> Result<Self, DarknightError> {
        if cluster.num_workers() < cfg.workers_required() {
            return Err(DarknightError::InsufficientWorkers {
                required: cfg.workers_required(),
                available: cluster.num_workers(),
            });
        }
        // Batch-0 state, built once (identical to `install_batch(0)`).
        let batch_seed = derive_seed(cfg.seed(), 0);
        let scheme = EncodingScheme::generate(
            cfg.k(),
            cfg.m(),
            cfg.integrity(),
            &mut FieldRng::derived(batch_seed, DOMAIN_SCHEME),
        );
        Ok(Self {
            cfg,
            enclave: Enclave::new(epc, b"darknight-enclave-v1"),
            cluster,
            scheme,
            ctxs: HashMap::new(),
            stats: SessionStats::default(),
            batch_index: 0,
            batch_seed,
            ctx_base: 0,
            next_id: 0,
            // A fresh session's first pass must open batch 1, not run
            // on the constructor's batch-0 state.
            pass_started: true,
            stored_ctxs: Vec::new(),
            plan: None,
            quarantined: Vec::new(),
            ws: Workspace::new(),
        })
    }

    /// Allocation counters of the session's TEE-side buffer pool.
    pub fn workspace_stats(&self) -> dk_linalg::WorkspaceStats {
        self.ws.stats()
    }

    /// Returns a batch of recycled row vectors (and their outer vector)
    /// to the buffer pool.
    fn give_rows(&mut self, mut rows: Vec<Vec<F25>>) {
        for r in rows.drain(..) {
            self.ws.give(r);
        }
        self.ws.give(rows);
    }

    /// Recycles a retired context's quantized inputs and noise vectors.
    fn recycle_ctx(&mut self, ctx: LinearCtx) {
        self.give_rows(ctx.inputs_q);
        self.give_rows(ctx.noise);
    }

    /// Recovers the encoded-input tensors owned by a finished job set
    /// and returns them (plus the job `Vec` itself) to the buffer pool —
    /// the other half of the zero-allocation offload round-trip.
    fn recycle_jobs(&mut self, mut jobs: Vec<LinearJob>) {
        for job in jobs.drain(..) {
            if let Some(x) = job.into_input() {
                self.ws.give_tensor(x);
            }
        }
        self.ws.give(jobs);
    }

    /// Returns a pass output (from [`DarknightSession::private_forward`]
    /// and friends) to the session pool once the caller is done with it,
    /// so the next pass's activations reuse the buffer. Purely an
    /// optimization — dropping the tensor is always correct.
    pub fn recycle_output(&mut self, t: Tensor<f32>) {
        self.ws.give_tensor(t);
    }

    /// The session configuration.
    pub fn config(&self) -> &DarknightConfig {
        &self.cfg
    }

    /// Offload/work counters so far.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Enclave memory statistics so far.
    pub fn enclave_stats(&self) -> dk_tee::MemoryStats {
        self.enclave.stats()
    }

    /// Mutable enclave access, used by the Algorithm 2 large-batch
    /// trainer to seal/unseal gradient shards with the session's keys.
    pub fn enclave_mut(&mut self) -> &mut Enclave {
        &mut self.enclave
    }

    /// The execution backend (e.g. to inspect worker observations in
    /// privacy experiments).
    pub fn cluster(&self) -> &X {
        &self.cluster
    }

    /// Mutable backend access (e.g. to flip a worker malicious
    /// mid-session — the paper's dynamic adversary).
    pub fn cluster_mut(&mut self) -> &mut X {
        &mut self.cluster
    }

    /// The active encoding scheme (white-box privacy audits).
    pub fn scheme(&self) -> &EncodingScheme {
        &self.scheme
    }

    /// The number of the currently installed virtual batch.
    pub fn batch_index(&self) -> u64 {
        self.batch_index
    }

    /// Workers caught lying by the recovery extension, in detection
    /// order (duplicates removed). Empty unless recovery is enabled and
    /// a violation occurred.
    pub fn quarantined(&self) -> &[WorkerId] {
        &self.quarantined
    }

    /// Installs (or clears, with `None`) a pre-quantized weight plan for
    /// the current step. The plan must have been extracted from the
    /// exact weights the passes will run with; callers are responsible
    /// for clearing it when weights change (e.g. after an SGD step).
    pub fn set_step_plan(&mut self, plan: Option<Arc<StepPlan>>) {
        self.plan = plan;
    }

    /// Starts the next virtual batch: derives the fresh `A`, `B`, `Γ`
    /// (§4.1) for batch number `batch_index + 1` and retires the
    /// previous batch's contexts, stored encodings and retained enclave
    /// bytes. This is the single owner of batch lifecycle — every public
    /// pass entry point routes through it.
    pub fn begin_virtual_batch(&mut self) {
        let next = self.batch_index + 1;
        self.begin_numbered_batch(next);
    }

    /// Starts a specific numbered virtual batch. The pipelined engine
    /// assigns numbers in stream order so lane scheduling cannot change
    /// any batch's masks.
    pub(crate) fn begin_numbered_batch(&mut self, index: u64) {
        self.retire_batch();
        self.install_batch(index);
    }

    /// Fast-forwards the batch cursor to `index` as if that batch had
    /// just completed: the scheme for batch `index` is installed and
    /// marked used, so the next pass begins batch `index + 1` with masks
    /// bit-identical to an uninterrupted run (checkpoint resume). Any
    /// in-flight batch state is retired first.
    pub fn resume_at_batch(&mut self, index: u64) {
        self.begin_numbered_batch(index);
        self.pass_started = true;
    }

    /// Retires the installed batch: drops per-layer contexts, releases
    /// their retained enclave bytes and the backend-stored encodings.
    /// Also runs on drop — a pipelined lane's backend (the shared
    /// dispatcher with its persistent workers) outlives the lane
    /// session, so the final batch's encodings must not be left behind.
    fn retire_batch(&mut self) {
        let mut retained = 0usize;
        let Self { ctxs, ws, .. } = self;
        for (_, ctx) in ctxs.drain() {
            retained += ctx.enclave_bytes;
            for mut rows in [ctx.inputs_q, ctx.noise] {
                for r in rows.drain(..) {
                    ws.give(r);
                }
                ws.give(rows);
            }
        }
        let _ = self.enclave.release(retained);
        if !self.stored_ctxs.is_empty() {
            // Split-borrow so the id list can be passed by reference and
            // cleared in place instead of `mem::take`-ing a fresh Vec
            // every batch.
            let Self { stored_ctxs, cluster, .. } = self;
            cluster.release_contexts(stored_ctxs);
            stored_ctxs.clear();
        }
        self.publish_workspace_gauges();
    }

    /// Publishes the TEE-side buffer-pool counters as gauges, so fleet
    /// dashboards can watch the steady state settle (misses flat = the
    /// round-trip is closed). Batch-boundary cadence keeps the hot path
    /// untouched.
    fn publish_workspace_gauges(&self) {
        if !dk_obs::enabled() {
            return;
        }
        let s = self.ws.stats();
        let m = dk_obs::global();
        m.gauge("dk_session_ws_takes").set(s.takes as i64);
        m.gauge("dk_session_ws_misses").set(s.misses as i64);
        m.gauge("dk_session_ws_live_bytes").set(s.live_bytes as i64);
        m.gauge("dk_session_ws_peak_bytes").set(s.peak_bytes as i64);
    }

    fn install_batch(&mut self, index: u64) {
        self.batch_index = index;
        self.batch_seed = derive_seed(self.cfg.seed(), index);
        let mut srng = FieldRng::derived(self.batch_seed, DOMAIN_SCHEME);
        // In-place regeneration: same draws, same matrices, bit for bit
        // — but every `A`/`B`/`Γ` buffer of the previous batch is
        // rewritten instead of reallocated.
        self.scheme.regenerate(&mut srng);
        self.ctx_base = index << 32;
        self.next_id = self.ctx_base;
        self.pass_started = false;
    }

    /// Marks a pass as running on the installed batch, auto-beginning a
    /// fresh batch first if one already ran (so no entry point can reuse
    /// stale contexts).
    fn start_pass(&mut self) {
        if self.pass_started {
            self.begin_virtual_batch();
        }
        self.pass_started = true;
    }

    /// A deterministic per-(batch, layer) stream: independent of
    /// execution order by construction.
    fn layer_rng(&self, domain: u64, ordinal: u64) -> FieldRng {
        FieldRng::derived(derive_seed(self.batch_seed, domain), ordinal)
    }

    /// Private forward pass over one virtual batch (`x: [K, ...]`).
    ///
    /// Runs on the installed virtual batch if no pass has used it yet
    /// (e.g. right after [`DarknightSession::begin_virtual_batch`]);
    /// otherwise begins the next batch first.
    ///
    /// # Errors
    ///
    /// Batch-shape mismatch, quantization failure, or an integrity
    /// violation detected by the redundant equation.
    pub fn private_forward(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        train: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        if x.shape()[0] != self.cfg.k() {
            return Err(DarknightError::BatchShape {
                expected: self.cfg.k(),
                actual: x.shape()[0],
            });
        }
        self.start_pass();
        self.forward_layers(model.layers_mut(), x, train, false)
    }

    /// Private backward pass from the loss gradient; accumulates all
    /// parameter gradients (aggregate `∇W` for linear layers).
    ///
    /// # Errors
    ///
    /// Quantization failure or a backward integrity violation.
    pub fn private_backward(
        &mut self,
        model: &mut Sequential,
        dloss: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        self.backward_layers(model.layers_mut(), dloss)
    }

    /// Full private training step on one virtual batch: forward, loss,
    /// backward, SGD update.
    ///
    /// # Errors
    ///
    /// Any forward/backward error; on error no weight update happens.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != K`.
    pub fn train_step(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        sgd: &mut Sgd,
    ) -> Result<StepReport, DarknightError> {
        let report = self.accumulate_gradients_zeroing(model, x, labels, true)?;
        sgd.step(model);
        Ok(report)
    }

    /// Accumulates gradients for one virtual batch without updating
    /// weights (used by the Algorithm 2 large-batch trainer, which
    /// aggregates across virtual batches before stepping). Does *not*
    /// zero existing gradients.
    ///
    /// # Errors
    ///
    /// Any forward/backward error.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != K`.
    pub fn accumulate_gradients(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
    ) -> Result<StepReport, DarknightError> {
        self.accumulate_gradients_zeroing(model, x, labels, false)
    }

    fn accumulate_gradients_zeroing(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        labels: &[usize],
        zero_first: bool,
    ) -> Result<StepReport, DarknightError> {
        assert_eq!(labels.len(), self.cfg.k(), "one label per virtual-batch sample");
        if zero_first {
            model.zero_grad();
        }
        let logits = self.private_forward(model, x, true)?;
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        let accuracy = dk_nn::loss::accuracy(&logits, labels);
        self.ws.give_tensor(logits);
        let dx = self.private_backward(model, &dlogits)?;
        self.ws.give_tensor(dx);
        Ok(StepReport { loss, accuracy })
    }

    /// Private inference over one virtual batch.
    ///
    /// # Errors
    ///
    /// Any forward error.
    pub fn private_inference(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        self.private_forward(model, x, false)
    }

    // -----------------------------------------------------------------
    // Forward internals
    // -----------------------------------------------------------------

    /// One pass over the layer list. `per_sample` selects the
    /// quantization-scale policy of the linear layers: shared scale
    /// (training; the backward γ-aggregate needs it) vs one scale per
    /// row (serving inference; rows stay numerically independent).
    ///
    /// The walk borrows its input — only layer outputs are materialized,
    /// no defensive clones of the activations travelling through.
    fn forward_layers(
        &mut self,
        layers: &mut [Layer],
        x: &Tensor<f32>,
        train: bool,
        per_sample: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        let mut cur: Option<Tensor<f32>> = None;
        for layer in layers.iter_mut() {
            let input = cur.as_ref().unwrap_or(x);
            let next = match layer {
                Layer::Conv2d(conv) => {
                    let id = self.take_id();
                    self.forward_conv(id, conv, input, train, per_sample)
                }
                Layer::Dense(dense) => {
                    let id = self.take_id();
                    self.forward_dense(id, dense, input, train, per_sample)
                }
                Layer::Residual(res) => self.forward_residual(res, input, train, per_sample),
                other => {
                    self.stats.nonlinear_elems += input.len() as u64;
                    Ok(other.forward_ws(input, train, &mut self.ws))
                }
            };
            let next = match next {
                Ok(n) => n,
                Err(e) => {
                    // Recycle the in-flight activation: an aborted batch
                    // must not drain the steady-state pool.
                    if let Some(prev) = cur.take() {
                        self.ws.give_tensor(prev);
                    }
                    return Err(e);
                }
            };
            if let Some(prev) = cur.take() {
                self.ws.give_tensor(prev);
            }
            cur = Some(next);
        }
        Ok(cur.unwrap_or_else(|| x.clone()))
    }

    /// The residual-block arm of [`DarknightSession::forward_layers`]:
    /// `y = main(x) + shortcut(x)`, with the shortcut sum folded in
    /// place and all intermediates recycled (also on the error paths).
    fn forward_residual(
        &mut self,
        res: &mut Residual,
        input: &Tensor<f32>,
        train: bool,
        per_sample: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        let mut main = self.forward_layers(res.main_mut(), input, train, per_sample)?;
        self.stats.nonlinear_elems += main.len() as u64;
        if res.shortcut().is_empty() {
            main.add_assign(input);
        } else {
            match self.forward_layers(res.shortcut_mut(), input, train, per_sample) {
                Ok(s) => {
                    main.add_assign(&s);
                    self.ws.give_tensor(s);
                }
                Err(e) => {
                    self.ws.give_tensor(main);
                    return Err(e);
                }
            }
        }
        Ok(main)
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Max-abs normalization (the paper's §5 VGG strategy, applied
    /// uniformly) followed by Algorithm 1 quantization. Shared with
    /// [`crate::reference::QuantizedReference`] so the private path and
    /// the clear-text oracle can never drift numerically.
    fn normalize_quantize(&self, vals: &[f32]) -> Result<(Vec<F25>, f32), DarknightError> {
        crate::reference::normalize_quantize(self.cfg.quant(), vals)
    }

    /// Quantized weights for the layer: from the step plan when one is
    /// installed (weights are frozen within a step, so the engine
    /// quantizes them once), freshly computed otherwise. Identical bits
    /// either way — same floats, same pipeline.
    fn layer_weights(
        &self,
        ordinal: u64,
        weights: &Tensor<f32>,
        weight_shape: &[usize],
    ) -> Result<(Arc<Tensor<F25>>, f32), DarknightError> {
        if let Some(planned) = self.plan.as_ref().and_then(|p| p.linear(ordinal)) {
            return Ok((planned.weights_q.clone(), planned.norm_w));
        }
        let (wq_flat, norm_w) = self.normalize_quantize(weights.as_slice())?;
        Ok((Arc::new(Tensor::from_vec(weight_shape, wq_flat)), norm_w))
    }

    /// The forward offload round: quantize, mask, dispatch, decode.
    ///
    /// `per_sample` selects the quantization policy for the inputs —
    /// one shared max-abs scale (training; the backward γ-aggregate
    /// needs it) vs one scale per row (serving inference). `retain`
    /// selects whether a backward pass will revisit this layer: when
    /// set, the encodings are stored on the workers and a
    /// [`LinearCtx`] is returned; when clear, nothing outlives the
    /// call and every buffer — encodings, worker outputs, decode rows —
    /// completes a pool round-trip. Returns the decoded per-sample
    /// field outputs, the per-sample dequantize scale (`norm_w ·
    /// norm_x_i`; all equal in shared mode), the per-encoding output
    /// shape (pool-backed — callers hand it back via `give_shape`),
    /// and the backward context (`retain` only).
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn offload_forward(
        &mut self,
        layer_id: u64,
        x: &Tensor<f32>,
        weights: &Tensor<f32>,
        make_job: impl Fn(Arc<Tensor<F25>>, Tensor<F25>) -> LinearJob,
        weight_shape: &[usize],
        enc_shape: &[usize],
        per_sample: bool,
        retain: bool,
    ) -> Result<(Vec<Vec<F25>>, Vec<f32>, Vec<usize>, Option<LinearCtx>), DarknightError> {
        let k = self.cfg.k();
        let m = self.cfg.m();
        let ordinal = layer_id - self.ctx_base;
        let batch = self.batch_index;
        let quant = self.cfg.quant();
        let sp = dk_obs::span(dk_obs::Stage::Quantize, batch, ordinal);
        let (weights_q, norm_w) = self.layer_weights(ordinal, weights, weight_shape)?;
        let rest: usize = x.shape()[1..].iter().product();
        // Quantization rows come out of the session pool; they are
        // either retained in the backward context (and recycled when it
        // retires) or given back at the end of this call.
        let mut inputs_q: Vec<Vec<F25>> = self.ws.take_cleared(k);
        let mut norms: Vec<f32> = self.ws.take_cleared(k);
        let quantized: Result<(), DarknightError> = (|| {
            if per_sample {
                for i in 0..k {
                    let mut row = self.ws.take_cleared::<F25>(rest);
                    let norm_x = crate::reference::normalize_quantize_into(
                        quant,
                        &x.as_slice()[i * rest..(i + 1) * rest],
                        &mut row,
                    )?;
                    inputs_q.push(row);
                    norms.push(norm_x);
                }
            } else {
                let mut flat = self.ws.take_cleared::<F25>(x.len());
                let norm_x =
                    crate::reference::normalize_quantize_into(quant, x.as_slice(), &mut flat)?;
                for i in 0..k {
                    inputs_q.push(self.ws.take_copy(&flat[i * rest..(i + 1) * rest]));
                    norms.push(norm_x);
                }
                self.ws.give(flat);
            }
            Ok(())
        })();
        if let Err(e) = quantized {
            self.give_rows(inputs_q);
            self.ws.give(norms);
            return Err(e);
        }
        drop(sp);
        let sp = dk_obs::span(dk_obs::Stage::Encode, batch, ordinal);
        // Per-(batch, layer) derived noise: the masks of batch `b`,
        // layer `l` are a pure function of (seed, b, l), so pipelined
        // lanes draw exactly the masks sequential execution would.
        let mut nrng = self.layer_rng(DOMAIN_NOISE, ordinal);
        // Enclave working set: float input + quantized copies + noise +
        // encodings. The fused path never materializes the noise rows,
        // but the charge is kept identical in both branches so paging
        // accounting stays a pure function of shape, not of mode.
        let s_cols = self.scheme.num_encodings();
        let work_bytes = x.len() * 4 + k * rest * 8 + (m + s_cols) * rest * 8;
        let _paged = self.enclave.alloc_paged(work_bytes);
        let (encodings, mut noise) = if retain {
            // The backward spot check replays encodings from the stored
            // noise rows, so a training pass still materializes them.
            let mut rows: Vec<Vec<F25>> = self.ws.take_cleared(m);
            for _ in 0..m {
                let mut v = self.ws.take_cleared::<F25>(rest);
                nrng.uniform_extend::<P25>(rest, &mut v);
                rows.push(v);
            }
            let enc = self.scheme.encode_ws(&inputs_q, &rows, &mut self.ws);
            (enc, Some(rows))
        } else {
            // Inference never revisits the noise: draw it in cache-sized
            // chunks fused straight into the encodings. Identical draw
            // order and count, so bits and RNG stream position match the
            // materialized branch exactly.
            (self.scheme.encode_fused_ws(&inputs_q, &mut nrng, &mut self.ws), None)
        };
        self.stats.encoded_elems += (s_cols * rest) as u64;
        // The encoded rows (and their outer Vec) are pool-backed; pair
        // each with a pooled shape so the whole encoding set becomes
        // tensors without a fresh allocation.
        let mut enc_tensors: Vec<Tensor<F25>> = self.ws.take_cleared(s_cols);
        let mut enc_rows = encodings;
        for row in enc_rows.drain(..) {
            enc_tensors.push(Tensor::from_parts(self.ws.take_shape(enc_shape), row));
        }
        self.ws.give(enc_rows);
        self.stats.bytes_to_gpus += (s_cols * rest * 8) as u64;
        drop(sp);
        let sp = dk_obs::span(dk_obs::Stage::Dispatch, batch, ordinal);
        if retain {
            // Only a pass with a backward half needs the workers to hold
            // the encodings (§6 stored-input reuse); inference skips the
            // store — and its clone — entirely.
            self.cluster.store_encodings(layer_id, enc_tensors.clone());
            self.stored_ctxs.push(layer_id);
        }
        let mut jobs: Vec<LinearJob> = self.ws.take_cleared(enc_tensors.len());
        for t in enc_tensors.drain(..) {
            jobs.push(make_job(weights_q.clone(), t));
        }
        self.ws.give(enc_tensors);
        self.stats.linear_jobs += jobs.len() as u64;
        let mut results: Vec<dk_gpu::WorkerResult> = self.ws.take_cleared(jobs.len());
        let mut outputs: Vec<Tensor<F25>> = self.ws.take_cleared(jobs.len());
        let executed = self
            .cluster
            .execute_into(layer_id, &jobs, &mut results)
            .map_err(|fault| DarknightError::GpuFault { layer_id, phase: "forward", fault })
            .and_then(|()| {
                self.absorb_worker_faults(layer_id, "forward", &jobs, &mut results, &mut outputs)
            });
        self.ws.give(results);
        drop(sp);
        if let Err(e) = executed {
            let _ = self.enclave.release(work_bytes);
            self.recycle_jobs(jobs);
            self.cluster.recycle_outputs(&mut outputs);
            self.ws.give(outputs);
            self.give_rows(inputs_q);
            if let Some(rows) = noise.take() {
                self.give_rows(rows);
            }
            self.ws.give(norms);
            return Err(e);
        }
        let out_shape = self.ws.take_shape(outputs[0].shape());
        let out_rest: usize = out_shape.iter().product();
        self.stats.bytes_from_gpus += (s_cols * out_rest * 8) as u64;
        if self.scheme.has_integrity() {
            self.stats.integrity_checks += 1;
        }
        let sp = dk_obs::span(dk_obs::Stage::Decode, batch, ordinal);
        let decoded = match self.decode_forward_repairing(&jobs, &mut outputs, layer_id) {
            Ok(d) => d,
            Err(e) => {
                // Don't leak the charged working set on an aborted
                // batch: serving reuses one session across unboundedly
                // many batches, so a leak here would grow
                // `current_bytes` monotonically under attack and turn
                // every later honest batch into pure paging traffic.
                let _ = self.enclave.release(work_bytes);
                self.recycle_jobs(jobs);
                self.cluster.recycle_outputs(&mut outputs);
                self.ws.give(outputs);
                self.ws.give_shape(out_shape);
                self.give_rows(inputs_q);
                if let Some(rows) = noise.take() {
                    self.give_rows(rows);
                }
                self.ws.give(norms);
                return Err(e);
            }
        };
        drop(sp);
        // Close the round-trip: worker outputs return to the worker
        // pools that produced them, the job encodings to the session's.
        self.cluster.recycle_outputs(&mut outputs);
        self.ws.give(outputs);
        self.recycle_jobs(jobs);
        self.stats.decoded_elems += (decoded.len() * out_rest) as u64;
        let mut scales: Vec<f32> = self.ws.take_cleared(k);
        scales.extend(norms.iter().map(|&n| norm_w * n));
        let norm_x0 = norms[0];
        self.ws.give(norms);
        let ctx = if !retain {
            // Non-retaining passes (inference in either scale mode)
            // never revisit this layer with a backward spot check, so
            // the whole working set is released and the
            // quantization/noise rows go straight back to the pool.
            self.enclave.release(work_bytes)?;
            self.give_rows(inputs_q);
            if let Some(rows) = noise.take() {
                self.give_rows(rows);
            }
            None
        } else {
            // Transient working set released; the retained context
            // (noise + quantized inputs for the backward spot check)
            // stays charged.
            let retained = (m + k) * rest * 8;
            self.enclave.release(work_bytes.saturating_sub(retained))?;
            Some(LinearCtx {
                norm_x: norm_x0,
                norm_w,
                input_shape: x.shape().to_vec(),
                weights_q,
                noise: noise.take().expect("retaining pass materializes noise"),
                inputs_q,
                enclave_bytes: retained,
            })
        };
        Ok((decoded, scales, out_shape, ctx))
    }

    /// Folds per-worker faults (loss, timeout, remote refusal) out of an
    /// execution round. With recovery enabled, a faulty worker is
    /// treated exactly like a tampering one: quarantined, and its output
    /// slot filled by TEE recomputation of the *explicit* job, so the
    /// decode downstream sees a complete, honest result set. Without
    /// recovery the fault is surfaced as a fail-closed
    /// [`DarknightError::GpuFault`].
    fn absorb_worker_faults(
        &mut self,
        layer_id: u64,
        phase: &'static str,
        jobs: &[LinearJob],
        results: &mut Vec<dk_gpu::WorkerResult>,
        outputs: &mut Vec<Tensor<F25>>,
    ) -> Result<(), DarknightError> {
        let mut repaired = false;
        for (j, r) in results.drain(..).enumerate() {
            match r {
                Ok(t) => outputs.push(t),
                Err(fault) => {
                    if !self.cfg.recovery() {
                        return Err(DarknightError::GpuFault { layer_id, phase, fault });
                    }
                    self.quarantine(fault.worker().unwrap_or(WorkerId(j)));
                    outputs.push(jobs[j].execute());
                    repaired = true;
                }
            }
        }
        if repaired {
            self.stats.recoveries += 1;
        }
        Ok(())
    }

    /// Decodes forward outputs, routing integrity violations through the
    /// recovery extension (localize the liars by TEE recomputation,
    /// repair, re-decode) when it is enabled.
    fn decode_forward_repairing(
        &mut self,
        jobs: &[LinearJob],
        outputs: &mut Vec<Tensor<F25>>,
        layer_id: u64,
    ) -> Result<Vec<Vec<F25>>, DarknightError> {
        match self.scheme.decode_forward_ws(outputs, layer_id, &mut self.ws) {
            Ok(d) => Ok(d),
            Err(violation @ DarknightError::IntegrityViolation { .. }) if self.cfg.recovery() => {
                let _sp =
                    dk_obs::span(dk_obs::Stage::Repair, self.batch_index, layer_id - self.ctx_base);
                let outcome = crate::recovery::localize_and_repair(jobs, outputs);
                if outcome.faulty.is_empty() {
                    // Detection without a localizable fault should not
                    // happen with explicit jobs; surface the original.
                    return Err(violation);
                }
                for w in outcome.faulty {
                    self.quarantine(w);
                }
                self.stats.recoveries += 1;
                self.scheme.decode_forward_ws(outputs, layer_id, &mut self.ws)
            }
            Err(e) => Err(e),
        }
    }

    fn forward_conv(
        &mut self,
        layer_id: u64,
        conv: &mut Conv2d,
        x: &Tensor<f32>,
        train: bool,
        per_sample: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        let shape = *conv.shape();
        let enc_shape = [1, x.shape()[1], x.shape()[2], x.shape()[3]];
        let (decoded, scales, out_shape, ctx) = self.offload_forward(
            layer_id,
            x,
            conv.weights(),
            move |w, t| LinearJob::ConvForward { weights: w, x: t, shape },
            &shape.weight_shape(),
            &enc_shape,
            per_sample,
            train && !per_sample,
        )?;
        let k = self.cfg.k();
        let q = self.cfg.quant();
        let y_shape = [k, out_shape[1], out_shape[2], out_shape[3]];
        self.ws.give_shape(out_shape);
        let mut y = self.ws.take_tensor(&y_shape);
        for (i, (dec, &scale)) in decoded.iter().zip(&scales).enumerate() {
            for (dst, &v) in y.batch_item_mut(i).iter_mut().zip(dec) {
                *dst = q.dequantize_product(v) as f32 * scale;
            }
        }
        self.give_rows(decoded);
        self.ws.give(scales);
        ops::add_bias_nchw(&mut y, conv.bias().as_slice());
        self.stats.nonlinear_elems += y.len() as u64;
        if let Some(ctx) = ctx {
            self.ctxs.insert(layer_id, ctx);
        }
        Ok(y)
    }

    fn forward_dense(
        &mut self,
        layer_id: u64,
        dense: &mut Dense,
        x: &Tensor<f32>,
        train: bool,
        per_sample: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        let in_f = dense.in_features();
        let out_f = dense.out_features();
        let enc_shape = [1, in_f];
        let (decoded, scales, out_shape, ctx) = self.offload_forward(
            layer_id,
            x,
            dense.weights(),
            move |w, t| LinearJob::DenseForward { weights: w, x: t },
            &[out_f, in_f],
            &enc_shape,
            per_sample,
            train && !per_sample,
        )?;
        self.ws.give_shape(out_shape);
        let k = self.cfg.k();
        let q = self.cfg.quant();
        let mut y = self.ws.take_tensor(&[k, out_f]);
        for (i, (dec, &scale)) in decoded.iter().zip(&scales).enumerate() {
            for (dst, &v) in y.batch_item_mut(i).iter_mut().zip(dec) {
                *dst = q.dequantize_product(v) as f32 * scale;
            }
        }
        self.give_rows(decoded);
        self.ws.give(scales);
        ops::add_bias_rows(&mut y, dense.bias().as_slice());
        self.stats.nonlinear_elems += y.len() as u64;
        if let Some(ctx) = ctx {
            self.ctxs.insert(layer_id, ctx);
        }
        Ok(y)
    }

    // -----------------------------------------------------------------
    // Per-sample-scale inference (serving mode)
    // -----------------------------------------------------------------

    /// Private inference where every sample of the virtual batch is
    /// quantized with its **own** max-abs scale instead of one scale
    /// shared across the batch.
    ///
    /// The shared scale of [`DarknightSession::private_forward`] exists
    /// for the backward pass — the γ-weighted aggregate of Eq. 4–6
    /// cannot blend per-sample fixed-point scales — but it couples
    /// samples numerically: row `i`'s quantization step depends on the
    /// other rows' magnitudes. Forward-only execution has no such
    /// constraint. The decode separates the `K` results exactly in the
    /// field, so each row can be dequantized with its own scale, and
    /// output row `i` is **bit-for-bit** identical to running that
    /// sample alone through [`crate::reference::QuantizedReference`]
    /// with `k = 1`, no matter what else shares the virtual batch.
    /// `dk_serve` builds on exactly this property to aggregate
    /// independent requests (including padded all-zero rows) into full
    /// virtual batches without perturbing anyone's answer.
    ///
    /// Privacy and integrity are unchanged: the GPUs still see only
    /// masked field vectors, and the redundant equation still covers
    /// every offloaded layer.
    ///
    /// # Errors
    ///
    /// Batch-shape mismatch, quantization failure, or an integrity
    /// violation detected by the redundant equation.
    pub fn private_inference_per_sample(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        if x.shape()[0] != self.cfg.k() {
            return Err(DarknightError::BatchShape {
                expected: self.cfg.k(),
                actual: x.shape()[0],
            });
        }
        self.start_pass();
        self.forward_layers(model.layers_mut(), x, false, true)
    }

    // -----------------------------------------------------------------
    // Backward internals
    // -----------------------------------------------------------------

    fn backward_layers(
        &mut self,
        layers: &mut [Layer],
        dy: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let mut cur: Option<Tensor<f32>> = None;
        for layer in layers.iter_mut().rev() {
            let grad = cur.as_ref().unwrap_or(dy);
            let next = match layer {
                Layer::Conv2d(conv) => {
                    let id = self.untake_id();
                    self.backward_conv(id, conv, grad)
                }
                Layer::Dense(dense) => {
                    let id = self.untake_id();
                    self.backward_dense(id, dense, grad)
                }
                Layer::Residual(res) => self.backward_residual(res, grad),
                other => {
                    self.stats.nonlinear_elems += grad.len() as u64;
                    Ok(other.backward_ws(grad, &mut self.ws))
                }
            };
            let next = match next {
                Ok(n) => n,
                Err(e) => {
                    if let Some(prev) = cur.take() {
                        self.ws.give_tensor(prev);
                    }
                    return Err(e);
                }
            };
            if let Some(prev) = cur.take() {
                self.ws.give_tensor(prev);
            }
            cur = Some(next);
        }
        Ok(cur.unwrap_or_else(|| dy.clone()))
    }

    /// The residual-block arm of
    /// [`DarknightSession::backward_layers`]. Exact mirror of forward
    /// id assignment: forward visited main then shortcut, so backward
    /// visits shortcut then main; intermediates are recycled on every
    /// path.
    fn backward_residual(
        &mut self,
        res: &mut Residual,
        grad: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let ds = if res.shortcut().is_empty() {
            None
        } else {
            Some(self.backward_layers(res.shortcut_mut(), grad)?)
        };
        let mut dm = match self.backward_layers(res.main_mut(), grad) {
            Ok(dm) => dm,
            Err(e) => {
                if let Some(s) = ds {
                    self.ws.give_tensor(s);
                }
                return Err(e);
            }
        };
        self.stats.nonlinear_elems += dm.len() as u64;
        match ds {
            Some(s) => {
                dm.add_assign(&s);
                self.ws.give_tensor(s);
            }
            None => dm.add_assign(grad),
        }
        Ok(dm)
    }

    fn quarantine(&mut self, w: WorkerId) {
        if !self.quarantined.contains(&w) {
            self.quarantined.push(w);
            if dk_obs::enabled() {
                dk_obs::fleet().worker(w.0).quarantined();
            }
        }
    }

    fn untake_id(&mut self) -> u64 {
        debug_assert!(
            self.next_id > self.ctx_base,
            "backward pass saw more linear layers than forward"
        );
        self.next_id -= 1;
        self.next_id
    }

    /// Shared backward machinery: decodes the aggregate weight gradient
    /// and (optionally) performs the spare-worker integrity checks.
    #[allow(clippy::too_many_arguments)]
    fn offload_backward(
        &mut self,
        layer_id: u64,
        dy: &Tensor<f32>,
        wgrad_job: impl Fn(Arc<Tensor<F25>>, Vec<F25>) -> LinearJob,
        explicit_wgrad_job: impl Fn(Tensor<F25>, Tensor<F25>) -> LinearJob,
        data_job: impl Fn(Arc<Tensor<F25>>) -> LinearJob,
        enc_shape: &[usize],
        ctx: &LinearCtx,
    ) -> Result<(Vec<F25>, f32, Tensor<F25>), DarknightError> {
        let k = self.cfg.k();
        let m = self.cfg.m();
        let s_sq = k + m;
        let batch = self.batch_index;
        let bwd_ordinal = layer_id - self.ctx_base;
        let sp = dk_obs::span(dk_obs::Stage::Quantize, batch, bwd_ordinal);
        let (dq_flat, norm_d) = self.normalize_quantize(dy.as_slice())?;
        let delta_q = Arc::new(Tensor::from_vec(dy.shape(), dq_flat));
        drop(sp);
        let sp = dk_obs::span(dk_obs::Stage::Dispatch, batch, bwd_ordinal);
        // 1) Aggregate weight gradient via the encoded scheme.
        let jobs: Vec<LinearJob> =
            (0..s_sq).map(|j| wgrad_job(delta_q.clone(), self.scheme.beta_row(j))).collect();
        self.stats.linear_jobs += jobs.len() as u64;
        self.stats.bytes_to_gpus += (s_sq * delta_q.len() * 8) as u64;
        let mut results: Vec<dk_gpu::WorkerResult> = self.ws.take_cleared(s_sq);
        if let Err(fault) = self.cluster.execute_into(layer_id, &jobs, &mut results) {
            self.ws.give(results);
            return Err(DarknightError::GpuFault { layer_id, phase: "backward", fault });
        }
        // Fold out lost/refusing workers. Backward jobs are `*Stored`
        // (they run against state the worker holds), so the TEE cannot
        // replay the job itself — instead it reconstructs the worker's
        // encoding x̄_j from the retained context (determinism by
        // derivation) and computes Eq_j explicitly.
        let mut eqs: Vec<Tensor<F25>> = self.ws.take_cleared(s_sq);
        let mut repaired = false;
        for (j, r) in results.drain(..).enumerate() {
            match r {
                Ok(t) => eqs.push(t),
                Err(fault) => {
                    if !self.cfg.recovery() {
                        return Err(DarknightError::GpuFault { layer_id, phase: "backward", fault });
                    }
                    self.quarantine(fault.worker().unwrap_or(WorkerId(j)));
                    let row =
                        self.scheme.encode_row_ws(j, &ctx.inputs_q, &ctx.noise, &mut self.ws);
                    let xbar = Tensor::from_vec(enc_shape, row);
                    let dtilde = dk_gpu::job::beta_combine(&delta_q, &self.scheme.beta_row(j));
                    eqs.push(explicit_wgrad_job(dtilde, xbar).execute());
                    repaired = true;
                }
            }
        }
        if repaired {
            self.stats.recoveries += 1;
        }
        self.ws.give(results);
        drop(sp);
        let sp = dk_obs::span(dk_obs::Stage::Verify, batch, bwd_ordinal);
        let eq_len = eqs[0].len();
        self.stats.bytes_from_gpus += (s_sq * eq_len * 8) as u64;
        // 2) Backward integrity. `j*` is derived per (batch, layer), so
        //    it is identical whether the batch runs sequentially or on a
        //    pipeline lane — and whether or not recovery is enabled.
        let ordinal = layer_id - self.ctx_base;
        let jstar = self.layer_rng(DOMAIN_JSTAR, ordinal).index(s_sq);
        if self.cfg.recovery() && self.scheme.has_integrity() {
            // Deterministic duplicate-dispatch verification (recovery
            // extension): every Eq_j is recomputed by the *next* worker
            // from the TEE-regenerated x̄_j; any pairwise mismatch is
            // resolved by a TEE ground-truth recomputation. Note the
            // privacy accounting: each worker additionally observes one
            // neighbouring encoding, so an M-tolerant configuration
            // effectively tolerates ⌊M/2⌋ colluders in this mode.
            self.stats.integrity_checks += 1;
            let enc = self.scheme.encode_ws(&ctx.inputs_q, &ctx.noise, &mut self.ws);
            for j in 0..s_sq {
                let xbar = Tensor::from_vec(enc_shape, enc[j].clone());
                let dtilde = dk_gpu::job::beta_combine(&delta_q, &self.scheme.beta_row(j));
                let job = explicit_wgrad_job(dtilde, xbar);
                let verifier = WorkerId((j + 1) % s_sq);
                match self.cluster.execute_on(verifier, &job) {
                    Ok(dup) => {
                        if dup != eqs[j] {
                            // TEE ground truth identifies the liar(s).
                            let truth = job.execute();
                            if truth != eqs[j] {
                                self.quarantine(WorkerId(j));
                            }
                            if truth != dup {
                                self.quarantine(verifier);
                            }
                            eqs[j] = truth;
                            self.stats.recoveries += 1;
                        }
                    }
                    Err(fault) => {
                        // The duplicate checker died; the TEE takes over
                        // its verification duty directly.
                        self.quarantine(fault.worker().unwrap_or(verifier));
                        let truth = job.execute();
                        if truth != eqs[j] {
                            self.quarantine(WorkerId(j));
                            eqs[j] = truth;
                        }
                        self.stats.recoveries += 1;
                    }
                }
            }
            self.give_rows(enc);
        } else if self.scheme.has_integrity() {
            // Spare-worker spot check (probabilistic, the base mode).
            self.stats.integrity_checks += 1;
            // Regenerate only x̄_{j*} inside the TEE from retained state
            // — encodings are row-independent, so a single coefficient
            // row reproduces it bit-for-bit at 1/S of the old
            // whole-batch re-encode.
            let row = self.scheme.encode_row_ws(jstar, &ctx.inputs_q, &ctx.noise, &mut self.ws);
            let xbar = Tensor::from_vec(enc_shape, row);
            let dtilde = dk_gpu::job::beta_combine(&delta_q, &self.scheme.beta_row(jstar));
            let spare = WorkerId(self.cluster.num_workers() - 1);
            // Recovery is off in this branch, so a lost spot-checker
            // fails closed: without the check the batch is unverified.
            let check = self
                .cluster
                .execute_on(spare, &explicit_wgrad_job(dtilde, xbar))
                .map_err(|fault| DarknightError::GpuFault { layer_id, phase: "backward", fault })?;
            if check != eqs[jstar] {
                let mismatches = check
                    .as_slice()
                    .iter()
                    .zip(eqs[jstar].as_slice())
                    .filter(|(a, b)| a != b)
                    .count();
                return Err(DarknightError::IntegrityViolation {
                    layer_id,
                    phase: "backward",
                    mismatches,
                });
            }
        }
        drop(sp);
        let sp = dk_obs::span(dk_obs::Stage::Decode, batch, bwd_ordinal);
        // The decode reads the Eq tensors in place; afterwards their
        // buffers go back to the worker pools that produced them.
        let grad_field = self.scheme.decode_backward_ws(&eqs, &mut self.ws);
        self.stats.decoded_elems += grad_field.len() as u64;
        self.cluster.recycle_outputs(&mut eqs);
        self.ws.give(eqs);
        drop(sp);
        // 3) Data gradient: unencoded offload (worker 0), redundantly
        //    recomputed on the spare when integrity is on.
        let dj = data_job(delta_q.clone());
        self.stats.linear_jobs += 1;
        let mut dx_field = match self.cluster.execute_on(WorkerId(0), &dj) {
            Ok(t) => t,
            Err(fault) => {
                if !self.cfg.recovery() {
                    return Err(DarknightError::GpuFault { layer_id, phase: "backward", fault });
                }
                // The data-gradient job carries no secret state; the TEE
                // simply recomputes it and sidelines the dead worker.
                self.quarantine(fault.worker().unwrap_or(WorkerId(0)));
                self.stats.recoveries += 1;
                dj.execute()
            }
        };
        if self.scheme.has_integrity() {
            let spare = WorkerId(self.cluster.num_workers() - 1);
            match self.cluster.execute_on(spare, &dj) {
                Ok(check) => {
                    if check != dx_field {
                        if self.cfg.recovery() {
                            let truth = dj.execute();
                            if truth != dx_field {
                                self.quarantine(WorkerId(0));
                            }
                            if truth != check {
                                self.quarantine(spare);
                            }
                            dx_field = truth;
                            self.stats.recoveries += 1;
                        } else {
                            let mismatches = check
                                .as_slice()
                                .iter()
                                .zip(dx_field.as_slice())
                                .filter(|(a, b)| a != b)
                                .count();
                            return Err(DarknightError::IntegrityViolation {
                                layer_id,
                                phase: "backward",
                                mismatches,
                            });
                        }
                    }
                }
                Err(fault) => {
                    if !self.cfg.recovery() {
                        return Err(DarknightError::GpuFault {
                            layer_id,
                            phase: "backward",
                            fault,
                        });
                    }
                    // Lost the redundant checker: the TEE verifies the
                    // primary answer itself.
                    self.quarantine(fault.worker().unwrap_or(spare));
                    let truth = dj.execute();
                    if truth != dx_field {
                        self.quarantine(WorkerId(0));
                        dx_field = truth;
                    }
                    self.stats.recoveries += 1;
                }
            }
        }
        self.stats.bytes_from_gpus += (dx_field.len() * 8) as u64;
        Ok((grad_field, norm_d, dx_field))
    }

    fn backward_conv(
        &mut self,
        layer_id: u64,
        conv: &mut Conv2d,
        dy: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        // Bias gradient: cheap float reduction inside the TEE.
        let bg = ops::bias_grad_nchw(dy);
        conv.accumulate_bias_grad(&Tensor::from_vec(&[bg.len()], bg));
        self.stats.nonlinear_elems += dy.len() as u64;
        let Some(ctx) = self.ctxs.remove(&layer_id) else {
            return Err(DarknightError::MissingForwardContext { layer_id });
        };
        let shape = *conv.shape();
        let input_hw = (ctx.input_shape[2], ctx.input_shape[3]);
        let enc_shape = [1, ctx.input_shape[1], ctx.input_shape[2], ctx.input_shape[3]];
        let weights_q = ctx.weights_q.clone();
        let offloaded = self.offload_backward(
            layer_id,
            dy,
            |delta, beta| LinearJob::ConvWeightGradStored {
                delta_batch: delta,
                beta,
                layer_id,
                shape,
            },
            |dtilde, xbar| LinearJob::ConvWeightGrad { delta: dtilde, x: xbar, shape },
            move |delta| LinearJob::ConvBackwardData {
                weights: weights_q.clone(),
                delta: (*delta).clone(),
                shape,
                input_hw,
            },
            &enc_shape,
            &ctx,
        );
        let (grad_field, norm_d, dx_field) = match offloaded {
            Ok(v) => v,
            Err(e) => {
                // The ctx left the map above; release its retained
                // bytes so an aborted step doesn't leak them, and
                // recycle its buffers.
                let _ = self.enclave.release(ctx.enclave_bytes);
                self.recycle_ctx(ctx);
                return Err(e);
            }
        };
        let q = self.cfg.quant();
        // Aggregate ∇W: dequantize and unscale. The 1/K of Eq. 3 is
        // already folded into the mean-reduced loss gradients, so no
        // extra averaging happens here.
        let wscale = norm_d * ctx.norm_x;
        let mut gw = self.ws.take_tensor::<f32>(&shape.weight_shape());
        assert_eq!(grad_field.len(), gw.len(), "decoded weight-gradient length mismatch");
        for (dst, &v) in gw.as_mut_slice().iter_mut().zip(grad_field.iter()) {
            *dst = q.dequantize_product(v) as f32 * wscale;
        }
        conv.accumulate_weight_grad(&gw);
        self.ws.give_tensor(gw);
        self.ws.give(grad_field);
        // dx: dequantize, unscale by norm_d · norm_w.
        let dscale = norm_d * ctx.norm_w;
        let mut dx = self.ws.take_tensor::<f32>(dx_field.shape());
        for (dst, &v) in dx.as_mut_slice().iter_mut().zip(dx_field.as_slice()) {
            *dst = q.dequantize_product(v) as f32 * dscale;
        }
        let _ = self.enclave.release(ctx.enclave_bytes);
        self.recycle_ctx(ctx);
        Ok(dx)
    }

    fn backward_dense(
        &mut self,
        layer_id: u64,
        dense: &mut Dense,
        dy: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let bg = ops::bias_grad_rows(dy);
        dense.accumulate_bias_grad(&Tensor::from_vec(&[bg.len()], bg));
        self.stats.nonlinear_elems += dy.len() as u64;
        let Some(ctx) = self.ctxs.remove(&layer_id) else {
            return Err(DarknightError::MissingForwardContext { layer_id });
        };
        let in_f = dense.in_features();
        let out_f = dense.out_features();
        let enc_shape = [1, in_f];
        let weights_q = ctx.weights_q.clone();
        let offloaded = self.offload_backward(
            layer_id,
            dy,
            |delta, beta| LinearJob::DenseWeightGradStored { delta_batch: delta, beta, layer_id },
            |dtilde, xbar| LinearJob::DenseWeightGrad { delta: dtilde, x: xbar },
            move |delta| LinearJob::DenseBackwardData {
                weights: weights_q.clone(),
                delta: (*delta).clone(),
            },
            &enc_shape,
            &ctx,
        );
        let (grad_field, norm_d, dx_field) = match offloaded {
            Ok(v) => v,
            Err(e) => {
                let _ = self.enclave.release(ctx.enclave_bytes);
                self.recycle_ctx(ctx);
                return Err(e);
            }
        };
        let q = self.cfg.quant();
        let wscale = norm_d * ctx.norm_x;
        let mut gw = self.ws.take_tensor::<f32>(&[out_f, in_f]);
        assert_eq!(grad_field.len(), gw.len(), "decoded weight-gradient length mismatch");
        for (dst, &v) in gw.as_mut_slice().iter_mut().zip(grad_field.iter()) {
            *dst = q.dequantize_product(v) as f32 * wscale;
        }
        dense.accumulate_weight_grad(&gw);
        self.ws.give_tensor(gw);
        self.ws.give(grad_field);
        let dscale = norm_d * ctx.norm_w;
        let mut dx = self.ws.take_tensor::<f32>(dx_field.shape());
        for (dst, &v) in dx.as_mut_slice().iter_mut().zip(dx_field.as_slice()) {
            *dst = q.dequantize_product(v) as f32 * dscale;
        }
        let _ = self.enclave.release(ctx.enclave_bytes);
        self.recycle_ctx(ctx);
        Ok(dx)
    }
}

impl<X: GpuExec> Drop for DarknightSession<X> {
    fn drop(&mut self) {
        self.retire_batch();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_gpu::Behavior;
    use dk_nn::arch::{mini_mobilenet, mini_resnet, mini_vgg};
    use dk_nn::layers::{Flatten, Relu};

    fn small_model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(dk_linalg::Conv2dShape::simple(2, 4, 3, 1, 1), seed)),
            Layer::Relu(Relu::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(4 * 6 * 6, 3, seed ^ 1)),
        ])
    }

    fn input(k: usize) -> Tensor<f32> {
        Tensor::from_fn(&[k, 2, 6, 6], |i| ((i % 13) as f32 - 6.0) * 0.07)
    }

    #[test]
    fn private_forward_matches_plaintext() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 5);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut private_model = small_model(3);
        let mut plain_model = small_model(3);
        let x = input(2);
        let y_priv = session.private_inference(&mut private_model, &x).unwrap();
        let y_plain = plain_model.forward(&x, false);
        let diff = y_priv.max_abs_diff(&y_plain);
        // l=6 quantization at two linear layers: generous tolerance.
        assert!(diff < 0.05, "diff={diff}");
    }

    #[test]
    fn private_gradients_match_plaintext() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 6);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut private_model = small_model(4);
        let mut plain_model = small_model(4);
        let x = input(2);
        let labels = [0usize, 2];

        // Plaintext reference step gradients.
        plain_model.zero_grad();
        let logits = plain_model.forward(&x, true);
        let (_, dl) = softmax_cross_entropy(&logits, &labels);
        plain_model.backward(&dl);
        let mut plain_grads = Vec::new();
        plain_model.visit_params(&mut |_, g| plain_grads.push(g.clone()));

        // Private step gradients.
        private_model.zero_grad();
        session.begin_virtual_batch();
        let logits_p = session.private_forward(&mut private_model, &x, true).unwrap();
        let (_, dlp) = softmax_cross_entropy(&logits_p, &labels);
        session.private_backward(&mut private_model, &dlp).unwrap();
        let mut priv_grads = Vec::new();
        private_model.visit_params(&mut |_, g| priv_grads.push(g.clone()));

        assert_eq!(plain_grads.len(), priv_grads.len());
        for (i, (pg, qg)) in plain_grads.iter().zip(&priv_grads).enumerate() {
            let scale = pg.max_abs().max(1e-3);
            let rel = pg.max_abs_diff(qg) / scale;
            assert!(rel < 0.08, "param {i}: relative grad diff {rel}");
        }
    }

    #[test]
    fn train_step_reduces_loss() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 7);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(5);
        let mut sgd = Sgd::new(0.05);
        let x = input(2);
        let labels = [1usize, 2];
        let first = session.train_step(&mut model, &x, &labels, &mut sgd).unwrap();
        let mut last = first;
        for _ in 0..15 {
            last = session.train_step(&mut model, &x, &labels, &mut sgd).unwrap();
        }
        assert!(last.loss < first.loss * 0.7, "first={} last={}", first.loss, last.loss);
    }

    #[test]
    fn integrity_catches_malicious_forward() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::SingleElement;
        let cluster = GpuCluster::with_behaviors(&behaviors, 8);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(6);
        let err = session.private_inference(&mut model, &input(2)).unwrap_err();
        assert!(matches!(err, DarknightError::IntegrityViolation { phase: "forward", .. }));
    }

    #[test]
    fn no_integrity_mode_is_silently_wrong_under_attack() {
        // Demonstrates why the redundant equation matters: without it a
        // malicious worker corrupts results undetected.
        let cfg = DarknightConfig::new(2, 1).with_integrity(false);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[0] = Behavior::AdditiveNoise;
        let cluster = GpuCluster::with_behaviors(&behaviors, 9);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(7);
        let mut clean_model = small_model(7);
        let y_bad = session.private_inference(&mut model, &input(2)).unwrap();
        let y_good = clean_model.forward(&input(2), false);
        assert!(y_bad.max_abs_diff(&y_good) > 0.1, "corruption should distort outputs");
    }

    #[test]
    fn insufficient_workers_rejected() {
        let cfg = DarknightConfig::new(4, 2).with_integrity(true); // needs 7
        let cluster = GpuCluster::honest(5, 1);
        assert!(matches!(
            DarknightSession::new(cfg, cluster),
            Err(DarknightError::InsufficientWorkers { required: 7, available: 5 })
        ));
    }

    #[test]
    fn wrong_batch_size_rejected() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 2);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(8);
        let err = session.private_inference(&mut model, &input(3)).unwrap_err();
        assert!(matches!(err, DarknightError::BatchShape { expected: 2, actual: 3 }));
    }

    #[test]
    fn mini_models_run_privately() {
        for (mut model, name) in [
            (mini_vgg(8, 4, 11), "vgg"),
            (mini_resnet(8, 4, 12), "resnet"),
            (mini_mobilenet(8, 4, 13), "mobilenet"),
        ] {
            let cfg = DarknightConfig::new(2, 1).with_integrity(true);
            let cluster = GpuCluster::honest(cfg.workers_required(), 14);
            let mut session = DarknightSession::new(cfg, cluster).unwrap();
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 9) as f32 - 4.0) * 0.1);
            let mut plain = model.clone();
            let y_priv = session.private_inference(&mut model, &x).unwrap();
            let y_plain = plain.forward(&x, false);
            let diff = y_priv.max_abs_diff(&y_plain);
            assert!(diff < 0.2, "{name}: diff={diff}");
        }
    }

    #[test]
    fn residual_model_trains_privately() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 15);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = mini_resnet(8, 4, 16);
        let mut sgd = Sgd::new(0.02);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 7) as f32 - 3.0) * 0.1);
        let labels = [0usize, 3];
        for _ in 0..3 {
            session.train_step(&mut model, &x, &labels, &mut sgd).unwrap();
        }
    }

    /// The serving-mode guarantee: with per-sample scales, each output
    /// row is bit-identical to running that sample *alone* through the
    /// quantized reference — even when the rows differ in magnitude by
    /// orders of magnitude (which couples rows under the shared scale).
    #[test]
    fn per_sample_inference_matches_solo_reference_bitwise() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 19);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(20);
        let mut x = input(2);
        for v in x.batch_item_mut(1) {
            *v *= 931.0; // magnitude skew between rows
        }
        let y = session.private_inference_per_sample(&mut model, &x).unwrap();
        for i in 0..2 {
            let xi = Tensor::from_vec(&[1, 2, 6, 6], x.batch_item(i).to_vec());
            let mut reference =
                crate::reference::QuantizedReference::new(1, session.config().quant());
            let mut ref_model = small_model(20);
            let yi = reference.forward(&mut ref_model, &xi, false).unwrap();
            assert_eq!(y.batch_item(i), yi.as_slice(), "row {i} diverged from solo reference");
        }
    }

    /// The shared-scale path does *not* have the solo-equality property
    /// (row 0's quantization step is set by row 1's magnitude) — the
    /// contrast that motivates the per-sample mode.
    #[test]
    fn shared_scale_inference_couples_rows() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 21);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(22);
        let mut x = input(2);
        for v in x.batch_item_mut(1) {
            *v *= 931.0;
        }
        let y = session.private_inference(&mut model, &x).unwrap();
        let x0 = Tensor::from_vec(&[1, 2, 6, 6], x.batch_item(0).to_vec());
        let mut reference = crate::reference::QuantizedReference::new(1, session.config().quant());
        let mut ref_model = small_model(22);
        let y0 = reference.forward(&mut ref_model, &x0, false).unwrap();
        assert_ne!(y.batch_item(0), y0.as_slice(), "shared scale unexpectedly decoupled rows");
    }

    #[test]
    fn per_sample_inference_integrity_catches_tampering() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[2] = Behavior::SingleElement;
        let cluster = GpuCluster::with_behaviors(&behaviors, 23);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(24);
        let err = session.private_inference_per_sample(&mut model, &input(2)).unwrap_err();
        assert!(matches!(err, DarknightError::IntegrityViolation { phase: "forward", .. }));
    }

    /// Regression: an aborted batch must not leak its charged enclave
    /// working set. A serving worker reuses one session across
    /// unboundedly many batches, so a per-failure leak would grow
    /// `current_bytes` monotonically under attack and corrupt every
    /// later batch's paging accounting.
    #[test]
    fn aborted_batches_release_enclave_working_set() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
        behaviors[1] = Behavior::SingleElement;
        let cluster = GpuCluster::with_behaviors(&behaviors, 27);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(28);
        for _ in 0..3 {
            let _ = session.private_inference_per_sample(&mut model, &input(2)).unwrap_err();
            session.begin_virtual_batch();
            assert_eq!(
                session.enclave_stats().current_bytes,
                0,
                "failed batch leaked enclave bytes"
            );
        }
        // The session recovers fully once the fleet behaves.
        session.cluster_mut().worker_mut(WorkerId(1)).set_behavior(Behavior::Honest);
        session.private_inference_per_sample(&mut model, &input(2)).unwrap();
    }

    #[test]
    fn per_sample_inference_rejects_wrong_batch() {
        let cfg = DarknightConfig::new(2, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 25);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(26);
        let err = session.private_inference_per_sample(&mut model, &input(3)).unwrap_err();
        assert!(matches!(err, DarknightError::BatchShape { expected: 2, actual: 3 }));
    }

    #[test]
    fn stats_are_populated() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 17);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(18);
        let _ = session.private_inference(&mut model, &input(2)).unwrap();
        let s = session.stats();
        assert!(s.linear_jobs >= 8); // 2 linear layers x 4 encodings
        assert!(s.encoded_elems > 0);
        assert!(s.decoded_elems > 0);
        assert!(s.bytes_to_gpus > 0);
        assert_eq!(s.integrity_checks, 2);
        assert!(session.enclave_stats().peak_bytes > 0);
    }

    /// Satellite regression: consecutive passes through *any* mix of
    /// entry points get fresh batches — no entry point can replay
    /// context ids against a stale `ctxs` map.
    #[test]
    fn consecutive_passes_never_reuse_batch_state() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 31);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(32);
        let x = input(2);
        // Forward in train mode retains contexts for a backward pass...
        session.begin_virtual_batch();
        let b1 = session.batch_index();
        let _ = session.private_forward(&mut model, &x, true).unwrap();
        // ...but a second forward without backward must not reuse them.
        let _ = session.private_forward(&mut model, &x, true).unwrap();
        assert_eq!(session.batch_index(), b1 + 1, "second pass must open a fresh batch");
        // Mixing entry points keeps advancing the batch number.
        let _ = session.private_inference(&mut model, &x).unwrap();
        assert_eq!(session.batch_index(), b1 + 2);
        let _ = session.private_inference_per_sample(&mut model, &x).unwrap();
        assert_eq!(session.batch_index(), b1 + 3);
        // And an explicit begin is honoured by the next pass (no double
        // begin).
        session.begin_virtual_batch();
        let fresh = session.batch_index();
        let _ = session.private_inference(&mut model, &x).unwrap();
        assert_eq!(session.batch_index(), fresh);
    }

    /// Steady-state invariant: after warm-up batches, the session's
    /// workspace pool stops missing — every per-batch buffer (quantized
    /// rows, noise, stacking, decoded rows, activations) is recycled
    /// rather than re-allocated. This is the session-side half of the
    /// zero-allocation hot path (the counting-allocator test in `dk_nn`
    /// enforces the model-side half down to literal zero).
    #[test]
    fn warm_session_workspace_stops_missing() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 51);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = small_model(52);
        let x = input(2);
        for _ in 0..3 {
            let _ = session.private_inference(&mut model, &x).unwrap();
        }
        let misses = session.workspace_stats().misses;
        for _ in 0..5 {
            let _ = session.private_inference(&mut model, &x).unwrap();
        }
        let after = session.workspace_stats();
        // The dropped per-batch output tensor is the only buffer that
        // leaves the pool each batch (callers may recycle it; this test
        // deliberately drops it), so allow exactly that many misses.
        assert!(
            after.misses - misses <= 5 * 2,
            "session workspace kept allocating: {} new misses over 5 warm batches",
            after.misses - misses
        );
        assert!(after.takes > 0);
    }

    /// A step plan (weights quantized once, up front) must be invisible
    /// to the results: same bits as quantizing per batch.
    #[test]
    fn step_plan_is_bit_transparent() {
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let x = input(2);
        let mut model_a = small_model(40);
        let mut model_b = small_model(40);
        let mut plain = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 41))
            .unwrap();
        let mut planned = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 41))
            .unwrap();
        let plan = crate::engine::StepPlan::extract(&model_b, cfg.quant()).unwrap();
        planned.set_step_plan(Some(Arc::new(plan)));
        let ya = plain.private_inference(&mut model_a, &x).unwrap();
        let yb = planned.private_inference(&mut model_b, &x).unwrap();
        assert_eq!(ya.as_slice(), yb.as_slice());
    }
}
