//! DarKnight: privacy- and integrity-preserving deep learning on
//! untrusted accelerators — a full reproduction of Hashemi, Wang &
//! Annavaram, *DarKnight* (MICRO 2021), in Rust.
//!
//! The framework splits every training/inference step between a trusted
//! execution environment and untrusted GPU workers:
//!
//! * the TEE quantizes activations into `F_{2^25−39}`, masks a *virtual
//!   batch* of `K` inputs with `M` uniform noise vectors through a secret
//!   coefficient matrix `A` ([`scheme::EncodingScheme`], Eq. 1/10 of the
//!   paper), and ships the masked vectors to GPUs;
//! * GPUs run all bilinear ops (conv/dense forward, weight gradients,
//!   data gradients) on masked data (`dk-gpu`);
//! * the TEE decodes results with `A^{-1}` (Eq. 2), runs every
//!   non-linear op on plaintext floats, and for backward passes decodes
//!   only the *aggregate* weight update `∇W = (1/K)·Σ_j γ_j Eq_j`
//!   (Eq. 4–6) — never materializing per-example gradients;
//! * one redundant masked equation per layer detects tampered GPU
//!   results ([`scheme`], §4.4), and the MDS structure of the noise
//!   block tolerates up to `M` colluding GPUs (§4.5, §5).
//!
//! Entry points:
//!
//! * [`session::DarknightSession`] — the §3.1 flow: private forward,
//!   private backward, full train step, private inference. The
//!   blocking, one-batch-at-a-time **sequential reference**.
//! * [`engine::PipelineEngine`] — the overlapped (pipelined) execution
//!   mode of §7.1: TEE encode of batch `t+1` under the shadow of GPU
//!   work for batch `t`, bit-for-bit identical to the sequential path.
//!   This is what the Algorithm 2 trainer and `dk_serve` workers run on.
//! * [`virtual_batch::LargeBatchTrainer`] — Algorithm 2: per-virtual-
//!   batch gradient sealing/eviction and shard-wise aggregation, in
//!   sequential or pipelined mode.
//! * [`privacy`] — empirical privacy validation (uniformity of the GPU
//!   view; collusion-boundary audits).
//!
//! # Example
//!
//! ```
//! use dk_core::{DarknightConfig, session::DarknightSession};
//! use dk_gpu::GpuCluster;
//! use dk_nn::arch::mini_vgg;
//! use dk_linalg::Tensor;
//!
//! let cfg = DarknightConfig::new(2, 1).with_integrity(true);
//! let cluster = GpuCluster::honest(cfg.workers_required(), 7);
//! let mut session = DarknightSession::new(cfg, cluster).unwrap();
//! let mut model = mini_vgg(16, 10, 42);
//! let x = Tensor::<f32>::from_fn(&[2, 3, 16, 16], |i| ((i % 11) as f32 - 5.0) * 0.05);
//! let logits = session.private_inference(&mut model, &x).unwrap();
//! assert_eq!(logits.shape(), &[2, 10]);
//! ```

pub mod checkpoint;
pub mod config;
pub mod engine;
pub mod error;
pub mod privacy;
pub mod recovery;
pub mod reference;
pub mod scheme;
pub mod session;
pub mod virtual_batch;

pub use checkpoint::TrainingCheckpoint;
pub use config::DarknightConfig;
pub use engine::{EngineOptions, PipelineEngine, StepPlan};
pub use error::DarknightError;
pub use reference::QuantizedReference;
pub use scheme::EncodingScheme;
pub use session::DarknightSession;
