//! Sealed, deterministic training checkpoints.
//!
//! The companion training paper assumes long multi-epoch jobs, which
//! demands restartability: a run killed at a batch boundary must resume
//! and land **bit-identical** to an uninterrupted run. Determinism by
//! derivation (every per-batch mask, scheme and spot check is a pure
//! function of `(seed, batch#, layer)` via `derive_seed`) makes that
//! possible with a tiny cursor: a checkpoint only needs the mutable
//! training state — weights, optimizer velocity, BatchNorm running
//! statistics — plus the virtual-batch cursor and the session seed. The
//! entire RNG future is re-derived from those two integers.
//!
//! Checkpoints travel as [`dk_tee::crypto::SealedBlob`]s: the enclave
//! seals (encrypts + MACs) the serialized state before it is evicted to
//! untrusted storage, and unseals it on resume. The seal key is derived
//! from the enclave *code identity*, so a freshly started process with
//! the same enclave build can unseal a dead process's checkpoint —
//! exactly the SGX sealing model.

use crate::config::DarknightConfig;
use crate::error::DarknightError;
use dk_nn::layers::Layer;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_linalg::Tensor;

/// Format magic + version, leading every serialized checkpoint.
const MAGIC: u64 = 0x444B_434B_5054_0001; // "DKCKPT" v1

/// The complete mutable state of a large-batch training run at a step
/// boundary. Everything else (masks, schemes, spot checks, noise) is
/// re-derived from `seed` and `next_batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainingCheckpoint {
    /// Session master seed — resume must re-create the identical
    /// derived-stream universe.
    pub seed: u64,
    /// Virtual batch size `K` (config validation on resume).
    pub k: u32,
    /// Collusion tolerance `M`.
    pub m: u32,
    /// Whether the redundant integrity equation was on.
    pub integrity: bool,
    /// Whether TEE-side recovery was on.
    pub recovery: bool,
    /// Quantization fractional bits `l`.
    pub frac_bits: u32,
    /// Virtual batches consumed so far — the next pass begins batch
    /// `next_batch + 1`.
    pub next_batch: u64,
    /// Large-batch steps completed so far.
    pub steps: u64,
    /// All model parameters, flattened in visit order.
    pub params: Vec<f32>,
    /// Per-BatchNorm-layer `(running_mean, running_var)` in execution
    /// order (leaf traversal, descending residual blocks).
    pub bn_stats: Vec<(Vec<f32>, Vec<f32>)>,
    /// Optimizer learning rate at capture time (schedules resume too).
    pub lr: f32,
    /// Optimizer momentum coefficient (validated on resume).
    pub momentum: f32,
    /// Optimizer weight decay (validated on resume).
    pub weight_decay: f32,
    /// Momentum velocity buffers, flattened per parameter in visit
    /// order. May hold fewer entries than there are parameters if the
    /// optimizer had not yet touched them all.
    pub velocity: Vec<Vec<f32>>,
}

impl TrainingCheckpoint {
    /// Captures the training state at a step boundary.
    pub fn capture(
        cfg: &DarknightConfig,
        next_batch: u64,
        steps: u64,
        model: &mut Sequential,
        sgd: &Sgd,
    ) -> Self {
        let mut params = Vec::with_capacity(model.num_params());
        model.visit_params(&mut |p, _| params.extend_from_slice(p.as_slice()));
        let mut bn_stats = Vec::new();
        model.visit_leaf_layers_mut(&mut |l| {
            if let Layer::BatchNorm2d(bn) = l {
                let (mean, var) = bn.running_stats();
                bn_stats.push((mean.to_vec(), var.to_vec()));
            }
        });
        Self {
            seed: cfg.seed(),
            k: cfg.k() as u32,
            m: cfg.m() as u32,
            integrity: cfg.integrity(),
            recovery: cfg.recovery(),
            frac_bits: cfg.quant().frac_bits(),
            next_batch,
            steps,
            params,
            bn_stats,
            lr: sgd.learning_rate(),
            momentum: sgd.momentum(),
            weight_decay: sgd.weight_decay(),
            velocity: sgd.velocity().iter().map(|t| t.as_slice().to_vec()).collect(),
        }
    }

    /// Rejects a checkpoint captured under a different session
    /// configuration — resuming it would silently change every derived
    /// mask stream.
    ///
    /// # Errors
    ///
    /// [`DarknightError::Checkpoint`] naming the mismatched field.
    pub fn validate_config(&self, cfg: &DarknightConfig) -> Result<(), DarknightError> {
        let fail = |reason| Err(DarknightError::Checkpoint { reason });
        if self.seed != cfg.seed() {
            return fail("session seed differs");
        }
        if self.k != cfg.k() as u32 || self.m != cfg.m() as u32 {
            return fail("K/M configuration differs");
        }
        if self.integrity != cfg.integrity() || self.recovery != cfg.recovery() {
            return fail("integrity/recovery configuration differs");
        }
        if self.frac_bits != cfg.quant().frac_bits() {
            return fail("quantization configuration differs");
        }
        Ok(())
    }

    /// Installs the captured state into `model` and `sgd`.
    ///
    /// # Errors
    ///
    /// [`DarknightError::Checkpoint`] if the model's parameter count,
    /// BatchNorm layout, or the optimizer's hyperparameters do not
    /// match the captured run.
    pub fn install(&self, model: &mut Sequential, sgd: &mut Sgd) -> Result<(), DarknightError> {
        if model.num_params() != self.params.len() {
            return Err(DarknightError::Checkpoint { reason: "model parameter count differs" });
        }
        if sgd.momentum().to_bits() != self.momentum.to_bits()
            || sgd.weight_decay().to_bits() != self.weight_decay.to_bits()
        {
            return Err(DarknightError::Checkpoint { reason: "optimizer hyperparameters differ" });
        }
        // Weights + velocity, keyed by the same visit order capture used.
        let mut off = 0usize;
        let mut velocity: Vec<Tensor<f32>> = Vec::with_capacity(self.velocity.len());
        let mut shape_err = false;
        let mut idx = 0usize;
        model.visit_params(&mut |p, _| {
            let n = p.as_slice().len();
            p.as_mut_slice().copy_from_slice(&self.params[off..off + n]);
            off += n;
            if idx < self.velocity.len() {
                if self.velocity[idx].len() == n {
                    velocity.push(Tensor::from_vec(p.shape(), self.velocity[idx].clone()));
                } else {
                    shape_err = true;
                }
            }
            idx += 1;
        });
        if shape_err || self.velocity.len() > idx {
            return Err(DarknightError::Checkpoint { reason: "velocity layout differs" });
        }
        // BatchNorm running statistics, in the same leaf order.
        let mut bi = 0usize;
        let mut bn_err = false;
        model.visit_leaf_layers_mut(&mut |l| {
            if let Layer::BatchNorm2d(bn) = l {
                match self.bn_stats.get(bi) {
                    Some((mean, var)) if mean.len() == bn.channels() => {
                        bn.set_running_stats(mean, var);
                    }
                    _ => bn_err = true,
                }
                bi += 1;
            }
        });
        if bn_err || bi != self.bn_stats.len() {
            return Err(DarknightError::Checkpoint { reason: "BatchNorm layout differs" });
        }
        sgd.set_learning_rate(self.lr);
        sgd.set_velocity(velocity);
        Ok(())
    }

    /// Serializes to the sealed-payload byte format (little-endian,
    /// versioned by [`MAGIC`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.params.len() * 4);
        put_u64(&mut out, MAGIC);
        put_u64(&mut out, self.seed);
        put_u32(&mut out, self.k);
        put_u32(&mut out, self.m);
        out.push(u8::from(self.integrity) | (u8::from(self.recovery) << 1));
        put_u32(&mut out, self.frac_bits);
        put_u64(&mut out, self.next_batch);
        put_u64(&mut out, self.steps);
        put_f32s(&mut out, &self.params);
        put_u64(&mut out, self.bn_stats.len() as u64);
        for (mean, var) in &self.bn_stats {
            put_f32s(&mut out, mean);
            put_f32s(&mut out, var);
        }
        put_u32(&mut out, self.lr.to_bits());
        put_u32(&mut out, self.momentum.to_bits());
        put_u32(&mut out, self.weight_decay.to_bits());
        put_u64(&mut out, self.velocity.len() as u64);
        for v in &self.velocity {
            put_f32s(&mut out, v);
        }
        out
    }

    /// Parses a serialized checkpoint.
    ///
    /// # Errors
    ///
    /// [`DarknightError::Checkpoint`] on truncation, trailing garbage,
    /// or a format-version mismatch. (Bit flips inside the sealed blob
    /// never reach this code — the enclave's MAC check rejects them
    /// during unsealing.)
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DarknightError> {
        let mut cur = Cursor { bytes, pos: 0 };
        if cur.u64()? != MAGIC {
            return Err(DarknightError::Checkpoint { reason: "bad magic/version" });
        }
        let seed = cur.u64()?;
        let k = cur.u32()?;
        let m = cur.u32()?;
        let flags = cur.u8()?;
        let frac_bits = cur.u32()?;
        let next_batch = cur.u64()?;
        let steps = cur.u64()?;
        let params = cur.f32s()?;
        let bn_count = cur.u64()? as usize;
        let mut bn_stats = Vec::with_capacity(bn_count.min(1024));
        for _ in 0..bn_count {
            let mean = cur.f32s()?;
            let var = cur.f32s()?;
            bn_stats.push((mean, var));
        }
        let lr = f32::from_bits(cur.u32()?);
        let momentum = f32::from_bits(cur.u32()?);
        let weight_decay = f32::from_bits(cur.u32()?);
        let v_count = cur.u64()? as usize;
        let mut velocity = Vec::with_capacity(v_count.min(1024));
        for _ in 0..v_count {
            velocity.push(cur.f32s()?);
        }
        if cur.pos != bytes.len() {
            return Err(DarknightError::Checkpoint { reason: "trailing bytes" });
        }
        Ok(Self {
            seed,
            k,
            m,
            integrity: flags & 1 != 0,
            recovery: flags & 2 != 0,
            frac_bits,
            next_batch,
            steps,
            params,
            bn_stats,
            lr,
            momentum,
            weight_decay,
            velocity,
        })
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32s(out: &mut Vec<u8>, vals: &[f32]) {
    put_u64(out, vals.len() as u64);
    for v in vals {
        put_u32(out, v.to_bits());
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DarknightError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DarknightError::Checkpoint { reason: "truncated payload" })?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DarknightError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DarknightError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized take")))
    }

    fn u64(&mut self) -> Result<u64, DarknightError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized take")))
    }

    fn f32s(&mut self) -> Result<Vec<f32>, DarknightError> {
        let n = self.u64()? as usize;
        if n > self.bytes.len() - self.pos {
            // Cheap sanity bound before allocating: each f32 costs 4
            // bytes, so n can never exceed the remaining byte count.
            return Err(DarknightError::Checkpoint { reason: "truncated payload" });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f32::from_bits(self.u32()?));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_linalg::Conv2dShape;
    use dk_nn::layers::{BatchNorm2d, Conv2d, Dense, Flatten, Layer, Relu};

    fn bn_model(seed: u64) -> Sequential {
        Sequential::new(vec![
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(1, 2, 3, 1, 1), seed)),
            Layer::BatchNorm2d(BatchNorm2d::new(2)),
            Layer::Relu(Relu::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(2 * 4 * 4, 3, seed ^ 9)),
        ])
    }

    fn trained_state() -> (Sequential, Sgd) {
        let mut m = bn_model(5);
        let mut sgd = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
        for step in 0..3 {
            m.zero_grad();
            let x = Tensor::from_fn(&[2, 1, 4, 4], |i| ((i + step) % 7) as f32 * 0.1);
            let y = m.forward(&x, true);
            m.backward(&Tensor::ones(y.shape()));
            sgd.step(&mut m);
        }
        (m, sgd)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let (mut m, sgd) = trained_state();
        let cfg = DarknightConfig::new(2, 1).with_seed(42);
        let ckpt = TrainingCheckpoint::capture(&cfg, 17, 3, &mut m, &sgd);
        assert!(!ckpt.bn_stats.is_empty(), "model must exercise BatchNorm");
        assert!(!ckpt.velocity.is_empty(), "momentum must have velocity");
        let back = TrainingCheckpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn install_restores_bitwise() {
        let (mut m, sgd) = trained_state();
        let cfg = DarknightConfig::new(2, 1).with_seed(42);
        let ckpt = TrainingCheckpoint::capture(&cfg, 4, 1, &mut m, &sgd);
        let snap = m.snapshot_params();

        let mut fresh = bn_model(5);
        let mut fresh_sgd = Sgd::new(0.5).with_momentum(0.9).with_weight_decay(1e-4);
        ckpt.install(&mut fresh, &mut fresh_sgd).unwrap();
        assert_eq!(fresh.max_param_diff(&snap), 0.0);
        assert_eq!(fresh_sgd.learning_rate(), sgd.learning_rate());
        assert_eq!(fresh_sgd.velocity().len(), sgd.velocity().len());
        for (a, b) in fresh_sgd.velocity().iter().zip(sgd.velocity()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        // Running stats came back bit-for-bit too.
        let reloaded = TrainingCheckpoint::capture(&cfg, 4, 1, &mut fresh, &fresh_sgd);
        assert_eq!(reloaded.bn_stats, ckpt.bn_stats);
    }

    #[test]
    fn config_mismatch_is_typed() {
        let (mut m, sgd) = trained_state();
        let cfg = DarknightConfig::new(2, 1).with_seed(42);
        let ckpt = TrainingCheckpoint::capture(&cfg, 4, 1, &mut m, &sgd);
        for bad in [
            DarknightConfig::new(2, 1).with_seed(43),
            DarknightConfig::new(4, 1).with_seed(42),
            DarknightConfig::new(2, 2).with_seed(42),
            DarknightConfig::new(2, 1).with_seed(42).with_integrity(true),
        ] {
            assert!(matches!(
                ckpt.validate_config(&bad),
                Err(DarknightError::Checkpoint { .. })
            ));
        }
        ckpt.validate_config(&cfg).unwrap();
    }

    #[test]
    fn wrong_model_rejected() {
        let (mut m, sgd) = trained_state();
        let cfg = DarknightConfig::new(2, 1).with_seed(42);
        let ckpt = TrainingCheckpoint::capture(&cfg, 4, 1, &mut m, &sgd);
        let mut other = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(16, 3, 1)),
        ]);
        let mut sgd2 = Sgd::new(0.05).with_momentum(0.9).with_weight_decay(1e-4);
        assert!(matches!(
            ckpt.install(&mut other, &mut sgd2),
            Err(DarknightError::Checkpoint { reason: "model parameter count differs" })
        ));
        // Hyperparameter drift is rejected before any state moves.
        let mut sgd3 = Sgd::new(0.05);
        assert!(matches!(
            ckpt.install(&mut bn_model(5), &mut sgd3),
            Err(DarknightError::Checkpoint { reason: "optimizer hyperparameters differ" })
        ));
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let (mut m, sgd) = trained_state();
        let cfg = DarknightConfig::new(2, 1).with_seed(42);
        let bytes = TrainingCheckpoint::capture(&cfg, 4, 1, &mut m, &sgd).to_bytes();
        for cut in [0, 7, 8, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrainingCheckpoint::from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert!(matches!(
            TrainingCheckpoint::from_bytes(&long),
            Err(DarknightError::Checkpoint { reason: "trailing bytes" })
        ));
        let mut wrong_magic = bytes;
        wrong_magic[0] ^= 1;
        assert!(TrainingCheckpoint::from_bytes(&wrong_magic).is_err());
    }
}
