//! Quantization-matched clear-text reference execution.
//!
//! DarKnight's correctness claim (§4.1–4.2) is that the masking adds
//! *zero* numerical error: encoding, offloaded bilinear ops, and
//! decoding are exact in `F_p`, so the only approximation in the whole
//! private pipeline is Algorithm 1's fixed-point quantization — which a
//! non-private implementation using the same quantization would pay
//! identically.
//!
//! [`QuantizedReference`] makes that claim testable. It executes a model
//! with the *same* per-layer normalize → quantize → field-kernel →
//! dequantize sequence as [`crate::session::DarknightSession`], but in
//! the clear: no noise, no encoding matrix, no GPU cluster. A private
//! session and this reference must agree **bit for bit** on every
//! activation and every gradient (the integration tests assert exactly
//! that); any drift between the two would indicate an error introduced
//! by the masking machinery itself.
//!
//! Comparisons against an unquantized float model, by contrast, see
//! genuine fixed-point noise — including occasional ReLU gates flipping
//! on near-zero pre-activations, which perturbs backward gradients by
//! far more than one quantization step. That noise belongs to
//! Algorithm 1, not to DarKnight's privacy layer, and this module is
//! the oracle that separates the two.

use crate::error::DarknightError;
use dk_field::{F25, P25, QuantConfig};
use dk_linalg::conv::{conv2d_backward_input, conv2d_backward_weight, conv2d_forward};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, ops, Tensor};
use dk_nn::layers::{Conv2d, Dense, Layer};
use dk_nn::Sequential;
use std::collections::HashMap;

/// Max-abs normalization followed by Algorithm 1 quantization — the
/// shared implementation used by both the private session and the
/// clear-text reference, so the two can never diverge numerically.
pub(crate) fn normalize_quantize(
    quant: QuantConfig,
    vals: &[f32],
) -> Result<(Vec<F25>, f32), DarknightError> {
    let mut out = Vec::with_capacity(vals.len());
    let norm = normalize_quantize_into(quant, vals, &mut out)?;
    Ok((out, norm))
}

/// [`normalize_quantize`] writing into a caller-provided (cleared)
/// buffer — the allocation-free form the session hot path uses with
/// workspace-recycled buffers. Element math is shared, so the two forms
/// can never diverge numerically.
pub(crate) fn normalize_quantize_into(
    quant: QuantConfig,
    vals: &[f32],
    out: &mut Vec<F25>,
) -> Result<f32, DarknightError> {
    let max_abs = vals.iter().fold(0.0f32, |m, v| m.max(v.abs()));
    let norm = if max_abs > 0.0 { max_abs } else { 1.0 };
    let inv = 1.0 / norm;
    out.clear();
    out.reserve(vals.len());
    for &v in vals {
        out.push(quant.quantize::<P25>((v * inv) as f64)?);
    }
    Ok(norm)
}

/// Per-linear-layer state retained between forward and backward.
#[derive(Debug, Clone)]
struct RefCtx {
    norm_x: f32,
    norm_w: f32,
    input_shape: Vec<usize>,
    weights_q: Tensor<F25>,
    inputs_q: Vec<Vec<F25>>,
}

/// Clear-text executor with session-identical quantization (see module
/// docs).
#[derive(Debug)]
pub struct QuantizedReference {
    k: usize,
    quant: QuantConfig,
    ctxs: HashMap<u64, RefCtx>,
    next_id: u64,
}

impl QuantizedReference {
    /// Creates a reference executor for virtual batches of size `k`
    /// under the given quantization.
    pub fn new(k: usize, quant: QuantConfig) -> Self {
        Self { k, quant, ctxs: HashMap::new(), next_id: 0 }
    }

    /// Forward pass with the session's exact quantization pipeline.
    ///
    /// # Errors
    ///
    /// [`DarknightError::BatchShape`] on a batch-size mismatch, or a
    /// quantization failure.
    pub fn forward(
        &mut self,
        model: &mut Sequential,
        x: &Tensor<f32>,
        train: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        if x.shape()[0] != self.k {
            return Err(DarknightError::BatchShape { expected: self.k, actual: x.shape()[0] });
        }
        self.ctxs.clear();
        self.next_id = 0;
        self.forward_layers(model.layers_mut(), x.clone(), train)
    }

    /// The serving-verification oracle: runs a single sample (no batch
    /// dimension) through a fresh `k = 1` reference on a clone of
    /// `model`, returning the output with the batch dimension stripped.
    ///
    /// `dk_serve` guarantees every served response is bit-for-bit equal
    /// to this function's result for the same sample and quantization —
    /// embedders (and this workspace's own tests/examples) use it to
    /// audit a serving deployment end to end.
    ///
    /// # Errors
    ///
    /// Quantization failure (non-finite input).
    pub fn forward_solo(
        model: &Sequential,
        x: &Tensor<f32>,
        quant: QuantConfig,
    ) -> Result<Tensor<f32>, DarknightError> {
        let mut shape = vec![1];
        shape.extend_from_slice(x.shape());
        let x1 = Tensor::from_vec(&shape, x.as_slice().to_vec());
        let mut reference = Self::new(1, quant);
        let mut model = model.clone();
        let y = reference.forward(&mut model, &x1, false)?;
        let row_shape = y.shape()[1..].to_vec();
        Ok(Tensor::from_vec(&row_shape, y.into_vec()))
    }

    /// Backward pass from the loss gradient; accumulates parameter
    /// gradients exactly as the private session does.
    ///
    /// # Errors
    ///
    /// Quantization failure.
    pub fn backward(
        &mut self,
        model: &mut Sequential,
        dloss: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        self.backward_layers(model.layers_mut(), dloss.clone())
    }

    fn take_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn untake_id(&mut self) -> u64 {
        debug_assert!(self.next_id > 0, "backward pass saw more linear layers than forward");
        self.next_id -= 1;
        self.next_id
    }

    fn forward_layers(
        &mut self,
        layers: &mut [Layer],
        mut x: Tensor<f32>,
        train: bool,
    ) -> Result<Tensor<f32>, DarknightError> {
        for layer in layers.iter_mut() {
            x = match layer {
                Layer::Conv2d(conv) => {
                    let id = self.take_id();
                    self.forward_conv(id, conv, &x)?
                }
                Layer::Dense(dense) => {
                    let id = self.take_id();
                    self.forward_dense(id, dense, &x)?
                }
                Layer::Residual(res) => {
                    let main = self.forward_layers(res.main_mut(), x.clone(), train)?;
                    let short = if res.shortcut().is_empty() {
                        x.clone()
                    } else {
                        self.forward_layers(res.shortcut_mut(), x.clone(), train)?
                    };
                    main.add(&short)
                }
                other => other.forward(&x, train),
            };
        }
        Ok(x)
    }

    /// Quantizes weights and the whole input batch (one shared scale,
    /// as the virtual batch requires), runs the field kernel per
    /// sample, and dequantizes — the session's flow minus the masking.
    fn quantize_layer_io(
        &self,
        x: &Tensor<f32>,
        weights: &Tensor<f32>,
        weight_shape: &[usize],
    ) -> Result<RefCtx, DarknightError> {
        let (wq_flat, norm_w) = normalize_quantize(self.quant, weights.as_slice())?;
        let weights_q = Tensor::from_vec(weight_shape, wq_flat);
        let (xq_flat, norm_x) = normalize_quantize(self.quant, x.as_slice())?;
        let rest: usize = x.shape()[1..].iter().product();
        let inputs_q: Vec<Vec<F25>> =
            (0..self.k).map(|i| xq_flat[i * rest..(i + 1) * rest].to_vec()).collect();
        Ok(RefCtx {
            norm_x,
            norm_w,
            input_shape: x.shape().to_vec(),
            weights_q,
            inputs_q,
        })
    }

    fn forward_conv(
        &mut self,
        layer_id: u64,
        conv: &mut Conv2d,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let shape = *conv.shape();
        let ctx = self.quantize_layer_io(x, conv.weights(), &shape.weight_shape())?;
        let (c, h, w) = (x.shape()[1], x.shape()[2], x.shape()[3]);
        let q = self.quant;
        let scale = ctx.norm_w * ctx.norm_x;
        let mut y: Option<Tensor<f32>> = None;
        for (i, xq) in ctx.inputs_q.iter().enumerate() {
            let xt = Tensor::from_vec(&[1, c, h, w], xq.clone());
            let yq = conv2d_forward(&xt, &ctx.weights_q, &shape);
            let out =
                y.get_or_insert_with(|| Tensor::zeros(&[self.k, yq.shape()[1], yq.shape()[2], yq.shape()[3]]));
            for (dst, &v) in out.batch_item_mut(i).iter_mut().zip(yq.as_slice()) {
                *dst = q.dequantize_product(v) as f32 * scale;
            }
        }
        let mut y = y.expect("k > 0");
        ops::add_bias_nchw(&mut y, conv.bias().as_slice());
        self.ctxs.insert(layer_id, ctx);
        Ok(y)
    }

    fn forward_dense(
        &mut self,
        layer_id: u64,
        dense: &mut Dense,
        x: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let in_f = dense.in_features();
        let out_f = dense.out_features();
        let ctx = self.quantize_layer_io(x, dense.weights(), &[out_f, in_f])?;
        let q = self.quant;
        let scale = ctx.norm_w * ctx.norm_x;
        let mut y = Tensor::zeros(&[self.k, out_f]);
        for (i, xq) in ctx.inputs_q.iter().enumerate() {
            let yq = matmul_a_bt(xq, ctx.weights_q.as_slice(), 1, in_f, out_f);
            for (dst, &v) in y.batch_item_mut(i).iter_mut().zip(&yq) {
                *dst = q.dequantize_product(v) as f32 * scale;
            }
        }
        ops::add_bias_rows(&mut y, dense.bias().as_slice());
        self.ctxs.insert(layer_id, ctx);
        Ok(y)
    }

    fn backward_layers(
        &mut self,
        layers: &mut [Layer],
        mut dy: Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        for layer in layers.iter_mut().rev() {
            dy = match layer {
                Layer::Conv2d(conv) => {
                    let id = self.untake_id();
                    self.backward_conv(id, conv, &dy)?
                }
                Layer::Dense(dense) => {
                    let id = self.untake_id();
                    self.backward_dense(id, dense, &dy)?
                }
                Layer::Residual(res) => {
                    let ds = if res.shortcut().is_empty() {
                        dy.clone()
                    } else {
                        self.backward_layers(res.shortcut_mut(), dy.clone())?
                    };
                    let dm = self.backward_layers(res.main_mut(), dy.clone())?;
                    dm.add(&ds)
                }
                other => other.backward(&dy),
            };
        }
        Ok(dy)
    }

    fn backward_conv(
        &mut self,
        layer_id: u64,
        conv: &mut Conv2d,
        dy: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let bg = ops::bias_grad_nchw(dy);
        conv.accumulate_bias_grad(&Tensor::from_vec(&[bg.len()], bg));
        let ctx = self.ctxs.remove(&layer_id).expect("backward without forward context");
        let shape = *conv.shape();
        let input_hw = (ctx.input_shape[2], ctx.input_shape[3]);
        let (dq_flat, norm_d) = normalize_quantize(self.quant, dy.as_slice())?;
        let delta_q = Tensor::from_vec(dy.shape(), dq_flat);
        // Aggregate ∇W = Σ_i ⟨δ_i, x_i⟩ in the field — the exact value
        // the session recovers via Σ_j γ_j·Eq_j (Eq. 6).
        let enc_shape = [1, ctx.input_shape[1], ctx.input_shape[2], ctx.input_shape[3]];
        let mut grad_field: Option<Tensor<F25>> = None;
        for (i, xq) in ctx.inputs_q.iter().enumerate() {
            let xt = Tensor::from_vec(&enc_shape, xq.clone());
            let mut dshape = dy.shape().to_vec();
            dshape[0] = 1;
            let dt = Tensor::from_vec(&dshape, delta_q.batch_item(i).to_vec());
            let gw_i = conv2d_backward_weight(&dt, &xt, &shape);
            match &mut grad_field {
                None => grad_field = Some(gw_i),
                Some(acc) => {
                    for (a, &v) in acc.as_mut_slice().iter_mut().zip(gw_i.as_slice()) {
                        *a += v;
                    }
                }
            }
        }
        let grad_field = grad_field.expect("k > 0");
        let q = self.quant;
        let wscale = norm_d * ctx.norm_x;
        let gw: Vec<f32> = grad_field
            .as_slice()
            .iter()
            .map(|&v| q.dequantize_product(v) as f32 * wscale)
            .collect();
        conv.accumulate_weight_grad(&Tensor::from_vec(&shape.weight_shape(), gw));
        // Data gradient: the same whole-batch kernel the offloaded job
        // runs.
        let dx_field = conv2d_backward_input(&delta_q, &ctx.weights_q, &shape, input_hw);
        let dscale = norm_d * ctx.norm_w;
        let dx = dx_field.map(|v| q.dequantize_product(v) as f32 * dscale);
        Ok(dx)
    }

    fn backward_dense(
        &mut self,
        layer_id: u64,
        dense: &mut Dense,
        dy: &Tensor<f32>,
    ) -> Result<Tensor<f32>, DarknightError> {
        let bg = ops::bias_grad_rows(dy);
        dense.accumulate_bias_grad(&Tensor::from_vec(&[bg.len()], bg));
        let ctx = self.ctxs.remove(&layer_id).expect("backward without forward context");
        let in_f = dense.in_features();
        let out_f = dense.out_features();
        let (dq_flat, norm_d) = normalize_quantize(self.quant, dy.as_slice())?;
        let delta_q = Tensor::from_vec(dy.shape(), dq_flat);
        let mut grad_field = vec![F25::ZERO; out_f * in_f];
        for (i, xq) in ctx.inputs_q.iter().enumerate() {
            let gw_i = matmul_at_b(delta_q.batch_item(i), xq, out_f, 1, in_f);
            for (a, v) in grad_field.iter_mut().zip(gw_i) {
                *a += v;
            }
        }
        let q = self.quant;
        let wscale = norm_d * ctx.norm_x;
        let gw: Vec<f32> =
            grad_field.iter().map(|&v| q.dequantize_product(v) as f32 * wscale).collect();
        dense.accumulate_weight_grad(&Tensor::from_vec(&[out_f, in_f], gw));
        let dx_field = matmul(delta_q.as_slice(), ctx.weights_q.as_slice(), self.k, out_f, in_f);
        let dscale = norm_d * ctx.norm_w;
        let dx = Tensor::from_vec(&[self.k, in_f], dx_field)
            .map(|v| q.dequantize_product(v) as f32 * dscale);
        Ok(dx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DarknightConfig;
    use crate::session::DarknightSession;
    use dk_gpu::GpuCluster;
    use dk_nn::arch::{mini_mobilenet, mini_resnet, mini_vgg};
    use dk_nn::loss::softmax_cross_entropy;

    /// The reference must agree bit-for-bit with the private session on
    /// logits, gradients, and dx — the module's whole reason to exist.
    #[test]
    fn reference_matches_private_session_exactly() {
        for (build, name) in [
            (mini_vgg as fn(usize, usize, u64) -> Sequential, "vgg"),
            (mini_resnet, "resnet"),
            (mini_mobilenet, "mobilenet"),
        ] {
            let x = Tensor::<f32>::from_fn(&[2, 3, 8, 8], |i| ((i * 5 % 19) as f32 - 9.0) * 0.05);
            let labels = [1usize, 2];

            let cfg = DarknightConfig::new(2, 1).with_seed(31);
            let cluster = GpuCluster::honest(cfg.workers_required(), 32);
            let mut sess = DarknightSession::new(cfg, cluster).unwrap();
            let mut priv_model = build(8, 4, 7);
            priv_model.zero_grad();
            sess.begin_virtual_batch();
            let logits_p = sess.private_forward(&mut priv_model, &x, true).unwrap();
            let (_, dlp) = softmax_cross_entropy(&logits_p, &labels);
            let dx_p = sess.private_backward(&mut priv_model, &dlp).unwrap();

            let mut reference = QuantizedReference::new(2, cfg.quant());
            let mut ref_model = build(8, 4, 7);
            ref_model.zero_grad();
            let logits_r = reference.forward(&mut ref_model, &x, true).unwrap();
            let (_, dlr) = softmax_cross_entropy(&logits_r, &labels);
            let dx_r = reference.backward(&mut ref_model, &dlr).unwrap();

            assert_eq!(logits_p.max_abs_diff(&logits_r), 0.0, "{name}: logits diverged");
            assert_eq!(dx_p.max_abs_diff(&dx_r), 0.0, "{name}: dx diverged");
            let mut pg = Vec::new();
            priv_model.visit_params(&mut |_, g| pg.push(g.clone()));
            let mut rg = Vec::new();
            ref_model.visit_params(&mut |_, g| rg.push(g.clone()));
            assert_eq!(pg.len(), rg.len());
            for (i, (a, b)) in pg.iter().zip(&rg).enumerate() {
                assert_eq!(a.max_abs_diff(b), 0.0, "{name}: grad {i} diverged");
            }
        }
    }

    #[test]
    fn wrong_batch_size_rejected() {
        let mut reference = QuantizedReference::new(2, QuantConfig::new(6));
        let mut model = mini_vgg(8, 4, 1);
        let x = Tensor::<f32>::from_fn(&[3, 3, 8, 8], |_| 0.1);
        assert!(matches!(
            reference.forward(&mut model, &x, false),
            Err(DarknightError::BatchShape { expected: 2, actual: 3 })
        ));
    }
}
