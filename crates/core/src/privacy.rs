//! Empirical privacy validation (the paper's §5, checked by experiment).
//!
//! Lemma 1 of the paper says every masked value a GPU observes is
//! uniform on `F_p` and independent of the raw data. These utilities
//! validate the claim on the *actual* system:
//!
//! * [`gpu_view_chi_square`] — goodness-of-fit of everything the
//!   cluster's workers observed against the uniform distribution;
//! * [`distinguishing_advantage`] — a two-world indistinguishability
//!   game: an adversary holding one worker's observations guesses which
//!   of two known candidate inputs was encoded; the advantage over
//!   coin-flipping must be ≈ 0;
//! * [`audit_collusion_boundary`] — white-box audit wiring the session's
//!   secret `A2` into the `dk-gpu` noise-cancellation attack to confirm
//!   tolerance is exactly `M`.

use crate::scheme::EncodingScheme;
use dk_field::{F25, FieldRng, P25, QuantConfig};
use dk_gpu::collusion::{noise_cancellation_attack, uniformity_chi_square, AttackOutcome};
use dk_gpu::GpuCluster;

/// Chi-square statistic (with `buckets − 1` degrees of freedom) of all
/// values observed by all workers in a cluster.
///
/// Returns `None` if no observations were recorded yet.
pub fn gpu_view_chi_square(cluster: &GpuCluster, buckets: usize) -> Option<f64> {
    let values: Vec<F25> = cluster
        .workers()
        .iter()
        .flat_map(|w| w.observations().iter().flatten().copied())
        .collect();
    if values.is_empty() {
        None
    } else {
        Some(uniformity_chi_square(&values, buckets))
    }
}

/// Runs the two-world distinguishing game `trials` times and returns
/// the adversary's advantage `|2·Pr[guess right] − 1|`.
///
/// Worlds: input set 0 is all zeros; input set 1 is all `+0.9` (as
/// different as bounded data gets). Each trial freshly encodes world
/// `b` and hands ONE encoding (one honest worker's view) to a
/// correlation adversary that guesses the world by comparing the
/// observation's mean distance to the field representatives of the two
/// candidate inputs. Perfect masking ⇒ advantage ≈ 0.
pub fn distinguishing_advantage(k: usize, m: usize, n: usize, trials: usize, seed: u64) -> f64 {
    let quant = QuantConfig::new(8);
    let mut rng = FieldRng::seed_from(seed);
    let world_value = |b: usize| -> F25 {
        quant.quantize::<P25>(if b == 0 { 0.0 } else { 0.9 }).expect("in range")
    };
    let mut correct = 0usize;
    for t in 0..trials {
        let b = (rng.next_u64() & 1) as usize;
        let scheme = EncodingScheme::generate(k, m, false, &mut rng);
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| vec![world_value(b); n]).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let encodings = scheme.encode(&inputs, &noise);
        // Adversary sees worker (t mod encodings) view only.
        let view = &encodings[t % encodings.len()];
        // Correlation adversary: distance of observed values to each
        // world's quantized representative, in the centered metric.
        let dist = |target: F25| -> f64 {
            view.iter()
                .map(|&v| {
                    let d = (v - target).to_centered_i64().unsigned_abs();
                    d as f64
                })
                .sum::<f64>()
        };
        let guess = if dist(world_value(0)) <= dist(world_value(1)) { 0 } else { 1 };
        if guess == b {
            correct += 1;
        }
    }
    (2.0 * correct as f64 / trials as f64 - 1.0).abs()
}

/// White-box collusion audit on a live session scheme: returns the
/// attack outcome for a coalition of the given worker indices.
///
/// The coalition's observations are simulated as fresh encodings of the
/// supplied inputs (the real observations live in the workers; this
/// audit isolates the algebra).
///
/// # Panics
///
/// Panics if a coalition index is out of range.
pub fn audit_collusion_boundary(
    scheme: &EncodingScheme,
    coalition: &[usize],
    inputs: &[Vec<F25>],
    noise: &[Vec<F25>],
) -> AttackOutcome {
    let encodings = scheme.encode(inputs, noise);
    let a2 = scheme.a2_block();
    let rows: Vec<usize> = (0..a2.rows()).collect();
    let a2_coal = a2.submatrix(&rows, coalition);
    let observations: Vec<Vec<F25>> =
        coalition.iter().map(|&j| encodings[j].clone()).collect();
    noise_cancellation_attack(&a2_coal, &observations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DarknightConfig;
    use crate::session::DarknightSession;
    use dk_gpu::collusion::chi_square_threshold_999;
    use dk_linalg::Tensor;
    use dk_nn::layers::{Dense, Flatten, Layer};
    use dk_nn::Sequential;

    #[test]
    fn real_session_gpu_view_is_uniform() {
        // Run a real private forward and test everything the workers saw.
        let cfg = DarknightConfig::new(2, 1).with_seed(31);
        let cluster = GpuCluster::honest(cfg.workers_required(), 32);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = Sequential::new(vec![
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(512, 16, 1)),
        ]);
        // Highly structured (non-uniform) input data. Train-mode
        // forwards: those store the encodings on the workers, which is
        // what populates the observation record this test audits (the
        // masked job inputs are distributed identically either way).
        let x = Tensor::from_fn(&[2, 2, 16, 16], |i| if i % 2 == 0 { 0.5 } else { -0.5 });
        for _ in 0..12 {
            let _ = session.private_forward(&mut model, &x, true).unwrap();
        }
        let buckets = 16;
        let chi2 = gpu_view_chi_square(session.cluster(), buckets).unwrap();
        assert!(
            chi2 < chi_square_threshold_999(buckets - 1),
            "GPU view failed uniformity: chi2={chi2}"
        );
    }

    #[test]
    fn raw_quantized_data_is_not_uniform() {
        // Sanity check of the test's power: the *unmasked* quantized
        // data fails the same uniformity test by orders of magnitude.
        let quant = QuantConfig::new(8);
        let values: Vec<F25> = (0..20_000)
            .map(|i| quant.quantize::<P25>(((i % 100) as f64 - 50.0) / 64.0).unwrap())
            .collect();
        let chi2 = uniformity_chi_square(&values, 16);
        assert!(chi2 > chi_square_threshold_999(15) * 100.0);
    }

    #[test]
    fn distinguishing_advantage_is_negligible() {
        let adv = distinguishing_advantage(2, 1, 64, 400, 33);
        assert!(adv < 0.15, "advantage={adv}");
    }

    #[test]
    fn collusion_boundary_is_exact() {
        let mut rng = FieldRng::seed_from(34);
        let (k, m, n) = (2, 2, 32);
        let scheme = EncodingScheme::generate(k, m, false, &mut rng);
        let inputs: Vec<Vec<F25>> = (0..k).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let noise: Vec<Vec<F25>> = (0..m).map(|_| rng.uniform_vec::<P25>(n)).collect();
        // Coalition of size M: no breach.
        let ok = audit_collusion_boundary(&scheme, &[0, 2], &inputs, &noise);
        assert!(!ok.is_breach());
        // Coalition of size M+1: breach (the audit proves tolerance is
        // tight, exactly as §4.5 claims).
        let bad = audit_collusion_boundary(&scheme, &[0, 1, 3], &inputs, &noise);
        assert!(bad.is_breach());
    }
}
