//! Error types for the DarKnight core.

use dk_field::QuantError;
use dk_tee::EnclaveError;

/// Errors surfaced by DarKnight sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DarknightError {
    /// Not enough GPU workers for the configuration
    /// (`K' < K + M (+1)`).
    InsufficientWorkers {
        /// Workers required by the configuration.
        required: usize,
        /// Workers available in the cluster.
        available: usize,
    },
    /// The redundant-equation check failed: at least one GPU returned a
    /// tampered result (§4.4).
    IntegrityViolation {
        /// Which linear layer (traversal index) failed.
        layer_id: u64,
        /// `"forward"` or `"backward"`.
        phase: &'static str,
        /// Number of mismatching elements in the redundant equation.
        mismatches: usize,
    },
    /// Quantization failed (non-finite input or field overflow).
    Quant(QuantError),
    /// Enclave failure (protected memory / sealing).
    Enclave(EnclaveError),
    /// The model/input shapes are inconsistent with the virtual batch.
    BatchShape {
        /// Expected leading dimension (`K`).
        expected: usize,
        /// Actual leading dimension.
        actual: usize,
    },
    /// A GPU fault (worker loss, timeout, remote refusal) that the
    /// session could not repair around — either recovery is disabled or
    /// the TEE-side repair itself was impossible. With recovery enabled
    /// a single fault never surfaces here: the lost worker is
    /// quarantined and the batch completes.
    GpuFault {
        /// Which linear layer (traversal index) was executing.
        layer_id: u64,
        /// `"forward"` or `"backward"`.
        phase: &'static str,
        /// The underlying fault.
        fault: dk_gpu::GpuError,
    },
    /// A backward pass referenced a layer the forward pass never
    /// recorded a context for — fail closed instead of panicking.
    MissingForwardContext {
        /// The offending linear layer.
        layer_id: u64,
    },
    /// A sealed checkpoint could not be restored: truncated/corrupt
    /// payload, or its recorded session/model configuration does not
    /// match the session it is being resumed into.
    Checkpoint {
        /// What failed to match or parse.
        reason: &'static str,
    },
}

impl std::fmt::Display for DarknightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DarknightError::InsufficientWorkers { required, available } => write!(
                f,
                "insufficient GPU workers: configuration needs {required}, cluster has {available}"
            ),
            DarknightError::IntegrityViolation { layer_id, phase, mismatches } => write!(
                f,
                "integrity violation in {phase} pass at linear layer {layer_id} ({mismatches} mismatching elements)"
            ),
            DarknightError::Quant(e) => write!(f, "quantization error: {e}"),
            DarknightError::Enclave(e) => write!(f, "enclave error: {e}"),
            DarknightError::BatchShape { expected, actual } => write!(
                f,
                "input batch dimension {actual} does not match virtual batch size {expected}"
            ),
            DarknightError::GpuFault { layer_id, phase, fault } => write!(
                f,
                "unrecoverable GPU fault in {phase} pass at linear layer {layer_id}: {fault}"
            ),
            DarknightError::MissingForwardContext { layer_id } => write!(
                f,
                "backward pass at linear layer {layer_id} has no stored forward context"
            ),
            DarknightError::Checkpoint { reason } => {
                write!(f, "checkpoint restore failed: {reason}")
            }
        }
    }
}

impl std::error::Error for DarknightError {}

impl From<QuantError> for DarknightError {
    fn from(e: QuantError) -> Self {
        DarknightError::Quant(e)
    }
}

impl From<EnclaveError> for DarknightError {
    fn from(e: EnclaveError) -> Self {
        DarknightError::Enclave(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = DarknightError::InsufficientWorkers { required: 6, available: 3 };
        assert!(e.to_string().contains("needs 6"));
        let e = DarknightError::IntegrityViolation { layer_id: 2, phase: "forward", mismatches: 5 };
        assert!(e.to_string().contains("forward"));
        assert!(e.to_string().contains("layer 2"));
    }

    #[test]
    fn gpu_fault_display_names_the_fault() {
        let e = DarknightError::GpuFault {
            layer_id: 3,
            phase: "backward",
            fault: dk_gpu::GpuError::lost(dk_gpu::WorkerId(2), "connection reset"),
        };
        let s = e.to_string();
        assert!(s.contains("backward"), "{s}");
        assert!(s.contains("gpu2"), "{s}");
        let e = DarknightError::MissingForwardContext { layer_id: 7 };
        assert!(e.to_string().contains("layer 7"));
    }

    #[test]
    fn conversions() {
        let q: DarknightError = QuantError::NotFinite.into();
        assert!(matches!(q, DarknightError::Quant(_)));
    }
}
