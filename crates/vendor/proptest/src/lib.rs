//! Offline vendored shim for the `proptest` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: the [`Strategy`] trait, [`any`], range strategies over the
//! primitive types, [`collection::vec`], the [`proptest!`] macro and
//! the `prop_assert*` family. Test cases are generated from a
//! deterministic per-test PRNG (seeded by hashing the test name), so
//! every run explores the same cases — there is no persistence file
//! and no shrinking; on failure the offending inputs are printed
//! verbatim instead.

use core::fmt;
use core::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving all case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary label (the test name), via FNV-1a.
    pub fn deterministic(label: &str) -> Self {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Unbiased `[0, span)` by rejection.
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let zone = u64::MAX - u64::MAX % span;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Value`.
pub trait Strategy {
    type Value: fmt::Debug + Clone;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// `impl Strategy for &S` lets helpers pass strategies by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: fmt::Debug + Clone + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite floats with a mix of magnitudes (not the full bit-pattern
    /// space upstream explores, but spanning ±1e9 plus small values).
    fn arbitrary(rng: &mut TestRng) -> Self {
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = (rng.below(19) as i32) - 9; // 1e-9 ..= 1e9
        mag * 10f64.powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span as u64) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // Clamp: the affine map can round up to `end` exactly, and the
        // contract (like upstream proptest's range strategy) is half-open.
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v < self.end { v } else { self.end.next_down() }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v < self.end { v } else { self.end.next_down() }
    }
}

pub mod collection {
    //! Strategies for collections (`vec` only, which is all the
    //! workspace uses).

    use super::{Strategy, TestRng};
    use core::ops::Range;

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property within a test case (produced by `prop_assert*`).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runs one generated case; exists so closure return-type inference
/// flows from the signature (the `proptest!` expansion relies on it).
pub fn run_case<F: FnOnce() -> Result<(), TestCaseError>>(f: F) -> Result<(), TestCaseError> {
    f()
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// becomes a `#[test]` that runs `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let snapshot = ($($arg.clone(),)*);
                    let outcome = $crate::run_case(|| { $body Ok(()) });
                    if let Err(err) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {}\n  inputs ({}): {:?}",
                            stringify!($name), case + 1, config.cases, err,
                            stringify!($($arg),*), snapshot,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), l, r,
            )));
        }
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs), stringify!($rhs), l,
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 5u64..100, y in -3i64..=3, f in -1.0f64..1.0) {
            prop_assert!((5..100).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in crate::collection::vec(any::<u8>(), 2usize..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in any::<u32>()) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as u64, x as u64 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "case 1/")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(dead_code)]
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        inner();
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::deterministic("label");
        let mut b = crate::TestRng::deterministic("label");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
