//! Offline vendored shim for the `criterion` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! provides a small, real measuring harness behind the criterion API
//! subset the workspace's benches use: `Criterion::benchmark_group`,
//! `bench_function` / `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is calibrated so one sample lasts
//! roughly [`TARGET_SAMPLE`], then `sample_size` samples are taken and
//! the median per-iteration time (plus throughput, when declared) is
//! printed. No plots, no statistics files — numbers on stdout.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget per sample after calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Hard cap on calibration, so pathologically slow routines still
/// produce a (single-iteration) measurement.
const CALIBRATION_BUDGET: Duration = Duration::from_millis(200);

/// Declared work per iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter,
/// rendered as `name/param` exactly like upstream.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self { id: format!("{}/{}", name.into(), param) }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        Self { id: param.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed routine; handed to bench closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Calibrates the routine, then records `sample_count` samples of
    /// its median per-iteration latency.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibration: grow the batch until one batch crosses the
        // target, or the budget runs out.
        let mut iters = 1u64;
        let calibration_start = Instant::now();
        loop {
            let t = Self::time_batch(&mut routine, iters);
            if t >= TARGET_SAMPLE || calibration_start.elapsed() >= CALIBRATION_BUDGET {
                if t.as_nanos() > 0 {
                    let scale = TARGET_SAMPLE.as_nanos() as f64 / t.as_nanos() as f64;
                    iters = ((iters as f64 * scale).ceil() as u64).max(1);
                }
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.iters_per_sample = iters;
        self.samples = (0..self.sample_count)
            .map(|_| Self::time_batch(&mut routine, iters) / iters as u32)
            .collect();
    }

    fn time_batch<O, F: FnMut() -> O>(routine: &mut F, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        start.elapsed()
    }

    fn median(&self) -> Duration {
        let mut s = self.samples.clone();
        s.sort();
        s.get(s.len() / 2).copied().unwrap_or_default()
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks sharing throughput/sample
/// settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut bencher = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut bencher);
        self.criterion.report(&full, &bencher, self.throughput);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// The harness entry point; one instance is threaded through all
/// registered benchmark functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Honor `cargo bench -- <filter>` the way upstream does, and
        // swallow harness flags test runners pass (--bench, --test).
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function("", f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn report(&self, name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
        let median = bencher.median();
        let mut line = format!(
            "{name:<48} time: {:>12}/iter  ({} samples x {} iters)",
            format_duration(median),
            bencher.samples.len(),
            bencher.iters_per_sample,
        );
        if let Some(tp) = throughput {
            let per_sec = |units: u64| {
                if median.as_nanos() == 0 {
                    f64::INFINITY
                } else {
                    units as f64 * 1e9 / median.as_nanos() as f64
                }
            };
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.3} Melem/s", per_sec(n) / 1e6));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.3} MiB/s", per_sec(n) / (1u64 << 20) as f64));
                }
            }
        }
        println!("{line}");
    }
}

/// Bundles benchmark functions into a single runner, mirroring
/// upstream's macro of the same name (configuration arm included for
/// source compatibility; the config is ignored).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Generates `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        g.finish();
        assert!(ran > 0, "routine never executed");
    }

    #[test]
    fn benchmark_id_renders_like_upstream() {
        assert_eq!(BenchmarkId::new("encode", 4).to_string(), "encode/4");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn filtered_out_benchmark_never_executes() {
        let mut c = Criterion { filter: Some("encode".into()) };
        let mut g = c.benchmark_group("group");
        let mut ran = false;
        g.bench_function("decode", |b| {
            ran = true;
            b.iter(|| ())
        });
        g.bench_function("encode", |b| b.iter(|| ()));
        g.finish();
        assert!(!ran, "non-matching benchmark must be skipped, not just unreported");
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion { filter: Some("enc".into()) };
        assert!(c.matches("group/encode/4"));
        assert!(!c.matches("group/decode/4"));
        let all = Criterion { filter: None };
        assert!(all.matches("anything"));
    }
}
