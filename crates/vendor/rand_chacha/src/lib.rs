//! Offline vendored shim for `rand_chacha`: a real ChaCha12 block
//! function driving a buffered PRNG.
//!
//! The build environment has no crates-registry access, so this crate
//! reimplements `ChaCha12Rng` against the workspace's `rand` shim. The
//! core is the genuine ChaCha quarter-round/block construction (RFC
//! 8439 layout, 12 rounds, 64-bit block counter + zero nonce), so the
//! stream has the statistical quality the framework's uniformity tests
//! (chi-square, stream independence) assume. It does *not* promise
//! byte-for-byte compatibility with upstream `rand_chacha` output.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 12;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Runs the ChaCha block function: `input` is the 16-word initial
/// state, the result is `input + permuted(input)` (the feed-forward
/// that makes the permutation one-way).
fn chacha_block(input: &[u32; 16]) -> [u32; 16] {
    let mut s = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut s, 0, 4, 8, 12);
        quarter_round(&mut s, 1, 5, 9, 13);
        quarter_round(&mut s, 2, 6, 10, 14);
        quarter_round(&mut s, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut s, 0, 5, 10, 15);
        quarter_round(&mut s, 1, 6, 11, 12);
        quarter_round(&mut s, 2, 7, 8, 13);
        quarter_round(&mut s, 3, 4, 9, 14);
    }
    for (out, inp) in s.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    s
}

/// A ChaCha PRNG with 12 rounds, seeded from a 32-byte key.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14/15: zero nonce (single-stream use).
        self.buffer = chacha_block(&state);
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let b = self.next_u32().to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        let mut c = ChaCha12Rng::seed_from_u64(8);
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn blocks_differ_by_counter() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn bits_are_balanced() {
        // Rough sanity: population count over 64k words near 50%.
        let mut rng = ChaCha12Rng::seed_from_u64(3);
        let ones: u64 = (0..65_536).map(|_| rng.next_u32().count_ones() as u64).sum();
        let total = 65_536u64 * 32;
        let frac = ones as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }
}
