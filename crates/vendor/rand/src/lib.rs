//! Offline vendored shim for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this
//! workspace vendors the *subset* of the `rand 0.8` API it actually
//! uses: the `RngCore` / `SeedableRng` / `Rng` traits, `seed_from_u64`
//! seed expansion (SplitMix64, matching upstream semantics of "one u64
//! in, full seed out"), and `gen` / `gen_range` for the handful of
//! types the framework samples (`f32`, `f64`, `u32`, `u64`, `usize`,
//! `i64`). Everything is deterministic given the generator state; no
//! OS entropy is ever touched.

use core::ops::{Range, RangeInclusive};

/// Core random-number-generation interface, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// A generator seedable from a fixed-size byte seed, mirroring
/// `rand_core::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit state into a full seed with SplitMix64, then
    /// seeds the generator. This is the same construction upstream
    /// `rand` uses, so forked streams keep their statistical quality.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Marker for types samplable uniformly from raw generator output
/// (the role of `Standard: Distribution<T>` in upstream rand).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits, as upstream does.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range a value can be drawn from uniformly (the role of
/// `SampleRange<T>` in upstream rand).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` by rejection.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // The affine map can round up to `end` exactly (e.g. the maximal
        // 24-bit sample over 1.0..2.0); clamp to keep the range half-open.
        let v = self.start + f32::sample(rng) * (self.end - self.start);
        if v < self.end { v } else { self.end.next_down() }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        if v < self.end { v } else { self.end.next_down() }
    }
}

/// Convenience extension methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 step: good enough to test range logic.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&b[..chunk.len()]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-50i64..=50);
            assert!((-50..=50).contains(&y));
            let f: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f32 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn float_range_upper_bound_stays_exclusive() {
        // Over 1.0..(1.0 + ε) the affine map rounds up to the bound for
        // roughly half of all samples unless clamped.
        let mut rng = Counter(3);
        let end32 = 1.0f32 + f32::EPSILON;
        let end64 = 1.0f64 + f64::EPSILON;
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(1.0f32..end32);
            assert!(f < end32, "f32 sample hit the exclusive bound");
            let d: f64 = rng.gen_range(1.0f64..end64);
            assert!(d < end64, "f64 sample hit the exclusive bound");
        }
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = Counter(2);
        let _: u64 = rng.gen_range(0u64..=u64::MAX);
    }
}
