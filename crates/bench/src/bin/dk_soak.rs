//! Adversarial soak harness — compressed hours-equivalent churn against
//! the full TEE/GPU serving and training stack, reported as an honest
//! claim-falsification checklist.
//!
//! Each phase tries to *break* a robustness claim rather than
//! demonstrate it:
//!
//! * tampering from **every** worker position, and collusion up to `M`,
//!   against per-sample bit-exactness vs [`dk_core::QuantizedReference`];
//! * fail-stop crash churn and TCP redial churn (connection severing,
//!   dead-endpoint backoff) against availability and replay correctness;
//! * a deadline storm against bounded-queue admission control;
//! * elastic scale oscillation (autoscaler + manual resizes at batch
//!   boundaries) against drain-on-retire exactness;
//! * a mid-run checkpoint / kill / resume cycle — the resumed half under
//!   a *different* thread cap — against bit-identical training;
//! * a counting global allocator against the zero-alloc steady state.
//!
//! A watchdog thread converts any deadlock into a hard failure. Exit
//! status is non-zero if **any** claim falsifies; the markdown report
//! lands at `--out` (default `SOAK_report.md`). `--seconds N` scales
//! the schedule (default ≈20 s of compressed traffic).
//!
//! Usage: `cargo run --release -p dk_bench --bin dk_soak --
//! [--seconds N] [--out PATH]`

use dk_core::virtual_batch::LargeBatchTrainer;
use dk_core::{
    DarknightConfig, DarknightSession, EngineOptions, PipelineEngine, QuantizedReference, StepPlan,
};
use dk_gpu::tcp::{serve_fleet_worker, FleetManifest, TcpFleet};
use dk_gpu::{Behavior, GpuCluster, GpuExec, LinearJob, WorkerId};
use dk_linalg::workspace::{alloc_counts, CountingAllocator};
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_nn::optim::Sgd;
use dk_nn::Sequential;
use dk_serve::{
    AutoscaleConfig, InferenceRequest, IntegrityVerdict, Server, ServerConfig, Ticket,
};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

// The zero-alloc phase reads this; sharing dk_linalg's implementation
// keeps the soak gate counting identically to the CI alloc gate.
#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

const HW: usize = 8;
const CLASSES: usize = 4;

/// One falsification attempt: the claim, whether it survived, and the
/// evidence.
struct Check {
    claim: &'static str,
    pass: bool,
    detail: String,
}

fn check(checks: &mut Vec<Check>, claim: &'static str, pass: bool, detail: String) {
    println!("[dk_soak] {} {claim} — {detail}", if pass { "PASS" } else { "FAIL" });
    checks.push(Check { claim, pass, detail });
}

fn sample(seed: u64, i: u64) -> Tensor<f32> {
    let magnitude = 0.02 * (1 + (seed ^ i) % 40) as f32;
    Tensor::from_fn(&[3, HW, HW], |j| {
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed.wrapping_mul(31).wrapping_add(i));
        ((h % 29) as f32 - 14.0) * magnitude
    })
}

fn solo(model: &Sequential, x: &Tensor<f32>, cfg: DarknightConfig) -> Vec<f32> {
    QuantizedReference::forward_solo(model, x, cfg.quant()).unwrap().into_vec()
}

/// Drives `n` requests through `server`, asserting every response is
/// bit-exact vs the solo reference. Returns
/// `(exact, wrong, failed, repaired)` counts.
fn drive(
    server: &Server,
    model: &Sequential,
    cfg: DarknightConfig,
    seed: u64,
    n: u64,
) -> (u64, u64, u64, u64) {
    let handle = server.handle();
    let tickets: Vec<(Tensor<f32>, Ticket)> = (0..n)
        .filter_map(|i| {
            let x = sample(seed, i);
            handle.submit(InferenceRequest::new(x.clone())).ok().map(|t| (x, t))
        })
        .collect();
    let (mut exact, mut wrong, mut failed, mut repaired) = (0u64, 0u64, 0u64, 0u64);
    for (x, t) in tickets {
        let Some(resp) = t.wait() else {
            failed += 1;
            continue;
        };
        if resp.verdict == IntegrityVerdict::Repaired {
            repaired += 1;
        }
        match &resp.output {
            Ok(y) if y.as_slice() == &solo(model, &x, cfg)[..] => exact += 1,
            Ok(_) => wrong += 1,
            Err(_) => failed += 1,
        }
    }
    (exact, wrong, failed, repaired)
}

/// Tampering from every worker position — each Byzantine behavior in
/// turn — plus collusion up to `M`, all under the elastic autoscaler.
fn phase_adversarial(checks: &mut Vec<Check>, factor: u64) {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(0x50AC);
    let model = mini_vgg(HW, CLASSES, 0x50AC);
    let byzantine = [
        Behavior::AdditiveNoise,
        Behavior::SingleElement,
        Behavior::ZeroOutput,
        Behavior::Scale(3),
        Behavior::StaleInput,
    ];
    let positions = cfg.workers_required();
    let (mut exact, mut wrong, mut failed, mut repaired) = (0u64, 0u64, 0u64, 0u64);
    for p in 0..positions {
        let mut behaviors = vec![Behavior::Honest; positions];
        behaviors[p] = byzantine[p % byzantine.len()];
        let cluster = GpuCluster::with_behaviors(&behaviors, 16 + p as u64);
        let server = Server::start(
            ServerConfig::new(cfg, &[3, HW, HW])
                .with_workers(1)
                .with_max_batch_wait(Duration::from_millis(1))
                .with_autoscale(AutoscaleConfig::new(1, 3).with_interval(Duration::from_millis(5))),
            &model,
            &cluster,
        )
        .expect("server start");
        let (e, w, f, r) = drive(&server, &model, cfg, p as u64, 6 * factor);
        exact += e;
        wrong += w;
        failed += f;
        repaired += r;
        server.shutdown();
    }
    check(
        checks,
        "tampering in every worker position: zero undetected corruptions",
        wrong == 0 && failed == 0 && exact > 0,
        format!("{positions} positions x {} reqs: {exact} exact, {wrong} wrong, {failed} failed", 6 * factor),
    );
    check(
        checks,
        "active tampering raises the Repaired alarm",
        repaired > 0,
        format!("{repaired} responses flagged Repaired"),
    );

    // Collusion up to M: with M = 2, two workers lie at once.
    let cfg = DarknightConfig::new(2, 2).with_integrity(true).with_recovery(true).with_seed(0xC011);
    let model = mini_vgg(HW, CLASSES, 0xC011);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[0] = Behavior::AdditiveNoise;
    behaviors[1] = Behavior::Scale(5);
    let cluster = GpuCluster::with_behaviors(&behaviors, 77);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW]).with_workers(2),
        &model,
        &cluster,
    )
    .expect("server start");
    let (e, w, f, r) = drive(&server, &model, cfg, 0xC011, 8 * factor);
    server.shutdown();
    check(
        checks,
        "collusion of M=2 workers: still exact, still detected",
        w == 0 && f == 0 && e > 0 && r > 0,
        format!("{e} exact, {w} wrong, {f} failed, {r} repaired"),
    );
}

/// Fail-stop churn: a worker that dies mid-run is repaired by the TEE.
fn phase_crash_churn(checks: &mut Vec<Check>, factor: u64) {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_recovery(true).with_seed(0xDEAD);
    let model = mini_vgg(HW, CLASSES, 0xDEAD);
    let mut behaviors = vec![Behavior::Honest; cfg.workers_required()];
    behaviors[1] = Behavior::Crash { after: 4 };
    let cluster = GpuCluster::with_behaviors(&behaviors, 5);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW]).with_workers(1),
        &model,
        &cluster,
    )
    .expect("server start");
    let (e, w, f, _) = drive(&server, &model, cfg, 0xDEAD, 10 * factor);
    let m = server.shutdown();
    check(
        checks,
        "fail-stop crash mid-stream: every admitted request still served exactly",
        w == 0 && f == 0 && e == 10 * factor,
        format!("{e} exact, {w} wrong, {f} failed (lost workers seen: {})", m.worker_lost),
    );
}

/// TCP redial churn: sever live connections mid-stream (replay must
/// reconstruct state) and dial a dead endpoint (backoff must suppress
/// the dial storm).
fn phase_redial_churn(checks: &mut Vec<Check>, factor: u64) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || serve_fleet_worker(listener));
    let m = FleetManifest {
        workers: vec![addr.to_string(), addr.to_string()],
        ..FleetManifest::default()
    };
    let mut fleet = TcpFleet::from_manifest(&m);
    let job = |i: u64| LinearJob::DenseForward {
        weights: Arc::new(Tensor::from_fn(&[2, 3], |j| dk_field::F25::new(j as u64 + i + 1))),
        x: Tensor::from_fn(&[2, 3], |j| dk_field::F25::new((j as u64 * 7 + i) % 31)),
    };
    let mut wrong = 0u64;
    let rounds = 12 * factor;
    for i in 0..rounds {
        let j = job(i);
        let expected = j.execute();
        let got = fleet.execute_on(WorkerId((i % 2) as usize), &j).expect("tcp exec");
        if got.as_slice() != expected.as_slice() {
            wrong += 1;
        }
        if i % 3 == 2 {
            fleet.sever_connection(WorkerId((i % 2) as usize));
        }
    }
    let reconnects = fleet.reconnects();
    fleet.shutdown();
    server.join().unwrap().expect("fleet worker server");
    check(
        checks,
        "connection churn: severed connections redial + replay to correct results",
        wrong == 0 && reconnects > 0,
        format!("{rounds} jobs, {wrong} wrong, {reconnects} redials"),
    );

    // A dead endpoint must arm backoff instead of stalling every dial.
    let before = dk_obs::global().counter("dk_fleet_redial_backoff").value();
    let m = FleetManifest {
        workers: vec!["127.0.0.1:1".into()],
        connect_timeout_ms: 100,
        redial_backoff_ms: 5_000,
        redial_backoff_max_ms: 30_000,
        ..FleetManifest::default()
    };
    let mut dead = TcpFleet::from_manifest(&m);
    let j = job(0);
    let first = dead.execute_on(WorkerId(0), &j);
    let t0 = std::time::Instant::now();
    let second = dead.execute_on(WorkerId(0), &j);
    let suppressed_fast = t0.elapsed() < Duration::from_millis(80);
    let after = dk_obs::global().counter("dk_fleet_redial_backoff").value();
    check(
        checks,
        "dead endpoint: redial backoff armed, repeat dials suppressed instantly",
        first.is_err() && second.is_err() && suppressed_fast && after > before,
        format!("dk_fleet_redial_backoff {before} -> {after}, repeat dial {:?}", t0.elapsed()),
    );
}

/// Deadline storm: a burst far beyond queue capacity with near-zero
/// aggregation deadlines. Sheds are expected; silent drops, wrong
/// answers, or hangs are not.
fn phase_deadline_storm(checks: &mut Vec<Check>, factor: u64) {
    let cfg = DarknightConfig::new(4, 1).with_integrity(true).with_seed(0x57);
    let model = mini_vgg(HW, CLASSES, 0x57);
    let cluster = GpuCluster::honest(cfg.workers_required(), 0x57);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW])
            .with_workers(2)
            .with_queue_capacity(8)
            .with_max_batch_wait(Duration::from_micros(300)),
        &model,
        &cluster,
    )
    .expect("server start");
    let handle = server.handle();
    let n = 48 * factor;
    let mut shed = 0u64;
    let mut tickets = Vec::new();
    for i in 0..n {
        let x = sample(0x57, i);
        match handle.submit(InferenceRequest::new(x.clone()).with_max_wait(Duration::ZERO)) {
            Ok(t) => tickets.push((x, t)),
            Err(_) => shed += 1,
        }
    }
    let admitted = tickets.len() as u64;
    let mut exact = 0u64;
    let mut partial_batches = 0u64;
    for (x, t) in tickets {
        let resp = t.wait().expect("admitted requests are always answered");
        if resp.batch_fill < 1.0 {
            partial_batches += 1;
        }
        if resp.output.as_ref().map(|y| y.as_slice() == &solo(&model, &x, cfg)[..]).unwrap_or(false)
        {
            exact += 1;
        }
    }
    let metrics = server.shutdown();
    check(
        checks,
        "deadline storm: every admitted request answered exactly, overflow shed loudly",
        exact == admitted && metrics.served == admitted && metrics.shed == shed,
        format!(
            "{n} submitted: {admitted} admitted (all exact: {}), {shed} shed, {partial_batches} rode partial batches",
            exact == admitted
        ),
    );
}

/// Elastic oscillation: the autoscaler plus manual resizes at batch
/// boundaries, against drain-on-retire exactness and the pool gauges.
fn phase_oscillation(checks: &mut Vec<Check>, factor: u64) {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true).with_seed(0x05C);
    let model = mini_vgg(HW, CLASSES, 0x05C);
    let cluster = GpuCluster::honest(cfg.workers_required(), 0x05C);
    let server = Server::start(
        ServerConfig::new(cfg, &[3, HW, HW])
            .with_workers(2)
            .with_max_batch_wait(Duration::from_millis(1))
            .with_autoscale(AutoscaleConfig::new(1, 4).with_interval(Duration::from_millis(4))),
        &model,
        &cluster,
    )
    .expect("server start");
    let cycle = [3usize, 1, 4, 2, 1, 3];
    let (mut exact, mut wrong, mut failed) = (0u64, 0u64, 0u64);
    for (wave, target) in cycle.iter().cycle().take((2 * factor) as usize).enumerate() {
        let (e, w, f, _) = drive(&server, &model, cfg, wave as u64, 4);
        exact += e;
        wrong += w;
        failed += f;
        server.resize_pool(*target).expect("resize");
    }
    let m = server.shutdown();
    check(
        checks,
        "scale oscillation at every batch boundary: drain-on-retire keeps answers exact",
        wrong == 0 && failed == 0 && exact > 0,
        format!("{exact} exact, {wrong} wrong, {failed} failed across {} resizes", 2 * factor),
    );
    check(
        checks,
        "pool observably scaled up AND down (dk_obs-backed counters/gauges)",
        m.scale_ups > 2 && m.scale_downs > 0 && m.pool_workers == 0,
        format!(
            "scale_ups={} scale_downs={} pool_workers(final)={}",
            m.scale_ups, m.scale_downs, m.pool_workers
        ),
    );
}

/// Mid-run checkpoint / kill / resume, the resumed half pipelined under
/// a serial thread cap — must be bit-identical to the uninterrupted run.
fn phase_checkpoint_resume(checks: &mut Vec<Check>, factor: u64) {
    let steps = 2 + 2 * factor.min(3);
    let cfg = DarknightConfig::new(2, 1).with_seed(0xCC);
    let model0 = || mini_vgg(HW, CLASSES, 3);
    let x = Tensor::from_fn(&[4, 3, HW, HW], |i| ((i % 13) as f32 - 6.0) * 0.07);
    let labels: Vec<usize> = (0..4).map(|i| i % CLASSES).collect();

    // Uninterrupted reference.
    let session = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 21)).unwrap();
    let mut t = LargeBatchTrainer::new(session, 64);
    let mut m_ref = model0();
    let mut sgd_ref = Sgd::new(0.1).with_momentum(0.9);
    let mut ref_losses = Vec::new();
    for _ in 0..steps {
        ref_losses
            .push(t.train_large_batch(&mut m_ref, &x, &labels, &mut sgd_ref).unwrap().mean_loss());
    }

    // Killed at the midpoint, resumed from the sealed checkpoint by a
    // fresh enclave under a different thread cap.
    let kill_at = steps / 2;
    let session = DarknightSession::new(cfg, GpuCluster::honest(cfg.workers_required(), 21)).unwrap();
    let mut t = LargeBatchTrainer::new(session, 64).with_checkpoint_interval(kill_at);
    let mut m = model0();
    let mut sgd = Sgd::new(0.1).with_momentum(0.9);
    for _ in 0..kill_at {
        t.train_large_batch(&mut m, &x, &labels, &mut sgd).unwrap();
    }
    let blob = t.latest_checkpoint().expect("checkpoint at the kill point");
    drop(t);

    dk_linalg::set_max_threads(1);
    let engine = PipelineEngine::new(
        cfg,
        GpuCluster::honest(cfg.workers_required(), 99),
        EngineOptions::default().with_lanes(2),
    )
    .unwrap();
    let mut m2 = model0();
    let mut sgd2 = Sgd::new(0.1).with_momentum(0.9);
    let mut t2 = LargeBatchTrainer::resume_pipelined(engine, 64, &blob, &mut m2, &mut sgd2)
        .expect("resume from sealed checkpoint");
    let mut resumed_losses = Vec::new();
    for _ in kill_at..steps {
        resumed_losses
            .push(t2.train_large_batch(&mut m2, &x, &labels, &mut sgd2).unwrap().mean_loss());
    }
    dk_linalg::set_max_threads(0);

    let loss_bits_match = ref_losses[kill_at as usize..]
        .iter()
        .zip(&resumed_losses)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    let weight_diff = m2.max_param_diff(&m_ref.snapshot_params());
    check(
        checks,
        "kill/resume at a step boundary (resumed under serial cap): bit-identical",
        loss_bits_match && weight_diff == 0.0,
        format!(
            "{steps} steps, killed at {kill_at}; losses match: {loss_bits_match}, max weight diff: {weight_diff}"
        ),
    );
}

/// The warm private-inference step must not allocate.
fn phase_zero_alloc(checks: &mut Vec<Check>) {
    dk_linalg::set_max_threads(1); // scoped kernel threads allocate
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let fleet = GpuCluster::honest(cfg.workers_required(), 41);
    let mut session = DarknightSession::new(cfg, fleet).expect("session");
    let mut model = mini_vgg(HW, CLASSES, 42);
    let plan = StepPlan::extract(&model, cfg.quant()).expect("plan");
    session.set_step_plan(Some(Arc::new(plan)));
    let x = Tensor::from_fn(&[2, 3, HW, HW], |i| ((i % 13) as f32 - 6.0) * 0.07);
    for _ in 0..3 {
        let y = session.private_inference(&mut model, &x).expect("warmup");
        session.recycle_output(y);
    }
    let (a0, b0) = alloc_counts();
    for _ in 0..5 {
        let y = session.private_inference(&mut model, &x).expect("steady");
        session.recycle_output(y);
    }
    let (a1, b1) = alloc_counts();
    dk_linalg::set_max_threads(0);
    check(
        checks,
        "zero-alloc steady state: 5 warm private-inference steps, 0 heap allocations",
        a1 == a0,
        format!("{} allocs / {} bytes over 5 steps", a1 - a0, b1 - b0),
    );
}

fn write_report(path: &str, seconds: u64, checks: &[Check]) {
    let failed = checks.iter().filter(|c| !c.pass).count();
    let mut out = String::new();
    out.push_str("# DarKnight adversarial soak report\n\n");
    out.push_str(&format!(
        "Compressed schedule: ~{seconds}s. Verdict: **{}** ({} / {} claims held).\n\n",
        if failed == 0 { "PASS" } else { "FAIL" },
        checks.len() - failed,
        checks.len()
    ));
    out.push_str("Claim-falsification checklist — each line is an attempt to break the claim:\n\n");
    for c in checks {
        out.push_str(&format!(
            "- [{}] {} — {}\n",
            if c.pass { 'x' } else { ' ' },
            c.claim,
            c.detail
        ));
    }
    if let Err(e) = std::fs::write(path, &out) {
        eprintln!("[dk_soak] could not write report to {path}: {e}");
    } else {
        println!("[dk_soak] report written to {path}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seconds: u64 = args
        .iter()
        .position(|a| a == "--seconds")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "SOAK_report.md".to_string());
    let factor = (seconds / 10).max(1);
    dk_obs::enable();

    // Watchdog: a hang IS a finding. Generous budget so slow CI runners
    // don't false-positive; a real deadlock blows well past it.
    let done = Arc::new(AtomicBool::new(false));
    {
        let done = done.clone();
        let budget = Duration::from_secs(seconds * 6 + 120);
        std::thread::spawn(move || {
            std::thread::sleep(budget);
            if !done.load(Ordering::SeqCst) {
                eprintln!("[dk_soak] WATCHDOG: still running after {budget:?} — deadlock/hang");
                std::process::exit(2);
            }
        });
    }

    let mut checks = Vec::new();
    phase_adversarial(&mut checks, factor);
    phase_crash_churn(&mut checks, factor);
    phase_redial_churn(&mut checks, factor);
    phase_deadline_storm(&mut checks, factor);
    phase_oscillation(&mut checks, factor);
    phase_checkpoint_resume(&mut checks, factor);
    phase_zero_alloc(&mut checks);
    done.store(true, Ordering::SeqCst);

    write_report(&out_path, seconds, &checks);
    let failed = checks.iter().filter(|c| !c.pass).count();
    if failed > 0 {
        eprintln!("[dk_soak] {failed} claim(s) falsified");
        std::process::exit(1);
    }
    println!("[dk_soak] all {} claims held", checks.len());
}
