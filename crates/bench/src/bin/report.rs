//! The DarKnight evaluation report generator.
//!
//! Prints every table and figure of the paper's evaluation section:
//! Tables 1–4 and Figures 3/5/6a/6b/7 from the calibrated performance
//! model, Figure 4 from real (mini-model) training, plus a measured
//! pipelining comparison on this host.
//!
//! Usage: `cargo run -p dk-bench --bin report [--quick|--full]`

use dk_bench::{fig4, render_fig4, Fig4Config};
use dk_core::pipeline::{compare_pipelining, PipelineWorkload};
use dk_linalg::Conv2dShape;
use dk_perf::{report, DeviceProfile};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let profile = DeviceProfile::calibrated();

    println!("=================================================================");
    println!(" DarKnight reproduction — evaluation report");
    println!("=================================================================\n");
    println!("{}", report::full_report(&profile));

    println!("----------------------------------------------------------------\n");
    let fig4_cfg = match mode.as_str() {
        "--quick" => Fig4Config { per_class: 12, epochs: 4, ..Default::default() },
        "--full" => Fig4Config { hw: 12, per_class: 50, epochs: 14, ..Default::default() },
        _ => Fig4Config::default(),
    };
    println!("{}", render_fig4(&fig4(fig4_cfg)));

    println!("----------------------------------------------------------------\n");
    println!("Measured pipelining (this host; functional analogue of Fig. 5):\n");
    // A workload where TEE masking time is comparable to accelerator
    // compute (large K, 1x1 conv), so stage overlap is visible even on
    // a small host.
    let workload = PipelineWorkload {
        k: 8,
        m: 1,
        shape: Conv2dShape::simple(16, 16, 1, 1, 0),
        hw: (32, 32),
        batches: if mode == "--quick" { 6 } else { 16 },
    };
    let r = compare_pipelining(workload, 7);
    println!(
        "  sequential: {:>8.1?}   pipelined: {:>8.1?}   speedup: {:.2}x\n",
        r.sequential,
        r.pipelined,
        r.speedup()
    );
}
