//! The DarKnight evaluation report generator.
//!
//! Prints every table and figure of the paper's evaluation section:
//! Tables 1–4 and Figures 3/5/6a/6b/7 from the calibrated performance
//! model, Figure 4 from real (mini-model) training, plus a measured
//! pipelining comparison on this host.
//!
//! Usage: `cargo run -p dk-bench --bin report [--quick|--full]`

use dk_bench::{fig4, render_fig4, Fig4Config};
use dk_core::engine::{compare_training_modes, EngineOptions};
use dk_core::DarknightConfig;
use dk_gpu::{GpuCluster, LatencyModel};
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_perf::{report, DeviceProfile};

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let profile = DeviceProfile::calibrated();

    println!("=================================================================");
    println!(" DarKnight reproduction — evaluation report");
    println!("=================================================================\n");
    println!("{}", report::full_report(&profile));

    println!("----------------------------------------------------------------\n");
    let fig4_cfg = match mode.as_str() {
        "--quick" => Fig4Config { per_class: 12, epochs: 4, ..Default::default() },
        "--full" => Fig4Config { hw: 12, per_class: 50, epochs: 14, ..Default::default() },
        _ => Fig4Config::default(),
    };
    println!("{}", render_fig4(&fig4(fig4_cfg)));

    println!("----------------------------------------------------------------\n");
    println!("Measured pipelining (this host; functional analogue of Fig. 5):\n");
    // Real Algorithm 2 training on a multi-layer model, sequential
    // trainer vs the pipelined engine, over a fleet with a modeled
    // accelerator latency (the workers simulate GPUs on this CPU; the
    // latency model is what makes wall clock reflect device occupancy —
    // see dk_gpu::LatencyModel).
    let epochs = if mode == "--quick" { 1 } else { 3 };
    let cfg = DarknightConfig::new(2, 1).with_seed(7);
    let fleet = GpuCluster::honest(cfg.workers_required(), 7)
        .with_parallel_dispatch(true)
        .with_latency(Some(LatencyModel { base_ns: 120_000, ns_per_kmac: 600 }));
    let model = mini_vgg(8, 4, 42);
    let x = Tensor::from_fn(&[8, 3, 8, 8], |i| ((i % 23) as f32 - 11.0) * 0.04);
    let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let (r, diff) =
        compare_training_modes(cfg, &fleet, &model, &x, &labels, epochs, 0.05, EngineOptions::default())
            .expect("pipeline comparison failed");
    assert_eq!(diff, 0.0, "pipelined training diverged from sequential");
    println!(
        "  sequential: {:>8.1?}   pipelined: {:>8.1?}   speedup: {:.2}x  (bit-identical weights)\n",
        r.sequential,
        r.pipelined,
        r.speedup()
    );
}
