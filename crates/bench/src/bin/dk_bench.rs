//! Kernel/encoding/offload micro-benchmarks with machine-readable output.
//!
//! Measures the delayed-reduction fast kernels against the preserved
//! per-MAC-reducing scalar baselines (`dk_linalg::reference`) on the
//! shapes the offload path actually runs, **plus** the staged pipelined
//! engine against the sequential session on a real multi-layer model
//! (the §7.1 overlap claim, measured), and writes the records to
//! `BENCH_kernels.json` so the performance trajectory is tracked across
//! PRs. CI runs it in `--fast` mode as a smoke test and uploads the
//! JSON as an artifact.
//!
//! Usage: `cargo run --release -p dk_bench --bin dk_bench -- [--fast] [--out PATH]`

use dk_core::engine::{compare_inference_modes, compare_training_modes, EngineOptions};
use dk_core::scheme::EncodingScheme;
use dk_core::DarknightConfig;
use dk_field::{F25, FieldRng, P25};
use dk_gpu::{GpuCluster, LatencyModel};
use dk_linalg::conv::conv2d_forward;
use dk_linalg::im2col::im2col;
use dk_linalg::reference::{naive_matmul, naive_matmul_a_bt, naive_matmul_at_b};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, Conv2dShape, Tensor};
use dk_nn::arch::mini_vgg;
use dk_perf::{DeviceProfile, PipelineRow};
use std::time::Instant;

/// Median ns/iteration: calibrate the batch to roughly `target_ms`, then
/// take five samples.
fn time_ns(target_ms: u64, mut f: impl FnMut()) -> f64 {
    let target = std::time::Duration::from_millis(target_ms);
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let t = start.elapsed();
        if t >= target || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Entry {
    name: String,
    macs: u64,
    baseline_ns: f64,
    fast_ns: f64,
}

impl Entry {
    fn mops(&self, ns: f64) -> f64 {
        self.macs as f64 / ns * 1e3 // MACs/ns → M ops/s
    }
    fn to_json(&self) -> String {
        format!(
            "    {{\"name\": \"{}\", \"macs\": {}, \"scalar_ns_per_op\": {:.1}, \"fast_ns_per_op\": {:.1}, \"scalar_mops\": {:.1}, \"fast_mops\": {:.1}, \"speedup\": {:.2}}}",
            self.name,
            self.macs,
            self.baseline_ns,
            self.fast_ns,
            self.mops(self.baseline_ns),
            self.mops(self.fast_ns),
            self.baseline_ns / self.fast_ns
        )
    }
}

fn field_vec(rng: &mut FieldRng, len: usize) -> Vec<F25> {
    rng.uniform_vec::<P25>(len)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let target_ms: u64 = if fast { 5 } else { 25 };
    let mut rng = FieldRng::seed_from(0xBE4C);
    let mut entries: Vec<Entry> = Vec::new();

    // --- kernels: the three matmul orientations -------------------------
    let (m, k, n) = (64usize, 128, 64);
    let macs = (m * k * n) as u64;
    let a = field_vec(&mut rng, m * k);
    let b = field_vec(&mut rng, k * n);
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul(&a, &b, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&a, &b, m, k, n));
        }),
    });
    // The pre-optimization arithmetic in full: per-MAC `u128 %` division
    // (the baselines above already use the new Barrett scalar multiply,
    // so this entry records the complete before/after journey).
    let divmod_matmul = || {
        let mut c = vec![0u64; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p].value();
                for j in 0..n {
                    let wide = aip as u128 * b[p * n + j].value() as u128 + c[i * n + j] as u128;
                    c[i * n + j] = (wide % P25 as u128) as u64;
                }
            }
        }
        std::hint::black_box(c);
    };
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/field_vs_divmod"),
        macs,
        baseline_ns: time_ns(target_ms, divmod_matmul),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&a, &b, m, k, n));
        }),
    });
    let af: Vec<f32> = (0..m * k).map(|i| (i % 9) as f32 * 0.1).collect();
    let bf: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/f32"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul(&af, &bf, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&af, &bf, m, k, n));
        }),
    });
    let at = field_vec(&mut rng, k * m);
    entries.push(Entry {
        name: format!("matmul_at_b_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_at_b(&at, &b, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_at_b(&at, &b, m, k, n));
        }),
    });
    let bt = field_vec(&mut rng, n * k);
    entries.push(Entry {
        name: format!("matmul_a_bt_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_a_bt(&a, &bt, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_a_bt(&a, &bt, m, k, n));
        }),
    });

    // --- conv2d forward (the GPU worker's hot job) ----------------------
    let shape = Conv2dShape::simple(16, 32, 3, 1, 1);
    let hw = if fast { 8usize } else { 16 };
    let conv_macs = shape.forward_macs(1, (hw, hw));
    let xq = Tensor::<F25>::from_fn(&[1, 16, hw, hw], |i| F25::new(i as u64 * 31 % P25));
    let wq = Tensor::<F25>::from_fn(&shape.weight_shape(), |i| F25::new(i as u64 * 17 % P25));
    // Baseline: the identical im2col lowering feeding the naive kernel.
    let naive_conv = || {
        let (oh, ow) = shape.out_hw((hw, hw));
        let krows = shape.cg_in() * 9;
        let cols = im2col(xq.batch_item(0), 16, (hw, hw), (3, 3), (1, 1), (1, 1));
        std::hint::black_box(naive_matmul(wq.as_slice(), &cols, 32, krows, oh * ow));
    };
    entries.push(Entry {
        name: format!("conv2d_forward_16c32c3x3_{hw}x{hw}/field"),
        macs: conv_macs,
        baseline_ns: time_ns(target_ms, naive_conv),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(conv2d_forward(&xq, &wq, &shape));
        }),
    });

    // --- encoding: Algorithm-1 masking as coefficient-matrix matmuls ----
    let (ek, em) = (4usize, 2);
    let en = if fast { 4096usize } else { 16384 };
    let scheme = EncodingScheme::generate(ek, em, true, &mut rng);
    let s_cols = scheme.num_encodings();
    let inputs: Vec<Vec<F25>> = (0..ek).map(|_| field_vec(&mut rng, en)).collect();
    let noise: Vec<Vec<F25>> = (0..em).map(|_| field_vec(&mut rng, en)).collect();
    // Baseline: the old per-MAC-reducing loop ≡ naive Aᵀ·X of the same shape.
    let enc_a = field_vec(&mut rng, (ek + em) * s_cols);
    let enc_x: Vec<F25> = inputs.iter().chain(&noise).flatten().copied().collect();
    entries.push(Entry {
        name: format!("encode_k{ek}_m{em}_n{en}/field"),
        macs: (s_cols * (ek + em) * en) as u64,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_at_b(&enc_a, &enc_x, s_cols, ek + em, en));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(scheme.encode(&inputs, &noise));
        }),
    });
    let encodings = scheme.encode(&inputs, &noise);
    let s_sq = ek + em;
    // Baseline: naive decode matmul + naive integrity-prediction matvec.
    let dec_inv = field_vec(&mut rng, s_sq * s_sq);
    let dec_y: Vec<F25> = encodings.iter().take(s_sq).flatten().copied().collect();
    let dec_col = field_vec(&mut rng, s_sq);
    entries.push(Entry {
        name: format!("decode_forward_k{ek}_m{em}_n{en}/field"),
        macs: ((s_sq * s_sq + s_sq) * en) as u64,
        baseline_ns: time_ns(target_ms, || {
            let y = naive_matmul_at_b(&dec_inv, &dec_y, s_sq, s_sq, en);
            std::hint::black_box(naive_matmul(&dec_col, &y, 1, s_sq, en));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(scheme.decode_forward(&encodings, 0).unwrap());
        }),
    });

    // --- offload: a dense-layer forward job (dk_serve's hot path) -------
    let (dn, din, dout) = (1usize, 784, 256);
    let w = field_vec(&mut rng, dout * din);
    let x = field_vec(&mut rng, dn * din);
    entries.push(Entry {
        name: format!("dense_forward_{din}to{dout}/field"),
        macs: (dn * din * dout) as u64,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_a_bt(&x, &w, dn, din, dout));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_a_bt(&x, &w, dn, din, dout));
        }),
    });

    // --- pipeline: staged engine vs sequential session ------------------
    // The workers simulate GPUs on this host's CPU, so two flavours are
    // measured: `compute-only` (pure host compute — overlap can only pay
    // on a multi-core host) and `modeled-gpu` (workers additionally
    // occupy wall-clock per the LatencyModel, standing in for real
    // device execution/transfer time — the §7.1 "shadow of GPU
    // execution" the TEE stages hide under, measurable even on one
    // core). Both runs assert bit-identical results as they go.
    let epochs = if fast { 1 } else { 3 };
    let pcfg = DarknightConfig::new(2, 1).with_seed(0xBE4C);
    let latency = LatencyModel { base_ns: 150_000, ns_per_kmac: 500 };
    let pm = mini_vgg(8, 4, 42);
    let px = Tensor::from_fn(&[8, 3, 8, 8], |i| ((i % 23) as f32 - 11.0) * 0.04);
    let plabels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let analytical =
        dk_perf::cost::darknight_training(&dk_nn::arch::vgg16(), &DeviceProfile::calibrated(), 2, 1, false)
            .pipeline_gain();
    let mut pipeline_rows: Vec<PipelineRow> = Vec::new();
    // Median of three repetitions (one in --fast mode), matching the
    // median-of-samples discipline of the kernel benches above — a
    // single wall-clock pair is too noisy on a shared host.
    let reps = if fast { 1 } else { 3 };
    let mut pipeline_row = |label: &str, fleet: &GpuCluster, train: bool| {
        let opts = EngineOptions::default();
        let mut runs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (r, diff) = if train {
                compare_training_modes(pcfg, fleet, &pm, &px, &plabels, epochs, 0.05, opts)
                    .expect("pipeline training comparison")
            } else {
                let inputs: Vec<Tensor<f32>> = (0..4 * epochs)
                    .map(|b| {
                        Tensor::from_fn(&[2, 3, 8, 8], move |i| ((i + b) % 9) as f32 * 0.1 - 0.4)
                    })
                    .collect();
                compare_inference_modes(pcfg, fleet, &pm, &inputs, opts)
                    .expect("pipeline inference comparison")
            };
            assert_eq!(diff, 0.0, "{label}: pipelined execution diverged from sequential");
            runs.push(r);
        }
        runs.sort_by(|a, b| a.speedup().total_cmp(&b.speedup()));
        let r = runs[runs.len() / 2];
        pipeline_rows.push(PipelineRow {
            label: label.to_string(),
            batches: r.batches,
            sequential_ms: r.sequential.as_secs_f64() * 1e3,
            pipelined_ms: r.pipelined.as_secs_f64() * 1e3,
            measured_speedup: r.speedup(),
            analytical_speedup: analytical,
            analytical_arch: "VGG16".to_string(),
        });
    };
    let plain_fleet = GpuCluster::honest(pcfg.workers_required(), 7);
    let modeled_fleet = GpuCluster::honest(pcfg.workers_required(), 7)
        .with_parallel_dispatch(true)
        .with_latency(Some(latency));
    pipeline_row("train/mini_vgg compute-only", &plain_fleet, true);
    pipeline_row("train/mini_vgg modeled-gpu", &modeled_fleet, true);
    pipeline_row("infer/mini_vgg modeled-gpu", &modeled_fleet, false);

    // --- report ---------------------------------------------------------
    println!("DarKnight kernel micro-benches ({} mode, DK threads = {})", if fast { "fast" } else { "full" }, dk_linalg::max_threads());
    println!("{:<44} {:>12} {:>12} {:>8}", "bench", "scalar Mops", "fast Mops", "speedup");
    for e in &entries {
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>7.2}x",
            e.name,
            e.mops(e.baseline_ns),
            e.mops(e.fast_ns),
            e.baseline_ns / e.fast_ns
        );
    }

    println!();
    println!("{}", dk_perf::report::pipeline_table(&pipeline_rows));

    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let pipeline_json = pipeline_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"batches\": {}, \"sequential_ms\": {:.1}, \"pipelined_ms\": {:.1}, \"speedup\": {:.2}, \"analytical_fig5_gain\": {:.2}, \"analytical_arch\": \"{}\"}}",
                r.label,
                r.batches,
                r.sequential_ms,
                r.pipelined_ms,
                r.measured_speedup,
                r.analytical_speedup,
                r.analytical_arch
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"unix_time\": {},\n  \"dk_threads\": {},\n  \"benches\": [\n{}\n  ],\n  \"pipeline\": [\n{}\n  ]\n}}\n",
        if fast { "fast" } else { "full" },
        ts,
        dk_linalg::max_threads(),
        entries.iter().map(Entry::to_json).collect::<Vec<_>>().join(",\n"),
        pipeline_json
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Smoke check: the fast kernels must actually beat the scalar path on
    // the field shapes (CI fails loudly if the optimization regresses).
    let field_regressions: Vec<&Entry> = entries
        .iter()
        .filter(|e| e.name.ends_with("/field") && e.fast_ns > e.baseline_ns)
        .collect();
    if !field_regressions.is_empty() {
        for e in field_regressions {
            eprintln!("REGRESSION: {} fast path slower than scalar baseline", e.name);
        }
        std::process::exit(1);
    }
    // And the staged engine must not lose to the sequential path under
    // modeled accelerator latency (where the §7.1 overlap must pay).
    for r in pipeline_rows.iter().filter(|r| r.label.contains("modeled-gpu")) {
        if r.measured_speedup < 1.0 {
            eprintln!(
                "REGRESSION: {} pipelined slower than sequential ({:.2}x)",
                r.label, r.measured_speedup
            );
            std::process::exit(1);
        }
    }
}
