//! Kernel/encoding/offload micro-benchmarks with machine-readable output.
//!
//! Measures the delayed-reduction fast kernels against the preserved
//! per-MAC-reducing scalar baselines (`dk_linalg::reference`) — and,
//! for the rewritten kernels, against an in-binary snapshot of the
//! previous-generation fast kernels ([`prev`]) so each optimization
//! round's gain is recorded independently of the host — on the shapes
//! the offload path actually runs. Also measures the staged pipelined
//! engine against the sequential session on a real multi-layer model
//! (the §7.1 overlap claim) and, with `--alloc`, the allocation
//! behaviour of steady-state steps via a counting global allocator.
//! Everything lands in `BENCH_kernels.json` so the performance
//! trajectory is tracked across PRs. CI runs `--fast --alloc` as a
//! smoke test, gates on the recorded invariants (zero steady-state
//! inference allocations; no >10% relative regression of the tracked
//! kernels — conv forward, the field matmul, and the streaming
//! encode/decode — vs the committed baseline) and uploads the JSON as
//! an artifact.
//!
//! With `--obs`, the same private-inference session step is timed with
//! the `dk_obs` registry disabled and enabled, recording the
//! instrumentation overhead ratio; CI gates it at ≤3%.
//!
//! Usage: `cargo run --release -p dk_bench --bin dk_bench --
//! [--fast] [--alloc] [--obs] [--baseline PATH] [--out PATH]`

use dk_core::engine::{compare_inference_modes, compare_training_modes, EngineOptions};
use dk_core::scheme::EncodingScheme;
use dk_core::DarknightConfig;
use dk_field::{F25, FieldRng, P25};
use dk_gpu::{GpuCluster, LatencyModel};
use dk_linalg::conv::conv2d_forward;
use dk_linalg::im2col::im2col;
use dk_linalg::reference::{naive_matmul, naive_matmul_a_bt, naive_matmul_at_b};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, Conv2dShape, Tensor, Workspace};
use dk_nn::arch::mini_vgg;
use dk_linalg::workspace::{alloc_counts, CountingAllocator};
use dk_perf::{DeviceProfile, PipelineRow};
use std::time::Instant;

// The --alloc measurements read this via `alloc_counts()`; the shared
// implementation in dk_linalg keeps this gate and the alloc_regression
// test counting identically.
#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

/// Verbatim snapshots of the *previous* fast kernels (PR 5 vintage:
/// stack-resident `COL_TILE` accumulator strip with four pending `A`
/// rows flushed per pass, packed `at_b` panels, and a four-lane `a_bt`
/// dot loop), kept so the lane-parallel struct-of-arrays rewrite's gain
/// is measured in-binary on the same host instead of against stale
/// committed numbers.
mod prev {
    use dk_linalg::Scalar;

    const LANES: usize = 4;
    const COL_TILE: usize = 512;
    const AT_PANEL: usize = 64;

    #[inline]
    fn flush_quad<T: Scalar>(
        acc: &mut [T::Acc],
        av: &[T; LANES],
        b: &[T],
        pq: &[usize; LANES],
        n: usize,
        j0: usize,
    ) {
        let jw = acc.len();
        let b0 = &b[pq[0] * n + j0..][..jw];
        let b1 = &b[pq[1] * n + j0..][..jw];
        let b2 = &b[pq[2] * n + j0..][..jw];
        let b3 = &b[pq[3] * n + j0..][..jw];
        for ((((aj, &x0), &x1), &x2), &x3) in acc.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3) {
            *aj = T::mac(T::mac(T::mac(T::mac(*aj, av[0], x0), av[1], x1), av[2], x2), av[3], x3);
        }
    }

    fn matmul_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
        let mut strip = [T::acc_zero(); COL_TILE];
        let fold_limit = T::FOLD_INTERVAL.saturating_sub(LANES - 1);
        for i in 0..rows {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c[i * n..(i + 1) * n];
            let mut j0 = 0;
            while j0 < n {
                let jw = (n - j0).min(COL_TILE);
                let acc = &mut strip[..jw];
                for (aj, &cj) in acc.iter_mut().zip(&crow[j0..j0 + jw]) {
                    *aj = cj.acc_lift();
                }
                let mut unfolded = 0usize;
                let mut av = [T::zero(); LANES];
                let mut pq = [0usize; LANES];
                let mut pending = 0usize;
                for (p, &aip) in arow.iter().enumerate() {
                    if aip == T::zero() {
                        continue;
                    }
                    av[pending] = aip;
                    pq[pending] = p;
                    pending += 1;
                    if pending == LANES {
                        if unfolded >= fold_limit {
                            for aj in acc.iter_mut() {
                                *aj = T::acc_fold(*aj);
                            }
                            unfolded = 0;
                        }
                        flush_quad(acc, &av, b, &pq, n, j0);
                        unfolded += LANES;
                        pending = 0;
                    }
                }
                for t in 0..pending {
                    if unfolded >= fold_limit {
                        for aj in acc.iter_mut() {
                            *aj = T::acc_fold(*aj);
                        }
                        unfolded = 0;
                    }
                    let brow = &b[pq[t] * n + j0..][..jw];
                    for (aj, &bj) in acc.iter_mut().zip(brow) {
                        *aj = T::mac(*aj, av[t], bj);
                    }
                    unfolded += 1;
                }
                for (cj, &aj) in crow[j0..j0 + jw].iter_mut().zip(acc.iter()) {
                    *cj = T::acc_finish(aj);
                }
                j0 += jw;
            }
        }
    }

    pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        if m == 0 || n == 0 {
            return c;
        }
        matmul_block(a, b, &mut c, m, k, n);
        c
    }

    pub fn matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        if m == 0 || n == 0 || k == 0 {
            return c;
        }
        let panel = AT_PANEL.min(m);
        let mut scratch = vec![T::zero(); panel * k];
        let mut is = 0;
        while is < m {
            let iw = (m - is).min(panel);
            for p in 0..k {
                let acol = &a[p * m + is..p * m + is + iw];
                for (r, &v) in acol.iter().enumerate() {
                    scratch[r * k + p] = v;
                }
            }
            matmul_block(&scratch[..iw * k], b, &mut c[is * n..(is + iw) * n], iw, k, n);
            is += iw;
        }
        c
    }

    pub fn matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j + LANES <= n {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let mut acc = [T::acc_zero(); LANES];
                let mut unfolded = 0usize;
                for (p, &x) in arow.iter().enumerate() {
                    if T::SKIP_ZEROS && x == T::zero() {
                        continue;
                    }
                    if unfolded == T::FOLD_INTERVAL {
                        for aj in acc.iter_mut() {
                            *aj = T::acc_fold(*aj);
                        }
                        unfolded = 0;
                    }
                    acc[0] = T::mac(acc[0], x, b0[p]);
                    acc[1] = T::mac(acc[1], x, b1[p]);
                    acc[2] = T::mac(acc[2], x, b2[p]);
                    acc[3] = T::mac(acc[3], x, b3[p]);
                    unfolded += 1;
                }
                for (l, &aj) in acc.iter().enumerate() {
                    c[i * n + j + l] = T::acc_finish(aj);
                }
                j += LANES;
            }
            while j < n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = T::acc_zero();
                let mut unfolded = 0usize;
                for (&x, &y) in arow.iter().zip(brow) {
                    if T::SKIP_ZEROS && x == T::zero() {
                        continue;
                    }
                    if unfolded == T::FOLD_INTERVAL {
                        acc = T::acc_fold(acc);
                        unfolded = 0;
                    }
                    acc = T::mac(acc, x, y);
                    unfolded += 1;
                }
                c[i * n + j] = T::acc_finish(acc);
                j += 1;
            }
        }
        c
    }

    /// The PR-8 coding path the streaming `coded_combine` kernels
    /// replace: stack the separate rows into one flat operand (the copy
    /// the streaming pass eliminates), run the lane-parallel matmul
    /// over it, split the product back into freshly allocated rows — as
    /// the committed `encode`/`decode` wrappers did per call.
    pub fn coded_combine(
        coeff: &[dk_field::F25],
        x: &[Vec<dk_field::F25>],
        rows: usize,
        n: usize,
    ) -> Vec<Vec<dk_field::F25>> {
        let kdim = x.len();
        let mut flat = vec![dk_field::F25::ZERO; kdim * n];
        for (d, s) in flat.chunks_mut(n).zip(x) {
            d.copy_from_slice(s);
        }
        let c = dk_linalg::matmul(coeff, &flat, rows, kdim, n);
        c.chunks(n).map(<[dk_field::F25]>::to_vec).collect()
    }
}

/// Median ns/iteration: calibrate the batch to roughly `target_ms`, then
/// take five samples.
fn time_ns(target_ms: u64, mut f: impl FnMut()) -> f64 {
    let target = std::time::Duration::from_millis(target_ms);
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let t = start.elapsed();
        if t >= target || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct Entry {
    name: String,
    macs: u64,
    baseline_ns: f64,
    fast_ns: f64,
    /// Same-host timing of the previous-generation fast kernel (the
    /// [`prev`] snapshot), when one exists for this row.
    prev_ns: Option<f64>,
}

impl Entry {
    fn mops(&self, ns: f64) -> f64 {
        self.macs as f64 / ns * 1e3 // MACs/ns → M ops/s
    }
    fn to_json(&self) -> String {
        let prev = match self.prev_ns {
            Some(p) => format!(
                ", \"prev_fast_ns_per_op\": {:.1}, \"speedup_vs_prev\": {:.2}",
                p,
                p / self.fast_ns
            ),
            None => String::new(),
        };
        format!(
            "    {{\"name\": \"{}\", \"macs\": {}, \"scalar_ns_per_op\": {:.1}, \"fast_ns_per_op\": {:.1}, \"scalar_mops\": {:.1}, \"fast_mops\": {:.1}, \"speedup\": {:.2}{}}}",
            self.name,
            self.macs,
            self.baseline_ns,
            self.fast_ns,
            self.mops(self.baseline_ns),
            self.mops(self.fast_ns),
            self.baseline_ns / self.fast_ns,
            prev
        )
    }
}

/// Pulls `"key": <number>` out of a (flat) JSON object snippet — the
/// workspace has no JSON dependency, and the file format is ours.
fn json_number(snippet: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = snippet.find(&pat)? + pat.len();
    let rest = snippet[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Finds the object snippet for the named bench row in a JSON string.
fn json_row<'a>(doc: &'a str, name: &str) -> Option<&'a str> {
    let at = doc.find(&format!("\"name\": \"{name}\""))?;
    let end = doc[at..].find('}')? + at;
    Some(&doc[at..end])
}

fn field_vec(rng: &mut FieldRng, len: usize) -> Vec<F25> {
    rng.uniform_vec::<P25>(len)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let measure_alloc = args.iter().any(|a| a == "--alloc");
    let measure_obs = args.iter().any(|a| a == "--obs");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let baseline_path = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .cloned();
    // The committed record this run will overwrite doubles as the CI
    // regression baseline; read it before writing.
    let committed = std::fs::read_to_string(&out_path).ok();
    let baseline = baseline_path.and_then(|p| std::fs::read_to_string(p).ok());
    let target_ms: u64 = if fast { 5 } else { 25 };
    let mut rng = FieldRng::seed_from(0xBE4C);
    let mut entries: Vec<Entry> = Vec::new();

    // --- kernels: the three matmul orientations -------------------------
    let (m, k, n) = (64usize, 128, 64);
    let macs = (m * k * n) as u64;
    let a = field_vec(&mut rng, m * k);
    let b = field_vec(&mut rng, k * n);
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul(&a, &b, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&a, &b, m, k, n));
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::matmul(&a, &b, m, k, n));
        })),
    });
    // The pre-optimization arithmetic in full: per-MAC `u128 %` division
    // (the baselines above already use the new Barrett scalar multiply,
    // so this entry records the complete before/after journey).
    let divmod_matmul = || {
        let mut c = vec![0u64; m * n];
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p].value();
                for j in 0..n {
                    let wide = aip as u128 * b[p * n + j].value() as u128 + c[i * n + j] as u128;
                    c[i * n + j] = (wide % P25 as u128) as u64;
                }
            }
        }
        std::hint::black_box(c);
    };
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/field_vs_divmod"),
        macs,
        baseline_ns: time_ns(target_ms, divmod_matmul),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&a, &b, m, k, n));
        }),
        prev_ns: None,
    });
    let af: Vec<f32> = (0..m * k).map(|i| (i % 9) as f32 * 0.1).collect();
    let bf: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    entries.push(Entry {
        name: format!("matmul_{m}x{k}x{n}/f32"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul(&af, &bf, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul(&af, &bf, m, k, n));
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::matmul(&af, &bf, m, k, n));
        })),
    });
    let at = field_vec(&mut rng, k * m);
    entries.push(Entry {
        name: format!("matmul_at_b_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_at_b(&at, &b, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_at_b(&at, &b, m, k, n));
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::matmul_at_b(&at, &b, m, k, n));
        })),
    });
    let bt = field_vec(&mut rng, n * k);
    entries.push(Entry {
        name: format!("matmul_a_bt_{m}x{k}x{n}/field"),
        macs,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_a_bt(&a, &bt, m, k, n));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_a_bt(&a, &bt, m, k, n));
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::matmul_a_bt(&a, &bt, m, k, n));
        })),
    });

    // --- conv2d forward (the GPU worker's hot job) ----------------------
    let shape = Conv2dShape::simple(16, 32, 3, 1, 1);
    let hw = if fast { 8usize } else { 16 };
    let conv_macs = shape.forward_macs(1, (hw, hw));
    let xq = Tensor::<F25>::from_fn(&[1, 16, hw, hw], |i| F25::new(i as u64 * 31 % P25));
    let wq = Tensor::<F25>::from_fn(&shape.weight_shape(), |i| F25::new(i as u64 * 17 % P25));
    // Baseline: the identical im2col lowering feeding the naive kernel.
    let naive_conv = || {
        let (oh, ow) = shape.out_hw((hw, hw));
        let krows = shape.cg_in() * 9;
        let cols = im2col(xq.batch_item(0), 16, (hw, hw), (3, 3), (1, 1), (1, 1));
        std::hint::black_box(naive_matmul(wq.as_slice(), &cols, 32, krows, oh * ow));
    };
    entries.push(Entry {
        name: format!("conv2d_forward_16c32c3x3_{hw}x{hw}/field"),
        macs: conv_macs,
        baseline_ns: time_ns(target_ms, naive_conv),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(conv2d_forward(&xq, &wq, &shape));
        }),
        prev_ns: None,
    });

    // --- encoding: Algorithm-1 masking as coefficient-matrix matmuls ----
    let (ek, em) = (4usize, 2);
    let en = if fast { 4096usize } else { 16384 };
    let scheme = EncodingScheme::generate(ek, em, true, &mut rng);
    let s_cols = scheme.num_encodings();
    let inputs: Vec<Vec<F25>> = (0..ek).map(|_| field_vec(&mut rng, en)).collect();
    let noise: Vec<Vec<F25>> = (0..em).map(|_| field_vec(&mut rng, en)).collect();
    // Baseline: the old per-MAC-reducing loop ≡ naive Aᵀ·X of the same shape.
    let enc_a = field_vec(&mut rng, (ek + em) * s_cols);
    let enc_x: Vec<F25> = inputs.iter().chain(&noise).flatten().copied().collect();
    // The fast side measures the steady state the session actually
    // runs: a warm workspace, rows recycled after every call (so the
    // per-call zeroing is counted, the allocations are not).
    let mut cws = Workspace::new();
    // The prev replica needs row-major coefficients and the stacked
    // rows as one slice-of-rows (A's layout is scheme-private; timing
    // depends only on shape).
    let enc_at = field_vec(&mut rng, s_cols * (ek + em));
    let enc_rows: Vec<Vec<F25>> = inputs.iter().chain(&noise).cloned().collect();
    entries.push(Entry {
        name: format!("encode_k{ek}_m{em}_n{en}/field"),
        macs: (s_cols * (ek + em) * en) as u64,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_at_b(&enc_a, &enc_x, s_cols, ek + em, en));
        }),
        fast_ns: time_ns(target_ms, || {
            let mut enc = scheme.encode_ws(&inputs, &noise, &mut cws);
            std::hint::black_box(&mut enc);
            for row in enc.drain(..) {
                cws.give(row);
            }
            cws.give(enc);
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::coded_combine(&enc_at, &enc_rows, s_cols, en));
        })),
    });
    let encodings = scheme.encode(&inputs, &noise);
    let s_sq = ek + em;
    // Baseline: naive decode matmul + naive integrity-prediction matvec.
    let dec_inv = field_vec(&mut rng, s_sq * s_sq);
    let dec_y: Vec<F25> = encodings.iter().take(s_sq).flatten().copied().collect();
    let dec_col = field_vec(&mut rng, s_sq);
    // Prev replica of the committed decode: stack, predict the
    // redundant row, compare, then the k-row decode matmul.
    let dec_coeff = field_vec(&mut rng, ek * s_sq);
    let enc_rows_sq: Vec<Vec<F25>> = encodings.iter().take(s_sq).cloned().collect();
    entries.push(Entry {
        name: format!("decode_forward_k{ek}_m{em}_n{en}/field"),
        macs: ((s_sq * s_sq + s_sq) * en) as u64,
        baseline_ns: time_ns(target_ms, || {
            let y = naive_matmul_at_b(&dec_inv, &dec_y, s_sq, s_sq, en);
            std::hint::black_box(naive_matmul(&dec_col, &y, 1, s_sq, en));
        }),
        fast_ns: time_ns(target_ms, || {
            let mut dec = scheme.decode_forward_ws(&encodings, 0, &mut cws).unwrap();
            std::hint::black_box(&mut dec);
            for row in dec.drain(..) {
                cws.give(row);
            }
            cws.give(dec);
        }),
        prev_ns: Some(time_ns(target_ms, || {
            let mut flat = vec![F25::ZERO; s_sq * en];
            for (d, s) in flat.chunks_mut(en).zip(&enc_rows_sq) {
                d.copy_from_slice(s);
            }
            let pred = matmul(&dec_col, &flat, 1, s_sq, en);
            let mm = pred.iter().zip(&enc_rows_sq[0]).filter(|(p, r)| p != r).count();
            std::hint::black_box(mm);
            std::hint::black_box(matmul(&dec_coeff, &flat, ek, s_sq, en));
        })),
    });
    // The γ-weighted backward aggregate (Eq. 6): one output row over
    // the first K+M equations.
    let gam = field_vec(&mut rng, s_sq);
    entries.push(Entry {
        name: format!("decode_backward_k{ek}_m{em}_n{en}/field"),
        macs: (s_sq * en) as u64,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul(&gam, &dec_y, 1, s_sq, en));
        }),
        fast_ns: time_ns(target_ms, || {
            let out = scheme.decode_backward_ws(&encodings, &mut cws);
            std::hint::black_box(&out);
            cws.give(out);
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::coded_combine(&gam, &enc_rows_sq, 1, en));
        })),
    });

    // --- offload: a dense-layer forward job (dk_serve's hot path) -------
    let (dn, din, dout) = (1usize, 784, 256);
    let w = field_vec(&mut rng, dout * din);
    let x = field_vec(&mut rng, dn * din);
    entries.push(Entry {
        name: format!("dense_forward_{din}to{dout}/field"),
        macs: (dn * din * dout) as u64,
        baseline_ns: time_ns(target_ms, || {
            std::hint::black_box(naive_matmul_a_bt(&x, &w, dn, din, dout));
        }),
        fast_ns: time_ns(target_ms, || {
            std::hint::black_box(matmul_a_bt(&x, &w, dn, din, dout));
        }),
        prev_ns: Some(time_ns(target_ms, || {
            std::hint::black_box(prev::matmul_a_bt(&x, &w, dn, din, dout));
        })),
    });

    // --- pipeline: staged engine vs sequential session ------------------
    // The workers simulate GPUs on this host's CPU, so two flavours are
    // measured: `compute-only` (pure host compute — overlap can only pay
    // on a multi-core host) and `modeled-gpu` (workers additionally
    // occupy wall-clock per the LatencyModel, standing in for real
    // device execution/transfer time — the §7.1 "shadow of GPU
    // execution" the TEE stages hide under, measurable even on one
    // core). Both runs assert bit-identical results as they go.
    let epochs = if fast { 1 } else { 3 };
    let pcfg = DarknightConfig::new(2, 1).with_seed(0xBE4C);
    let latency = LatencyModel { base_ns: 150_000, ns_per_kmac: 500 };
    let pm = mini_vgg(8, 4, 42);
    let px = Tensor::from_fn(&[8, 3, 8, 8], |i| ((i % 23) as f32 - 11.0) * 0.04);
    let plabels: Vec<usize> = (0..8).map(|i| i % 4).collect();
    let analytical =
        dk_perf::cost::darknight_training(&dk_nn::arch::vgg16(), &DeviceProfile::calibrated(), 2, 1, false)
            .pipeline_gain();
    let mut pipeline_rows: Vec<PipelineRow> = Vec::new();
    // Median of three repetitions (one in --fast mode), matching the
    // median-of-samples discipline of the kernel benches above — a
    // single wall-clock pair is too noisy on a shared host.
    let reps = if fast { 1 } else { 3 };
    let mut pipeline_row = |label: &str, fleet: &GpuCluster, train: bool| {
        let opts = EngineOptions::default();
        let mut runs = Vec::with_capacity(reps);
        for _ in 0..reps {
            let (r, diff) = if train {
                compare_training_modes(pcfg, fleet, &pm, &px, &plabels, epochs, 0.05, opts)
                    .expect("pipeline training comparison")
            } else {
                let inputs: Vec<Tensor<f32>> = (0..4 * epochs)
                    .map(|b| {
                        Tensor::from_fn(&[2, 3, 8, 8], move |i| ((i + b) % 9) as f32 * 0.1 - 0.4)
                    })
                    .collect();
                compare_inference_modes(pcfg, fleet, &pm, &inputs, opts)
                    .expect("pipeline inference comparison")
            };
            assert_eq!(diff, 0.0, "{label}: pipelined execution diverged from sequential");
            runs.push(r);
        }
        runs.sort_by(|a, b| a.speedup().total_cmp(&b.speedup()));
        let r = runs[runs.len() / 2];
        pipeline_rows.push(PipelineRow {
            label: label.to_string(),
            batches: r.batches,
            sequential_ms: r.sequential.as_secs_f64() * 1e3,
            pipelined_ms: r.pipelined.as_secs_f64() * 1e3,
            measured_speedup: r.speedup(),
            analytical_speedup: analytical,
            analytical_arch: "VGG16".to_string(),
        });
    };
    let plain_fleet = GpuCluster::honest(pcfg.workers_required(), 7);
    let modeled_fleet = GpuCluster::honest(pcfg.workers_required(), 7)
        .with_parallel_dispatch(true)
        .with_latency(Some(latency));
    pipeline_row("train/mini_vgg compute-only", &plain_fleet, true);
    pipeline_row("train/mini_vgg modeled-gpu", &modeled_fleet, true);
    pipeline_row("infer/mini_vgg modeled-gpu", &modeled_fleet, false);

    // --- alloc: steady-state allocation behaviour (--alloc) -------------
    // Counts heap allocations per warm step with the counting global
    // allocator: plain-model inference must be exactly zero (the
    // workspace invariant), training a small constant, and the full
    // private offload round-trip is recorded so its allocation budget
    // (dominated by TEE↔GPU transfer copies) is tracked across PRs.
    struct AllocRow {
        name: String,
        allocs_per_step: u64,
        bytes_per_step: u64,
        /// Untruncated allocation count over all measured steps — the
        /// zero-allocation gate checks this, so even a single stray
        /// allocation across the window fails (per-step integer
        /// division would round it away).
        total_allocs: u64,
    }
    let mut alloc_rows: Vec<AllocRow> = Vec::new();
    if measure_alloc {
        let steps = 5u64;
        let mut measure = |name: &str, mut f: Box<dyn FnMut() + '_>| {
            for _ in 0..3 {
                f(); // warm-up: populate the pools
            }
            let (a0, b0) = alloc_counts();
            for _ in 0..steps {
                f();
            }
            let (a1, b1) = alloc_counts();
            alloc_rows.push(AllocRow {
                name: name.to_string(),
                allocs_per_step: (a1 - a0) / steps,
                bytes_per_step: (b1 - b0) / steps,
                total_allocs: a1 - a0,
            });
        };
        // Threaded kernels spawn scoped threads (which allocate); the
        // invariant is about the single-lane hot path.
        let saved_threads = dk_linalg::max_threads();
        dk_linalg::set_max_threads(1);
        {
            let mut model = mini_vgg(8, 4, 31);
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
            measure(
                "infer/mini_vgg steady-state",
                Box::new(|| {
                    let y = model.forward(&x, false);
                    model.give_back(y);
                }),
            );
        }
        {
            let mut model = mini_vgg(8, 4, 32);
            let mut sgd = dk_nn::optim::Sgd::new(0.05);
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.06);
            let labels = [1usize, 3];
            measure(
                "train/mini_vgg step",
                Box::new(|| {
                    model.zero_grad();
                    let logits = model.forward(&x, true);
                    let (_, dlogits) = dk_nn::loss::softmax_cross_entropy(&logits, &labels);
                    model.give_back(logits);
                    let dx = model.backward(&dlogits);
                    model.give_back(dx);
                    sgd.step(&mut model);
                }),
            );
        }
        {
            let cfg = DarknightConfig::new(2, 1).with_integrity(true);
            let quant = cfg.quant();
            let fleet = GpuCluster::honest(cfg.workers_required(), 33);
            let mut session =
                dk_core::DarknightSession::new(cfg, fleet).expect("alloc-bench session");
            let mut model = mini_vgg(8, 4, 33);
            // Serving shape: weights are frozen, so quantize them once
            // into a step plan; each step recycles its output tensor.
            // With both in place the whole session round-trip — encode,
            // dispatch, decode, dequantize — runs out of the pools.
            let plan = dk_core::StepPlan::extract(&model, quant).expect("alloc-bench plan");
            session.set_step_plan(Some(std::sync::Arc::new(plan)));
            let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
            measure(
                "private_infer/mini_vgg session step",
                Box::new(|| {
                    let y = session.private_inference(&mut model, &x).expect("private inference");
                    session.recycle_output(y);
                }),
            );
        }
        dk_linalg::set_max_threads(saved_threads);
    }

    // --- obs: instrumentation overhead of the session step (--obs) ------
    // The full stack is instrumented (session stage spans, dispatcher
    // gauges, recovery counters); the promise is that turning dk_obs ON
    // costs ≲3% on a real private-inference step, and OFF costs one
    // relaxed load per site. Measured as three disabled/enabled
    // interleaved pairs, taking the min median per mode: the min is the
    // least-interfered-with sample, so slow host noise (frequency
    // drift, a background task hitting one window) cannot fake a
    // regression in either direction.
    struct ObsRow {
        off_ns: f64,
        on_ns: f64,
    }
    let mut obs_row: Option<ObsRow> = None;
    if measure_obs {
        let saved_threads = dk_linalg::max_threads();
        dk_linalg::set_max_threads(1);
        let cfg = DarknightConfig::new(2, 1).with_integrity(true);
        let fleet = GpuCluster::honest(cfg.workers_required(), 34);
        let mut session = dk_core::DarknightSession::new(cfg, fleet).expect("obs-bench session");
        let mut model = mini_vgg(8, 4, 34);
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
        // Warm both the workspace pools and (enabled) the span ring /
        // registry cells, so neither run pays one-time setup.
        dk_obs::enable();
        for _ in 0..3 {
            let _ = session.private_inference(&mut model, &x).expect("obs warmup");
        }
        dk_obs::disable();
        let (mut off_ns, mut on_ns) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..3 {
            let off = time_ns(target_ms, || {
                let _ = session.private_inference(&mut model, &x).expect("obs off");
            });
            dk_obs::enable();
            let on = time_ns(target_ms, || {
                let _ = session.private_inference(&mut model, &x).expect("obs on");
            });
            dk_obs::disable();
            off_ns = off_ns.min(off);
            on_ns = on_ns.min(on);
        }
        dk_linalg::set_max_threads(saved_threads);
        obs_row = Some(ObsRow { off_ns, on_ns });
    }

    // --- baseline comparison (--baseline PATH): end-to-end trajectory ---
    // Computes same-mode speedups against a previous run of this binary
    // on the same host (e.g. the pre-optimization build's output), so
    // hot-path work shows up as an explicit end-to-end ratio in the
    // committed record.
    let mut vs_baseline: Vec<String> = Vec::new();
    if let Some(doc) = &baseline {
        let same_mode =
            json_number(doc, "unix_time").is_some() && doc.contains(&format!("\"mode\": \"{}\"", if fast { "fast" } else { "full" }));
        if same_mode {
            for r in &pipeline_rows {
                if let Some(prev_ms) =
                    json_row(doc, &r.label).and_then(|row| json_number(row, "sequential_ms"))
                {
                    vs_baseline.push(format!(
                        "    {{\"name\": \"{}\", \"baseline_sequential_ms\": {:.1}, \"sequential_ms\": {:.1}, \"end_to_end_speedup\": {:.2}}}",
                        r.label,
                        prev_ms,
                        r.sequential_ms,
                        prev_ms / r.sequential_ms
                    ));
                }
            }
        } else {
            eprintln!("baseline ignored: mode mismatch (compare like with like)");
        }
    }

    // --- report ---------------------------------------------------------
    println!("DarKnight kernel micro-benches ({} mode, DK threads = {})", if fast { "fast" } else { "full" }, dk_linalg::max_threads());
    println!("{:<44} {:>12} {:>12} {:>8}", "bench", "scalar Mops", "fast Mops", "speedup");
    for e in &entries {
        println!(
            "{:<44} {:>12.1} {:>12.1} {:>7.2}x",
            e.name,
            e.mops(e.baseline_ns),
            e.mops(e.fast_ns),
            e.baseline_ns / e.fast_ns
        );
    }

    println!();
    println!("{}", dk_perf::report::pipeline_table(&pipeline_rows));
    if !alloc_rows.is_empty() {
        println!();
        println!("{:<44} {:>14} {:>14}", "alloc (per warm step)", "allocations", "bytes");
        for r in &alloc_rows {
            println!("{:<44} {:>14} {:>14}", r.name, r.allocs_per_step, r.bytes_per_step);
        }
    }
    if let Some(o) = &obs_row {
        println!();
        println!(
            "obs overhead: session step {:.1} µs off / {:.1} µs on ({:+.2}%)",
            o.off_ns / 1e3,
            o.on_ns / 1e3,
            (o.on_ns / o.off_ns - 1.0) * 100.0
        );
    }

    let ts = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let pipeline_json = pipeline_rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"batches\": {}, \"sequential_ms\": {:.1}, \"pipelined_ms\": {:.1}, \"speedup\": {:.2}, \"analytical_fig5_gain\": {:.2}, \"analytical_arch\": \"{}\"}}",
                r.label,
                r.batches,
                r.sequential_ms,
                r.pipelined_ms,
                r.measured_speedup,
                r.analytical_speedup,
                r.analytical_arch
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let mut extra_sections = String::new();
    if !alloc_rows.is_empty() {
        let rows = alloc_rows
            .iter()
            .map(|r| {
                format!(
                    "    {{\"name\": \"{}\", \"allocs_per_step\": {}, \"bytes_per_step\": {}}}",
                    r.name, r.allocs_per_step, r.bytes_per_step
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        extra_sections.push_str(&format!(",\n  \"alloc\": [\n{rows}\n  ]"));
    }
    if let Some(o) = &obs_row {
        extra_sections.push_str(&format!(
            ",\n  \"obs\": [\n    {{\"name\": \"private_infer/mini_vgg session step\", \"off_ns_per_step\": {:.1}, \"on_ns_per_step\": {:.1}, \"overhead_ratio\": {:.4}}}\n  ]",
            o.off_ns,
            o.on_ns,
            o.on_ns / o.off_ns
        ));
    }
    if !vs_baseline.is_empty() {
        extra_sections.push_str(&format!(",\n  \"vs_baseline\": [\n{}\n  ]", vs_baseline.join(",\n")));
    }
    let json = format!(
        "{{\n  \"mode\": \"{}\",\n  \"unix_time\": {},\n  \"dk_threads\": {},\n  \"benches\": [\n{}\n  ],\n  \"pipeline\": [\n{}\n  ]{}\n}}\n",
        if fast { "fast" } else { "full" },
        ts,
        dk_linalg::max_threads(),
        entries.iter().map(Entry::to_json).collect::<Vec<_>>().join(",\n"),
        pipeline_json,
        extra_sections
    );
    std::fs::write(&out_path, json).expect("write bench json");
    println!("\nwrote {out_path}");

    // Smoke check: the fast kernels must actually beat the scalar path on
    // the field shapes (CI fails loudly if the optimization regresses).
    let field_regressions: Vec<&Entry> = entries
        .iter()
        .filter(|e| e.name.ends_with("/field") && e.fast_ns > e.baseline_ns)
        .collect();
    if !field_regressions.is_empty() {
        for e in field_regressions {
            eprintln!("REGRESSION: {} fast path slower than scalar baseline", e.name);
        }
        std::process::exit(1);
    }
    // And the staged engine must not lose to the sequential path under
    // modeled accelerator latency (where the §7.1 overlap must pay).
    for r in pipeline_rows.iter().filter(|r| r.label.contains("modeled-gpu")) {
        if r.measured_speedup < 1.0 {
            eprintln!(
                "REGRESSION: {} pipelined slower than sequential ({:.2}x)",
                r.label, r.measured_speedup
            );
            std::process::exit(1);
        }
    }
    // On a host with real parallelism the pure-compute overlap must pay
    // too. A single hardware thread cannot overlap anything — the TEE
    // and worker stages just time-slice, and the staging overhead shows
    // up as a 0.77–0.9x "speedup" — so this gate only arms when the
    // host can actually run the stages concurrently.
    if std::thread::available_parallelism().map_or(1, usize::from) > 1 {
        for r in pipeline_rows.iter().filter(|r| r.label.contains("compute-only")) {
            if r.measured_speedup < 1.0 {
                eprintln!(
                    "REGRESSION: {} pipelined slower than sequential ({:.2}x) on a \
                     multi-core host",
                    r.label, r.measured_speedup
                );
                std::process::exit(1);
            }
        }
    }
    // Allocation gate: steady-state inference must stay at exactly zero
    // heap allocations — gated on the untruncated total over the whole
    // measured window.
    if let Some(r) = alloc_rows.iter().find(|r| r.name.starts_with("infer/")) {
        if r.total_allocs > 0 {
            eprintln!(
                "REGRESSION: {} performs {} allocations over the warm window (must be 0)",
                r.name, r.total_allocs
            );
            std::process::exit(1);
        }
    }
    // The private session round-trip is held to the same standard: with
    // a step plan installed and outputs recycled, the whole encode →
    // dispatch → decode → dequantize loop cycles through pooled buffers
    // and a warm serving step performs exactly zero heap allocations.
    if let Some(r) = alloc_rows.iter().find(|r| r.name.starts_with("private_infer/")) {
        if r.total_allocs > 0 {
            eprintln!(
                "REGRESSION: {} performs {} allocations over the warm window (must be 0)",
                r.name, r.total_allocs
            );
            std::process::exit(1);
        }
    }
    // Observability gate: the fully-instrumented session step (spans +
    // counters live on every stage) must cost within 3% of the
    // uninstrumented one — the whole point of the lock-free registry.
    if let Some(o) = &obs_row {
        let ratio = o.on_ns / o.off_ns;
        if ratio > 1.03 {
            eprintln!(
                "REGRESSION: observability-enabled session step is {:.1}% slower than \
                 disabled (gate: 3%)",
                (ratio - 1.0) * 100.0
            );
            std::process::exit(1);
        }
    }
    // Kernel-trajectory gate against the committed record: raw ns/op is
    // host-dependent, so the comparison is normalized by each run's own
    // same-host scalar baseline — each tracked kernel's fast:scalar
    // ratio must not be more than 10% worse than the committed one (25%
    // when the committed row was measured at a different spatial size,
    // e.g. a fast-mode CI run gating against the committed full-mode
    // record: the ratio shifts a few percent with shape, the margin
    // absorbs it). Tracked kernels: the conv hot job (the offload's
    // dominant cost), the lane-parallel field matmul (the SIMD kernel
    // this ratio was built to protect), and the TEE-side streaming
    // encode/decode (the coded-combine fast path).
    if let Some(doc) = &committed {
        for prefix in
            ["conv2d_forward", "matmul_64x128x64/field", "encode_k4_m2", "decode_forward_k4_m2"]
        {
            let Some(new) = entries.iter().find(|e| e.name.starts_with(prefix)) else {
                continue;
            };
            let new_ratio = new.fast_ns / new.baseline_ns;
            let committed_row = json_row(doc, &new.name).map(|r| (r, 1.10)).or_else(|| {
                let at = doc.find(&format!("\"name\": \"{prefix}"))?;
                let end = doc[at..].find('}')? + at;
                Some((&doc[at..end], 1.25))
            });
            if let Some((row, margin)) = committed_row {
                if let (Some(prev_fast), Some(prev_scalar)) =
                    (json_number(row, "fast_ns_per_op"), json_number(row, "scalar_ns_per_op"))
                {
                    let prev_ratio = prev_fast / prev_scalar;
                    if new_ratio > prev_ratio * margin {
                        eprintln!(
                            "REGRESSION: {} fast:scalar ratio {new_ratio:.3} is more than {:.0}% \
                             worse than the committed baseline {prev_ratio:.3}",
                            new.name,
                            (margin - 1.0) * 100.0
                        );
                        std::process::exit(1);
                    }
                }
            }
        }
    }
}
