//! Shared harness utilities for the DarKnight benchmark suite.
//!
//! The one experiment that cannot come from the analytical model is the
//! paper's **Figure 4** (training accuracy, raw vs DarKnight): it needs
//! real training. [`fig4`] runs it on the trainable mini models against
//! the synthetic dataset (see DESIGN.md substitutions) and reports the
//! per-epoch accuracy of both modes side by side.

use dk_core::{session::DarknightSession, DarknightConfig};
use dk_gpu::GpuCluster;
use dk_nn::data::Dataset;
use dk_nn::model::Sequential;
use dk_nn::optim::Sgd;
use dk_nn::train;

/// Accuracy trajectories of one model under both training modes.
#[derive(Debug, Clone)]
pub struct Fig4Curve {
    /// Model name.
    pub model: String,
    /// Eval accuracy per epoch, plaintext float training ("Raw Data").
    pub raw: Vec<f32>,
    /// Eval accuracy per epoch, DarKnight masked training.
    pub darknight: Vec<f32>,
}

impl Fig4Curve {
    /// Final-epoch accuracy gap `raw − darknight` (the paper reports
    /// < 0.01 degradation).
    pub fn final_gap(&self) -> f32 {
        self.raw.last().copied().unwrap_or(0.0) - self.darknight.last().copied().unwrap_or(0.0)
    }
}

/// Experiment scale knobs for [`fig4`].
#[derive(Debug, Clone, Copy)]
pub struct Fig4Config {
    /// Image side (models are built for `3×hw×hw`).
    pub hw: usize,
    /// Classes in the synthetic task.
    pub classes: usize,
    /// Samples per class.
    pub per_class: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for Fig4Config {
    fn default() -> Self {
        Self { hw: 8, classes: 8, per_class: 30, epochs: 8, lr: 0.002, seed: 2024 }
    }
}

/// Trains one model both ways and returns the two accuracy curves.
///
/// # Panics
///
/// Panics if the private executor fails (honest workers never trigger
/// integrity errors; quantization is bounded by construction).
pub fn fig4_one(
    name: &str,
    build: impl Fn(u64) -> Sequential,
    cfg: Fig4Config,
) -> Fig4Curve {
    let data = Dataset::synthetic(cfg.classes, cfg.per_class, (3, cfg.hw, cfg.hw), 0.5, cfg.seed);
    let (train_set, eval_set) = data.split(0.8);

    // Raw float training.
    let mut raw_model = build(cfg.seed ^ 0xF10A);
    let mut sgd = Sgd::new(cfg.lr);
    let report = train::train(&mut raw_model, &train_set, Some(&eval_set), cfg.epochs, 2, &mut sgd);
    let raw = report.epoch_eval_acc.clone();

    // DarKnight masked training (virtual batch K=2, M=1).
    let dk_cfg = DarknightConfig::new(2, 1).with_seed(cfg.seed);
    let cluster = GpuCluster::honest(dk_cfg.workers_required(), cfg.seed ^ 0x6A);
    let mut session = DarknightSession::new(dk_cfg, cluster).expect("cluster sized by config");
    let mut dk_model = build(cfg.seed ^ 0xF10A); // identical initialization
    let mut sgd = Sgd::new(cfg.lr);
    let mut darknight = Vec::with_capacity(cfg.epochs);
    for _ in 0..cfg.epochs {
        for (x, labels) in train_set.batches(2) {
            session
                .train_step(&mut dk_model, &x, labels, &mut sgd)
                .expect("honest cluster: private step cannot fail");
        }
        darknight.push(train::evaluate(&mut dk_model, &eval_set, 2));
    }

    Fig4Curve { model: name.to_string(), raw, darknight }
}

/// Runs Figure 4 for the three mini models.
pub fn fig4(cfg: Fig4Config) -> Vec<Fig4Curve> {
    vec![
        fig4_one("MiniVGG", |s| dk_nn::arch::mini_vgg(cfg.hw, cfg.classes, s), cfg),
        fig4_one("MiniResNet", |s| dk_nn::arch::mini_resnet(cfg.hw, cfg.classes, s), cfg),
        fig4_one("MiniMobileNet", |s| dk_nn::arch::mini_mobilenet(cfg.hw, cfg.classes, s), cfg),
    ]
}

/// Renders Figure 4 curves as text.
pub fn render_fig4(curves: &[Fig4Curve]) -> String {
    let mut s = String::from(
        "Fig. 4: training accuracy, raw float vs DarKnight masked training\n\
         (mini models on the synthetic dataset; paper reports <0.01 final gap)\n\n",
    );
    for c in curves {
        s.push_str(&format!("{}\n  epoch:     ", c.model));
        for e in 0..c.raw.len() {
            s.push_str(&format!("{:>6}", e + 1));
        }
        s.push_str("\n  raw:       ");
        for v in &c.raw {
            s.push_str(&format!("{v:>6.2}"));
        }
        s.push_str("\n  darknight: ");
        for v in &c.darknight {
            s.push_str(&format!("{v:>6.2}"));
        }
        s.push_str(&format!("\n  final gap: {:+.3}\n\n", c.final_gap()));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_small_run_parity() {
        // A very small configuration to keep the test fast; the full
        // run lives in the report binary.
        let cfg = Fig4Config { per_class: 16, epochs: 6, classes: 4, ..Default::default() };
        let curve = fig4_one("MiniVGG", |s| dk_nn::arch::mini_vgg(cfg.hw, cfg.classes, s), cfg);
        assert_eq!(curve.raw.len(), cfg.epochs);
        assert_eq!(curve.darknight.len(), cfg.epochs);
        // Both modes must actually learn…
        assert!(curve.raw.last().unwrap() > &0.5, "raw failed to learn: {:?}", curve.raw);
        assert!(
            curve.darknight.last().unwrap() > &0.5,
            "darknight failed to learn: {:?}",
            curve.darknight
        );
        // …and land close to each other (quantized masked training).
        assert!(curve.final_gap().abs() < 0.25, "gap {:?}", curve.final_gap());
    }
}
