//! Measured pipelined vs sequential execution (functional counterpart
//! of Fig. 5's pipelining gains): the real engine — TEE lanes over
//! persistent GPU worker threads — against the blocking sequential
//! session, on a real multi-layer model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dk_core::engine::{EngineOptions, PipelineEngine};
use dk_core::{DarknightConfig, DarknightSession};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_nn::Sequential;

fn inputs(batches: usize) -> Vec<Tensor<f32>> {
    (0..batches)
        .map(|b| Tensor::from_fn(&[2, 3, 8, 8], move |i| ((i + b) % 9) as f32 * 0.1 - 0.4))
        .collect()
}

fn model() -> Sequential {
    mini_vgg(8, 4, 42)
}

fn bench_pipeline(c: &mut Criterion) {
    let cfg = DarknightConfig::new(2, 1).with_integrity(true);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("sequential_4_batches", |b| {
        let xs = inputs(4);
        b.iter(|| {
            let cluster = GpuCluster::honest(cfg.workers_required(), 3);
            let mut session = DarknightSession::new(cfg, cluster).unwrap();
            let mut m = model();
            for x in &xs {
                black_box(session.private_inference(&mut m, x).unwrap());
            }
        })
    });
    g.bench_function("pipelined_4_batches", |b| {
        let xs = inputs(4);
        b.iter(|| {
            let cluster = GpuCluster::honest(cfg.workers_required(), 3);
            let mut engine =
                PipelineEngine::new(cfg, cluster, EngineOptions::default()).unwrap();
            black_box(engine.infer_batches(&model(), &xs, false).unwrap());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
