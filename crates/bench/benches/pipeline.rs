//! Measured pipelined vs sequential execution (functional counterpart
//! of Fig. 5's pipelining gains): encode / GPU-compute / decode stages
//! overlapped on OS threads.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dk_core::pipeline::{compare_pipelining, PipelineWorkload};
use dk_linalg::Conv2dShape;

fn workload(batches: usize) -> PipelineWorkload {
    PipelineWorkload {
        k: 2,
        m: 1,
        shape: Conv2dShape::simple(8, 16, 3, 1, 1),
        hw: (16, 16),
        batches,
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("compare_3_batches", |b| {
        b.iter(|| black_box(compare_pipelining(workload(3), 3)))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
