//! Kernel benchmarks: field arithmetic primitives on the DarKnight hot
//! path (quantization, masking, decoding all reduce to these).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dk_field::{F25, FieldMatrix, FieldRng, P25};

fn bench_scalar_ops(c: &mut Criterion) {
    let mut rng = FieldRng::seed_from(1);
    let xs: Vec<F25> = (0..4096).map(|_| rng.uniform_nonzero()).collect();
    let ys: Vec<F25> = (0..4096).map(|_| rng.uniform_nonzero()).collect();

    let mut g = c.benchmark_group("field_scalar");
    g.throughput(Throughput::Elements(4096));
    g.bench_function("mul_4096", |b| {
        b.iter(|| {
            let mut acc = F25::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc += x * y;
            }
            black_box(acc)
        })
    });
    g.bench_function("mul_add_4096", |b| {
        b.iter(|| {
            let mut acc = F25::ZERO;
            for (&x, &y) in xs.iter().zip(&ys) {
                acc = F25::mul_add(x, y, acc);
            }
            black_box(acc)
        })
    });
    g.bench_function("inv_single", |b| {
        let x = xs[17];
        b.iter(|| black_box(x.inv()))
    });
    g.bench_function("batch_invert_4096", |b| {
        b.iter(|| {
            let mut v = xs.clone();
            F25::batch_invert(&mut v);
            black_box(v)
        })
    });
    g.finish();
}

fn bench_matrix_ops(c: &mut Criterion) {
    let mut rng = FieldRng::seed_from(2);
    let mut g = c.benchmark_group("field_matrix");
    for n in [3usize, 5, 9] {
        let (m, _) = FieldMatrix::<P25>::random_invertible(n, &mut rng);
        g.bench_function(format!("inverse_{n}x{n}"), |b| b.iter(|| black_box(m.inverse())));
    }
    g.finish();
}

criterion_group!(benches, bench_scalar_ops, bench_matrix_ops);
criterion_main!(benches);
