//! End-to-end measured private inference: DarKnight vs Slalom vs plain
//! execution on the mini models — the functional counterpart of
//! Fig. 6a (relative ordering on this host's simulated devices).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dk_baselines::SlalomSession;
use dk_core::{DarknightConfig, DarknightSession};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;

fn input(k: usize, hw: usize) -> Tensor<f32> {
    Tensor::from_fn(&[k, 3, hw, hw], |i| ((i % 11) as f32 - 5.0) * 0.07)
}

fn bench_inference(c: &mut Criterion) {
    let hw = 8usize;
    let mut g = c.benchmark_group("private_inference_minivgg");
    g.sample_size(10);

    g.bench_function("plain", |b| {
        let mut model = mini_vgg(hw, 4, 1);
        let x = input(4, hw);
        b.iter(|| black_box(model.forward(&x, false)))
    });

    g.bench_function("darknight_k4", |b| {
        let cfg = DarknightConfig::new(4, 1);
        let cluster = GpuCluster::honest(cfg.workers_required(), 2);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = mini_vgg(hw, 4, 1);
        let x = input(4, hw);
        b.iter(|| black_box(session.private_inference(&mut model, &x).unwrap()))
    });

    g.bench_function("darknight_k4_integrity", |b| {
        let cfg = DarknightConfig::new(4, 1).with_integrity(true);
        let cluster = GpuCluster::honest(cfg.workers_required(), 3);
        let mut session = DarknightSession::new(cfg, cluster).unwrap();
        let mut model = mini_vgg(hw, 4, 1);
        let x = input(4, hw);
        b.iter(|| black_box(session.private_inference(&mut model, &x).unwrap()))
    });

    g.bench_function("slalom", |b| {
        let cluster = GpuCluster::honest(1, 4);
        let mut slalom = SlalomSession::new(cluster, false, 5).with_auto_refill(true);
        let mut model = mini_vgg(hw, 4, 1);
        slalom.precompute(&mut model, 64).unwrap();
        let x = input(4, hw);
        b.iter(|| black_box(slalom.inference(&mut model, &x).unwrap()))
    });

    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
