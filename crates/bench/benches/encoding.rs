//! Encode/decode throughput vs virtual batch size — the measured kernel
//! behind Fig. 6b's blinding/unblinding series.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dk_core::EncodingScheme;
use dk_field::{FieldRng, P25};

fn bench_encode_decode(c: &mut Criterion) {
    let n = 16_384; // elements per activation vector
    let mut g = c.benchmark_group("encoding");
    for k in [1usize, 2, 4, 6] {
        let mut rng = FieldRng::seed_from(k as u64);
        let scheme = EncodingScheme::generate(k, 1, false, &mut rng);
        let inputs: Vec<Vec<_>> = (0..k).map(|_| rng.uniform_vec::<P25>(n)).collect();
        let noise = vec![rng.uniform_vec::<P25>(n)];
        // Throughput in *useful* elements: K vectors of n.
        g.throughput(Throughput::Elements((k * n) as u64));
        g.bench_with_input(BenchmarkId::new("encode", k), &k, |b, _| {
            b.iter(|| black_box(scheme.encode(&inputs, &noise)))
        });
        let encodings = scheme.encode(&inputs, &noise);
        g.bench_with_input(BenchmarkId::new("decode", k), &k, |b, _| {
            b.iter(|| black_box(scheme.decode_forward(&encodings, 0).unwrap()))
        });
    }
    g.finish();
}

fn bench_backward_decode(c: &mut Criterion) {
    let n = 16_384;
    let mut g = c.benchmark_group("backward_decode");
    for k in [2usize, 4] {
        let mut rng = FieldRng::seed_from(10 + k as u64);
        let scheme = EncodingScheme::generate(k, 1, false, &mut rng);
        let eqs: Vec<Vec<_>> =
            (0..scheme.num_encodings()).map(|_| rng.uniform_vec::<P25>(n)).collect();
        g.throughput(Throughput::Elements(((k + 1) * n) as u64));
        g.bench_with_input(BenchmarkId::new("gamma_sum", k), &k, |b, _| {
            b.iter(|| black_box(scheme.decode_backward(&eqs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_encode_decode, bench_backward_decode);
criterion_main!(benches);
