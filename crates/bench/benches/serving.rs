//! Served throughput vs direct session calls.
//!
//! The serving runtime adds aggregation, channels and a worker pool on
//! top of `DarknightSession`; this bench prices that machinery at
//! different batch-fill ratios. Bursts of 1/2/4 requests against K=4
//! exercise 25/50/100% fill — partial bursts pay the aggregation
//! deadline plus padded (wasted) encoding rows, full bursts take the
//! hot path — and `direct_private_inference` is the no-runtime
//! baseline: one synchronous session fed pre-formed full batches.
//! Throughput lines are requests/second (real requests, not padded
//! rows).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dk_core::{DarknightConfig, DarknightSession};
use dk_gpu::GpuCluster;
use dk_linalg::Tensor;
use dk_nn::arch::mini_vgg;
use dk_serve::{InferenceRequest, Server, ServerConfig, Ticket};
use std::time::Duration;

const HW: usize = 8;
const K: usize = 4;

fn sample(i: u64) -> Tensor<f32> {
    Tensor::from_fn(&[3, HW, HW], |j| {
        (((j as u64).wrapping_mul(i * 2 + 1) % 23) as f32 - 11.0) * 0.04
    })
}

fn full_batch(base: u64) -> Tensor<f32> {
    let mut x = Tensor::<f32>::zeros(&[K, 3, HW, HW]);
    for r in 0..K {
        x.batch_item_mut(r).copy_from_slice(sample(base + r as u64).as_slice());
    }
    x
}

fn bench_serving(c: &mut Criterion) {
    let model = mini_vgg(HW, 4, 5);
    let cfg = DarknightConfig::new(K, 1);
    let cluster = GpuCluster::honest(cfg.workers_required(), 6);
    let mut g = c.benchmark_group("serving_throughput_minivgg");
    g.sample_size(10);

    // Baseline: one synchronous session, pre-formed full batches,
    // shared-scale inference (the path a batch script would use).
    g.throughput(Throughput::Elements(K as u64));
    g.bench_function("direct_private_inference", |b| {
        let mut session = DarknightSession::new(cfg, cluster.fork(1)).unwrap();
        let mut m = model.clone();
        let x = full_batch(0);
        b.iter(|| black_box(session.private_inference(&mut m, &x).unwrap()))
    });

    // Served: bursts of `real` requests against K=4 force the target
    // fill ratio — partial bursts dispatch on the aggregation deadline.
    for &real in &[1usize, 2, 4] {
        g.throughput(Throughput::Elements(real as u64));
        g.bench_with_input(
            BenchmarkId::new("served_fill", format!("{}pct", real * 100 / K)),
            &real,
            |b, &real| {
                let server = Server::start(
                    ServerConfig::new(cfg, &[3, HW, HW])
                        .with_workers(2)
                        .with_max_batch_wait(Duration::from_micros(300)),
                    &model,
                    &cluster,
                )
                .unwrap();
                let handle = server.handle();
                let mut i = 0u64;
                b.iter(|| {
                    let tickets: Vec<Ticket> = (0..real)
                        .map(|_| {
                            i += 1;
                            handle.submit(InferenceRequest::new(sample(i))).unwrap()
                        })
                        .collect();
                    for t in tickets {
                        black_box(t.wait().unwrap());
                    }
                });
                drop(handle);
                server.shutdown();
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
