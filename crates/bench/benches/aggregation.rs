//! Algorithm 2 measured: the real seal → evict → reload → unseal →
//! aggregate pipeline for per-virtual-batch weight updates, swept over
//! the virtual batch size. This is the measured counterpart of Fig. 3:
//! larger K ⇒ fewer virtual batches ⇒ fewer sealing rounds for the same
//! 128-image batch.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dk_tee::crypto::{bytes_to_f32s, f32s_to_bytes};
use dk_tee::{Enclave, EpcConfig, UntrustedStore};

/// One Algorithm 2 round for a model with `params` weights, batch 128,
/// virtual batch `k`: V seal+evict rounds, then shard-wise reload and
/// aggregation.
fn algorithm2_round(params: usize, k: usize, shard: usize) -> Vec<f32> {
    let mut enclave = Enclave::new(EpcConfig::sgx_v1(), b"bench");
    let mut store = UntrustedStore::new();
    let v_count = 128 / k;
    let grad: Vec<f32> = (0..params).map(|i| (i % 97) as f32 * 1e-4).collect();
    let shards = params.div_ceil(shard);
    for v in 0..v_count {
        for s in 0..shards {
            let lo = s * shard;
            let hi = (lo + shard).min(params);
            let blob = enclave.seal(&f32s_to_bytes(&grad[lo..hi]));
            store.put((v * shards + s) as u64, blob);
        }
    }
    let mut agg = vec![0.0f32; params];
    for s in 0..shards {
        let lo = s * shard;
        for v in 0..v_count {
            let blob = store.remove((v * shards + s) as u64).expect("stored");
            let shard_vals = bytes_to_f32s(&enclave.unseal(&blob).expect("authentic"));
            for (a, g) in agg[lo..].iter_mut().zip(shard_vals) {
                *a += g;
            }
        }
    }
    agg
}

fn bench_aggregation(c: &mut Criterion) {
    let params = 50_000; // mini-model-scale gradient vector
    let mut g = c.benchmark_group("algorithm2_batch128");
    g.sample_size(10);
    for k in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("virtual_batch", k), &k, |b, &k| {
            b.iter(|| black_box(algorithm2_round(params, k, 8_192)))
        });
    }
    g.finish();
}

fn bench_shard_size_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: sealing granularity sweep at fixed K.
    let params = 50_000;
    let mut g = c.benchmark_group("algorithm2_shard_size");
    g.sample_size(10);
    for shard in [512usize, 4_096, 32_768] {
        g.bench_with_input(BenchmarkId::new("shard", shard), &shard, |b, &shard| {
            b.iter(|| black_box(algorithm2_round(params, 4, shard)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_aggregation, bench_shard_size_ablation);
criterion_main!(benches);
