//! Bilinear kernels in both domains — the measured counterpart of
//! Table 1's linear-op rows: the same convolution in f32 (TEE/reference
//! path) and `F_p` (GPU worker path).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use dk_field::F25;
use dk_linalg::conv::{conv2d_backward_weight, conv2d_forward};
use dk_linalg::{matmul, Conv2dShape, Tensor};

fn bench_conv(c: &mut Criterion) {
    let shape = Conv2dShape::simple(16, 32, 3, 1, 1);
    let hw = 16usize;
    let macs = shape.forward_macs(1, (hw, hw));
    let xf = Tensor::<f32>::from_fn(&[1, 16, hw, hw], |i| ((i % 13) as f32 - 6.0) * 0.1);
    let wf = Tensor::<f32>::from_fn(&shape.weight_shape(), |i| ((i % 7) as f32 - 3.0) * 0.05);
    let xq: Tensor<F25> = xf.map(|v| F25::from_i64((v * 64.0) as i64));
    let wq: Tensor<F25> = wf.map(|v| F25::from_i64((v * 64.0) as i64));

    let mut g = c.benchmark_group("conv2d_forward");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("f32", |b| b.iter(|| black_box(conv2d_forward(&xf, &wf, &shape))));
    g.bench_function("field", |b| b.iter(|| black_box(conv2d_forward(&xq, &wq, &shape))));
    g.finish();

    let dyf = Tensor::<f32>::ones(&[1, 32, hw, hw]);
    let dyq: Tensor<F25> = dyf.map(|v| F25::from_i64(v as i64));
    let mut g = c.benchmark_group("conv2d_wgrad");
    g.throughput(Throughput::Elements(macs));
    g.bench_function("f32", |b| b.iter(|| black_box(conv2d_backward_weight(&dyf, &xf, &shape))));
    g.bench_function("field", |b| b.iter(|| black_box(conv2d_backward_weight(&dyq, &xq, &shape))));
    g.finish();
}

fn bench_depthwise_vs_dense_conv(c: &mut Criterion) {
    // The MobileNet ablation: depthwise convs have ~1/channels the MACs
    // but much worse arithmetic intensity.
    let hw = 16usize;
    let dense = Conv2dShape::simple(32, 32, 3, 1, 1);
    let depthwise = Conv2dShape::depthwise(32, 3, 1, 1);
    let x = Tensor::<f32>::from_fn(&[1, 32, hw, hw], |i| (i % 11) as f32 * 0.05);
    let wd = Tensor::<f32>::ones(&dense.weight_shape());
    let wdw = Tensor::<f32>::ones(&depthwise.weight_shape());
    let mut g = c.benchmark_group("conv_styles");
    g.throughput(Throughput::Elements(dense.forward_macs(1, (hw, hw))));
    g.bench_function("dense_3x3", |b| b.iter(|| black_box(conv2d_forward(&x, &wd, &dense))));
    g.throughput(Throughput::Elements(depthwise.forward_macs(1, (hw, hw))));
    g.bench_function("depthwise_3x3", |b| {
        b.iter(|| black_box(conv2d_forward(&x, &wdw, &depthwise)))
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let (m, k, n) = (64usize, 128, 64);
    let af: Vec<f32> = (0..m * k).map(|i| (i % 9) as f32 * 0.1).collect();
    let bf: Vec<f32> = (0..k * n).map(|i| (i % 5) as f32 * 0.1).collect();
    let aq: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 % 9)).collect();
    let bq: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 % 5)).collect();
    let mut g = c.benchmark_group("matmul_64x128x64");
    g.throughput(Throughput::Elements((m * k * n) as u64));
    g.bench_function("f32", |b| b.iter(|| black_box(matmul(&af, &bf, m, k, n))));
    g.bench_function("field", |b| b.iter(|| black_box(matmul(&aq, &bq, m, k, n))));
    g.finish();
}

criterion_group!(benches, bench_conv, bench_depthwise_vs_dense_conv, bench_matmul);
criterion_main!(benches);
