//! The zero-allocation invariant of the steady-state hot path, enforced
//! by a counting global allocator.
//!
//! This test binary installs a `#[global_allocator]` that counts every
//! allocation (and the bytes requested), warms a model's workspace up,
//! and then asserts:
//!
//! * a steady-state **inference** step performs **zero** heap
//!   allocations — activations, caches, pooling bookkeeping and kernel
//!   scratch all cycle through the model-owned
//!   [`dk_linalg::Workspace`] — **with observability enabled**: spans,
//!   counters, gauges and histograms recording on every step must not
//!   allocate either (rings and cells are pre-registered at setup);
//! * a steady-state **training** step (forward, loss, backward, SGD)
//!   performs a small *constant* number of allocations — the loss pair
//!   and a handful of small gradient staging vectors — that does not
//!   grow from step to step.
//!
//! Everything runs inside one `#[test]` so no concurrent test thread
//! can pollute the counters.

use dk_linalg::workspace::{alloc_counts as counts, CountingAllocator};
use dk_linalg::Tensor;
use dk_nn::arch::{mini_resnet, mini_vgg};
use dk_nn::loss::softmax_cross_entropy;
use dk_nn::optim::Sgd;

#[global_allocator]
static COUNTER: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_allocation_budget() {
    // Kernel threading spawns scoped threads (which allocate); the
    // invariant under test is the single-lane hot path.
    dk_linalg::set_max_threads(1);

    // Observability ENABLED: the instrumented hot path must stay
    // allocation-free too. Handles are pre-registered (setup-path
    // allocations happen here), and the first span below registers this
    // thread's ring during warm-up.
    dk_obs::enable();
    let steps = dk_obs::global().counter("alloc_test_steps_total");
    let depth = dk_obs::global().gauge("alloc_test_depth");
    let lat = dk_obs::global().histogram("alloc_test_ns");

    // ----- inference: exactly zero allocations once warm --------------
    for (mut model, name) in
        [(mini_vgg(8, 4, 11), "mini_vgg"), (mini_resnet(8, 4, 12), "mini_resnet")]
    {
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 13) as f32 - 6.0) * 0.07);
        // Warm-up: populate the workspace pool (first steps allocate)
        // and register this thread's span ring.
        for _ in 0..3 {
            let sp = dk_obs::span(dk_obs::Stage::Dispatch, 0, 0);
            let y = model.forward(&x, false);
            drop(sp);
            model.give_back(y);
        }
        let misses_warm = model.workspace_stats().misses;
        let (a0, b0) = counts();
        for s in 0..5u64 {
            // The full instrument-site mix a serving step exercises:
            // span enter/exit, counter, gauge, histogram — all must be
            // allocation-free while enabled.
            let sp = dk_obs::span(dk_obs::Stage::Dispatch, s, 0);
            depth.inc();
            let y = model.forward(&x, false);
            steps.inc();
            lat.record(1 + s * 1000);
            depth.dec();
            drop(sp);
            model.give_back(y);
        }
        let (a1, b1) = counts();
        assert_eq!(
            a1 - a0,
            0,
            "{name}: warm inference (observability enabled) must be allocation-free \
             (got {} allocs / {} bytes over 5 steps)",
            a1 - a0,
            b1 - b0
        );
        assert_eq!(
            model.workspace_stats().misses,
            misses_warm,
            "{name}: warm workspace must not miss"
        );
    }
    // The instruments really recorded (this wasn't a disabled no-op).
    assert_eq!(steps.value(), 10, "5 measured steps per model must have counted");
    assert_eq!(lat.count(), 10);
    assert!(
        dk_obs::trace::snapshot().iter().any(|s| s.stage == dk_obs::Stage::Dispatch),
        "measured spans must be in the ring"
    );

    // ----- training: a bounded constant per step ----------------------
    let mut model = mini_vgg(8, 4, 21);
    let mut sgd = Sgd::new(0.05).with_momentum(0.9);
    let x = Tensor::from_fn(&[2, 3, 8, 8], |i| ((i % 11) as f32 - 5.0) * 0.06);
    let labels = [1usize, 3];
    let step = |model: &mut dk_nn::Sequential, sgd: &mut Sgd| {
        model.zero_grad();
        let logits = model.forward(&x, true);
        let (_, dlogits) = softmax_cross_entropy(&logits, &labels);
        model.give_back(logits);
        let dx = model.backward(&dlogits);
        model.give_back(dx);
        sgd.step(model);
    };
    for _ in 0..3 {
        step(&mut model, &mut sgd);
    }
    let (a0, _) = counts();
    step(&mut model, &mut sgd);
    let (a1, _) = counts();
    step(&mut model, &mut sgd);
    let (a2, _) = counts();
    let (first, second) = (a1 - a0, a2 - a1);
    assert_eq!(
        first, second,
        "training-step allocation count must be a steady constant ({first} vs {second})"
    );
    // The constant covers the loss pair and per-layer bias-gradient
    // staging only — measured at exactly 14 today; anything near the
    // old per-step hundreds (fresh activations, im2col buffers, caches)
    // is a regression.
    assert!(first <= 14, "training step allocates too much: {first} allocations per step");
}
