//! SGD optimizer (the paper trains with vanilla SGD, Eq. 3).

use crate::model::Sequential;
use dk_linalg::Tensor;

/// Stochastic gradient descent with optional momentum and weight decay.
///
/// Velocity buffers are keyed by parameter visit order, which is fixed
/// for a given model, so the optimizer can be constructed independently
/// of the model.
///
/// # Example
///
/// ```
/// use dk_nn::optim::Sgd;
/// let mut sgd = Sgd::new(0.01).with_momentum(0.9);
/// assert_eq!(sgd.learning_rate(), 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor<f32>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        Self { lr, momentum: 0.0, weight_decay: 0.0, velocity: Vec::new() }
    }

    /// Adds classical momentum.
    pub fn with_momentum(mut self, m: f32) -> Self {
        assert!((0.0..1.0).contains(&m), "momentum must be in [0,1)");
        self.momentum = m;
        self
    }

    /// Adds L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        assert!(wd >= 0.0, "weight decay must be non-negative");
        self.weight_decay = wd;
        self
    }

    /// The current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "learning rate must be positive");
        self.lr = lr;
    }

    /// The momentum coefficient (0 for plain SGD).
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// The L2 weight-decay coefficient.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// The velocity buffers, in parameter visit order. Empty until the
    /// first [`Sgd::step`] touches each parameter.
    pub fn velocity(&self) -> &[Tensor<f32>] {
        &self.velocity
    }

    /// Replaces the velocity buffers wholesale (checkpoint restore).
    /// Shapes are validated lazily on the next [`Sgd::step`], which
    /// asserts each buffer against its parameter.
    pub fn set_velocity(&mut self, velocity: Vec<Tensor<f32>>) {
        self.velocity = velocity;
    }

    /// Applies one update step: `W ← W − η·(∇W + wd·W)` with momentum,
    /// then leaves gradients untouched (call
    /// [`Sequential::zero_grad`] separately, matching the usual
    /// zero-grad / backward / step cycle).
    pub fn step(&mut self, model: &mut Sequential) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut idx = 0usize;
        model.visit_params(&mut |p, g| {
            if velocity.len() == idx {
                velocity.push(Tensor::zeros(p.shape()));
            }
            let v = &mut velocity[idx];
            assert_eq!(v.shape(), p.shape(), "model/optimizer parameter order changed");
            let (ps, gs, vs) = (p.as_mut_slice(), g.as_slice(), v.as_mut_slice());
            for i in 0..ps.len() {
                let grad = gs[i] + wd * ps[i];
                vs[i] = momentum * vs[i] + grad;
                ps[i] -= lr * vs[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer};

    fn one_param_model(w0: f32) -> Sequential {
        let mut d = Dense::new(1, 1, 0);
        *d.weights_mut() = Tensor::from_vec(&[1, 1], vec![w0]);
        *d.bias_mut() = Tensor::from_vec(&[1], vec![0.0]);
        Sequential::new(vec![Layer::Dense(d)])
    }

    fn get_w(m: &mut Sequential) -> f32 {
        let mut w = 0.0;
        let mut first = true;
        m.visit_params(&mut |p, _| {
            if first {
                w = p.as_slice()[0];
                first = false;
            }
        });
        w
    }

    #[test]
    fn plain_sgd_step() {
        let mut m = one_param_model(1.0);
        // loss = w * 2.0 (x=2): dL/dw = 2
        let y = m.forward(&Tensor::from_vec(&[1, 1], vec![2.0]), true);
        m.backward(&Tensor::ones(y.shape()));
        let mut sgd = Sgd::new(0.1);
        sgd.step(&mut m);
        assert!((get_w(&mut m) - (1.0 - 0.1 * 2.0)).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates() {
        let mut m = one_param_model(0.0);
        let mut sgd = Sgd::new(0.1).with_momentum(0.5);
        // Two steps with constant gradient 1: v1=1, v2=1.5 -> w = -(0.1 + 0.15)
        for _ in 0..2 {
            m.zero_grad();
            let y = m.forward(&Tensor::from_vec(&[1, 1], vec![1.0]), true);
            m.backward(&Tensor::ones(y.shape()));
            sgd.step(&mut m);
        }
        assert!((get_w(&mut m) + 0.25).abs() < 1e-5, "w={}", get_w(&mut m));
    }

    #[test]
    fn weight_decay_shrinks() {
        let mut m = one_param_model(1.0);
        let mut sgd = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero gradient, decay only: w <- w - lr*wd*w = 0.95
        m.zero_grad();
        sgd.step(&mut m);
        assert!((get_w(&mut m) - 0.95).abs() < 1e-6);
    }

    #[test]
    fn gradient_descent_converges_quadratic() {
        // Minimize (w*1 - 3)^2 via our Dense layer + manual loss grad.
        let mut m = one_param_model(0.0);
        let mut sgd = Sgd::new(0.2);
        for _ in 0..100 {
            m.zero_grad();
            let y = m.forward(&Tensor::from_vec(&[1, 1], vec![1.0]), true);
            let err = y.as_slice()[0] - 3.0;
            m.backward(&Tensor::from_vec(&[1, 1], vec![2.0 * err]));
            sgd.step(&mut m);
        }
        // Both w and b learn; the model output is what converges to 3.
        let y = m.forward(&Tensor::from_vec(&[1, 1], vec![1.0]), false);
        assert!((y.as_slice()[0] - 3.0).abs() < 1e-3, "y={}", y.as_slice()[0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
