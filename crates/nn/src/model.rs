//! Sequential model composition.

use crate::layers::Layer;
use dk_linalg::{Tensor, Workspace, WorkspaceStats};

/// A feed-forward stack of [`Layer`]s.
///
/// # Example
///
/// ```
/// use dk_nn::layers::{Layer, Dense, Relu};
/// use dk_nn::Sequential;
/// use dk_linalg::Tensor;
///
/// let mut m = Sequential::new(vec![
///     Layer::Dense(Dense::new(4, 8, 1)),
///     Layer::Relu(Relu::new()),
///     Layer::Dense(Dense::new(8, 2, 2)),
/// ]);
/// let y = m.forward(&Tensor::zeros(&[3, 4]), false);
/// assert_eq!(y.shape(), &[3, 2]);
/// ```
#[derive(Debug)]
pub struct Sequential {
    layers: Vec<Layer>,
    name: String,
    /// The model's buffer pool: activations, gradients, caches and
    /// kernel scratch cycle through it, so a warm steady-state
    /// forward/backward performs zero heap allocations. One workspace
    /// per execution lane — cloning a model gives the clone a fresh,
    /// empty pool.
    ws: Workspace,
}

impl Clone for Sequential {
    fn clone(&self) -> Self {
        Self { layers: self.layers.clone(), name: self.name.clone(), ws: Workspace::new() }
    }
}

impl Sequential {
    /// Creates a model from a layer stack.
    pub fn new(layers: Vec<Layer>) -> Self {
        Self { layers, name: "model".to_string(), ws: Workspace::new() }
    }

    /// Creates a named model (the name shows up in reports).
    pub fn named(name: impl Into<String>, layers: Vec<Layer>) -> Self {
        Self { layers, name: name.into(), ws: Workspace::new() }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layer stack (the private executor drives
    /// layers individually).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Full forward pass. Every intermediate activation is recycled
    /// through the model-owned [`Workspace`]; after one warm-up step a
    /// steady-state forward performs zero heap allocations (asserted by
    /// the `alloc_regression` test). Recycle the returned tensor with
    /// [`Sequential::give_back`] to keep the steady state closed.
    pub fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        let Self { layers, ws, .. } = self;
        crate::layers::chain_forward(layers, x, train, ws).unwrap_or_else(|| x.clone())
    }

    /// Full backward pass from the loss gradient; accumulates parameter
    /// gradients and returns the input gradient (recycle it with
    /// [`Sequential::give_back`]).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dloss: &Tensor<f32>) -> Tensor<f32> {
        let Self { layers, ws, .. } = self;
        crate::layers::chain_backward(layers, dloss, ws).unwrap_or_else(|| dloss.clone())
    }

    /// Returns a tensor produced by this model (an output of
    /// [`Sequential::forward`] / [`Sequential::backward`]) to the
    /// buffer pool. Without this, each step leaks one output buffer
    /// out of the pool and the steady state keeps allocating.
    pub fn give_back(&mut self, t: Tensor<f32>) {
        self.ws.give_tensor(t);
    }

    /// Allocation counters of the model's buffer pool.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.ws.stats()
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    /// Visits every *leaf* layer in execution order, descending into
    /// [`crate::layers::Residual`] blocks (main path first, then
    /// shortcut — the same order the private executor walks them).
    pub fn visit_leaf_layers_mut(&mut self, f: &mut dyn FnMut(&mut Layer)) {
        fn walk(layers: &mut [Layer], f: &mut dyn FnMut(&mut Layer)) {
            for l in layers {
                if let Layer::Residual(r) = l {
                    walk(r.main_mut(), f);
                    walk(r.shortcut_mut(), f);
                } else {
                    f(l);
                }
            }
        }
        walk(&mut self.layers, f);
    }

    /// Flattens all accumulated gradients into one vector, in
    /// [`Sequential::visit_params`] order (Algorithm 2 sharding operates
    /// on this layout).
    pub fn grad_vector(&mut self) -> Vec<f32> {
        let mut flat = Vec::new();
        self.visit_params(&mut |_, g| flat.extend_from_slice(g.as_slice()));
        flat
    }

    /// Installs a flat gradient vector produced by
    /// [`Sequential::grad_vector`] (or an aggregate of several) back
    /// into the per-parameter gradient buffers.
    ///
    /// # Panics
    ///
    /// Panics if the vector length does not match the parameter arity.
    pub fn set_grad_vector(&mut self, flat: &[f32]) {
        let mut off = 0;
        self.visit_params(&mut |_, g| {
            let n = g.len();
            g.as_mut_slice().copy_from_slice(&flat[off..off + n]);
            off += n;
        });
        assert_eq!(off, flat.len(), "gradient vector arity changed");
    }

    /// Zeroes all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |_, g| {
            for v in g.as_mut_slice() {
                *v = 0.0;
            }
        });
    }

    /// Total number of trainable scalars.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }

    /// Snapshots all parameters (for update-equivalence tests).
    pub fn snapshot_params(&mut self) -> Vec<Tensor<f32>> {
        let mut out = Vec::new();
        self.visit_params(&mut |p, _| out.push(p.clone()));
        out
    }

    /// Largest absolute difference between this model's parameters and a
    /// snapshot taken earlier.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot arity does not match.
    pub fn max_param_diff(&mut self, snapshot: &[Tensor<f32>]) -> f32 {
        let mut i = 0;
        let mut worst = 0.0f32;
        self.visit_params(&mut |p, _| {
            worst = worst.max(p.max_abs_diff(&snapshot[i]));
            i += 1;
        });
        assert_eq!(i, snapshot.len(), "snapshot arity mismatch");
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Relu};

    fn toy() -> Sequential {
        Sequential::new(vec![
            Layer::Dense(Dense::new(3, 5, 1)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(5, 2, 2)),
        ])
    }

    #[test]
    fn forward_shapes() {
        let mut m = toy();
        let y = m.forward(&Tensor::zeros(&[4, 3]), true);
        assert_eq!(y.shape(), &[4, 2]);
    }

    #[test]
    fn param_count() {
        let mut m = toy();
        // (5*3+5) + (2*5+2) = 20 + 12 = 32
        assert_eq!(m.num_params(), 32);
    }

    #[test]
    fn zero_grad_clears() {
        let mut m = toy();
        let y = m.forward(&Tensor::ones(&[1, 3]), true);
        m.backward(&Tensor::ones(y.shape()));
        let mut nonzero = 0;
        m.visit_params(&mut |_, g| nonzero += g.as_slice().iter().filter(|v| **v != 0.0).count());
        assert!(nonzero > 0);
        m.zero_grad();
        let mut after = 0;
        m.visit_params(&mut |_, g| after += g.as_slice().iter().filter(|v| **v != 0.0).count());
        assert_eq!(after, 0);
    }

    #[test]
    fn full_model_numerical_gradient() {
        let mut m = toy();
        let x = Tensor::from_fn(&[2, 3], |i| (i as f32) * 0.4 - 1.0);
        let y = m.forward(&x, true);
        let dx = m.backward(&Tensor::ones(y.shape()));
        let eps = 1e-2;
        for p in 0..x.len() {
            let mut xp = x.clone();
            xp.as_mut_slice()[p] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[p] -= eps;
            let lp = m.forward(&xp, true).sum();
            let lm = m.forward(&xm, true).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx.as_slice()[p]).abs() < 1e-2, "p={p}");
        }
    }

    #[test]
    fn snapshot_diff() {
        let mut m = toy();
        let snap = m.snapshot_params();
        assert_eq!(m.max_param_diff(&snap), 0.0);
        // Perturb one weight.
        m.visit_params(&mut |p, _| {
            p.as_mut_slice()[0] += 0.5;
        });
        assert!(m.max_param_diff(&snap) >= 0.5);
    }
}
