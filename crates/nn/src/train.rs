//! The plaintext reference training loop.
//!
//! This is the "Raw Data" curve of the paper's Figure 4: ordinary
//! float-domain SGD. DarKnight's private loop (in `dk-core`) is validated
//! against this one — both per-step (weight updates must agree to
//! quantization error) and end-to-end (final accuracy must match to
//! within the paper's reported <0.01 degradation).

use crate::data::Dataset;
use crate::loss::{accuracy, softmax_cross_entropy};
use crate::model::Sequential;
use crate::optim::Sgd;
use dk_linalg::Tensor;

/// Per-epoch training metrics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_loss: Vec<f32>,
    /// Training accuracy per epoch.
    pub epoch_train_acc: Vec<f32>,
    /// Evaluation accuracy per epoch (if an eval set was supplied).
    pub epoch_eval_acc: Vec<f32>,
}

impl TrainReport {
    /// The final evaluation accuracy (or train accuracy when no eval set
    /// was used).
    pub fn final_accuracy(&self) -> f32 {
        self.epoch_eval_acc
            .last()
            .or(self.epoch_train_acc.last())
            .copied()
            .unwrap_or(0.0)
    }
}

/// Runs one training epoch, returning `(mean_loss, train_accuracy)`.
pub fn train_epoch(
    model: &mut Sequential,
    data: &Dataset,
    batch_size: usize,
    sgd: &mut Sgd,
) -> (f32, f32) {
    let mut total_loss = 0.0;
    let mut total_correct = 0.0;
    let mut batches = 0;
    for (x, labels) in data.batches(batch_size) {
        model.zero_grad();
        let logits = model.forward(&x, true);
        let (loss, dlogits) = softmax_cross_entropy(&logits, labels);
        model.backward(&dlogits);
        sgd.step(model);
        total_loss += loss;
        total_correct += accuracy(&logits, labels);
        batches += 1;
    }
    if batches == 0 {
        (0.0, 0.0)
    } else {
        (total_loss / batches as f32, total_correct / batches as f32)
    }
}

/// Evaluates classification accuracy without updating parameters.
pub fn evaluate(model: &mut Sequential, data: &Dataset, batch_size: usize) -> f32 {
    let mut total = 0.0;
    let mut batches = 0;
    for (x, labels) in data.batches(batch_size) {
        let logits = model.forward(&x, false);
        total += accuracy(&logits, labels);
        batches += 1;
    }
    if batches == 0 {
        0.0
    } else {
        total / batches as f32
    }
}

/// Full training run over multiple epochs.
pub fn train(
    model: &mut Sequential,
    train_data: &Dataset,
    eval_data: Option<&Dataset>,
    epochs: usize,
    batch_size: usize,
    sgd: &mut Sgd,
) -> TrainReport {
    let mut report = TrainReport::default();
    for _ in 0..epochs {
        let (loss, train_acc) = train_epoch(model, train_data, batch_size, sgd);
        report.epoch_loss.push(loss);
        report.epoch_train_acc.push(train_acc);
        if let Some(ev) = eval_data {
            report.epoch_eval_acc.push(evaluate(model, ev, batch_size));
        }
    }
    report
}

/// Computes a single-batch forward+loss without mutating gradients, used
/// by equivalence tests.
pub fn batch_loss(model: &mut Sequential, x: &Tensor<f32>, labels: &[usize]) -> f32 {
    let logits = model.forward(x, false);
    softmax_cross_entropy(&logits, labels).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Layer, Relu};

    fn tiny_model(classes: usize, inputs: usize) -> Sequential {
        Sequential::new(vec![
            Layer::Flatten(crate::layers::Flatten::new()),
            Layer::Dense(Dense::new(inputs, 32, 1)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(32, classes, 2)),
        ])
    }

    #[test]
    fn training_reduces_loss() {
        let data = Dataset::synthetic(3, 30, (1, 6, 6), 0.1, 11);
        let mut model = tiny_model(3, 36);
        let mut sgd = Sgd::new(0.1);
        let (first_loss, _) = train_epoch(&mut model, &data, 10, &mut sgd);
        let mut last_loss = first_loss;
        for _ in 0..10 {
            let (l, _) = train_epoch(&mut model, &data, 10, &mut sgd);
            last_loss = l;
        }
        assert!(last_loss < first_loss * 0.5, "first={first_loss} last={last_loss}");
    }

    #[test]
    fn training_reaches_high_accuracy_on_easy_task() {
        let data = Dataset::synthetic(3, 40, (1, 6, 6), 0.05, 12);
        let (train_set, test_set) = data.split(0.8);
        let mut model = tiny_model(3, 36);
        let mut sgd = Sgd::new(0.1).with_momentum(0.9);
        let report = train(&mut model, &train_set, Some(&test_set), 15, 12, &mut sgd);
        assert!(report.final_accuracy() > 0.9, "acc={}", report.final_accuracy());
    }

    #[test]
    fn evaluate_does_not_update() {
        let data = Dataset::synthetic(2, 10, (1, 4, 4), 0.1, 13);
        let mut model = tiny_model(2, 16);
        let snap = model.snapshot_params();
        let _ = evaluate(&mut model, &data, 5);
        assert_eq!(model.max_param_diff(&snap), 0.0);
    }

    #[test]
    fn report_bookkeeping() {
        let data = Dataset::synthetic(2, 10, (1, 4, 4), 0.1, 14);
        let mut model = tiny_model(2, 16);
        let mut sgd = Sgd::new(0.05);
        let report = train(&mut model, &data, Some(&data), 3, 5, &mut sgd);
        assert_eq!(report.epoch_loss.len(), 3);
        assert_eq!(report.epoch_eval_acc.len(), 3);
    }
}
