//! Seeded weight initialization.

use dk_field::FieldRng;
use dk_linalg::Tensor;

/// He (Kaiming) normal initialization: `N(0, sqrt(2/fan_in))`.
///
/// Deterministic given `seed`, so every experiment is reproducible.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn he_normal(shape: &[usize], fan_in: usize, seed: u64) -> Tensor<f32> {
    assert!(fan_in > 0, "fan_in must be positive");
    let std = (2.0f32 / fan_in as f32).sqrt();
    let mut rng = FieldRng::seed_from(seed ^ 0x48_45_5F_49_4E_49_54); // "HE_INIT"
    Tensor::from_fn(shape, |_| rng.normal_f32() * std)
}

/// Xavier/Glorot uniform initialization: `U(±sqrt(6/(fan_in+fan_out)))`.
///
/// # Panics
///
/// Panics if both fans are zero.
pub fn xavier_uniform(shape: &[usize], fan_in: usize, fan_out: usize, seed: u64) -> Tensor<f32> {
    assert!(fan_in + fan_out > 0, "fans must not both be zero");
    let limit = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    let mut rng = FieldRng::seed_from(seed ^ 0x58_41_56_49_45_52); // "XAVIER"
    Tensor::from_fn(shape, |_| rng.uniform_f32(-limit, limit))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_is_deterministic() {
        let a = he_normal(&[4, 4], 16, 99);
        let b = he_normal(&[4, 4], 16, 99);
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn he_std_scales_with_fan_in() {
        let big = he_normal(&[1000], 4, 1);
        let small = he_normal(&[1000], 400, 1);
        let var = |t: &Tensor<f32>| {
            let m = t.mean();
            t.as_slice().iter().map(|v| (v - m).powi(2)).sum::<f32>() / t.len() as f32
        };
        assert!((var(&big) - 0.5).abs() < 0.1, "var={}", var(&big));
        assert!((var(&small) - 0.005).abs() < 0.002, "var={}", var(&small));
    }

    #[test]
    fn xavier_respects_limit() {
        let t = xavier_uniform(&[500], 8, 8, 3);
        let limit = (6.0f32 / 16.0).sqrt();
        assert!(t.as_slice().iter().all(|v| v.abs() <= limit));
        assert!(t.max_abs() > limit * 0.8, "should fill the range");
    }

    #[test]
    fn different_seeds_differ() {
        let a = he_normal(&[16], 4, 1);
        let b = he_normal(&[16], 4, 2);
        assert!(a.max_abs_diff(&b) > 1e-4);
    }
}
