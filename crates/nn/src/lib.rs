//! Neural-network substrate for DarKnight.
//!
//! The paper evaluates on VGG16, ResNet50, MobileNetV1/V2 trained with
//! SGD. This crate provides everything that stack needs, from scratch:
//!
//! * [`layers`] — an enum-based layer zoo (conv, dense, ReLU, max/global
//!   pooling, batch norm, flatten, residual blocks). The enum shape is
//!   deliberate: DarKnight's private executor pattern-matches on layers
//!   to decide which ops are offloaded to masked GPUs (linear) and which
//!   stay inside the TEE (non-linear).
//! * [`model`] — [`model::Sequential`], forward/backward, parameter
//!   visitation.
//! * [`loss`] — softmax cross-entropy.
//! * [`optim`] — SGD with momentum and weight decay.
//! * [`init`] — seeded He/Xavier initialization.
//! * [`data`] — deterministic synthetic image-classification datasets
//!   standing in for CIFAR-10/ImageNet (see DESIGN.md substitutions).
//! * [`train`] — the plaintext reference training loop DarKnight's
//!   private loop is validated against.
//! * [`arch`] — exact ImageNet-scale architecture descriptions (layer
//!   shapes, MACs, activation sizes) of the four paper models, consumed
//!   by the performance model, plus trainable mini variants.
//!
//! # Example
//!
//! ```
//! use dk_nn::arch::mini_vgg;
//! use dk_linalg::Tensor;
//!
//! let mut model = mini_vgg(16, 10, 42);
//! let x = Tensor::<f32>::zeros(&[2, 3, 16, 16]);
//! let logits = model.forward(&x, true);
//! assert_eq!(logits.shape(), &[2, 10]);
//! ```

pub mod arch;
pub mod data;
pub mod init;
pub mod layers;
pub mod loss;
pub mod model;
pub mod optim;
pub mod train;

pub use layers::Layer;
pub use model::Sequential;
