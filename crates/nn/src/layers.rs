//! The layer zoo.
//!
//! [`Layer`] is an *enum*, not a trait object: DarKnight's private
//! executor (in `dk-core`) pattern-matches layers to route bilinear ops
//! (conv, dense) to masked GPU workers and everything else (ReLU, pooling,
//! batch norm — the paper's "non-linear" category) to the TEE. Each
//! variant owns its parameters, gradients and forward caches.

use crate::init;
use dk_linalg::conv::{conv2d_backward_input_ws, conv2d_backward_weight_ws, conv2d_forward_ws};
use dk_linalg::ops;
use dk_linalg::pool::{
    global_avg_pool_backward_ws, global_avg_pool_forward_ws, maxpool2d_backward_ws,
    maxpool2d_forward_ws,
};
use dk_linalg::{
    matmul_a_bt_into, matmul_at_b_into, matmul_into, Conv2dShape, Pool2dShape, Tensor, Workspace,
};

/// Replaces a forward cache slot with a copy of `x`, recycling the
/// previous cache's buffers through the workspace — in steady state
/// the same buffer ping-pongs between the slot and the pool, so
/// caching allocates nothing after warm-up.
fn recache(slot: &mut Option<Tensor<f32>>, x: &Tensor<f32>, ws: &mut Workspace) {
    if let Some(old) = slot.take() {
        ws.give_tensor(old);
    }
    *slot = Some(ws.take_tensor_copy(x.shape(), x.as_slice()));
}

/// A single network layer.
///
/// Construct variants with the provided constructors
/// ([`Conv2d::new`], [`Dense::new`], …) and compose them in a
/// [`crate::model::Sequential`].
#[derive(Debug, Clone)]
pub enum Layer {
    /// 2-D convolution (bilinear — offloadable).
    Conv2d(Conv2d),
    /// Fully-connected layer (bilinear — offloadable).
    Dense(Dense),
    /// ReLU activation (TEE-side).
    Relu(Relu),
    /// Max pooling (TEE-side).
    MaxPool2d(MaxPool2d),
    /// Global average pooling (TEE-side).
    GlobalAvgPool(GlobalAvgPool),
    /// Batch normalization (TEE-side).
    BatchNorm2d(BatchNorm2d),
    /// Reshape `[n, c, h, w] → [n, c·h·w]`.
    Flatten(Flatten),
    /// Residual block with a main path and an optional projection
    /// shortcut (empty shortcut = identity).
    Residual(Residual),
}

impl Layer {
    /// Runs the forward pass, caching whatever the backward pass needs.
    ///
    /// `train` selects batch-statistics (true) vs running-statistics
    /// (false) behaviour in batch norm. Allocating wrapper over
    /// [`Layer::forward_ws`].
    pub fn forward(&mut self, x: &Tensor<f32>, train: bool) -> Tensor<f32> {
        self.forward_ws(x, train, &mut Workspace::new())
    }

    /// Runs the forward pass with every intermediate (output tensor,
    /// im2col scratch, forward caches) drawn from `ws` — the
    /// zero-allocation hot path. Results are bit-for-bit identical to
    /// [`Layer::forward`]; only buffer provenance differs. Give the
    /// returned tensor back to `ws` once it is consumed.
    pub fn forward_ws(&mut self, x: &Tensor<f32>, train: bool, ws: &mut Workspace) -> Tensor<f32> {
        match self {
            Layer::Conv2d(l) => l.forward(x, ws),
            Layer::Dense(l) => l.forward(x, ws),
            Layer::Relu(l) => l.forward(x, ws),
            Layer::MaxPool2d(l) => l.forward(x, ws),
            Layer::GlobalAvgPool(l) => l.forward(x, ws),
            Layer::BatchNorm2d(l) => l.forward(x, train, ws),
            Layer::Flatten(l) => l.forward(x, ws),
            Layer::Residual(l) => l.forward(x, train, ws),
        }
    }

    /// Runs the backward pass, accumulating parameter gradients and
    /// returning the input gradient. Allocating wrapper over
    /// [`Layer::backward_ws`].
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` (no cache).
    pub fn backward(&mut self, dy: &Tensor<f32>) -> Tensor<f32> {
        self.backward_ws(dy, &mut Workspace::new())
    }

    /// Runs the backward pass with intermediates drawn from `ws`.
    /// Bit-for-bit identical to [`Layer::backward`].
    ///
    /// # Panics
    ///
    /// Panics if called before a forward pass (no cache).
    pub fn backward_ws(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        match self {
            Layer::Conv2d(l) => l.backward(dy, ws),
            Layer::Dense(l) => l.backward(dy, ws),
            Layer::Relu(l) => l.backward(dy, ws),
            Layer::MaxPool2d(l) => l.backward(dy, ws),
            Layer::GlobalAvgPool(l) => l.backward(dy, ws),
            Layer::BatchNorm2d(l) => l.backward(dy, ws),
            Layer::Flatten(l) => l.backward(dy, ws),
            Layer::Residual(l) => l.backward(dy, ws),
        }
    }

    /// Visits every `(parameter, gradient)` pair in a fixed order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        match self {
            Layer::Conv2d(l) => {
                f(&mut l.w, &mut l.dw);
                f(&mut l.b, &mut l.db);
            }
            Layer::Dense(l) => {
                f(&mut l.w, &mut l.dw);
                f(&mut l.b, &mut l.db);
            }
            Layer::BatchNorm2d(l) => {
                f(&mut l.gamma, &mut l.dgamma);
                f(&mut l.beta, &mut l.dbeta);
            }
            Layer::Residual(l) => {
                for sub in l.main.iter_mut().chain(l.shortcut.iter_mut()) {
                    sub.visit_params(f);
                }
            }
            _ => {}
        }
    }

    /// True for the bilinear layers DarKnight offloads to GPUs.
    pub fn is_linear(&self) -> bool {
        matches!(self, Layer::Conv2d(_) | Layer::Dense(_))
    }

    /// A short human-readable kind name.
    pub fn kind(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Dense(_) => "dense",
            Layer::Relu(_) => "relu",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::GlobalAvgPool(_) => "global_avg_pool",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::Flatten(_) => "flatten",
            Layer::Residual(_) => "residual",
        }
    }
}

/// 2-D convolution with bias.
#[derive(Debug, Clone)]
pub struct Conv2d {
    shape: Conv2dShape,
    w: Tensor<f32>,
    b: Tensor<f32>,
    dw: Tensor<f32>,
    db: Tensor<f32>,
    x_cache: Option<Tensor<f32>>,
}

impl Conv2d {
    /// Creates a convolution layer with He-initialized weights.
    pub fn new(shape: Conv2dShape, seed: u64) -> Self {
        let fan_in = shape.cg_in() * shape.kernel.0 * shape.kernel.1;
        let w = init::he_normal(&shape.weight_shape(), fan_in, seed);
        Self {
            shape,
            w,
            b: Tensor::zeros(&[shape.out_channels]),
            dw: Tensor::zeros(&shape.weight_shape()),
            db: Tensor::zeros(&[shape.out_channels]),
            x_cache: None,
        }
    }

    /// The convolution geometry.
    pub fn shape(&self) -> &Conv2dShape {
        &self.shape
    }

    /// The weight tensor `[oc, ic/g, kh, kw]`.
    pub fn weights(&self) -> &Tensor<f32> {
        &self.w
    }

    /// Mutable weights (used by the private executor to apply decoded
    /// aggregate updates).
    pub fn weights_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor<f32> {
        &self.b
    }

    /// Mutable bias.
    pub fn bias_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.b
    }

    /// Accumulates an externally-computed weight gradient (DarKnight's
    /// decoded aggregate `∇W`).
    ///
    /// # Panics
    ///
    /// Panics if `dw` has the wrong shape.
    pub fn accumulate_weight_grad(&mut self, dw: &Tensor<f32>) {
        self.dw.add_assign(dw);
    }

    /// Accumulates an externally-computed bias gradient.
    ///
    /// # Panics
    ///
    /// Panics if `db` has the wrong shape.
    pub fn accumulate_bias_grad(&mut self, db: &Tensor<f32>) {
        self.db.add_assign(db);
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let mut y = conv2d_forward_ws(x, &self.w, &self.shape, ws);
        ops::add_bias_nchw(&mut y, self.b.as_slice());
        recache(&mut self.x_cache, x, ws);
        y
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let x = self.x_cache.as_ref().expect("Conv2d::backward before forward");
        let hw = (x.shape()[2], x.shape()[3]);
        let dw = conv2d_backward_weight_ws(dy, x, &self.shape, ws);
        self.dw.add_assign(&dw);
        ws.give_tensor(dw);
        let bg = ops::bias_grad_nchw(dy);
        self.db.add_assign(&Tensor::from_vec(&[bg.len()], bg));
        conv2d_backward_input_ws(dy, &self.w, &self.shape, hw, ws)
    }
}

/// Fully-connected layer `y = x·Wᵀ + b`, weights stored `[out, in]`.
#[derive(Debug, Clone)]
pub struct Dense {
    in_features: usize,
    out_features: usize,
    w: Tensor<f32>,
    b: Tensor<f32>,
    dw: Tensor<f32>,
    db: Tensor<f32>,
    x_cache: Option<Tensor<f32>>,
}

impl Dense {
    /// Creates a dense layer with He-initialized weights.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        let w = init::he_normal(&[out_features, in_features], in_features, seed);
        Self {
            in_features,
            out_features,
            w,
            b: Tensor::zeros(&[out_features]),
            dw: Tensor::zeros(&[out_features, in_features]),
            db: Tensor::zeros(&[out_features]),
            x_cache: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight matrix `[out, in]`.
    pub fn weights(&self) -> &Tensor<f32> {
        &self.w
    }

    /// Mutable weights.
    pub fn weights_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.w
    }

    /// The bias vector.
    pub fn bias(&self) -> &Tensor<f32> {
        &self.b
    }

    /// Mutable bias.
    pub fn bias_mut(&mut self) -> &mut Tensor<f32> {
        &mut self.b
    }

    /// Accumulates an externally-computed weight gradient.
    ///
    /// # Panics
    ///
    /// Panics if `dw` has the wrong shape.
    pub fn accumulate_weight_grad(&mut self, dw: &Tensor<f32>) {
        self.dw.add_assign(dw);
    }

    /// Accumulates an externally-computed bias gradient.
    ///
    /// # Panics
    ///
    /// Panics if `db` has the wrong shape.
    pub fn accumulate_bias_grad(&mut self, db: &Tensor<f32>) {
        self.db.add_assign(db);
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        assert_eq!(x.ndim(), 2, "Dense expects [n, features]");
        assert_eq!(x.shape()[1], self.in_features, "feature count mismatch");
        let n = x.shape()[0];
        let mut y = ws.take_tensor(&[n, self.out_features]);
        matmul_a_bt_into(
            x.as_slice(),
            self.w.as_slice(),
            y.as_mut_slice(),
            n,
            self.in_features,
            self.out_features,
        );
        ops::add_bias_rows(&mut y, self.b.as_slice());
        recache(&mut self.x_cache, x, ws);
        y
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let x = self.x_cache.as_ref().expect("Dense::backward before forward");
        let n = x.shape()[0];
        // dW[out, in] = dyᵀ[out, n] · x[n, in], accumulated via a scratch
        // buffer so the float summation order matches the original.
        let mut dw = ws.take_zeroed::<f32>(self.out_features * self.in_features);
        matmul_at_b_into(
            dy.as_slice(),
            x.as_slice(),
            &mut dw,
            self.out_features,
            n,
            self.in_features,
            ws,
        );
        for (d, &v) in self.dw.as_mut_slice().iter_mut().zip(dw.iter()) {
            *d += v;
        }
        ws.give(dw);
        let bg = ops::bias_grad_rows(dy);
        self.db.add_assign(&Tensor::from_vec(&[bg.len()], bg));
        // dx[n, in] = dy[n, out] · W[out, in]
        let mut dx = ws.take_tensor(&[n, self.in_features]);
        matmul_into(
            dy.as_slice(),
            self.w.as_slice(),
            dx.as_mut_slice(),
            n,
            self.out_features,
            self.in_features,
        );
        dx
    }
}

/// ReLU activation.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    x_cache: Option<Tensor<f32>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        recache(&mut self.x_cache, x, ws);
        let mut y = ws.take_tensor_copy(x.shape(), x.as_slice());
        ops::relu_in_place(&mut y);
        y
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let x = self.x_cache.as_ref().expect("Relu::backward before forward");
        let mut dx = ws.take_tensor(dy.shape());
        ops::relu_backward_into(dy, x, &mut dx);
        dx
    }
}

/// Max pooling.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    shape: Pool2dShape,
    argmax: Vec<usize>,
    in_shape: Vec<usize>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    pub fn new(shape: Pool2dShape) -> Self {
        Self { shape, argmax: Vec::new(), in_shape: Vec::new() }
    }

    /// The pooling geometry.
    pub fn shape(&self) -> &Pool2dShape {
        &self.shape
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let y = maxpool2d_forward_ws(x, &self.shape, ws, &mut self.argmax);
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        y
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        assert!(!self.in_shape.is_empty(), "MaxPool2d::backward before forward");
        maxpool2d_backward_ws(dy, &self.argmax, &self.in_shape, ws)
    }
}

/// Global average pooling `[n, c, h, w] → [n, c]`.
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool {
    in_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pooling layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        global_avg_pool_forward_ws(x, ws)
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        assert!(!self.in_shape.is_empty(), "GlobalAvgPool::backward before forward");
        global_avg_pool_backward_ws(dy, &self.in_shape, ws)
    }
}

/// Batch normalization over the channel dimension of NCHW tensors.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Tensor<f32>,
    beta: Tensor<f32>,
    dgamma: Tensor<f32>,
    dbeta: Tensor<f32>,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // caches
    xhat: Option<Tensor<f32>>,
    inv_std: Vec<f32>,
    /// Per-channel `(mean, var)` of the last train-mode forward, kept so
    /// a pipelined trainer can replay running-stat updates onto the real
    /// model in virtual-batch order (lane clones compute batches out of
    /// order, but the running-average chain is order-sensitive).
    last_batch_stats: Option<(Vec<f32>, Vec<f32>)>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with `γ = 1`, `β = 0`.
    pub fn new(channels: usize) -> Self {
        Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Tensor::ones(&[channels]),
            beta: Tensor::zeros(&[channels]),
            dgamma: Tensor::zeros(&[channels]),
            dbeta: Tensor::zeros(&[channels]),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            xhat: None,
            inv_std: Vec::new(),
            last_batch_stats: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Takes the per-channel `(mean, var)` recorded by the last
    /// train-mode forward (None if none happened since the last take).
    pub fn take_batch_stats(&mut self) -> Option<(Vec<f32>, Vec<f32>)> {
        self.last_batch_stats.take()
    }

    /// Per-channel running `(mean, var)` as maintained by train-mode
    /// forwards — the state a checkpoint must carry for eval-mode
    /// inference to be reproducible after a restart.
    pub fn running_stats(&self) -> (&[f32], &[f32]) {
        (&self.running_mean, &self.running_var)
    }

    /// Overwrites the running statistics wholesale (checkpoint restore).
    /// Unlike [`BatchNorm2d::apply_running_update`] this does *not* blend
    /// with the current values.
    ///
    /// # Panics
    ///
    /// If either slice length differs from the channel count.
    pub fn set_running_stats(&mut self, mean: &[f32], var: &[f32]) {
        assert_eq!(mean.len(), self.channels, "running mean length");
        assert_eq!(var.len(), self.channels, "running var length");
        self.running_mean.copy_from_slice(mean);
        self.running_var.copy_from_slice(var);
    }

    /// Folds one batch's `(mean, var)` into the running statistics —
    /// the exact update a train-mode forward performs, exposed so
    /// out-of-order (pipelined) execution can replay updates in batch
    /// order and end bit-for-bit equal to sequential training.
    pub fn apply_running_update(&mut self, mean: &[f32], var: &[f32]) {
        for ci in 0..self.channels {
            self.running_mean[ci] =
                (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean[ci];
            self.running_var[ci] =
                (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var[ci];
        }
    }

    fn forward(&mut self, x: &Tensor<f32>, train: bool, ws: &mut Workspace) -> Tensor<f32> {
        assert_eq!(x.ndim(), 4, "BatchNorm2d expects NCHW");
        let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.channels, "channel mismatch");
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut y = ws.take_tensor(x.shape());
        if let Some(old) = self.xhat.take() {
            ws.give_tensor(old);
        }
        let mut xhat = ws.take_tensor(x.shape());
        self.inv_std.clear();
        self.inv_std.resize(c, 0.0);
        // Only train-mode forwards record batch statistics (they move
        // into `last_batch_stats`); eval stays allocation-free.
        let (mut batch_means, mut batch_vars) =
            if train { (vec![0.0f32; c], vec![0.0f32; c]) } else { (Vec::new(), Vec::new()) };
        for ci in 0..c {
            let (mean, var) = if train {
                let mut sum = 0.0f32;
                let mut sq = 0.0f32;
                for ni in 0..n {
                    let base = (ni * c + ci) * plane;
                    for &v in &x.as_slice()[base..base + plane] {
                        sum += v;
                        sq += v * v;
                    }
                }
                let mean = sum / count;
                let var = (sq / count - mean * mean).max(0.0);
                batch_means[ci] = mean;
                batch_vars[ci] = var;
                (mean, var)
            } else {
                (self.running_mean[ci], self.running_var[ci])
            };
            let inv_std = 1.0 / (var + self.eps).sqrt();
            self.inv_std[ci] = inv_std;
            let g = self.gamma.as_slice()[ci];
            let b = self.beta.as_slice()[ci];
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let xh = (x.as_slice()[i] - mean) * inv_std;
                    xhat.as_mut_slice()[i] = xh;
                    y.as_mut_slice()[i] = g * xh + b;
                }
            }
        }
        if train {
            self.apply_running_update(&batch_means, &batch_vars);
            self.last_batch_stats = Some((batch_means, batch_vars));
        }
        self.xhat = Some(xhat);
        y
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let xhat = self.xhat.as_ref().expect("BatchNorm2d::backward before forward");
        let (n, c, h, w) = (dy.shape()[0], dy.shape()[1], dy.shape()[2], dy.shape()[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let mut dx = ws.take_tensor(dy.shape());
        for ci in 0..c {
            let g = self.gamma.as_slice()[ci];
            let inv_std = self.inv_std[ci];
            // First pass: per-channel sums.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let d = dy.as_slice()[i];
                    sum_dy += d;
                    sum_dy_xhat += d * xhat.as_slice()[i];
                }
            }
            self.dbeta.as_mut_slice()[ci] += sum_dy;
            self.dgamma.as_mut_slice()[ci] += sum_dy_xhat;
            // Second pass: dx = g*inv_std/count * (count*dy − Σdy − xhat·Σ(dy·xhat))
            let scale = g * inv_std / count;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let d = dy.as_slice()[i];
                    let xh = xhat.as_slice()[i];
                    dx.as_mut_slice()[i] = scale * (count * d - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        dx
    }
}

/// Reshapes `[n, ...] → [n, prod(...)]`, remembering the original shape.
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Self::default()
    }

    fn forward(&mut self, x: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        self.in_shape.clear();
        self.in_shape.extend_from_slice(x.shape());
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        ws.take_tensor_copy(&[n, rest], x.as_slice())
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        assert!(!self.in_shape.is_empty(), "Flatten::backward before forward");
        ws.take_tensor_copy(&self.in_shape, dy.as_slice())
    }
}

/// A residual block: `y = main(x) + shortcut(x)`.
///
/// An empty shortcut is the identity. A projection shortcut (1×1 conv,
/// possibly strided, as in ResNet) is expressed as a one-layer path.
#[derive(Debug, Clone)]
pub struct Residual {
    main: Vec<Layer>,
    shortcut: Vec<Layer>,
}

impl Residual {
    /// Creates a residual block from a main path and a shortcut path.
    ///
    /// # Panics
    ///
    /// Panics if the main path is empty.
    pub fn new(main: Vec<Layer>, shortcut: Vec<Layer>) -> Self {
        assert!(!main.is_empty(), "residual main path must not be empty");
        Self { main, shortcut }
    }

    /// The layers of the main path.
    pub fn main(&self) -> &[Layer] {
        &self.main
    }

    /// Mutable access to the main path (used by the private executor).
    pub fn main_mut(&mut self) -> &mut [Layer] {
        &mut self.main
    }

    /// The layers of the shortcut path (empty = identity).
    pub fn shortcut(&self) -> &[Layer] {
        &self.shortcut
    }

    /// Mutable access to the shortcut path.
    pub fn shortcut_mut(&mut self) -> &mut [Layer] {
        &mut self.shortcut
    }

    fn forward(&mut self, x: &Tensor<f32>, train: bool, ws: &mut Workspace) -> Tensor<f32> {
        let mut m = chain_forward(&mut self.main, x, train, ws).expect("main path nonempty");
        match chain_forward(&mut self.shortcut, x, train, ws) {
            Some(s) => {
                m.add_assign(&s);
                ws.give_tensor(s);
            }
            None => m.add_assign(x),
        }
        m
    }

    fn backward(&mut self, dy: &Tensor<f32>, ws: &mut Workspace) -> Tensor<f32> {
        let mut dm = chain_backward(&mut self.main, dy, ws).expect("main path nonempty");
        match chain_backward(&mut self.shortcut, dy, ws) {
            Some(ds) => {
                dm.add_assign(&ds);
                ws.give_tensor(ds);
            }
            None => dm.add_assign(dy),
        }
        dm
    }
}

/// Runs `layers` forward over `x`, recycling every intermediate
/// activation through the workspace. `None` for an empty chain (the
/// identity — callers fall back to the borrowed input). This is *the*
/// take/give recycle loop — [`crate::Sequential`] and the residual
/// paths both use it, so the recycling discipline lives in one place.
pub(crate) fn chain_forward(
    layers: &mut [Layer],
    x: &Tensor<f32>,
    train: bool,
    ws: &mut Workspace,
) -> Option<Tensor<f32>> {
    let mut cur: Option<Tensor<f32>> = None;
    for l in layers {
        let input = cur.as_ref().unwrap_or(x);
        let next = l.forward_ws(input, train, ws);
        if let Some(prev) = cur.take() {
            ws.give_tensor(prev);
        }
        cur = Some(next);
    }
    cur
}

/// Reverse-order backward analogue of [`chain_forward`].
pub(crate) fn chain_backward(
    layers: &mut [Layer],
    dy: &Tensor<f32>,
    ws: &mut Workspace,
) -> Option<Tensor<f32>> {
    let mut cur: Option<Tensor<f32>> = None;
    for l in layers.iter_mut().rev() {
        let grad = cur.as_ref().unwrap_or(dy);
        let next = l.backward_ws(grad, ws);
        if let Some(prev) = cur.take() {
            ws.give_tensor(prev);
        }
        cur = Some(next);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(
        layer: &mut Layer,
        x: &Tensor<f32>,
        probes: &[usize],
        tol: f32,
    ) {
        // Loss = sum(forward(x)); compare analytic dx against central diff.
        let y = layer.forward(x, true);
        let dy = Tensor::ones(y.shape());
        let dx = layer.backward(&dy);
        let eps = 1e-2;
        for &p in probes {
            let mut xp = x.clone();
            xp.as_mut_slice()[p] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[p] -= eps;
            let lp = layer.forward(&xp, true).sum();
            let lm = layer.forward(&xm, true).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.as_slice()[p]).abs() < tol,
                "probe {p}: num={num} ana={}",
                dx.as_slice()[p]
            );
        }
    }

    #[test]
    fn conv_layer_forward_backward_shapes() {
        let mut l = Layer::Conv2d(Conv2d::new(Conv2dShape::simple(3, 8, 3, 1, 1), 1));
        let x = Tensor::from_fn(&[2, 3, 8, 8], |i| (i % 13) as f32 * 0.1 - 0.5);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        let dx = l.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn conv_layer_input_gradient_numerical() {
        let mut l = Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 3, 3, 1, 1), 2));
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| ((i * 3 + 1) % 11) as f32 * 0.1 - 0.4);
        finite_diff_check(&mut l, &x, &[0, 7, 23, 49], 1e-2);
    }

    #[test]
    fn dense_layer_matches_manual() {
        let mut d = Dense::new(3, 2, 7);
        // Overwrite weights with known values.
        *d.weights_mut() = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        *d.bias_mut() = Tensor::from_vec(&[2], vec![0.5, -0.5]);
        let mut l = Layer::Dense(d);
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 0.0, -1.0]);
        let y = l.forward(&x, true);
        // y0 = 1 - 3 + 0.5 = -1.5 ; y1 = 4 - 6 - 0.5 = -2.5
        assert_eq!(y.as_slice(), &[-1.5, -2.5]);
    }

    #[test]
    fn dense_gradient_numerical() {
        let mut l = Layer::Dense(Dense::new(4, 3, 9));
        let x = Tensor::from_fn(&[2, 4], |i| (i as f32) * 0.3 - 1.0);
        finite_diff_check(&mut l, &x, &[0, 3, 5, 7], 1e-2);
    }

    #[test]
    fn dense_weight_gradient_accumulates() {
        let mut d = Dense::new(2, 2, 3);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 2.0]);
        let mut l = Layer::Dense(d.clone());
        let y = l.forward(&x, true);
        l.backward(&Tensor::ones(y.shape()));
        l.backward(&Tensor::ones(y.shape())); // accumulate twice
        let mut grads = Vec::new();
        l.visit_params(&mut |_, g| grads.push(g.clone()));
        // dW = dyᵀ x twice = 2 * [[1,2],[1,2]]
        assert_eq!(grads[0].as_slice(), &[2.0, 4.0, 2.0, 4.0]);
        // keep clippy quiet about the clone above
        let _ = &mut d;
    }

    #[test]
    fn relu_layer_roundtrip() {
        let mut l = Layer::Relu(Relu::new());
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = l.backward(&Tensor::ones(&[4]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn batchnorm_normalizes_in_train_mode() {
        let mut l = Layer::BatchNorm2d(BatchNorm2d::new(2));
        let x = Tensor::from_fn(&[4, 2, 3, 3], |i| (i % 7) as f32 * 2.0 + 1.0);
        let y = l.forward(&x, true);
        // Per-channel mean ~0, var ~1 after normalization.
        let (n, c, plane) = (4, 2, 9);
        for ci in 0..c {
            let mut sum = 0.0;
            let mut sq = 0.0;
            for ni in 0..n {
                for p in 0..plane {
                    let v = y.as_slice()[(ni * c + ci) * plane + p];
                    sum += v;
                    sq += v * v;
                }
            }
            let count = (n * plane) as f32;
            let mean = sum / count;
            let var = sq / count - mean * mean;
            assert!(mean.abs() < 1e-4, "mean={mean}");
            assert!((var - 1.0).abs() < 1e-2, "var={var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut ws = Workspace::new();
        let x = Tensor::from_fn(&[8, 1, 2, 2], |i| i as f32);
        // Train a few times to populate running stats.
        for _ in 0..50 {
            bn.forward(&x, true, &mut ws);
        }
        let y_eval = bn.forward(&x, false, &mut ws);
        let y_train = bn.forward(&x, true, &mut ws);
        // Same input: eval path should now closely match train path.
        assert!(y_eval.max_abs_diff(&y_train) < 0.2);
    }

    #[test]
    fn batchnorm_gradient_numerical() {
        let mut l = Layer::BatchNorm2d(BatchNorm2d::new(2));
        let x = Tensor::from_fn(&[2, 2, 2, 2], |i| ((i * 5 + 2) % 9) as f32 * 0.25);
        // Loss = sum(y * mask) to break the symmetry (sum(y) has zero grad
        // through normalization).
        let y = l.forward(&x, true);
        let mask = Tensor::from_fn(y.shape(), |i| if i % 3 == 0 { 1.0 } else { -0.5 });
        let dx = l.backward(&mask);
        let eps = 1e-2;
        for p in [0usize, 5, 9, 15] {
            let mut xp = x.clone();
            xp.as_mut_slice()[p] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[p] -= eps;
            let lp: f32 = l
                .forward(&xp, true)
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let lm: f32 = l
                .forward(&xm, true)
                .as_slice()
                .iter()
                .zip(mask.as_slice())
                .map(|(a, b)| a * b)
                .sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx.as_slice()[p]).abs() < 1e-2, "p={p} num={num} ana={}", dx.as_slice()[p]);
        }
    }

    #[test]
    fn flatten_roundtrip() {
        let mut l = Layer::Flatten(Flatten::new());
        let x = Tensor::from_fn(&[2, 3, 2, 2], |i| i as f32);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), &[2, 12]);
        let dx = l.backward(&y);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dx.as_slice(), x.as_slice());
    }

    #[test]
    fn residual_identity_adds_input() {
        // main = ReLU, shortcut = identity: y = relu(x) + x.
        let mut l = Layer::Residual(Residual::new(vec![Layer::Relu(Relu::new())], vec![]));
        let x = Tensor::from_vec(&[1, 1, 1, 2], vec![-2.0, 3.0]);
        let y = l.forward(&x, true);
        assert_eq!(y.as_slice(), &[-2.0, 6.0]);
        let dx = l.backward(&Tensor::ones(y.shape()));
        // d/dx (relu(x) + x): 1 for x<0, 2 for x>0.
        assert_eq!(dx.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn residual_projection_shortcut_shapes() {
        let main = vec![
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(4, 8, 3, 2, 1), 10)),
            Layer::Relu(Relu::new()),
        ];
        let shortcut = vec![Layer::Conv2d(Conv2d::new(Conv2dShape::simple(4, 8, 1, 2, 0), 11))];
        let mut l = Layer::Residual(Residual::new(main, shortcut));
        let x = Tensor::from_fn(&[1, 4, 8, 8], |i| (i % 5) as f32 * 0.1);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        let dx = l.backward(&Tensor::ones(y.shape()));
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn visit_params_counts() {
        let mut count = 0;
        let mut l = Layer::Residual(Residual::new(
            vec![
                Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 2, 3, 1, 1), 1)),
                Layer::BatchNorm2d(BatchNorm2d::new(2)),
            ],
            vec![Layer::Conv2d(Conv2d::new(Conv2dShape::simple(2, 2, 1, 1, 0), 2))],
        ));
        l.visit_params(&mut |_, _| count += 1);
        // conv(w,b) + bn(gamma,beta) + conv(w,b) = 6
        assert_eq!(count, 6);
    }

    #[test]
    fn is_linear_classification() {
        assert!(Layer::Conv2d(Conv2d::new(Conv2dShape::simple(1, 1, 1, 1, 0), 0)).is_linear());
        assert!(Layer::Dense(Dense::new(1, 1, 0)).is_linear());
        assert!(!Layer::Relu(Relu::new()).is_linear());
        assert!(!Layer::BatchNorm2d(BatchNorm2d::new(1)).is_linear());
    }
}
