//! Architecture descriptions of the paper's evaluation models.
//!
//! Two kinds of artifacts live here:
//!
//! 1. **[`ArchSpec`]** — exact layer-by-layer descriptions (shapes, MACs,
//!    activation element counts) of the ImageNet-scale models the paper
//!    times: VGG16, ResNet50, MobileNetV1 and MobileNetV2 at 224×224.
//!    These drive the performance model (`dk-perf`); they are *not*
//!    executable networks. Parameter totals are asserted against the
//!    published counts (138.4 M, 25.6 M, 4.2 M, 3.5 M) in tests.
//!
//! 2. **Mini builders** ([`mini_vgg`], [`mini_resnet`],
//!    [`mini_mobilenet`]) — small trainable versions with the same layer
//!    *types* (plain conv stacks, residual bottlenecks with batch norm,
//!    depthwise-separable convolutions), used for the functional and
//!    accuracy experiments (paper Fig. 4) where an actual network must
//!    train on a CPU in this environment.

use crate::layers::{
    BatchNorm2d, Conv2d, Dense, Flatten, GlobalAvgPool, Layer, MaxPool2d, Relu, Residual,
};
use crate::model::Sequential;
use dk_linalg::{Conv2dShape, Pool2dShape};

/// The operation class a spec layer belongs to, mirroring the paper's
/// linear / non-linear execution split (Table 3 categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecKind {
    /// Convolution (bilinear, offloaded).
    Conv,
    /// Fully-connected (bilinear, offloaded).
    Dense,
    /// ReLU (TEE).
    Relu,
    /// Max pooling (TEE).
    MaxPool,
    /// Batch normalization (TEE; the paper calls out that BN cannot be
    /// offloaded and dominates ResNet/MobileNet non-linear time).
    BatchNorm,
    /// Global average pooling (TEE).
    AvgPool,
    /// Residual addition (TEE, cheap).
    Add,
}

/// Shape/cost description of one layer of an ImageNet-scale model.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Human-readable name, e.g. `conv3_2`.
    pub name: String,
    /// Operation class.
    pub kind: SpecKind,
    /// Forward multiply-accumulate count (zero for non-linear ops).
    pub fwd_macs: u64,
    /// Input-gradient MACs of the backward pass.
    pub bwd_data_macs: u64,
    /// Weight-gradient MACs of the backward pass.
    pub bwd_weight_macs: u64,
    /// Elements processed by a non-linear op (zero for linear ops).
    pub nonlinear_elems: u64,
    /// Trainable parameter count.
    pub weight_elems: u64,
    /// Input activation element count (per sample).
    pub in_elems: u64,
    /// Output activation element count (per sample).
    pub out_elems: u64,
    /// Output channels (conv) or output features (dense); 0 otherwise.
    pub out_channels: usize,
    /// Convolution groups (1 for dense/ungrouped; `in_channels` for
    /// depthwise). Depthwise convs have far lower arithmetic intensity,
    /// which the performance model penalizes on both devices.
    pub groups: usize,
}

/// A full model description.
#[derive(Debug, Clone)]
pub struct ArchSpec {
    /// Model name as used in the paper's tables.
    pub name: String,
    /// Input shape `(c, h, w)`.
    pub input: (usize, usize, usize),
    /// Layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl ArchSpec {
    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_elems).sum()
    }

    /// Total forward linear MACs per sample.
    pub fn total_fwd_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.fwd_macs).sum()
    }

    /// Total backward linear MACs per sample (data + weight terms).
    pub fn total_bwd_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.bwd_data_macs + l.bwd_weight_macs).sum()
    }

    /// Total non-linear elements per sample, optionally filtered by kind.
    pub fn nonlinear_elems(&self, kind: Option<SpecKind>) -> u64 {
        self.layers
            .iter()
            .filter(|l| kind.map_or(l.fwd_macs == 0, |k| l.kind == k))
            .map(|l| l.nonlinear_elems)
            .sum()
    }

    /// Largest single-layer activation (elements per sample); bounds the
    /// enclave working set.
    pub fn max_activation_elems(&self) -> u64 {
        self.layers.iter().map(|l| l.out_elems.max(l.in_elems)).max().unwrap_or(0)
    }

    /// Sum of all layer output activations per sample (feature-map
    /// traffic between TEE and GPUs).
    pub fn total_activation_elems(&self) -> u64 {
        self.layers.iter().map(|l| l.out_elems).sum()
    }

    /// Layers of a given kind.
    pub fn layers_of(&self, kind: SpecKind) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(move |l| l.kind == kind)
    }
}

/// Incremental builder tracking the current activation shape.
struct SpecBuilder {
    cur: (usize, usize, usize),
    layers: Vec<LayerSpec>,
}

impl SpecBuilder {
    fn new(input: (usize, usize, usize)) -> Self {
        Self { cur: input, layers: Vec::new() }
    }

    fn elems(&self) -> u64 {
        (self.cur.0 * self.cur.1 * self.cur.2) as u64
    }

    fn conv(&mut self, name: &str, out_c: usize, k: usize, s: usize, p: usize, groups: usize) {
        let (c, h, w) = self.cur;
        let shape = Conv2dShape::new(c, out_c, (k, k), (s, s), (p, p), groups);
        let (oh, ow) = shape.out_hw((h, w));
        let macs = shape.forward_macs(1, (h, w));
        let weights = (out_c * (c / groups) * k * k + out_c) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Conv,
            fwd_macs: macs,
            bwd_data_macs: macs,
            bwd_weight_macs: macs,
            nonlinear_elems: 0,
            weight_elems: weights,
            in_elems: self.elems(),
            out_elems: (out_c * oh * ow) as u64,
            out_channels: out_c,
            groups,
        });
        self.cur = (out_c, oh, ow);
    }

    fn dense(&mut self, name: &str, out_f: usize) {
        let in_f = self.cur.0 * self.cur.1 * self.cur.2;
        let macs = (in_f * out_f) as u64;
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::Dense,
            fwd_macs: macs,
            bwd_data_macs: macs,
            bwd_weight_macs: macs,
            nonlinear_elems: 0,
            weight_elems: (in_f * out_f + out_f) as u64,
            in_elems: in_f as u64,
            out_elems: out_f as u64,
            out_channels: out_f,
            groups: 1,
        });
        self.cur = (out_f, 1, 1);
    }

    fn pointwise(&mut self, name: &str, kind: SpecKind) {
        let e = self.elems();
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind,
            fwd_macs: 0,
            bwd_data_macs: 0,
            bwd_weight_macs: 0,
            nonlinear_elems: e,
            weight_elems: if kind == SpecKind::BatchNorm { 2 * self.cur.0 as u64 } else { 0 },
            in_elems: e,
            out_elems: e,
            out_channels: 0,
            groups: 1,
        });
    }

    fn relu(&mut self, name: &str) {
        self.pointwise(name, SpecKind::Relu);
    }

    fn bn(&mut self, name: &str) {
        self.pointwise(name, SpecKind::BatchNorm);
    }

    fn add(&mut self, name: &str) {
        self.pointwise(name, SpecKind::Add);
    }

    fn maxpool(&mut self, name: &str, k: usize, s: usize, p: usize) {
        let (c, h, w) = self.cur;
        let shape = Pool2dShape::new((k, k), (s, s), (p, p));
        let (oh, ow) = shape.out_hw((h, w));
        let in_e = self.elems();
        self.cur = (c, oh, ow);
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::MaxPool,
            fwd_macs: 0,
            bwd_data_macs: 0,
            bwd_weight_macs: 0,
            nonlinear_elems: in_e,
            weight_elems: 0,
            in_elems: in_e,
            out_elems: self.elems(),
            out_channels: 0,
            groups: 1,
        });
    }

    fn global_avg_pool(&mut self, name: &str) {
        let (c, _, _) = self.cur;
        let in_e = self.elems();
        self.cur = (c, 1, 1);
        self.layers.push(LayerSpec {
            name: name.to_string(),
            kind: SpecKind::AvgPool,
            fwd_macs: 0,
            bwd_data_macs: 0,
            bwd_weight_macs: 0,
            nonlinear_elems: in_e,
            weight_elems: 0,
            in_elems: in_e,
            out_elems: c as u64,
            out_channels: 0,
            groups: 1,
        });
    }

    fn finish(self, name: &str, input: (usize, usize, usize)) -> ArchSpec {
        ArchSpec { name: name.to_string(), input, layers: self.layers }
    }
}

/// VGG16 at 224×224 (the paper's primary benchmark; ~138.4 M params).
pub fn vgg16() -> ArchSpec {
    let input = (3, 224, 224);
    let mut b = SpecBuilder::new(input);
    let blocks: &[&[usize]] = &[&[64, 64], &[128, 128], &[256, 256, 256], &[512, 512, 512], &[512, 512, 512]];
    for (bi, widths) in blocks.iter().enumerate() {
        for (ci, &wd) in widths.iter().enumerate() {
            let name = format!("conv{}_{}", bi + 1, ci + 1);
            b.conv(&name, wd, 3, 1, 1, 1);
            b.relu(&format!("relu{}_{}", bi + 1, ci + 1));
        }
        b.maxpool(&format!("pool{}", bi + 1), 2, 2, 0);
    }
    b.dense("fc6", 4096);
    b.relu("relu6");
    b.dense("fc7", 4096);
    b.relu("relu7");
    b.dense("fc8", 1000);
    b.finish("VGG16", input)
}

/// ResNet50 at 224×224 (~25.6 M params).
pub fn resnet50() -> ArchSpec {
    let input = (3, 224, 224);
    let mut b = SpecBuilder::new(input);
    b.conv("conv1", 64, 7, 2, 3, 1);
    b.bn("bn1");
    b.relu("relu1");
    b.maxpool("pool1", 3, 2, 1);
    // (stage, out_channels, blocks, stride of first block)
    let stages = [(2usize, 256usize, 3usize, 1usize), (3, 512, 4, 2), (4, 1024, 6, 2), (5, 2048, 3, 2)];
    for (si, out_c, blocks, stride) in stages {
        let mid = out_c / 4;
        for bi in 0..blocks {
            let s = if bi == 0 { stride } else { 1 };
            let prefix = format!("res{si}_{}", bi + 1);
            let entry_shape = b.cur;
            b.conv(&format!("{prefix}_1x1a"), mid, 1, 1, 0, 1);
            b.bn(&format!("{prefix}_bn_a"));
            b.relu(&format!("{prefix}_relu_a"));
            b.conv(&format!("{prefix}_3x3"), mid, 3, s, 1, 1);
            b.bn(&format!("{prefix}_bn_b"));
            b.relu(&format!("{prefix}_relu_b"));
            b.conv(&format!("{prefix}_1x1b"), out_c, 1, 1, 0, 1);
            b.bn(&format!("{prefix}_bn_c"));
            if bi == 0 {
                // Projection shortcut from the block entry shape.
                let exit_shape = b.cur;
                b.cur = entry_shape;
                b.conv(&format!("{prefix}_proj"), out_c, 1, s, 0, 1);
                b.bn(&format!("{prefix}_bn_proj"));
                b.cur = exit_shape;
            }
            b.add(&format!("{prefix}_add"));
            b.relu(&format!("{prefix}_relu_out"));
        }
    }
    b.global_avg_pool("gap");
    b.dense("fc", 1000);
    b.finish("ResNet50", input)
}

/// MobileNetV1 at 224×224 (~4.2 M params) — used in the paper's
/// inference comparison against Slalom (Fig. 6a).
pub fn mobilenet_v1() -> ArchSpec {
    let input = (3, 224, 224);
    let mut b = SpecBuilder::new(input);
    b.conv("conv1", 32, 3, 2, 1, 1);
    b.bn("bn1");
    b.relu("relu1");
    // (out_channels, stride)
    let blocks = [
        (64usize, 1usize),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, (out_c, s)) in blocks.iter().enumerate() {
        let c = b.cur.0;
        b.conv(&format!("dw{}", i + 1), c, 3, *s, 1, c);
        b.bn(&format!("dw{}_bn", i + 1));
        b.relu(&format!("dw{}_relu", i + 1));
        b.conv(&format!("pw{}", i + 1), *out_c, 1, 1, 0, 1);
        b.bn(&format!("pw{}_bn", i + 1));
        b.relu(&format!("pw{}_relu", i + 1));
    }
    b.global_avg_pool("gap");
    b.dense("fc", 1000);
    b.finish("MobileNetV1", input)
}

/// MobileNetV2 at 224×224 (~3.5 M params) — the paper's worst-case
/// training benchmark (depthwise separable convs minimize GPU-friendly
/// linear work).
pub fn mobilenet_v2() -> ArchSpec {
    let input = (3, 224, 224);
    let mut b = SpecBuilder::new(input);
    b.conv("conv1", 32, 3, 2, 1, 1);
    b.bn("bn1");
    b.relu("relu1");
    // (expansion t, out_channels c, repeats n, stride s)
    let cfg = [(1usize, 16usize, 1usize, 1usize), (6, 24, 2, 2), (6, 32, 3, 2), (6, 64, 4, 2), (6, 96, 3, 1), (6, 160, 3, 2), (6, 320, 1, 1)];
    let mut idx = 0;
    for (t, c_out, n, s) in cfg {
        for r in 0..n {
            idx += 1;
            let stride = if r == 0 { s } else { 1 };
            let c_in = b.cur.0;
            let hidden = c_in * t;
            let will_add = stride == 1 && c_in == c_out;
            if t != 1 {
                b.conv(&format!("ir{idx}_expand"), hidden, 1, 1, 0, 1);
                b.bn(&format!("ir{idx}_expand_bn"));
                b.relu(&format!("ir{idx}_expand_relu"));
            }
            b.conv(&format!("ir{idx}_dw"), hidden, 3, stride, 1, hidden);
            b.bn(&format!("ir{idx}_dw_bn"));
            b.relu(&format!("ir{idx}_dw_relu"));
            b.conv(&format!("ir{idx}_project"), c_out, 1, 1, 0, 1);
            b.bn(&format!("ir{idx}_project_bn"));
            if will_add {
                b.add(&format!("ir{idx}_add"));
            }
        }
    }
    b.conv("conv_last", 1280, 1, 1, 0, 1);
    b.bn("bn_last");
    b.relu("relu_last");
    b.global_avg_pool("gap");
    b.dense("fc", 1000);
    b.finish("MobileNetV2", input)
}

/// All four paper models.
pub fn paper_models() -> Vec<ArchSpec> {
    vec![vgg16(), resnet50(), mobilenet_v1(), mobilenet_v2()]
}

// ---------------------------------------------------------------------
// Trainable mini models (functional / accuracy experiments)
// ---------------------------------------------------------------------

/// A small VGG-style plain conv stack for `3×hw×hw` inputs.
///
/// # Panics
///
/// Panics if `hw` is not divisible by 4.
pub fn mini_vgg(hw: usize, classes: usize, seed: u64) -> Sequential {
    assert_eq!(hw % 4, 0, "input size must be divisible by 4");
    let q = hw / 4;
    Sequential::named(
        "MiniVGG",
        vec![
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(3, 16, 3, 1, 1), seed ^ 1)),
            Layer::Relu(Relu::new()),
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(16, 16, 3, 1, 1), seed ^ 2)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(Pool2dShape::square(2))),
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(16, 32, 3, 1, 1), seed ^ 3)),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(Pool2dShape::square(2))),
            Layer::Flatten(Flatten::new()),
            Layer::Dense(Dense::new(32 * q * q, 64, seed ^ 4)),
            Layer::Relu(Relu::new()),
            Layer::Dense(Dense::new(64, classes, seed ^ 5)),
        ],
    )
}

/// A small ResNet-style model with batch norm and two residual blocks.
pub fn mini_resnet(hw: usize, classes: usize, seed: u64) -> Sequential {
    let block = |c_in: usize, c_out: usize, stride: usize, s: u64| {
        let main = vec![
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(c_in, c_out, 3, stride, 1), s ^ 11)),
            Layer::BatchNorm2d(BatchNorm2d::new(c_out)),
            Layer::Relu(Relu::new()),
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(c_out, c_out, 3, 1, 1), s ^ 12)),
            Layer::BatchNorm2d(BatchNorm2d::new(c_out)),
        ];
        let shortcut = if c_in != c_out || stride != 1 {
            vec![
                Layer::Conv2d(Conv2d::new(Conv2dShape::simple(c_in, c_out, 1, stride, 0), s ^ 13)),
                Layer::BatchNorm2d(BatchNorm2d::new(c_out)),
            ]
        } else {
            vec![]
        };
        Layer::Residual(Residual::new(main, shortcut))
    };
    let _ = hw;
    Sequential::named(
        "MiniResNet",
        vec![
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(3, 16, 3, 1, 1), seed ^ 21)),
            Layer::BatchNorm2d(BatchNorm2d::new(16)),
            Layer::Relu(Relu::new()),
            block(16, 16, 1, seed ^ 22),
            Layer::Relu(Relu::new()),
            block(16, 32, 2, seed ^ 23),
            Layer::Relu(Relu::new()),
            Layer::GlobalAvgPool(GlobalAvgPool::new()),
            Layer::Dense(Dense::new(32, classes, seed ^ 24)),
        ],
    )
}

/// A small MobileNet-style model built from depthwise-separable blocks.
pub fn mini_mobilenet(hw: usize, classes: usize, seed: u64) -> Sequential {
    let _ = hw;
    let dw_sep = |c_in: usize, c_out: usize, stride: usize, s: u64| {
        vec![
            Layer::Conv2d(Conv2d::new(
                Conv2dShape::new(c_in, c_in, (3, 3), (stride, stride), (1, 1), c_in),
                s ^ 31,
            )),
            Layer::BatchNorm2d(BatchNorm2d::new(c_in)),
            Layer::Relu(Relu::new()),
            Layer::Conv2d(Conv2d::new(Conv2dShape::simple(c_in, c_out, 1, 1, 0), s ^ 32)),
            Layer::BatchNorm2d(BatchNorm2d::new(c_out)),
            Layer::Relu(Relu::new()),
        ]
    };
    let mut layers = vec![
        Layer::Conv2d(Conv2d::new(Conv2dShape::simple(3, 16, 3, 1, 1), seed ^ 41)),
        Layer::BatchNorm2d(BatchNorm2d::new(16)),
        Layer::Relu(Relu::new()),
    ];
    layers.extend(dw_sep(16, 32, 1, seed ^ 42));
    layers.extend(dw_sep(32, 64, 2, seed ^ 43));
    layers.push(Layer::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Layer::Dense(Dense::new(64, classes, seed ^ 44)));
    Sequential::named("MiniMobileNet", layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_linalg::Tensor;

    #[test]
    fn vgg16_param_count_matches_paper() {
        let spec = vgg16();
        let p = spec.total_params();
        // Paper: "VGG16 with 138 million parameters".
        assert!((138_000_000..139_000_000).contains(&p), "params={p}");
    }

    #[test]
    fn vgg16_macs_are_imagenet_scale() {
        let spec = vgg16();
        let g = spec.total_fwd_macs();
        // Known value ~15.5 GMACs for VGG16 @224.
        assert!((15_000_000_000..16_000_000_000).contains(&g), "macs={g}");
    }

    #[test]
    fn resnet50_param_count() {
        let spec = resnet50();
        let p = spec.total_params();
        // torchvision: 25.557M. (Paper rounds to "23 million".)
        assert!((25_000_000..26_100_000).contains(&p), "params={p}");
    }

    #[test]
    fn resnet50_macs() {
        let g = resnet50().total_fwd_macs();
        // Known ~4.1 GMACs.
        assert!((3_800_000_000..4_400_000_000).contains(&g), "macs={g}");
    }

    #[test]
    fn mobilenet_v1_counts() {
        let spec = mobilenet_v1();
        let p = spec.total_params();
        assert!((4_100_000..4_350_000).contains(&p), "params={p}");
        let g = spec.total_fwd_macs();
        // Known ~569 MMACs.
        assert!((540_000_000..600_000_000).contains(&g), "macs={g}");
    }

    #[test]
    fn mobilenet_v2_counts() {
        let spec = mobilenet_v2();
        let p = spec.total_params();
        // Paper: "MobileNetV2 with 3.4 million parameters".
        assert!((3_300_000..3_600_000).contains(&p), "params={p}");
        let g = spec.total_fwd_macs();
        // Known ~300-320 MMACs.
        assert!((280_000_000..340_000_000).contains(&g), "macs={g}");
    }

    #[test]
    fn mobilenet_linear_fraction_below_vgg() {
        // The paper chose MobileNetV2 as worst case *because* it strips
        // linear work; verify that structural property.
        let vgg = vgg16();
        let mnv2 = mobilenet_v2();
        let ratio = |s: &ArchSpec| s.total_fwd_macs() as f64 / s.nonlinear_elems(None) as f64;
        assert!(ratio(&mnv2) < ratio(&vgg) / 5.0, "vgg={} mnv2={}", ratio(&vgg), ratio(&mnv2));
    }

    #[test]
    fn batchnorm_presence() {
        assert_eq!(vgg16().layers_of(SpecKind::BatchNorm).count(), 0);
        assert!(resnet50().layers_of(SpecKind::BatchNorm).count() > 50);
        assert!(mobilenet_v2().layers_of(SpecKind::BatchNorm).count() > 30);
    }

    #[test]
    fn spec_shapes_flow_correctly() {
        // If any layer disagreed on shapes the builders would panic in
        // Conv2dShape / out_hw; building all four is itself the test.
        for spec in paper_models() {
            assert!(!spec.layers.is_empty());
            assert!(spec.total_fwd_macs() > 0);
        }
    }

    #[test]
    fn mini_models_forward_and_train_shapes() {
        for (mut m, hw) in [
            (mini_vgg(16, 10, 1), 16usize),
            (mini_resnet(16, 10, 2), 16),
            (mini_mobilenet(16, 10, 3), 16),
        ] {
            let x = Tensor::<f32>::from_fn(&[2, 3, hw, hw], |i| ((i % 7) as f32 - 3.0) * 0.1);
            let y = m.forward(&x, true);
            assert_eq!(y.shape(), &[2, 10], "{}", m.name());
            let dx = m.backward(&Tensor::ones(y.shape()));
            assert_eq!(dx.shape(), x.shape(), "{}", m.name());
        }
    }

    #[test]
    fn mini_models_have_modest_size() {
        assert!(mini_vgg(16, 10, 0).num_params() < 50_000);
        assert!(mini_resnet(16, 10, 0).num_params() < 50_000);
        assert!(mini_mobilenet(16, 10, 0).num_params() < 50_000);
    }
}
