//! Softmax cross-entropy loss.

use dk_linalg::ops::softmax_rows;
use dk_linalg::Tensor;

/// Softmax cross-entropy over a `[n, classes]` logit matrix.
///
/// Returns `(mean_loss, dlogits)` where `dlogits` is the gradient of the
/// mean loss with respect to the logits — i.e. `(softmax − onehot)/n`,
/// ready to feed into [`crate::Sequential::backward`].
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size or any label is
/// out of range.
pub fn softmax_cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> (f32, Tensor<f32>) {
    assert_eq!(logits.ndim(), 2, "logits must be [n, classes]");
    let (n, c) = (logits.shape()[0], logits.shape()[1]);
    assert_eq!(labels.len(), n, "one label per sample");
    let probs = softmax_rows(logits);
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    let inv_n = 1.0 / n as f32;
    for (ni, &label) in labels.iter().enumerate() {
        assert!(label < c, "label {label} out of range for {c} classes");
        let p = probs.get(&[ni, label]).max(1e-12);
        loss -= p.ln();
        let g = grad.as_mut_slice();
        g[ni * c + label] -= 1.0;
    }
    for g in grad.as_mut_slice() {
        *g *= inv_n;
    }
    (loss * inv_n, grad)
}

/// Classification accuracy of a logit matrix against labels.
///
/// # Panics
///
/// Panics if `labels.len()` differs from the batch size.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f32 {
    let preds = dk_linalg::ops::argmax_rows(logits);
    assert_eq!(preds.len(), labels.len());
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_low_loss() {
        let logits = Tensor::from_vec(&[1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6, "loss={loss}");
    }

    #[test]
    fn uniform_prediction_log_c_loss() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 3]);
        assert!((loss - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_sums_to_zero_per_row() {
        let logits = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 0.5, -1.0, 0.0, 3.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for ni in 0..2 {
            let s: f32 = grad.as_slice()[ni * 3..(ni + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_numerical() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.3, -0.7]);
        let labels = [1usize, 2];
        let (_, grad) = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3;
        for p in 0..logits.len() {
            let mut lp = logits.clone();
            lp.as_mut_slice()[p] += eps;
            let mut lm = logits.clone();
            lm.as_mut_slice()[p] -= eps;
            let (fp, _) = softmax_cross_entropy(&lp, &labels);
            let (fm, _) = softmax_cross_entropy(&lm, &labels);
            let num = (fp - fm) / (2.0 * eps);
            assert!((num - grad.as_slice()[p]).abs() < 1e-4, "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_label_panics() {
        let logits = Tensor::zeros(&[1, 3]);
        let _ = softmax_cross_entropy(&logits, &[3]);
    }

    #[test]
    fn accuracy_counts() {
        let logits =
            Tensor::from_vec(&[3, 2], vec![0.9, 0.1, 0.2, 0.8, 0.6, 0.4]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }
}
