//! Deterministic synthetic image-classification datasets.
//!
//! The paper's accuracy experiments (Fig. 4) use CIFAR-10; its
//! performance experiments use ImageNet. Neither dataset is available in
//! this environment, so we substitute a seeded synthetic task with the
//! same tensor shapes and the property the experiments actually test:
//! a model that learns on the raw floats should learn equally well on
//! DarKnight's quantized, masked pipeline. Each class is a smooth random
//! prototype image; samples are the prototype plus Gaussian pixel noise,
//! clamped to `[-1, 1]` (bounded activations keep fixed-point
//! quantization well-conditioned, mirroring the paper's normalization).

use dk_field::FieldRng;
use dk_linalg::Tensor;

/// An in-memory labeled image dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    images: Tensor<f32>,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Generates a synthetic classification dataset.
    ///
    /// * `num_classes` — number of distinct prototypes,
    /// * `per_class` — samples generated per class,
    /// * `(c, h, w)` — image shape,
    /// * `noise` — per-pixel Gaussian noise std,
    /// * `seed` — determinism.
    ///
    /// Samples are interleaved across classes so any prefix is roughly
    /// class-balanced.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn synthetic(
        num_classes: usize,
        per_class: usize,
        (c, h, w): (usize, usize, usize),
        noise: f32,
        seed: u64,
    ) -> Self {
        assert!(num_classes > 0 && per_class > 0 && c * h * w > 0);
        let mut rng = FieldRng::seed_from(seed);
        // Smooth prototypes: random low-frequency patterns.
        let mut protos = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let mut proto = vec![0.0f32; c * h * w];
            // Sum of a few random "blobs" per channel.
            for ci in 0..c {
                for _ in 0..4 {
                    let cy = rng.uniform_f32(0.0, h as f32);
                    let cx = rng.uniform_f32(0.0, w as f32);
                    let amp = rng.uniform_f32(-1.0, 1.0);
                    let sigma = rng.uniform_f32(1.0, 1.0 + h as f32 / 3.0);
                    for y in 0..h {
                        for x in 0..w {
                            let d2 = (y as f32 - cy).powi(2) + (x as f32 - cx).powi(2);
                            proto[ci * h * w + y * w + x] += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                        }
                    }
                }
            }
            protos.push(proto);
        }
        let n = num_classes * per_class;
        let mut images = Tensor::zeros(&[n, c, h, w]);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % num_classes;
            labels.push(class);
            let dst = images.batch_item_mut(i);
            for (d, &p) in dst.iter_mut().zip(&protos[class]) {
                *d = (p + rng.normal_f32() * noise).clamp(-1.0, 1.0);
            }
        }
        Self { images, labels, num_classes }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape `[c, h, w]`.
    pub fn image_shape(&self) -> &[usize] {
        &self.images.shape()[1..]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies samples `[start, start+len)` into a batch tensor and label
    /// slice.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the dataset.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor<f32>, &[usize]) {
        assert!(start + len <= self.len(), "batch out of range");
        let mut shape = vec![len];
        shape.extend_from_slice(self.image_shape());
        let mut out = Tensor::zeros(&shape);
        for i in 0..len {
            out.batch_item_mut(i).copy_from_slice(self.images.batch_item(start + i));
        }
        (out, &self.labels[start..start + len])
    }

    /// Iterates over consecutive batches of `batch_size` (the final
    /// partial batch is dropped, as is conventional in training loops).
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Tensor<f32>, &[usize])> {
        let full = self.len() / batch_size;
        (0..full).map(move |b| self.batch(b * batch_size, batch_size))
    }

    /// Splits into `(train, test)` at the given train fraction,
    /// preserving interleaved class balance.
    ///
    /// # Panics
    ///
    /// Panics if the fraction is not in `(0, 1)`.
    pub fn split(&self, train_frac: f32) -> (Dataset, Dataset) {
        assert!(train_frac > 0.0 && train_frac < 1.0);
        let cut = ((self.len() as f32) * train_frac) as usize;
        let take = |range: std::ops::Range<usize>| {
            let mut shape = vec![range.len()];
            shape.extend_from_slice(self.image_shape());
            let mut imgs = Tensor::zeros(&shape);
            let mut labels = Vec::with_capacity(range.len());
            for (i, src) in range.clone().enumerate() {
                imgs.batch_item_mut(i).copy_from_slice(self.images.batch_item(src));
                labels.push(self.labels[src]);
            }
            Dataset { images: imgs, labels, num_classes: self.num_classes }
        };
        (take(0..cut), take(cut..self.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = Dataset::synthetic(4, 8, (3, 8, 8), 0.1, 7);
        let b = Dataset::synthetic(4, 8, (3, 8, 8), 0.1, 7);
        let (ba, _) = a.batch(0, 4);
        let (bb, _) = b.batch(0, 4);
        assert_eq!(ba.as_slice(), bb.as_slice());
    }

    #[test]
    fn shapes_and_balance() {
        let d = Dataset::synthetic(5, 10, (1, 4, 4), 0.05, 1);
        assert_eq!(d.len(), 50);
        assert_eq!(d.image_shape(), &[1, 4, 4]);
        // Interleaved: first 5 labels are 0..5.
        assert_eq!(&d.labels()[..5], &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn values_bounded() {
        let d = Dataset::synthetic(3, 20, (3, 6, 6), 0.5, 2);
        let (b, _) = d.batch(0, d.len());
        assert!(b.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn class_signal_exceeds_noise() {
        // Same-class samples should be closer than cross-class samples.
        let d = Dataset::synthetic(2, 50, (1, 8, 8), 0.1, 3);
        let (imgs, labels) = d.batch(0, d.len());
        let dist = |a: usize, b: usize| -> f32 {
            imgs.batch_item(a)
                .iter()
                .zip(imgs.batch_item(b))
                .map(|(x, y)| (x - y).powi(2))
                .sum()
        };
        // samples 0,2 are class 0; sample 1 is class 1.
        assert_eq!((labels[0], labels[1], labels[2]), (0, 1, 0));
        let within = dist(0, 2);
        let across = dist(0, 1);
        assert!(across > within, "across={across} within={within}");
    }

    #[test]
    fn batches_iterate_fully() {
        let d = Dataset::synthetic(2, 10, (1, 2, 2), 0.1, 4);
        let batches: Vec<_> = d.batches(4).collect();
        assert_eq!(batches.len(), 5); // 20/4
        for (x, y) in &batches {
            assert_eq!(x.shape()[0], 4);
            assert_eq!(y.len(), 4);
        }
    }

    #[test]
    fn split_partitions() {
        let d = Dataset::synthetic(2, 10, (1, 2, 2), 0.1, 5);
        let (tr, te) = d.split(0.8);
        assert_eq!(tr.len(), 16);
        assert_eq!(te.len(), 4);
        assert_eq!(tr.num_classes(), 2);
    }
}
