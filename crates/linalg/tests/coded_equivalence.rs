//! Streaming coded-combine kernels vs the per-MAC-reducing oracle, and
//! serial ≡ pooled bit-identity of their column fan-out.
//!
//! The `coded_combine` family restructures the coding matmul — the
//! whole coefficient matrix against each column chunk of the stacked
//! rows in one pass — but every output element must still see exactly
//! the ascending-`p` reference recurrence of
//! [`dk_linalg::reference::naive_coded_combine_acc`], in both the field
//! and float domains. Property cases sweep:
//!
//! * row counts crossing the register-group (`PGROUP = 16`) and
//!   fan-out-batch (32 rows) boundaries;
//! * the fused-check variant, whose mismatch count must equal the exact
//!   number of corrupted positions;
//! * the rank-1 `coded_axpy_acc` applied in uneven column chunks, which
//!   must reproduce the single-pass combine bit-for-bit;
//! * shapes pushed over `PAR_MAC_THRESHOLD` so the column partitioning
//!   genuinely fans out — pooled results must be bit-identical to
//!   serial at every thread cap, floats included.
//!
//! Everything runs from a single `#[test]` because the thread cap is
//! process-global: the property functions are generated without
//! `#[test]` attributes and driven sequentially.

use dk_field::{FieldRng, P25};
use dk_linalg::reference::naive_coded_combine_acc;
use dk_linalg::{
    coded_axpy_acc, coded_combine_acc, coded_combine_check_acc, coded_combine_into,
    set_max_threads, Scalar,
};
use proptest::prelude::*;

/// Field generator with a sprinkling of zeros (exercises zero-skip).
fn field_gen(seed: u64) -> impl FnMut() -> dk_field::F25 {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P25>();
        if v.value().is_multiple_of(7) {
            dk_field::F25::ZERO
        } else {
            v
        }
    }
}

/// Finite float generator (integers scaled down), also with zeros.
fn float_gen(seed: u64) -> impl FnMut() -> f32 {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P25>().value();
        if v.is_multiple_of(7) {
            0.0
        } else {
            (v % 2001) as f32 * 0.125 - 125.0
        }
    }
}

struct Case<T> {
    coeff: Vec<T>,
    cstride: usize,
    col0: usize,
    x: Vec<Vec<T>>,
    init: Vec<Vec<T>>,
    n: usize,
}

fn make_case<T: Scalar>(
    mut gen: impl FnMut() -> T,
    rows: usize,
    kdim: usize,
    col0: usize,
    n: usize,
) -> Case<T> {
    let cstride = col0 + kdim;
    Case {
        coeff: (0..rows.max(1) * cstride).map(|_| gen()).collect(),
        cstride,
        col0,
        x: (0..kdim).map(|_| (0..n).map(|_| gen()).collect()).collect(),
        init: (0..rows).map(|_| (0..n).map(|_| gen()).collect()).collect(),
        n,
    }
}

/// Streaming accumulate ≡ naive oracle, on non-zero initial contents;
/// `_into` ≡ oracle from zero regardless of stale contents.
fn assert_matches_naive<T: Scalar>(gen: impl FnMut() -> T, rows: usize, kdim: usize, col0: usize, n: usize) {
    let c = make_case(gen, rows, kdim, col0, n);
    let mut got = c.init.clone();
    let mut want = c.init.clone();
    coded_combine_acc(&c.coeff, c.cstride, c.col0, &c.x, &mut got, c.n);
    naive_coded_combine_acc(&c.coeff, c.cstride, c.col0, &c.x, &mut want);
    assert_eq!(got, want, "acc diverged at rows={rows} kdim={kdim} col0={col0} n={n}");
    let mut stale = c.init.clone();
    coded_combine_into(&c.coeff, c.cstride, c.col0, &c.x, &mut stale, c.n);
    let mut fresh: Vec<Vec<T>> = (0..rows).map(|_| vec![T::zero(); n]).collect();
    naive_coded_combine_acc(&c.coeff, c.cstride, c.col0, &c.x, &mut fresh);
    assert_eq!(stale, fresh, "into diverged at rows={rows} kdim={kdim} col0={col0} n={n}");
}

/// Fused check ≡ plain combine on the outputs, and the mismatch count
/// equals the exact number of corrupted positions.
fn assert_check_exact(seed: u64, rows: usize, kdim: usize, n: usize, corrupt: &[usize]) {
    let mut gen = field_gen(seed);
    let c = make_case(&mut gen, rows, kdim, 0, n);
    let w: Vec<dk_field::F25> = (0..kdim).map(|_| gen()).collect();
    let mut pred = vec![vec![dk_field::F25::ZERO; n]];
    naive_coded_combine_acc(&w, kdim, 0, &c.x, &mut pred);
    let mut expect = pred.pop().unwrap();
    let mut got = c.init.clone();
    let mm = coded_combine_check_acc(&c.coeff, c.cstride, 0, &c.x, &mut got, n, &w, &expect);
    assert_eq!(mm, 0, "clean row must verify at rows={rows} kdim={kdim} n={n}");
    let mut want = c.init.clone();
    naive_coded_combine_acc(&c.coeff, c.cstride, 0, &c.x, &mut want);
    assert_eq!(got, want, "fused check changed outputs at rows={rows} kdim={kdim} n={n}");
    // Corrupt a deduplicated set of positions: the count must be exact.
    let mut hit: Vec<usize> = corrupt.iter().map(|&p| p % n).collect();
    hit.sort_unstable();
    hit.dedup();
    for &p in &hit {
        expect[p] += dk_field::F25::ONE;
    }
    let mut got = c.init.clone();
    let mm = coded_combine_check_acc(&c.coeff, c.cstride, 0, &c.x, &mut got, n, &w, &expect);
    assert_eq!(mm, hit.len(), "mismatch count at rows={rows} kdim={kdim} n={n}");
}

/// The rank-1 noise update applied in uneven chunks ≡ one combine pass
/// over the full row.
fn assert_axpy_chunked(seed: u64, rows: usize, kdim: usize, col: usize, n: usize, step: usize) {
    let mut gen = field_gen(seed);
    let c = make_case(&mut gen, rows, kdim.max(col + 1), 0, n);
    let noise: Vec<dk_field::F25> = (0..n).map(|_| gen()).collect();
    let mut want = c.init.clone();
    coded_combine_acc(&c.coeff, c.cstride, col, std::slice::from_ref(&noise), &mut want, n);
    let mut got = c.init.clone();
    let mut j0 = 0;
    let mut bump = 0;
    while j0 < n {
        let j1 = n.min(j0 + step + bump);
        coded_axpy_acc(&c.coeff, c.cstride, col, &noise[j0..j1], &mut got, j0);
        j0 = j1;
        bump = (bump + 3) % 11; // uneven, lane-misaligned chunk widths
    }
    assert_eq!(got, want, "chunked axpy diverged at rows={rows} col={col} n={n} step={step}");
}

/// Serial vs pooled at a genuine fan-out shape, field and float.
fn assert_pooled_matches_serial(seed: u64, rows: usize, kdim: usize, n: usize, threads: usize) {
    fn run<T: Scalar>(gen: impl FnMut() -> T, rows: usize, kdim: usize, n: usize, threads: usize) {
        let c = make_case(gen, rows, kdim, 0, n);
        set_max_threads(1);
        let mut serial = c.init.clone();
        coded_combine_acc(&c.coeff, c.cstride, 0, &c.x, &mut serial, c.n);
        set_max_threads(threads);
        let mut pooled = c.init.clone();
        coded_combine_acc(&c.coeff, c.cstride, 0, &c.x, &mut pooled, c.n);
        assert_eq!(pooled, serial, "pooled ({threads}) diverged at {rows}x{kdim}x{n}");
    }
    run(field_gen(seed), rows, kdim, n, threads);
    run(float_gen(seed ^ 0xF10A7), rows, kdim, n, threads);
    // The fused check under the pool: outputs and count both invariant.
    let mut gen = field_gen(seed ^ 0xC4EC);
    let c = make_case(&mut gen, rows, kdim.min(16), 0, n);
    let w: Vec<dk_field::F25> = (0..c.x.len()).map(|_| gen()).collect();
    let mut expect = vec![vec![dk_field::F25::ZERO; n]];
    naive_coded_combine_acc(&w, c.x.len(), 0, &c.x, &mut expect);
    let mut expect = expect.pop().unwrap();
    expect[n / 2] += dk_field::F25::ONE;
    set_max_threads(1);
    let mut serial = c.init.clone();
    let mm_s = coded_combine_check_acc(&c.coeff, c.cstride, 0, &c.x, &mut serial, n, &w, &expect);
    set_max_threads(threads);
    let mut pooled = c.init.clone();
    let mm_p = coded_combine_check_acc(&c.coeff, c.cstride, 0, &c.x, &mut pooled, n, &w, &expect);
    assert_eq!((mm_p, pooled), (mm_s, serial), "pooled check diverged at {rows}x{kdim}x{n}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Small and boundary-crossing shapes against the oracle: row counts
    // past the 32-row fan-out batch, reduction lengths past the 16-wide
    // register group, lane-misaligned widths, offset coefficient
    // columns. Includes degenerate n and empty row sets.
    fn combine_matches_naive(
        seed in any::<u64>(),
        rows in 0usize..40,
        kdim in 0usize..40,
        col0 in 0usize..3,
        n in 0usize..70,
    ) {
        assert_matches_naive(field_gen(seed), rows, kdim, col0, n);
        assert_matches_naive(float_gen(seed ^ 0xF10A7), rows, kdim, col0, n);
    }

    // The fused integrity check: exact mismatch counting at every
    // width, including positions in the vector tail.
    fn check_counts_are_exact(
        seed in any::<u64>(),
        rows in 1usize..8,
        kdim in 1usize..17,
        n in 1usize..70,
        corrupt in proptest::collection::vec(any::<usize>(), 0..6),
    ) {
        assert_check_exact(seed, rows, kdim, n, &corrupt);
    }

    // Chunked noise application ≡ whole-row pass.
    fn axpy_chunking_is_invisible(
        seed in any::<u64>(),
        rows in 1usize..7,
        kdim in 1usize..8,
        col in 0usize..8,
        n in 1usize..90,
        step in 1usize..40,
    ) {
        assert_axpy_chunked(seed, rows, kdim, col, n, step);
    }

    // Column fan-out: n sized so rows·kdim·n crosses PAR_MAC_THRESHOLD
    // and the pool genuinely partitions columns.
    fn pooled_matches_serial(
        seed in any::<u64>(),
        rows in 2usize..7,
        kdim in 2usize..7,
        extra in 1usize..512,
        threads in 2usize..9,
    ) {
        let n = dk_linalg::PAR_MAC_THRESHOLD / (rows * kdim) + extra;
        assert_pooled_matches_serial(seed, rows, kdim, n, threads);
    }
}

#[test]
fn coded_kernels_match_oracle_and_pool_is_invisible() {
    combine_matches_naive();
    check_counts_are_exact();
    axpy_chunking_is_invisible();
    pooled_matches_serial();
    set_max_threads(0);
}
