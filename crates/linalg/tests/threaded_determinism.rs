//! Serial-vs-threaded determinism.
//!
//! The row-partitioned fan-out must be invisible in the results: no
//! accumulation order ever crosses a partition boundary, so any thread
//! count produces bit-identical output — floats included. This lives in
//! its own integration binary because the thread-cap override is
//! process-global.

use dk_field::{FieldRng, P25};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, set_max_threads, Scalar};

fn data<T: Scalar>(mut gen: impl FnMut() -> T, len: usize) -> Vec<T> {
    (0..len).map(|_| gen()).collect()
}

fn run_all<T: Scalar>(a: &[T], b: &[T], bt: &[T], m: usize, k: usize, n: usize) -> [Vec<T>; 3] {
    [matmul(a, b, m, k, n), matmul_at_b(b, a, n, k, m), matmul_a_bt(a, bt, m, k, n)]
}

#[test]
fn threaded_results_are_bit_identical_to_serial() {
    // 64·160·48 ≈ 491k MACs: comfortably above the threading threshold.
    let (m, k, n) = (64usize, 160, 48);
    let mut rng = FieldRng::seed_from(0xDE7E);
    let af = data(|| (rng.uniform::<P25>().value() % 4001) as f32 * 0.25 - 500.0, m * k);
    let bf = data(|| (rng.uniform::<P25>().value() % 4001) as f32 * 0.125 - 250.0, k * n);
    let btf = data(|| (rng.uniform::<P25>().value() % 4001) as f32 * 0.5 - 1000.0, n * k);
    let aq = data(|| rng.uniform::<P25>(), m * k);
    let bq = data(|| rng.uniform::<P25>(), k * n);
    let btq = data(|| rng.uniform::<P25>(), n * k);

    set_max_threads(1);
    let serial_f = run_all(&af, &bf, &btf, m, k, n);
    let serial_q = run_all(&aq, &bq, &btq, m, k, n);

    for threads in [2, 3, 7] {
        set_max_threads(threads);
        assert_eq!(run_all(&af, &bf, &btf, m, k, n), serial_f, "f32, {threads} threads");
        assert_eq!(run_all(&aq, &bq, &btq, m, k, n), serial_q, "F25, {threads} threads");
    }
    set_max_threads(0);
}
