//! Serial ≡ pooled equivalence of the persistent worker pool.
//!
//! The row-partitioned fan-out must be invisible in the results: the
//! task-index → row-range mapping is fixed by the shape alone, so for
//! every kernel orientation and element type, running under the pool at
//! any thread cap must produce **bit-for-bit** the serial output —
//! floats included (no accumulation order ever crosses a partition
//! boundary). Property cases sweep three regimes:
//!
//! * degenerate shapes (`m/k/n ∈ {0, 1}` among them) that stay on the
//!   serial fallback regardless of the cap;
//! * shapes pushed above the `PAR_MAC_THRESHOLD` fan-out point so the
//!   pool genuinely partitions the rows;
//! * `k > 2^14`, which crosses the `F25` u64-accumulator fold boundary
//!   *inside* each row partition.
//!
//! Everything runs from a single `#[test]` because the thread cap is
//! process-global: the property functions are generated without
//! `#[test]` attributes and driven sequentially, ending with a
//! shutdown/re-init sweep that churns the cap up, down to serial, and
//! back while the pool keeps answering.

use dk_field::{FieldRng, P25, P61};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, matvec, set_max_threads, Scalar};
use proptest::prelude::*;

/// Field generator with a sprinkling of zeros (exercises zero-skip).
fn field_gen<const P: u64>(seed: u64) -> impl FnMut() -> dk_field::Fp<P> {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P>();
        if v.value().is_multiple_of(7) {
            dk_field::Fp::ZERO
        } else {
            v
        }
    }
}

/// Finite float generator (integers scaled down), also with zeros.
fn float_gen(seed: u64) -> impl FnMut() -> f32 {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P25>().value();
        if v.is_multiple_of(7) {
            0.0
        } else {
            (v % 2001) as f32 * 0.125 - 125.0
        }
    }
}

/// All three matmul orientations plus matvec on one operand set.
#[allow(clippy::too_many_arguments)]
fn outputs<T: Scalar>(
    a: &[T],
    b: &[T],
    a_t: &[T],
    b_t: &[T],
    x: &[T],
    m: usize,
    k: usize,
    n: usize,
) -> [Vec<T>; 4] {
    [
        matmul(a, b, m, k, n),
        matmul_at_b(a_t, b, m, k, n),
        matmul_a_bt(a, b_t, m, k, n),
        matvec(a, x, m, k),
    ]
}

/// Computes every kernel serially, then again under `threads` pool
/// lanes, and demands bit-identity.
fn assert_pooled_matches_serial<T: Scalar>(
    mut gen: impl FnMut() -> T,
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    let a: Vec<T> = (0..m * k).map(|_| gen()).collect();
    let b: Vec<T> = (0..k * n).map(|_| gen()).collect();
    let a_t: Vec<T> = (0..k * m).map(|_| gen()).collect();
    let b_t: Vec<T> = (0..n * k).map(|_| gen()).collect();
    let x: Vec<T> = (0..k).map(|_| gen()).collect();
    set_max_threads(1);
    let serial = outputs(&a, &b, &a_t, &b_t, &x, m, k, n);
    set_max_threads(threads);
    assert_eq!(
        outputs(&a, &b, &a_t, &b_t, &x, m, k, n),
        serial,
        "pooled ({threads} threads) diverged from serial at {m}x{k}x{n}"
    );
}

/// One property case across all three element types.
fn check_all_types(seed: u64, m: usize, k: usize, n: usize, threads: usize) {
    assert_pooled_matches_serial(field_gen::<P25>(seed), m, k, n, threads);
    assert_pooled_matches_serial(field_gen::<P61>(seed ^ 0x5EED), m, k, n, threads);
    assert_pooled_matches_serial(float_gen(seed ^ 0xF10A7), m, k, n, threads);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Degenerate and small shapes: the serial fallback must hold its
    // edges (empty outputs, single rows/columns) at any cap.
    fn pooled_matches_serial_small(
        seed in any::<u64>(),
        m in 0usize..4,
        k in 0usize..24,
        n in 0usize..4,
        threads in 2usize..9,
    ) {
        check_all_types(seed, m, k, n, threads);
    }

    // Shapes forced over PAR_MAC_THRESHOLD: the pool genuinely fans
    // out, with enough rows that every lane owns a partition.
    fn pooled_matches_serial_threaded(
        seed in any::<u64>(),
        m in 8usize..33,
        n in 8usize..33,
        extra in 1usize..64,
        threads in 2usize..9,
    ) {
        let k = dk_linalg::PAR_MAC_THRESHOLD / (m * n) + extra;
        check_all_types(seed, m, k, n, threads);
    }

    // k past the F25 fold boundary (2^14 unreduced MACs per u64
    // accumulator), sized so the row fan-out still engages: each lane
    // must place its Barrett folds exactly where the serial path does.
    fn pooled_matches_serial_fold_boundary(
        seed in any::<u64>(),
        m in 4usize..7,
        n in 4usize..7,
        extra in 1usize..128,
        threads in 2usize..9,
    ) {
        let k = (1usize << 14) + extra;
        check_all_types(seed, m, k, n, threads);
    }
}

#[test]
fn pool_is_invisible_and_survives_cap_churn() {
    pooled_matches_serial_small();
    pooled_matches_serial_threaded();
    pooled_matches_serial_fold_boundary();

    // Shutdown/re-init sweep: drop to serial, grow past the physical
    // core count, shrink again — the grow-only pool must keep serving
    // identical results through every transition (idle workers park;
    // a lowered cap just narrows the fan-out).
    let (m, k, n) = (24usize, 512, 24); // 294912 MACs: above the fan-out point
    let mut gen = field_gen::<P25>(0xCAB1E);
    let a: Vec<_> = (0..m * k).map(|_| gen()).collect();
    let b: Vec<_> = (0..k * n).map(|_| gen()).collect();
    set_max_threads(1);
    let want = matmul(&a, &b, m, k, n);
    for cap in [4, 1, 2, 16, 3, 1, 8, 4] {
        set_max_threads(cap);
        assert_eq!(matmul(&a, &b, m, k, n), want, "cap {cap} diverged after churn");
    }
    set_max_threads(0);
}
