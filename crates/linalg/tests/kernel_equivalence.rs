//! Fast-vs-naive kernel equivalence: the non-negotiable invariant of the
//! delayed-reduction rewrite.
//!
//! Every blocked/threaded kernel must produce **bit-for-bit** the same
//! output as the original per-MAC-reducing scalar path preserved in
//! `dk_linalg::reference` — for all three matmul orientations, in the
//! float domain (identical per-element accumulation order) and in both
//! field domains (exact arithmetic: deferring reduction can never change
//! the value mod p). Shapes cover the degenerate `m/k/n ∈ {0, 1}` edges
//! and `k > 2^14`, which crosses the `F25` u64-accumulator fold boundary.

use dk_field::{F25, F61, FieldRng, P25, P61};
use dk_linalg::reference::{naive_matmul, naive_matmul_a_bt, naive_matmul_at_b, naive_matvec};
use dk_linalg::{matmul, matmul_a_bt, matmul_at_b, matvec, Scalar};
use proptest::prelude::*;

/// Checks all three orientations plus matvec on one random shape.
fn assert_equiv<T: Scalar>(mut gen: impl FnMut() -> T, m: usize, k: usize, n: usize) {
    let a: Vec<T> = (0..m * k).map(|_| gen()).collect();
    let b: Vec<T> = (0..k * n).map(|_| gen()).collect();
    assert_eq!(matmul(&a, &b, m, k, n), naive_matmul(&a, &b, m, k, n), "matmul {m}x{k}x{n}");

    let a_t: Vec<T> = (0..k * m).map(|_| gen()).collect();
    assert_eq!(
        matmul_at_b(&a_t, &b, m, k, n),
        naive_matmul_at_b(&a_t, &b, m, k, n),
        "at_b {m}x{k}x{n}"
    );

    let b_t: Vec<T> = (0..n * k).map(|_| gen()).collect();
    assert_eq!(
        matmul_a_bt(&a, &b_t, m, k, n),
        naive_matmul_a_bt(&a, &b_t, m, k, n),
        "a_bt {m}x{k}x{n}"
    );

    let x: Vec<T> = (0..k).map(|_| gen()).collect();
    assert_eq!(matvec(&a, &x, m, k), naive_matvec(&a, &x, m, k), "matvec {m}x{k}");
}

/// Field generator with a deliberate sprinkling of zeros so the
/// zero-skip paths get exercised.
fn field_gen<const P: u64>(seed: u64) -> impl FnMut() -> dk_field::Fp<P> {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P>();
        if v.value().is_multiple_of(7) {
            dk_field::Fp::ZERO
        } else {
            v
        }
    }
}

/// Finite float generator (integers scaled down), also with zeros.
fn float_gen(seed: u64) -> impl FnMut() -> f32 {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P25>().value();
        if v.is_multiple_of(7) {
            0.0
        } else {
            (v % 2001) as f32 * 0.125 - 125.0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_matches_naive_f25(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(field_gen::<P25>(seed), m, k, n);
    }

    #[test]
    fn fast_matches_naive_f61(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(field_gen::<P61>(seed), m, k, n);
    }

    #[test]
    fn fast_matches_naive_f32(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(float_gen(seed), m, k, n);
    }

    /// Wider, flatter shapes: k dominates, n crosses no tile boundary.
    #[test]
    fn fast_matches_naive_tall_k(seed in any::<u64>(), k in 200usize..600) {
        assert_equiv(field_gen::<P25>(seed), 2, k, 3);
        assert_equiv(float_gen(seed ^ 1), 2, k, 3);
    }
}

/// `k` past the `F25` fold boundary (2^14 MACs per accumulator), with
/// worst-case operands `p−1` so the u64 accumulator is driven right up
/// to its overflow margin before the Barrett fold kicks in.
#[test]
fn f25_crosses_fold_boundary_with_worst_case_operands() {
    let k = F25::FOLD_INTERVAL + 21;
    let m = 1;
    let n = 2;
    let a = vec![F25::new(P25 - 1); m * k];
    let b = vec![F25::new(P25 - 1); k * n];
    assert_eq!(matmul(&a, &b, m, k, n), naive_matmul(&a, &b, m, k, n));
    let b_t = vec![F25::new(P25 - 1); n * k];
    assert_eq!(matmul_a_bt(&a, &b_t, m, k, n), naive_matmul_a_bt(&a, &b_t, m, k, n));
    let a_t = vec![F25::new(P25 - 1); k * m];
    assert_eq!(matmul_at_b(&a_t, &b, m, k, n), naive_matmul_at_b(&a_t, &b, m, k, n));
}

/// Same boundary crossing with random data, all orientations.
#[test]
fn f25_crosses_fold_boundary_random() {
    assert_equiv(field_gen::<P25>(0xF01D), 2, (1 << 14) + 1, 2);
}

/// Float non-finite semantics: `matvec` and `matmul_a_bt` never skip
/// zero operands for floats, so `0.0 · ∞ = NaN` propagates exactly as
/// in the original scalar kernels.
#[test]
fn f32_non_finite_propagation_matches_naive() {
    let a = [0.0f32, 1.0];
    let x = [f32::INFINITY, 2.0];
    let fast = matvec(&a, &x, 1, 2);
    let naive = naive_matvec(&a, &x, 1, 2);
    assert_eq!(fast[0].to_bits(), naive[0].to_bits());
    assert!(fast[0].is_nan());

    let b_t = [f32::NEG_INFINITY, 3.0]; // B stored n×k with n = 1
    let fast = matmul_a_bt(&a, &b_t, 1, 2, 1);
    let naive = naive_matmul_a_bt(&a, &b_t, 1, 2, 1);
    assert_eq!(fast[0].to_bits(), naive[0].to_bits());
    assert!(fast[0].is_nan());
}

/// The Mersenne field never folds (pre-folded products), but long chains
/// must still reduce exactly.
#[test]
fn f61_long_chain_exact() {
    let mut gen = field_gen::<P61>(0x61);
    let k = 20_000;
    let a: Vec<F61> = (0..k).map(|_| gen()).collect();
    let b: Vec<F61> = (0..k).map(|_| gen()).collect();
    assert_eq!(matmul(&a, &b, 1, k, 1), naive_matmul(&a, &b, 1, k, 1));
}
