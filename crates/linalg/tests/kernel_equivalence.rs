//! Fast-vs-naive kernel equivalence: the non-negotiable invariant of the
//! delayed-reduction rewrite.
//!
//! Every blocked/threaded kernel must produce **bit-for-bit** the same
//! output as the original per-MAC-reducing scalar path preserved in
//! `dk_linalg::reference` — for all three matmul orientations, in the
//! float domain (identical per-element accumulation order) and in both
//! field domains (exact arithmetic: deferring reduction can never change
//! the value mod p). Shapes cover the degenerate `m/k/n ∈ {0, 1}` edges
//! and `k > 2^14`, which crosses the `F25` u64-accumulator fold boundary.

use dk_field::{F25, F61, FieldRng, P25, P61};
use dk_linalg::im2col::{col2im, col2im_acc_into, im2col, im2col_into, out_hw};
use dk_linalg::reference::{naive_matmul, naive_matmul_a_bt, naive_matmul_at_b, naive_matvec};
use dk_linalg::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_at_b, matmul_at_b_into, matmul_into, matvec,
    matvec_into, Scalar, Workspace,
};
use proptest::prelude::*;

/// A buffer pre-poisoned with nonzero garbage, so the `_into` checks
/// also prove the kernels fully overwrite stale contents.
fn poisoned<T: Scalar>(len: usize) -> Vec<T> {
    (0..len).map(|i| if i % 2 == 0 { T::one() } else { -T::one() }).collect()
}

/// Checks all three orientations plus matvec on one random shape —
/// both the allocating entry points and the `_into` variants (the
/// latter against a reused, garbage-filled workspace buffer).
fn assert_equiv<T: Scalar>(mut gen: impl FnMut() -> T, m: usize, k: usize, n: usize) {
    let mut ws = Workspace::new();
    let a: Vec<T> = (0..m * k).map(|_| gen()).collect();
    let b: Vec<T> = (0..k * n).map(|_| gen()).collect();
    let want = naive_matmul(&a, &b, m, k, n);
    assert_eq!(matmul(&a, &b, m, k, n), want, "matmul {m}x{k}x{n}");
    let mut c = poisoned::<T>(m * n);
    matmul_into(&a, &b, &mut c, m, k, n);
    assert_eq!(c, want, "matmul_into {m}x{k}x{n}");

    let a_t: Vec<T> = (0..k * m).map(|_| gen()).collect();
    let want = naive_matmul_at_b(&a_t, &b, m, k, n);
    assert_eq!(matmul_at_b(&a_t, &b, m, k, n), want, "at_b {m}x{k}x{n}");
    let mut c = poisoned::<T>(m * n);
    matmul_at_b_into(&a_t, &b, &mut c, m, k, n, &mut ws);
    assert_eq!(c, want, "at_b_into {m}x{k}x{n}");

    let b_t: Vec<T> = (0..n * k).map(|_| gen()).collect();
    let want = naive_matmul_a_bt(&a, &b_t, m, k, n);
    assert_eq!(matmul_a_bt(&a, &b_t, m, k, n), want, "a_bt {m}x{k}x{n}");
    let mut c = poisoned::<T>(m * n);
    matmul_a_bt_into(&a, &b_t, &mut c, m, k, n);
    assert_eq!(c, want, "a_bt_into {m}x{k}x{n}");

    let x: Vec<T> = (0..k).map(|_| gen()).collect();
    let want = naive_matvec(&a, &x, m, k);
    assert_eq!(matvec(&a, &x, m, k), want, "matvec {m}x{k}");
    let mut y = poisoned::<T>(m);
    matvec_into(&a, &x, &mut y, m, k);
    assert_eq!(y, want, "matvec_into {m}x{k}");
}

/// im2col/col2im geometry sweep: the `_into` forms against the
/// allocating references, with poisoned scratch for `im2col_into` and
/// a nonzero accumulation base for `col2im_acc_into` (whose contract is
/// `out += col2im(cols)` with contributions in identical order).
fn assert_lowering_equiv<T: Scalar>(
    mut gen: impl FnMut() -> T,
    c: usize,
    hw: (usize, usize),
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
) {
    if hw.0 + 2 * p.0 < k.0 || hw.1 + 2 * p.1 < k.1 {
        return; // kernel does not fit; out_hw would panic
    }
    let input: Vec<T> = (0..c * hw.0 * hw.1).map(|_| gen()).collect();
    let want = im2col(&input, c, hw, k, s, p);
    let mut cols = poisoned::<T>(want.len());
    im2col_into(&input, c, hw, k, s, p, &mut cols);
    assert_eq!(cols, want, "im2col_into c={c} hw={hw:?} k={k:?} s={s:?} p={p:?}");

    let cols_mat: Vec<T> = (0..want.len()).map(|_| gen()).collect();
    let img = col2im(&cols_mat, c, hw, k, s, p);
    // col2im == acc_into onto zeros...
    let mut acc = vec![T::zero(); c * hw.0 * hw.1];
    col2im_acc_into(&cols_mat, c, hw, k, s, p, &mut acc);
    assert_eq!(acc, img, "col2im_acc_into (zero base)");
    // ...and onto a nonzero base it must equal base + col2im, added in
    // the same elementwise order the old triple pass used.
    let base: Vec<T> = (0..c * hw.0 * hw.1).map(|_| gen()).collect();
    let mut acc = base.clone();
    col2im_acc_into(&cols_mat, c, hw, k, s, p, &mut acc);
    let mut want_acc = base;
    for (d, v) in want_acc.iter_mut().zip(img) {
        *d += v;
    }
    assert_eq!(acc, want_acc, "col2im_acc_into (accumulating base)");
    let _ = out_hw(hw, k, s, p);
}

/// Field generator with a deliberate sprinkling of zeros so the
/// zero-skip paths get exercised.
fn field_gen<const P: u64>(seed: u64) -> impl FnMut() -> dk_field::Fp<P> {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P>();
        if v.value().is_multiple_of(7) {
            dk_field::Fp::ZERO
        } else {
            v
        }
    }
}

/// Finite float generator (integers scaled down), also with zeros.
fn float_gen(seed: u64) -> impl FnMut() -> f32 {
    let mut rng = FieldRng::seed_from(seed);
    move || {
        let v = rng.uniform::<P25>().value();
        if v.is_multiple_of(7) {
            0.0
        } else {
            (v % 2001) as f32 * 0.125 - 125.0
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fast_matches_naive_f25(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(field_gen::<P25>(seed), m, k, n);
    }

    #[test]
    fn fast_matches_naive_f61(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(field_gen::<P61>(seed), m, k, n);
    }

    #[test]
    fn fast_matches_naive_f32(seed in any::<u64>(), m in 0usize..6, k in 0usize..24, n in 0usize..6) {
        assert_equiv(float_gen(seed), m, k, n);
    }

    /// Wider, flatter shapes: k dominates, n crosses no tile boundary.
    #[test]
    fn fast_matches_naive_tall_k(seed in any::<u64>(), k in 200usize..600) {
        assert_equiv(field_gen::<P25>(seed), 2, k, 3);
        assert_equiv(float_gen(seed ^ 1), 2, k, 3);
    }

    /// Tall outputs: m crosses the at_b packed-panel boundary (64 rows
    /// per panel) and the thread-partition row split.
    #[test]
    fn fast_matches_naive_tall_m(seed in any::<u64>(), m in 60usize..140) {
        assert_equiv(field_gen::<P25>(seed), m, 5, 3);
        assert_equiv(float_gen(seed ^ 1), m, 5, 3);
    }

    /// im2col/col2im `_into` forms across random geometry, all domains.
    /// (The float generator only produces dyadic values whose sums stay
    /// exactly representable, so even the accumulating-base check is an
    /// exact-equality check in every domain.)
    #[test]
    fn lowering_into_matches_reference(
        seed in any::<u64>(),
        c in 1usize..3,
        h in 1usize..7,
        w in 1usize..7,
        kh in 1usize..4,
        kw in 1usize..4,
        sh in 1usize..3,
        sw in 1usize..3,
        ph in 0usize..2,
        pw in 0usize..2,
    ) {
        assert_lowering_equiv(field_gen::<P25>(seed), c, (h, w), (kh, kw), (sh, sw), (ph, pw));
        assert_lowering_equiv(field_gen::<P61>(seed ^ 1), c, (h, w), (kh, kw), (sh, sw), (ph, pw));
        assert_lowering_equiv(float_gen(seed ^ 2), c, (h, w), (kh, kw), (sh, sw), (ph, pw));
    }
}

/// `k` past the `F25` fold boundary (2^14 MACs per accumulator), with
/// worst-case operands `p−1` so the u64 accumulator is driven right up
/// to its overflow margin before the Barrett fold kicks in.
#[test]
fn f25_crosses_fold_boundary_with_worst_case_operands() {
    let k = F25::FOLD_INTERVAL + 21;
    let m = 1;
    let n = 2;
    let a = vec![F25::new(P25 - 1); m * k];
    let b = vec![F25::new(P25 - 1); k * n];
    assert_eq!(matmul(&a, &b, m, k, n), naive_matmul(&a, &b, m, k, n));
    let b_t = vec![F25::new(P25 - 1); n * k];
    assert_eq!(matmul_a_bt(&a, &b_t, m, k, n), naive_matmul_a_bt(&a, &b_t, m, k, n));
    let a_t = vec![F25::new(P25 - 1); k * m];
    assert_eq!(matmul_at_b(&a_t, &b, m, k, n), naive_matmul_at_b(&a_t, &b, m, k, n));
}

/// Same boundary crossing with random data, all orientations.
#[test]
fn f25_crosses_fold_boundary_random() {
    assert_equiv(field_gen::<P25>(0xF01D), 2, (1 << 14) + 1, 2);
}

/// Float non-finite semantics: `matvec` and `matmul_a_bt` never skip
/// zero operands for floats, so `0.0 · ∞ = NaN` propagates exactly as
/// in the original scalar kernels.
#[test]
fn f32_non_finite_propagation_matches_naive() {
    let a = [0.0f32, 1.0];
    let x = [f32::INFINITY, 2.0];
    let fast = matvec(&a, &x, 1, 2);
    let naive = naive_matvec(&a, &x, 1, 2);
    assert_eq!(fast[0].to_bits(), naive[0].to_bits());
    assert!(fast[0].is_nan());

    let b_t = [f32::NEG_INFINITY, 3.0]; // B stored n×k with n = 1
    let fast = matmul_a_bt(&a, &b_t, 1, 2, 1);
    let naive = naive_matmul_a_bt(&a, &b_t, 1, 2, 1);
    assert_eq!(fast[0].to_bits(), naive[0].to_bits());
    assert!(fast[0].is_nan());
}

/// The Mersenne field never folds (pre-folded products), but long chains
/// must still reduce exactly.
#[test]
fn f61_long_chain_exact() {
    let mut gen = field_gen::<P61>(0x61);
    let k = 20_000;
    let a: Vec<F61> = (0..k).map(|_| gen()).collect();
    let b: Vec<F61> = (0..k).map(|_| gen()).collect();
    assert_eq!(matmul(&a, &b, 1, k, 1), naive_matmul(&a, &b, 1, k, 1));
}
