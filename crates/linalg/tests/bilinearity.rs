//! Property tests for the *bilinearity* of the offloaded kernels —
//! the single mathematical fact DarKnight's masking rests on (§4.1
//! "Key Insight"): for any linear combination of inputs,
//! `op(W, Σ aᵢ·xᵢ) = Σ aᵢ·op(W, xᵢ)` exactly, in the field.
//!
//! If any kernel here ever lost exact linearity (an optimization that
//! reorders modular reductions incorrectly, say), decoding would
//! silently produce garbage; these properties pin that down.

use dk_field::{F25, FieldRng, P25};
use dk_linalg::conv::{conv2d_backward_input, conv2d_backward_weight, conv2d_forward};
use dk_linalg::{matmul, Conv2dShape, Tensor};
use proptest::prelude::*;

fn combine(a: F25, x: &Tensor<F25>, b: F25, y: &Tensor<F25>) -> Tensor<F25> {
    x.zip_map(y, |u, v| a * u + b * v)
}

fn scale(t: &Tensor<F25>, s: F25) -> Tensor<F25> {
    t.map(|v| v * s)
}

fn rng_tensors(seed: u64, shape: &[usize], n: usize) -> Vec<Tensor<F25>> {
    let mut rng = FieldRng::seed_from(seed);
    (0..n).map(|_| Tensor::from_fn(shape, |_| rng.uniform::<P25>())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forward convolution is linear in the input (the forward-pass
    /// masking identity).
    #[test]
    fn conv_forward_linear_in_input(seed in any::<u64>(), a in 1u64..P25, b in 1u64..P25) {
        let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
        let ts = rng_tensors(seed, &[1, 2, 5, 5], 2);
        let w = rng_tensors(seed ^ 1, &shape.weight_shape(), 1).pop().unwrap();
        let (a, b) = (F25::new(a), F25::new(b));
        let lhs = conv2d_forward(&combine(a, &ts[0], b, &ts[1]), &w, &shape);
        let rhs = combine(a, &conv2d_forward(&ts[0], &w, &shape), b, &conv2d_forward(&ts[1], &w, &shape));
        prop_assert_eq!(lhs, rhs);
    }

    /// Depthwise convolution is equally linear (MobileNet path).
    #[test]
    fn depthwise_conv_linear_in_input(seed in any::<u64>(), a in 1u64..P25) {
        let shape = Conv2dShape::depthwise(3, 3, 1, 1);
        let ts = rng_tensors(seed, &[1, 3, 4, 4], 2);
        let w = rng_tensors(seed ^ 2, &shape.weight_shape(), 1).pop().unwrap();
        let a = F25::new(a);
        let lhs = conv2d_forward(&combine(a, &ts[0], F25::ONE, &ts[1]), &w, &shape);
        let rhs = combine(a, &conv2d_forward(&ts[0], &w, &shape), F25::ONE, &conv2d_forward(&ts[1], &w, &shape));
        prop_assert_eq!(lhs, rhs);
    }

    /// The weight-gradient op is bilinear: linear in x̄ (the backward
    /// masking identity of Eq. 4) and linear in δ (the β-combination
    /// identity).
    #[test]
    fn wgrad_bilinear(seed in any::<u64>(), a in 1u64..P25, b in 1u64..P25) {
        let shape = Conv2dShape::simple(2, 2, 3, 1, 1);
        let xs = rng_tensors(seed, &[1, 2, 4, 4], 2);
        let ds = rng_tensors(seed ^ 3, &[1, 2, 4, 4], 2);
        let (a, b) = (F25::new(a), F25::new(b));
        // Linear in x.
        let lhs = conv2d_backward_weight(&ds[0], &combine(a, &xs[0], b, &xs[1]), &shape);
        let rhs = combine(
            a, &conv2d_backward_weight(&ds[0], &xs[0], &shape),
            b, &conv2d_backward_weight(&ds[0], &xs[1], &shape),
        );
        prop_assert_eq!(lhs, rhs);
        // Linear in delta.
        let lhs = conv2d_backward_weight(&combine(a, &ds[0], b, &ds[1]), &xs[0], &shape);
        let rhs = combine(
            a, &conv2d_backward_weight(&ds[0], &xs[0], &shape),
            b, &conv2d_backward_weight(&ds[1], &xs[0], &shape),
        );
        prop_assert_eq!(lhs, rhs);
    }

    /// The data-gradient op is linear in δ (offloaded unencoded, but
    /// still must commute with quantization scaling).
    #[test]
    fn data_grad_linear_in_delta(seed in any::<u64>(), a in 1u64..P25) {
        let shape = Conv2dShape::simple(2, 3, 3, 1, 1);
        let w = rng_tensors(seed ^ 4, &shape.weight_shape(), 1).pop().unwrap();
        let ds = rng_tensors(seed, &[1, 3, 4, 4], 2);
        let a = F25::new(a);
        let lhs = conv2d_backward_input(&combine(a, &ds[0], F25::ONE, &ds[1]), &w, &shape, (4, 4));
        let rhs = combine(
            a, &conv2d_backward_input(&ds[0], &w, &shape, (4, 4)),
            F25::ONE, &conv2d_backward_input(&ds[1], &w, &shape, (4, 4)),
        );
        prop_assert_eq!(lhs, rhs);
    }

    /// Matmul distributes over field addition and commutes with scalar
    /// multiplication (dense-layer masking identity).
    #[test]
    fn matmul_bilinear(seed in any::<u64>(), a in 1u64..P25) {
        let mut rng = FieldRng::seed_from(seed);
        let (m, k, n) = (3usize, 4, 2);
        let w = rng.uniform_vec::<P25>(m * k);
        let x = rng.uniform_vec::<P25>(k * n);
        let y = rng.uniform_vec::<P25>(k * n);
        let a = F25::new(a);
        let xy: Vec<F25> = x.iter().zip(&y).map(|(&u, &v)| a * u + v).collect();
        let lhs = matmul(&w, &xy, m, k, n);
        let wx = matmul(&w, &x, m, k, n);
        let wy = matmul(&w, &y, m, k, n);
        let rhs: Vec<F25> = wx.iter().zip(&wy).map(|(&u, &v)| a * u + v).collect();
        prop_assert_eq!(lhs, rhs);
    }

    /// Scaling the weights scales the conv output (needed because the
    /// TEE quantizes weights and inputs with independent normalizers).
    #[test]
    fn conv_linear_in_weights(seed in any::<u64>(), s in 1u64..P25) {
        let shape = Conv2dShape::simple(2, 2, 3, 1, 0);
        let x = rng_tensors(seed, &[1, 2, 5, 5], 1).pop().unwrap();
        let w = rng_tensors(seed ^ 5, &shape.weight_shape(), 1).pop().unwrap();
        let s = F25::new(s);
        let lhs = conv2d_forward(&x, &scale(&w, s), &shape);
        let rhs = scale(&conv2d_forward(&x, &w, &shape), s);
        prop_assert_eq!(lhs, rhs);
    }

    /// Strided and padded geometries preserve linearity too (the
    /// reductions must not depend on data paths).
    #[test]
    fn strided_conv_linear(seed in any::<u64>(), a in 1u64..P25) {
        let shape = Conv2dShape::simple(1, 2, 3, 2, 1);
        let ts = rng_tensors(seed, &[1, 1, 7, 7], 2);
        let w = rng_tensors(seed ^ 6, &shape.weight_shape(), 1).pop().unwrap();
        let a = F25::new(a);
        let lhs = conv2d_forward(&combine(a, &ts[0], F25::ONE, &ts[1]), &w, &shape);
        let rhs = combine(
            a, &conv2d_forward(&ts[0], &w, &shape),
            F25::ONE, &conv2d_forward(&ts[1], &w, &shape),
        );
        prop_assert_eq!(lhs, rhs);
    }
}
