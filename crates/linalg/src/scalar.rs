//! The element trait shared by the float and field compute domains.

use dk_field::Fp;
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A ring element the generic kernels can compute with.
///
/// Implemented for `f32`, `f64` and every [`dk_field::Fp`] modulus, so the
/// identical im2col/matmul code paths serve both the TEE's float domain and
/// the GPU workers' masked field domain.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
}

impl Scalar for f32 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
}

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
}

impl<const P: u64> Scalar for Fp<P> {
    fn zero() -> Self {
        Fp::ZERO
    }
    fn one() -> Self {
        Fp::ONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    fn generic_dot<T: Scalar>(a: &[T], b: &[T]) -> T {
        let mut acc = T::zero();
        for (&x, &y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    #[test]
    fn dot_works_in_both_domains() {
        let af = [1.0f32, 2.0, 3.0];
        let bf = [4.0f32, 5.0, 6.0];
        assert_eq!(generic_dot(&af, &bf), 32.0);

        let aq: Vec<F25> = [1u64, 2, 3].iter().map(|&v| F25::new(v)).collect();
        let bq: Vec<F25> = [4u64, 5, 6].iter().map(|&v| F25::new(v)).collect();
        assert_eq!(generic_dot(&aq, &bq), F25::new(32));
    }

    #[test]
    fn identities() {
        assert_eq!(f32::zero() + f32::one(), 1.0);
        assert_eq!(F25::zero() + F25::one(), F25::ONE);
    }
}
