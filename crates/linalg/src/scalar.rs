//! The element trait shared by the float and field compute domains.
//!
//! Besides ring arithmetic, every [`Scalar`] exposes an **unreduced
//! accumulator** ([`Scalar::Acc`]) so the dense kernels can delay modular
//! reduction: for the 25-bit DarKnight prime, products of two canonical
//! elements fit in 50 bits, so a `u64` accumulator absorbs 2^14
//! multiply-accumulates before a single Barrett fold; the Mersenne field
//! `2^61 − 1` folds each product with two shift-adds into a `u128`
//! accumulator. Floats use a trivial pass-through accumulator, so one
//! generic kernel serves every domain with zero abstraction cost.

use dk_field::{F25, F61, Fp, P25, P61};
use std::fmt::Debug;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A ring element the generic kernels can compute with.
///
/// Implemented for `f32`, `f64` and DarKnight's two concrete fields
/// ([`F25`], [`F61`]), so the identical im2col/matmul code paths serve
/// both the TEE's float domain and the GPU workers' masked field domain.
pub trait Scalar:
    Copy
    + Debug
    + Default
    + PartialEq
    + Send
    + Sync
    + Add<Output = Self>
    + AddAssign
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// The unreduced dot-product accumulator.
    ///
    /// Kernel contract: starting from [`Scalar::acc_lift`] of a canonical
    /// value, at most [`Scalar::FOLD_INTERVAL`] [`Scalar::mac`] steps may
    /// elapse before [`Scalar::acc_fold`] is called; [`Scalar::acc_finish`]
    /// then produces the exact reduced result. Reduction is *deferred*,
    /// never approximated — the final value is bit-identical to reducing
    /// after every multiply.
    type Acc: Copy + Send + Sync + 'static;

    /// Maximum number of [`Scalar::mac`] steps between folds.
    ///
    /// `usize::MAX` means the accumulator can never overflow at realistic
    /// sizes (floats; the Mersenne field's pre-folded products).
    const FOLD_INTERVAL: usize;

    /// Whether inner-loop kernels should branch around zero operands.
    ///
    /// Skipping `a == 0` terms is a win for field elements (it elides a
    /// multiply + reduce and never changes the exact result) but poisons
    /// float auto-vectorization, so floats keep the branch-free loop.
    /// Per-*row* zero skips (one test covering `n` MACs) stay
    /// unconditional in every domain.
    const SKIP_ZEROS: bool;

    /// Whether arithmetic in this domain is **exact** — i.e. results do
    /// not depend on association order or on where fold boundaries land.
    ///
    /// True for the prime fields (addition mod `p` is associative and
    /// commutative, and [`Scalar::acc_fold`] is value-transparent), false
    /// for floats (rounding makes `(a+b)+c ≠ a+(b+c)` in general).
    /// Kernels may only reassociate reductions — e.g. split a dot product
    /// across independent SIMD lanes and sum the lanes at the end — when
    /// this is set; float paths must preserve the reference recurrence
    /// order bit-for-bit, including NaN/∞ propagation.
    const EXACT: bool;

    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// An empty accumulator.
    fn acc_zero() -> Self::Acc;
    /// Lifts a canonical value into the accumulator domain.
    fn acc_lift(self) -> Self::Acc;
    /// One unreduced multiply-accumulate: `acc + a·b`.
    fn mac(acc: Self::Acc, a: Self, b: Self) -> Self::Acc;
    /// Adds two accumulators: the raw sum, with no reduction.
    ///
    /// Capacity contract: the *combined* number of unreduced products
    /// (and lifts) across both operands since their last folds must
    /// respect [`Scalar::FOLD_INTERVAL`], exactly as if all of them had
    /// landed on a single accumulator. Only the [`Scalar::EXACT`]
    /// kernels may use this (it reassociates the reduction); it exists
    /// so a dot product split across SIMD lanes can merge the lanes
    /// without one full modular reduction per lane.
    fn acc_add(a: Self::Acc, b: Self::Acc) -> Self::Acc;
    /// Compresses the accumulator back into canonical range (a no-op for
    /// floats, a Barrett/Mersenne reduction for fields).
    fn acc_fold(acc: Self::Acc) -> Self::Acc;
    /// Final exact reduction back to the scalar domain.
    fn acc_finish(acc: Self::Acc) -> Self;
}

macro_rules! impl_float_scalar {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            /// Floats accumulate natively; no folding is ever needed.
            type Acc = $t;
            const FOLD_INTERVAL: usize = usize::MAX;
            const SKIP_ZEROS: bool = false;
            const EXACT: bool = false;

            fn zero() -> Self {
                0.0
            }
            fn one() -> Self {
                1.0
            }
            #[inline]
            fn acc_zero() -> Self {
                0.0
            }
            #[inline]
            fn acc_lift(self) -> Self {
                self
            }
            #[inline]
            fn mac(acc: Self, a: Self, b: Self) -> Self {
                acc + a * b
            }
            #[inline]
            fn acc_add(a: Self, b: Self) -> Self {
                a + b
            }
            #[inline]
            fn acc_fold(acc: Self) -> Self {
                acc
            }
            #[inline]
            fn acc_finish(acc: Self) -> Self {
                acc
            }
        }
    )*};
}

impl_float_scalar!(f32, f64);

/// Largest `n` such that `(P−1) + n·(P−1)²` still fits in a `u64` — the
/// number of unreduced MACs a `u64` accumulator absorbs. For
/// `P = 2^25 − 39` this is exactly `2^14 = 16384`.
const fn u64_fold_interval(p: u64) -> usize {
    let max_term = (p - 1) as u128 * (p - 1) as u128;
    ((u64::MAX as u128 - (p - 1) as u128) / max_term) as usize
}

impl Scalar for F25 {
    /// Products of canonical 25-bit elements fit in 50 bits, so a plain
    /// `u64` absorbs 2^14 of them before one Barrett fold.
    type Acc = u64;
    const FOLD_INTERVAL: usize = u64_fold_interval(P25);
    const SKIP_ZEROS: bool = true;
    const EXACT: bool = true;

    fn zero() -> Self {
        Fp::ZERO
    }
    fn one() -> Self {
        Fp::ONE
    }
    #[inline]
    fn acc_zero() -> u64 {
        0
    }
    #[inline]
    fn acc_lift(self) -> u64 {
        self.value()
    }
    #[inline]
    fn mac(acc: u64, a: Self, b: Self) -> u64 {
        // Canonical values are < 2^25, so the product of the low 32 bits
        // is the full product; phrasing it as a 32×32→64 multiply lets
        // the autovectorizer use the packed widening multiply (`pmuludq`)
        // instead of a full 64×64 lane multiply.
        acc + (a.value() as u32 as u64) * (b.value() as u32 as u64)
    }
    #[inline]
    fn acc_add(a: u64, b: u64) -> u64 {
        a + b
    }
    #[inline]
    fn acc_fold(acc: u64) -> u64 {
        F25::reduce_u64(acc).value()
    }
    #[inline]
    fn acc_finish(acc: u64) -> Self {
        F25::reduce_u64(acc)
    }
}

impl Scalar for F61 {
    /// Each 122-bit product is pre-folded to under 2^62 with two
    /// shift-adds (Mersenne reduction), so the `u128` accumulator would
    /// only overflow after ~2^66 MACs — beyond any addressable `k`.
    type Acc = u128;
    const FOLD_INTERVAL: usize = usize::MAX;
    const SKIP_ZEROS: bool = true;
    const EXACT: bool = true;

    fn zero() -> Self {
        Fp::ZERO
    }
    fn one() -> Self {
        Fp::ONE
    }
    #[inline]
    fn acc_zero() -> u128 {
        0
    }
    #[inline]
    fn acc_lift(self) -> u128 {
        self.value() as u128
    }
    #[inline]
    fn mac(acc: u128, a: Self, b: Self) -> u128 {
        let wide = a.value() as u128 * b.value() as u128;
        acc + ((wide & P61 as u128) + (wide >> 61))
    }
    #[inline]
    fn acc_add(a: u128, b: u128) -> u128 {
        a + b
    }
    #[inline]
    fn acc_fold(acc: u128) -> u128 {
        F61::reduce_u128(acc).value() as u128
    }
    #[inline]
    fn acc_finish(acc: u128) -> Self {
        F61::reduce_u128(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generic_dot<T: Scalar>(a: &[T], b: &[T]) -> T {
        let mut acc = T::zero();
        for (&x, &y) in a.iter().zip(b) {
            acc += x * y;
        }
        acc
    }

    #[test]
    fn dot_works_in_both_domains() {
        let af = [1.0f32, 2.0, 3.0];
        let bf = [4.0f32, 5.0, 6.0];
        assert_eq!(generic_dot(&af, &bf), 32.0);

        let aq: Vec<F25> = [1u64, 2, 3].iter().map(|&v| F25::new(v)).collect();
        let bq: Vec<F25> = [4u64, 5, 6].iter().map(|&v| F25::new(v)).collect();
        assert_eq!(generic_dot(&aq, &bq), F25::new(32));
    }

    #[test]
    fn identities() {
        assert_eq!(f32::zero() + f32::one(), 1.0);
        assert_eq!(F25::zero() + F25::one(), F25::ONE);
    }

    #[test]
    fn f25_fold_interval_is_2_pow_14() {
        assert_eq!(F25::FOLD_INTERVAL, 1 << 14);
    }

    #[test]
    fn f25_acc_saturates_exactly_at_interval() {
        // FOLD_INTERVAL worst-case MACs on top of a lifted canonical
        // value must not overflow, and the fold must reduce exactly.
        let big = F25::new(dk_field::P25 - 1);
        let mut acc = big.acc_lift();
        for _ in 0..F25::FOLD_INTERVAL {
            acc = F25::mac(acc, big, big);
        }
        let expect = {
            let mut v = big;
            let sq = big * big;
            for _ in 0..F25::FOLD_INTERVAL {
                v += sq;
            }
            v
        };
        assert_eq!(F25::acc_finish(acc), expect);
        assert_eq!(F25::acc_finish(F25::acc_fold(acc)), expect);
    }

    #[test]
    fn f61_mac_chain_matches_reduced() {
        let a = F61::new(dk_field::P61 - 3);
        let b = F61::new(dk_field::P61 - 7);
        let mut acc = F61::acc_zero();
        let mut expect = F61::ZERO;
        for _ in 0..1000 {
            acc = F61::mac(acc, a, b);
            expect += a * b;
        }
        assert_eq!(F61::acc_finish(acc), expect);
    }
}
