//! Reference kernels: the original scalar implementations that reduce
//! on **every** multiply-accumulate.
//!
//! These are the pre-optimization code paths, preserved verbatim for two
//! jobs:
//!
//! * the oracle in the fast-vs-naive property tests (the fast kernels
//!   must be bit-for-bit identical to these — field arithmetic is exact,
//!   and the float loops accumulate in the same per-element order), and
//! * the "before" side of the `dk_bench` speedup measurements.
//!
//! Do not use them on hot paths; use the [`crate::matmul`] kernels.

use crate::scalar::Scalar;

/// `C[m×n] += A[m×k] · B[k×n]`, reducing after every product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn naive_matmul_acc<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == T::zero() {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
}

/// `C[m×n] = A[m×k] · B[k×n]`, reducing after every product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn naive_matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    naive_matmul_acc(a, b, &mut c, m, k, n);
    c
}

/// `C[m×n] = Aᵀ · B` with `A` stored `k×m`, reducing after every product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn naive_matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    let mut c = vec![T::zero(); m * n];
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &api) in arow.iter().enumerate() {
            if api == T::zero() {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += api * bj;
            }
        }
    }
    c
}

/// `C[m×n] = A · Bᵀ` with `B` stored `n×k`, reducing after every product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn naive_matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    let mut c = vec![T::zero(); m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// `outs[r] += Σ_p coeff[r·cstride + col0 + p] · x[p]` — the coded
/// combine (coefficient rows against separately stored stacked rows),
/// reducing after every product. Oracle for the streaming
/// [`crate::coded`] kernels: same ascending-`p` order, same zero-skip.
///
/// # Panics
///
/// Panics if row lengths differ or `coeff` is too small.
pub fn naive_coded_combine_acc<T: Scalar, S: AsRef<[T]>>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
) {
    for (r, out) in outs.iter_mut().enumerate() {
        for (p, xr) in x.iter().enumerate() {
            let c = coeff[r * cstride + col0 + p];
            if c == T::zero() {
                continue;
            }
            let xr = xr.as_ref();
            assert_eq!(xr.len(), out.len(), "row length");
            for (o, &v) in out.iter_mut().zip(xr) {
                *o += c * v;
            }
        }
    }
}

/// `y[m] = A[m×k] · x[k]`, reducing after every product.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn naive_matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(x.len(), k, "x size");
    (0..m)
        .map(|i| {
            let mut acc = T::zero();
            for (&aij, &xj) in a[i * k..(i + 1) * k].iter().zip(x) {
                acc += aij * xj;
            }
            acc
        })
        .collect()
}
