//! A minimal dense N-dimensional tensor.
//!
//! Row-major (C order) storage; convolutional data uses the NCHW layout.
//! The type is deliberately simple — contiguous `Vec<T>` plus a shape —
//! because every heavy kernel in this workspace operates on flat slices
//! with explicit index math, which is both fast and easy to audit.

use crate::scalar::Scalar;
use std::fmt;

/// A dense, row-major N-dimensional tensor.
///
/// # Example
///
/// ```
/// use dk_linalg::Tensor;
///
/// let mut t = Tensor::<f32>::zeros(&[2, 3]);
/// t.set(&[1, 2], 5.0);
/// assert_eq!(t.get(&[1, 2]), 5.0);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Vec<usize>,
    data: Vec<T>,
}

impl<T: Scalar> Tensor<T> {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![T::zero(); n] }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![T::one(); n] }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<T>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} != shape volume {}", data.len(), n);
        Self { shape: shape.to_vec(), data }
    }

    /// Builds a tensor by evaluating `f` at each flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> T) -> Self {
        let n: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: (0..n).map(&mut f).collect() }
    }

    /// Assembles a tensor from an owned shape vector and data buffer —
    /// the allocation-free construction the
    /// [`crate::workspace::Workspace`] recycling path uses (both vectors
    /// typically come out of a pool).
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape volume.
    pub fn from_parts(shape: Vec<usize>, data: Vec<T>) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(data.len(), n, "buffer length {} != shape volume {}", data.len(), n);
        Self { shape, data }
    }

    /// Disassembles the tensor into its shape vector and data buffer so
    /// both can be returned to a buffer pool.
    pub fn into_parts(self) -> (Vec<usize>, Vec<T>) {
        (self.shape, self.data)
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Flat immutable view of the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Flat mutable view of the elements.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Converts a multi-index to the flat offset.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong arity or is out of bounds.
    #[inline]
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index arity mismatch");
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(i < s, "index {i} out of bounds for dim {d} (size {s})");
            off = off * s + i;
        }
        off
    }

    /// Element access by multi-index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> T {
        self.data[self.offset(idx)]
    }

    /// Element assignment by multi-index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds access.
    #[inline]
    pub fn set(&mut self, idx: &[usize], v: T) {
        let off = self.offset(idx);
        self.data[off] = v;
    }

    /// Returns a copy with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics if the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape volume mismatch");
        Self { shape: shape.to_vec(), data: self.data.clone() }
    }

    /// Applies `f` elementwise, producing a new tensor (possibly of a
    /// different element type).
    pub fn map<U: Scalar>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Combines two equally-shaped tensors elementwise.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip_map(&self, other: &Self, f: impl Fn(T, T) -> T) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// In-place elementwise addition.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Elementwise sum of two tensors.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: T) -> Self {
        self.map(|x| x * s)
    }

    /// The contiguous sub-tensor for batch item `n` of an NCHW (or any
    /// leading-batch-dim) tensor, as a flat slice.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has no dimensions or `n` exceeds dim 0.
    pub fn batch_item(&self, n: usize) -> &[T] {
        assert!(!self.shape.is_empty() && n < self.shape[0]);
        let stride: usize = self.shape[1..].iter().product();
        &self.data[n * stride..(n + 1) * stride]
    }

    /// Mutable variant of [`Tensor::batch_item`].
    ///
    /// # Panics
    ///
    /// Panics if the tensor has no dimensions or `n` exceeds dim 0.
    pub fn batch_item_mut(&mut self, n: usize) -> &mut [T] {
        assert!(!self.shape.is_empty() && n < self.shape[0]);
        let stride: usize = self.shape[1..].iter().product();
        &mut self.data[n * stride..(n + 1) * stride]
    }
}

/// Flat-slice view, so APIs generic over `AsRef<[T]>` (e.g. the decode
/// paths) accept `Vec<T>` and `Tensor<T>` rows interchangeably.
impl<T> AsRef<[T]> for Tensor<T> {
    fn as_ref(&self) -> &[T] {
        &self.data
    }
}

impl Tensor<f32> {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0, |m, &v| m.max(v.abs()))
    }

    /// Mean of all elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn mean(&self) -> f32 {
        assert!(!self.data.is_empty());
        self.sum() / self.data.len() as f32
    }

    /// Largest elementwise absolute difference against `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape);
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0f32, |m, (&a, &b)| m.max((a - b).abs()))
    }
}

impl<T: Scalar> fmt::Debug for Tensor<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(f, "[{:?}, {:?}, ... ({} elems)]", self.data[0], self.data[1], self.data.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    #[test]
    fn zeros_and_ones() {
        let z = Tensor::<f32>::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let o = Tensor::<F25>::ones(&[4]);
        assert!(o.as_slice().iter().all(|&v| v == F25::ONE));
    }

    #[test]
    fn multi_index_round_trip() {
        let mut t = Tensor::<f32>::zeros(&[2, 3, 4]);
        t.set(&[1, 2, 3], 7.0);
        assert_eq!(t.get(&[1, 2, 3]), 7.0);
        assert_eq!(t.offset(&[1, 2, 3]), 12 + 2 * 4 + 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::<f32>::zeros(&[2, 2]);
        let _ = t.get(&[0, 2]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn wrong_arity_panics() {
        let t = Tensor::<f32>::zeros(&[2, 2]);
        let _ = t.get(&[0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::<f32>::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "volume")]
    fn reshape_volume_mismatch() {
        let t = Tensor::<f32>::zeros(&[2, 2]);
        let _ = t.reshape(&[5]);
    }

    #[test]
    fn map_changes_domain() {
        let t = Tensor::<f32>::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let q: Tensor<F25> = t.map(|v| F25::new(v as u64));
        assert_eq!(q.get(&[1]), F25::new(2));
    }

    #[test]
    fn add_and_scale() {
        let a = Tensor::<f32>::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::<f32>::from_vec(&[2], vec![10.0, 20.0]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0]);
        assert_eq!(a.scale(3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn batch_item_slicing() {
        let t = Tensor::<f32>::from_fn(&[2, 3], |i| i as f32);
        assert_eq!(t.batch_item(0), &[0.0, 1.0, 2.0]);
        assert_eq!(t.batch_item(1), &[3.0, 4.0, 5.0]);
    }

    #[test]
    fn float_stats() {
        let t = Tensor::<f32>::from_vec(&[4], vec![1.0, -3.0, 2.0, 0.0]);
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.max_abs(), 3.0);
        assert_eq!(t.mean(), 0.0);
        let u = Tensor::<f32>::from_vec(&[4], vec![1.0, -3.0, 2.5, 0.0]);
        assert!((t.max_abs_diff(&u) - 0.5).abs() < 1e-6);
    }
}
