//! A lazily-started persistent worker pool for the dense kernels.
//!
//! The kernels used to fan work out with `std::thread::scope`, paying a
//! thread spawn + join for every parallel matmul — tens of microseconds
//! that dwarf the compute at the small shapes the training pipeline
//! produces. This module keeps a process-wide set of parked workers
//! instead: the first parallel kernel call spawns them, and every later
//! call is just a queue push + wake.
//!
//! Design:
//!
//! * A **job** is a parallel-for: `total` tasks indexed `0..total`,
//!   claimed by an atomic ticket counter so tasks never overlap. The
//!   caller pushes the job, then *participates* — it claims tickets like
//!   any worker — so every job completes even if no worker thread could
//!   be spawned (spawn failure degrades to serial execution, never to an
//!   error).
//! * Workers park on a condvar when the queue is empty; they hold no
//!   locks while running tasks, and a job's submitter is the one who
//!   removes it from the queue, so job-struct lifetime is owned by `Arc`
//!   and nothing is ever freed under a running worker.
//! * The pool sizes itself from [`crate::threads::max_threads`] (the
//!   `DK_THREADS` / [`crate::threads::set_max_threads`] knobs) on every
//!   submission: raising the limit mid-process spawns the missing
//!   workers, lowering it simply leaves the extras parked — a job split
//!   into `w` tasks never runs on more than `w` threads regardless of
//!   pool size, so the split (and therefore every result) stays
//!   identical across pool reconfigurations.
//! * A panicking task is caught in the worker, recorded on the job, and
//!   re-raised in the submitting thread after the job drains, matching
//!   `std::thread::scope`'s propagation semantics closely enough for the
//!   kernel call sites (which only panic on dimension bugs).
//!
//! Determinism/bit-exactness is unaffected by any of this: task index
//! `t` maps to a fixed row range chosen by the *caller*, so scheduling
//! order changes which thread computes a range, never what the range
//! contains or what is written there.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One queued parallel-for. `data`/`call` are a type-erased borrow of
/// the submitter's closure; see the safety argument on [`Job::work`].
struct Job {
    /// Pointer to the submitter's stack-held closure.
    data: *const (),
    /// Monomorphized shim that invokes `data` with a task index.
    call: unsafe fn(*const (), usize),
    /// Number of tasks; tickets `>= total` are no-ops.
    total: usize,
    /// Next unclaimed ticket.
    next: AtomicUsize,
    state: Mutex<JobState>,
    /// Signalled when `state.done` reaches `total`.
    cv: Condvar,
}

#[derive(Default)]
struct JobState {
    done: usize,
    panicked: bool,
}

// SAFETY: `data` points at an `F: Fn(usize) + Sync` borrowed for the
// duration of `run_tasks`, which does not return until all `total` task
// completions are recorded; tickets at or past `total` never touch
// `data`, so the pointer is only ever dereferenced while the closure is
// live, and only through `&F` (shared, `Sync`).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims tickets and runs their tasks until the counter exhausts.
    fn work(&self) {
        loop {
            let t = self.next.fetch_add(1, Ordering::Relaxed);
            if t >= self.total {
                return;
            }
            // SAFETY: t < total, so the submitter is still blocked in
            // `run_tasks` and the closure behind `data` is live.
            let panicked =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.call)(self.data, t) })).is_err();
            let mut st = self.state.lock().unwrap();
            st.done += 1;
            st.panicked |= panicked;
            if st.done == self.total {
                self.cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

struct Pool {
    queue: Mutex<VecDeque<Arc<Job>>>,
    /// Wakes parked workers on job submission.
    cv: Condvar,
    /// Worker threads successfully spawned so far.
    workers: AtomicUsize,
    /// Serializes spawning so a thundering herd of submitters cannot
    /// overshoot the target worker count.
    spawn: Mutex<()>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        cv: Condvar::new(),
        workers: AtomicUsize::new(0),
        spawn: Mutex::new(()),
    })
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let job = {
            let mut q = pool.queue.lock().unwrap();
            loop {
                if let Some(j) = q.iter().find(|j| !j.exhausted()) {
                    break j.clone();
                }
                q = pool.cv.wait(q).unwrap();
            }
        };
        job.work();
    }
}

impl Pool {
    /// Spawns workers until `want` are live (best-effort: a failed spawn
    /// stops trying; submitters still finish their own jobs serially).
    fn ensure_workers(&'static self, want: usize) {
        if self.workers.load(Ordering::Acquire) >= want {
            return;
        }
        let _g = self.spawn.lock().unwrap();
        let have = self.workers.load(Ordering::Acquire);
        for _ in have..want {
            let spawned = std::thread::Builder::new()
                .name("dk-linalg-pool".into())
                .spawn(move || worker_loop(self));
            if spawned.is_err() {
                return;
            }
            self.workers.fetch_add(1, Ordering::Release);
        }
    }
}

unsafe fn call_shim<F: Fn(usize) + Sync>(data: *const (), t: usize) {
    unsafe { (*(data as *const F))(t) }
}

/// Runs `f(0), f(1), …, f(total-1)` with the persistent pool, blocking
/// until every task has finished. The submitting thread participates,
/// so completion never depends on worker availability. Tasks may run
/// concurrently; callers are responsible for making them disjoint.
///
/// Serial fallback (no pool interaction, no allocation) when there is
/// at most one task or the thread limit is 1.
pub(crate) fn run_tasks<F: Fn(usize) + Sync>(total: usize, f: &F) {
    let threads = crate::threads::max_threads();
    if total <= 1 || threads <= 1 {
        for t in 0..total {
            f(t);
        }
        return;
    }
    let pool = pool();
    // The submitter is the extra lane: `threads` of parallelism needs
    // `threads - 1` pool workers.
    pool.ensure_workers(threads - 1);
    let job = Arc::new(Job {
        data: f as *const F as *const (),
        call: call_shim::<F>,
        total,
        next: AtomicUsize::new(0),
        state: Mutex::new(JobState::default()),
        cv: Condvar::new(),
    });
    pool.queue.lock().unwrap().push_back(job.clone());
    pool.cv.notify_all();
    job.work();
    let panicked = {
        let mut st = job.state.lock().unwrap();
        while st.done < job.total {
            st = job.cv.wait(st).unwrap();
        }
        st.panicked
    };
    // The submitter owns queue removal of its job; workers only ever
    // skip over exhausted entries.
    pool.queue.lock().unwrap().retain(|j| !Arc::ptr_eq(j, &job));
    if panicked {
        panic!("dk_linalg pool task panicked");
    }
}

/// A raw pointer the row-partitioned kernels smuggle across the task
/// closure. Soundness is the caller's: tasks must write through it only
/// at disjoint offsets (each task owns a fixed row range).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);

// SAFETY: see type docs — disjointness is guaranteed by the fixed
// task-index → row-range mapping at every call site.
unsafe impl<T: Send> Send for SendPtr<T> {}
unsafe impl<T: Send> Sync for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn all_tasks_run_exactly_once() {
        crate::threads::set_max_threads(4);
        let hits: Vec<AtomicU64> = (0..97).map(|_| AtomicU64::new(0)).collect();
        run_tasks(hits.len(), &|t| {
            hits[t].fetch_add(1, Ordering::Relaxed);
        });
        crate::threads::set_max_threads(0);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        crate::threads::set_max_threads(2);
        let r = catch_unwind(|| {
            run_tasks(8, &|t| {
                if t == 5 {
                    panic!("boom");
                }
            })
        });
        crate::threads::set_max_threads(0);
        assert!(r.is_err(), "panic in a pooled task must re-raise in the submitter");
        // The pool must still be usable afterwards.
        crate::threads::set_max_threads(2);
        let n = AtomicU64::new(0);
        run_tasks(4, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        crate::threads::set_max_threads(0);
        assert_eq!(n.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn serial_fallback_runs_inline() {
        crate::threads::set_max_threads(1);
        let n = AtomicU64::new(0);
        run_tasks(16, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        crate::threads::set_max_threads(0);
        assert_eq!(n.load(Ordering::Relaxed), 16);
    }
}
