//! Tensors and linear-algebra kernels for DarKnight.
//!
//! DarKnight runs the *same* bilinear operations in two domains: `f32`
//! inside the TEE (reference/non-linear path) and a prime field `F_p` on
//! the untrusted GPUs (masked path). This crate therefore provides a
//! generic [`Tensor<T>`] and generic convolution / matrix-multiplication /
//! pooling kernels parameterized over a [`Scalar`] element, instantiated
//! at both `f32` and [`dk_field::Fp`].
//!
//! The dense kernels run over the unreduced accumulator of
//! [`Scalar::Acc`] (delayed modular reduction with Barrett/Mersenne
//! folds in the field domain), hold a sixteen-wide struct-of-arrays
//! strip of independent accumulator lanes in registers with the fold
//! boundary hoisted out of the lane loop (so the autovectorizer emits
//! real vector ops for both domains), and fan out across rows on a
//! lazily-started persistent worker pool on large shapes (`DK_THREADS`
//! / [`set_max_threads`] bound the fan-out). Results are bit-for-bit
//! identical to the per-MAC-reducing [`reference`] kernels at every
//! thread count.
//!
//! Every kernel also comes in a `_into` form writing into
//! caller-provided buffers; paired with the [`Workspace`] buffer pool
//! (which also backs the convolution/pooling `_ws` entry points),
//! steady-state callers perform **zero heap allocations** per step —
//! the classic allocating signatures remain as thin wrappers.
//!
//! Kernels included:
//!
//! * [`matmul()`] and its transpose variants,
//! * im2col-based 2-D convolution with stride, padding and groups
//!   (depthwise convolutions are `groups == in_channels`),
//! * the three convolution passes a training step needs: forward,
//!   input-gradient and weight-gradient,
//! * max pooling (with argmax bookkeeping for the backward pass) and
//!   global average pooling,
//! * the elementwise operations used by the non-linear TEE path.
//!
//! # Example
//!
//! ```
//! use dk_linalg::{Tensor, Conv2dShape, conv::conv2d_forward};
//!
//! let shape = Conv2dShape::new(1, 1, (3, 3), (1, 1), (1, 1), 1);
//! let x = Tensor::<f32>::ones(&[1, 1, 4, 4]);
//! let w = Tensor::<f32>::ones(&[1, 1, 3, 3]);
//! let y = conv2d_forward(&x, &w, &shape);
//! assert_eq!(y.shape(), &[1, 1, 4, 4]);
//! assert_eq!(y.get(&[0, 0, 1, 1]), 9.0); // full 3x3 window of ones
//! ```

pub mod coded;
pub mod conv;
pub mod im2col;
pub mod matmul;
pub mod ops;
pub mod pool;
pub mod reference;
pub mod scalar;
mod simd;
pub mod tensor;
mod threadpool;
pub mod threads;
pub mod workspace;

pub use coded::{
    coded_axpy_acc, coded_combine_acc, coded_combine_check_acc, coded_combine_check_write,
    coded_combine_into, coded_combine_write,
};
pub use conv::Conv2dShape;
pub use matmul::{
    matmul, matmul_a_bt, matmul_a_bt_into, matmul_acc, matmul_at_b, matmul_at_b_into,
    matmul_into, matvec, matvec_into,
};
pub use pool::Pool2dShape;
pub use scalar::Scalar;
pub use tensor::Tensor;
pub use threads::{max_threads, set_max_threads, would_parallelize, PAR_MAC_THRESHOLD};
pub use workspace::{Workspace, WorkspaceStats};
