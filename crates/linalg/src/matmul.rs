//! Generic dense matrix multiplication kernels.
//!
//! Three orientations are provided because the convolution passes need
//! all of them without materializing transposes:
//!
//! * [`matmul`] — `C[m×n] = A[m×k] · B[k×n]`
//! * [`matmul_at_b`] — `C[m×n] = Aᵀ · B` with `A[k×m]`
//! * [`matmul_a_bt`] — `C[m×n] = A · Bᵀ` with `B[n×k]`
//!
//! All use the i-k-j loop order so the inner loop streams contiguously
//! through `B` and `C`, which is the cache-friendly order for row-major
//! data in every domain.

use crate::scalar::Scalar;

/// `C[m×n] += A[m×k] · B[k×n]` over flat row-major slices.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_acc<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == T::zero() {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += aip * bj;
            }
        }
    }
}

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_acc(a, b, &mut c, m, k, n);
    c
}

/// `C[m×n] = Aᵀ · B` where `A` is stored as `k×m`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    let mut c = vec![T::zero(); m * n];
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (i, &api) in arow.iter().enumerate() {
            if api == T::zero() {
                continue;
            }
            let crow = &mut c[i * n..(i + 1) * n];
            for (cj, &bj) in crow.iter_mut().zip(brow) {
                *cj += api * bj;
            }
        }
    }
    c
}

/// `C[m×n] = A · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    let mut c = vec![T::zero(); m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = T::zero();
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(x.len(), k, "x size");
    (0..m)
        .map(|i| {
            let mut acc = T::zero();
            for (&aij, &xj) in a[i * k..(i + 1) * k].iter().zip(x) {
                acc += aij * xj;
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    fn naive<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let prod = a[i * k + p] * b[p * n + j];
                    c[i * n + j] += prod;
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_f32() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.25 - 1.0).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_matches_naive_field() {
        let (m, k, n) = (4, 3, 4);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 * 7 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 13 + 5)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn at_b_matches_transposed_input() {
        let (m, k, n) = (3, 4, 2);
        // A stored k x m; build its transpose m x k and use plain matmul.
        let a_kxm: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut a_mxk = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a_mxk[i * k + p] = a_kxm[p * m + i];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| (i * i) as f32).collect();
        assert_eq!(matmul_at_b(&a_kxm, &b, m, k, n), matmul(&a_mxk, &b, m, k, n));
    }

    #[test]
    fn a_bt_matches_transposed_input() {
        let (m, k, n) = (2, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.1).collect();
        let b_nxk: Vec<f32> = (0..n * k).map(|i| i as f32 - 4.0).collect();
        let mut b_kxn = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b_kxn[p * n + j] = b_nxk[j * k + p];
            }
        }
        assert_eq!(matmul_a_bt(&a, &b_nxk, m, k, n), matmul(&a, &b_kxn, m, k, n));
    }

    #[test]
    fn matvec_matches_matmul() {
        let (m, k) = (4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
        let x: Vec<f32> = (0..k).map(|i| i as f32).collect();
        assert_eq!(matvec(&a, &x, m, k), matmul(&a, &x, m, k, 1));
    }

    #[test]
    fn identity_matmul() {
        let n = 4;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(matmul(&id, &b, n, n, n), b);
    }

    #[test]
    fn field_matmul_wraps_mod_p() {
        let a = vec![F25::new(dk_field::P25 - 1)]; // -1
        let b = vec![F25::new(dk_field::P25 - 1)]; // -1
        assert_eq!(matmul(&a, &b, 1, 1, 1)[0], F25::ONE);
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0f32; 5];
        let b = vec![0.0f32; 6];
        let _ = matmul(&a, &b, 2, 3, 2);
    }
}
