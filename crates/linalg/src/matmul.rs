//! Generic dense matrix multiplication kernels.
//!
//! Three orientations are provided because the convolution passes need
//! all of them without materializing transposes at the call sites:
//!
//! * [`matmul`] — `C[m×n] = A[m×k] · B[k×n]`
//! * [`matmul_at_b`] — `C[m×n] = Aᵀ · B` with `A[k×m]`
//! * [`matmul_a_bt`] — `C[m×n] = A · Bᵀ` with `B[n×k]`
//!
//! All kernels run over the **unreduced accumulator** of
//! [`Scalar::Acc`]: in the field domain, per-MAC `%` is replaced by
//! delayed reduction with one Barrett (or Mersenne shift-add) fold per
//! [`Scalar::FOLD_INTERVAL`] products. The inner loops are unrolled
//! into [`LANES`] **independent accumulator lanes** — four output
//! columns held in registers across the whole reduction dimension — so
//! the accumulator strip never round-trips through memory per product
//! and the compiler can keep the lanes in SIMD registers. Large
//! products fan out across row ranges with `std::thread::scope` (capped
//! by [`crate::threads::max_threads`], i.e. the `DK_THREADS` knob;
//! small shapes stay serial).
//!
//! Every kernel also has a `_into` variant writing into a
//! caller-provided buffer; the classic signatures are thin allocating
//! wrappers, so steady-state callers (layers, jobs, the encoding
//! scheme) route buffers through a [`crate::workspace::Workspace`] and
//! perform **zero heap allocations** per step. [`matmul_at_b_into`]
//! never materializes `Aᵀ`: it packs `k × AT_PANEL` panels of `A` into
//! a workspace-owned scratch strip, one panel per tile of output rows.
//!
//! Every element is produced by the identical ascending-`k` recurrence
//! the naive kernels use — the lane unroll only changes *which column*
//! a register serves, never the order of any element's accumulation —
//! so results are **bit-for-bit identical** to [`crate::reference`] in
//! both domains and independent of the thread count — see
//! `tests/kernel_equivalence.rs` and `tests/threaded_determinism.rs`.

use crate::scalar::Scalar;
use crate::threads::workers_for;
use crate::workspace::Workspace;

/// Independent accumulator lanes held in registers by the dot-product
/// inner loops, and the depth of the outer-product kernel's register
/// blocking over the reduction dimension.
const LANES: usize = 4;

/// Output-column tile width of the outer-product kernel: the live
/// accumulator strip (≤ 16 B/element, on the stack — no allocation)
/// plus [`LANES`] `B` row segments stay comfortably inside L1.
const COL_TILE: usize = 512;

/// Output rows packed per [`matmul_at_b_into`] panel: bounds the
/// scratch strip to `AT_PANEL × k` elements regardless of `m`.
const AT_PANEL: usize = 64;

/// Flushes [`LANES`] pending `A` rows through the accumulator strip in
/// one pass: per strip element the four multiply-accumulates chain in
/// ascending-`p` order (`(((acc + a₀b₀) + a₁b₁) + a₂b₂) + a₃b₃`), so
/// every element sees the identical recurrence the single-row loop
/// produces while the strip is loaded and stored once per four
/// products instead of once per product.
#[inline]
fn flush_quad<T: Scalar>(
    acc: &mut [T::Acc],
    av: &[T; LANES],
    b: &[T],
    pq: &[usize; LANES],
    n: usize,
    j0: usize,
) {
    let jw = acc.len();
    let b0 = &b[pq[0] * n + j0..][..jw];
    let b1 = &b[pq[1] * n + j0..][..jw];
    let b2 = &b[pq[2] * n + j0..][..jw];
    let b3 = &b[pq[3] * n + j0..][..jw];
    for ((((aj, &x0), &x1), &x2), &x3) in
        acc.iter_mut().zip(b0).zip(b1).zip(b2).zip(b3)
    {
        *aj = T::mac(T::mac(T::mac(T::mac(*aj, av[0], x0), av[1], x1), av[2], x2), av[3], x3);
    }
}

/// Serial kernel: `C[rows×n] += A[rows×k] · B[k×n]` over one row range.
///
/// Per output element the recurrence is the reference one — ascending
/// `p`, zero rows of `A` skipped, folds never letting more than
/// `FOLD_INTERVAL` unreduced products accumulate. The restructuring is
/// purely mechanical: the accumulator strip lives on the stack (no
/// per-call allocation), and nonzero `A` rows are buffered and flushed
/// [`LANES`] at a time ([`flush_quad`]) so the strip round-trips
/// through cache once per four products.
fn matmul_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    let mut strip = [T::acc_zero(); COL_TILE];
    // Fold early enough that a whole quad never overshoots the
    // accumulator's capacity; extra folds are value-transparent.
    let fold_limit = T::FOLD_INTERVAL.saturating_sub(LANES - 1);
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jw = (n - j0).min(COL_TILE);
            let acc = &mut strip[..jw];
            for (aj, &cj) in acc.iter_mut().zip(&crow[j0..j0 + jw]) {
                *aj = cj.acc_lift();
            }
            let mut unfolded = 0usize;
            let mut av = [T::zero(); LANES];
            let mut pq = [0usize; LANES];
            let mut pending = 0usize;
            for (p, &aip) in arow.iter().enumerate() {
                if aip == T::zero() {
                    continue;
                }
                av[pending] = aip;
                pq[pending] = p;
                pending += 1;
                if pending == LANES {
                    if unfolded >= fold_limit {
                        for aj in acc.iter_mut() {
                            *aj = T::acc_fold(*aj);
                        }
                        unfolded = 0;
                    }
                    flush_quad(acc, &av, b, &pq, n, j0);
                    unfolded += LANES;
                    pending = 0;
                }
            }
            for t in 0..pending {
                if unfolded >= fold_limit {
                    for aj in acc.iter_mut() {
                        *aj = T::acc_fold(*aj);
                    }
                    unfolded = 0;
                }
                let brow = &b[pq[t] * n + j0..][..jw];
                for (aj, &bj) in acc.iter_mut().zip(brow) {
                    *aj = T::mac(*aj, av[t], bj);
                }
                unfolded += 1;
            }
            for (cj, &aj) in crow[j0..j0 + jw].iter_mut().zip(acc.iter()) {
                *cj = T::acc_finish(aj);
            }
            j0 += jw;
        }
    }
}

/// Serial kernel: `C[rows×n] = A[rows×k] · Bᵀ` with `B` stored `n×k`.
///
/// Dot-product orientation: [`LANES`] rows of `B` are consumed per pass
/// over the `A` row, each with its own register accumulator. The
/// zero-skip is gated on [`Scalar::SKIP_ZEROS`] exactly like the
/// reference single-lane loop.
fn a_bt_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + LANES <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = [T::acc_zero(); LANES];
            let mut unfolded = 0usize;
            for (p, &x) in arow.iter().enumerate() {
                if T::SKIP_ZEROS && x == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    for aj in acc.iter_mut() {
                        *aj = T::acc_fold(*aj);
                    }
                    unfolded = 0;
                }
                acc[0] = T::mac(acc[0], x, b0[p]);
                acc[1] = T::mac(acc[1], x, b1[p]);
                acc[2] = T::mac(acc[2], x, b2[p]);
                acc[3] = T::mac(acc[3], x, b3[p]);
                unfolded += 1;
            }
            for (l, &aj) in acc.iter().enumerate() {
                c[i * n + j + l] = T::acc_finish(aj);
            }
            j += LANES;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = T::acc_zero();
            let mut unfolded = 0usize;
            for (&x, &y) in arow.iter().zip(brow) {
                if T::SKIP_ZEROS && x == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    acc = T::acc_fold(acc);
                    unfolded = 0;
                }
                acc = T::mac(acc, x, y);
                unfolded += 1;
            }
            c[i * n + j] = T::acc_finish(acc);
            j += 1;
        }
    }
}

/// Runs `block` over `c` split into contiguous row ranges, in parallel
/// when the shape clears the threading threshold.
fn run_row_partitioned<T, F>(a: &[T], c: &mut [T], m: usize, k: usize, n: usize, block: F)
where
    T: Scalar,
    F: Fn(&[T], &mut [T], usize) + Sync,
{
    let workers = workers_for(m, m.saturating_mul(k.max(1)).saturating_mul(n));
    if workers <= 1 {
        block(a, c, m);
        return;
    }
    let rows_per = m.div_ceil(workers);
    std::thread::scope(|s| {
        for (achunk, cchunk) in a.chunks(rows_per * k.max(1)).zip(c.chunks_mut(rows_per * n)) {
            let block = &block;
            s.spawn(move || block(achunk, cchunk, cchunk.len() / n));
        }
    });
}

/// `C[m×n] += A[m×k] · B[k×n]` over flat row-major slices.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_acc<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    run_row_partitioned(a, c, m, k, n, |ach, cch, rows| matmul_block(ach, b, cch, rows, k, n));
}

/// `C[m×n] = A[m×k] · B[k×n]` into a caller-provided buffer
/// (overwritten; prior contents are irrelevant).
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_into<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    for v in c.iter_mut() {
        *v = T::zero();
    }
    matmul_acc(a, b, c, m, k, n);
}

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_acc(a, b, &mut c, m, k, n);
    c
}

/// Packs panel columns `i0..i0+iw` of `A[k×m]` into `scratch` as a
/// row-major `iw×k` strip and multiplies it against `B`, one panel of
/// output rows at a time. `c` covers output rows `i0..i0+rows`.
#[allow(clippy::too_many_arguments)]
fn at_b_panels<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [T],
) {
    let panel = scratch.len() / k;
    debug_assert!(panel > 0);
    let mut is = 0;
    while is < rows {
        let iw = (rows - is).min(panel);
        for p in 0..k {
            let acol = &a[p * m + i0 + is..p * m + i0 + is + iw];
            for (r, &v) in acol.iter().enumerate() {
                scratch[r * k + p] = v;
            }
        }
        matmul_block(&scratch[..iw * k], b, &mut c[is * n..(is + iw) * n], iw, k, n);
        is += iw;
    }
}

/// `C[m×n] = Aᵀ · B` (with `A` stored `k×m`) into a caller-provided
/// buffer, packing `A` columns into a `AT_PANEL × k` workspace-owned
/// scratch strip per output-row tile instead of materializing the full
/// `m×k` transpose. The packed panel is the layout the blocked
/// [`matmul`] kernel wants, so the lane-unrolled delayed-reduction
/// machinery applies to this orientation too.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b_into<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for v in c.iter_mut() {
        *v = T::zero();
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let workers = workers_for(m, m.saturating_mul(k).saturating_mul(n));
    if workers <= 1 {
        let mut scratch = ws.take_zeroed::<T>(AT_PANEL.min(m) * k);
        at_b_panels(a, b, c, 0, m, m, k, n, &mut scratch);
        ws.give(scratch);
        return;
    }
    let rows_per = m.div_ceil(workers);
    let panel = AT_PANEL.min(rows_per);
    let mut scratch = ws.take_zeroed::<T>(workers * panel * k);
    std::thread::scope(|s| {
        for ((w, cchunk), sl) in
            c.chunks_mut(rows_per * n).enumerate().zip(scratch.chunks_mut(panel * k))
        {
            s.spawn(move || {
                let i0 = w * rows_per;
                at_b_panels(a, b, cchunk, i0, cchunk.len() / n, m, k, n, sl);
            });
        }
    });
    ws.give(scratch);
}

/// `C[m×n] = Aᵀ · B` where `A` is stored as `k×m`.
///
/// Thin allocating wrapper over [`matmul_at_b_into`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_at_b_into(a, b, &mut c, m, k, n, &mut Workspace::new());
    c
}

/// `C[m×n] = A · Bᵀ` (with `B` stored `n×k`) into a caller-provided
/// buffer (overwritten).
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt_into<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    run_row_partitioned(a, c, m, k, n, |ach, cch, rows| a_bt_block(ach, b, cch, rows, k, n));
}

/// `C[m×n] = A · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_a_bt_into(a, b, &mut c, m, k, n);
    c
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]` into a caller-provided
/// buffer.
///
/// Routes through the `A·Bᵀ` dot kernel, whose zero-skip is gated on
/// [`Scalar::SKIP_ZEROS`]: floats keep the branch-free loop of the
/// original `matvec`, so non-finite inputs (`0.0 · ∞ = NaN`) propagate
/// bit-identically to [`crate::reference::naive_matvec`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec_into<T: Scalar>(a: &[T], x: &[T], y: &mut [T], m: usize, k: usize) {
    assert_eq!(x.len(), k, "x size");
    matmul_a_bt_into(a, x, y, m, k, 1);
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    let mut y = vec![T::zero(); m];
    matvec_into(a, x, &mut y, m, k);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    fn naive<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let prod = a[i * k + p] * b[p * n + j];
                    c[i * n + j] += prod;
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_f32() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.25 - 1.0).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_matches_naive_field() {
        let (m, k, n) = (4, 3, 4);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 * 7 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 13 + 5)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_wide_output_crosses_lane_groups() {
        // n > COL_TILE and far from a LANES multiple exercises the
        // column tiling, the quad flush and the pending remainder.
        let (m, k, n) = (2, 3, COL_TILE + LANES + 3);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 31 + 2)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn at_b_matches_transposed_input() {
        let (m, k, n) = (3, 4, 2);
        // A stored k x m; build its transpose m x k and use plain matmul.
        let a_kxm: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut a_mxk = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a_mxk[i * k + p] = a_kxm[p * m + i];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| (i * i) as f32).collect();
        assert_eq!(matmul_at_b(&a_kxm, &b, m, k, n), matmul(&a_mxk, &b, m, k, n));
    }

    #[test]
    fn at_b_crosses_panel_boundary() {
        // m > AT_PANEL forces multiple packed panels.
        let (m, k, n) = (AT_PANEL + 9, 5, 3);
        let a: Vec<F25> = (0..k * m).map(|i| F25::new(i as u64 % 97 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 % 89 + 2)).collect();
        let mut a_t = vec![F25::ZERO; m * k];
        for p in 0..k {
            for i in 0..m {
                a_t[i * k + p] = a[p * m + i];
            }
        }
        assert_eq!(matmul_at_b(&a, &b, m, k, n), matmul(&a_t, &b, m, k, n));
    }

    #[test]
    fn a_bt_matches_transposed_input() {
        let (m, k, n) = (2, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.1).collect();
        let b_nxk: Vec<f32> = (0..n * k).map(|i| i as f32 - 4.0).collect();
        let mut b_kxn = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b_kxn[p * n + j] = b_nxk[j * k + p];
            }
        }
        assert_eq!(matmul_a_bt(&a, &b_nxk, m, k, n), matmul(&a, &b_kxn, m, k, n));
    }

    #[test]
    fn matvec_matches_matmul() {
        let (m, k) = (4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
        let x: Vec<f32> = (0..k).map(|i| i as f32).collect();
        assert_eq!(matvec(&a, &x, m, k), matmul(&a, &x, m, k, 1));
    }

    #[test]
    fn identity_matmul() {
        let n = 4;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(matmul(&id, &b, n, n, n), b);
    }

    #[test]
    fn field_matmul_wraps_mod_p() {
        let a = vec![F25::new(dk_field::P25 - 1)]; // -1
        let b = vec![F25::new(dk_field::P25 - 1)]; // -1
        assert_eq!(matmul(&a, &b, 1, 1, 1)[0], F25::ONE);
    }

    #[test]
    fn empty_dims_are_fine() {
        assert!(matmul::<F25>(&[], &[], 0, 3, 0).is_empty());
        assert!(matmul::<F25>(&[], &[], 0, 0, 4).is_empty());
        let c = matmul::<F25>(&[], &[], 3, 0, 5);
        assert!(c.iter().all(|v| v.is_zero()));
        assert!(matmul_a_bt::<f32>(&[], &[], 0, 2, 0).is_empty());
        assert!(matmul_at_b::<f32>(&[], &[], 0, 0, 0).is_empty());
        let c = matmul_at_b::<F25>(&[], &[], 3, 0, 2);
        assert!(c.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn matmul_acc_accumulates_into_existing() {
        let (m, k, n) = (2, 3, 2);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 2)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 5 + 1)).collect();
        let mut c: Vec<F25> = (0..m * n).map(|i| F25::new(i as u64 * 100)).collect();
        let base = c.clone();
        matmul_acc(&a, &b, &mut c, m, k, n);
        let prod = matmul(&a, &b, m, k, n);
        for i in 0..m * n {
            assert_eq!(c[i], base[i] + prod[i]);
        }
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 3 + 2)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        assert_eq!(c, matmul(&a, &b, m, k, n));

        let bt: Vec<F25> = (0..n * k).map(|i| F25::new(i as u64 * 7 + 3)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_a_bt_into(&a, &bt, &mut c, m, k, n);
        assert_eq!(c, matmul_a_bt(&a, &bt, m, k, n));

        let at: Vec<F25> = (0..k * m).map(|i| F25::new(i as u64 * 11 + 4)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_at_b_into(&at, &b, &mut c, m, k, n, &mut Workspace::new());
        assert_eq!(c, matmul_at_b(&at, &b, m, k, n));

        let x: Vec<F25> = (0..k).map(|i| F25::new(i as u64 + 5)).collect();
        let mut y = vec![F25::new(999); m];
        matvec_into(&a, &x, &mut y, m, k);
        assert_eq!(y, matvec(&a, &x, m, k));
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0f32; 5];
        let b = vec![0.0f32; 6];
        let _ = matmul(&a, &b, 2, 3, 2);
    }
}
