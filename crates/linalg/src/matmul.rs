//! Generic dense matrix multiplication kernels.
//!
//! Three orientations are provided because the convolution passes need
//! all of them without materializing transposes at the call sites:
//!
//! * [`matmul`] — `C[m×n] = A[m×k] · B[k×n]`
//! * [`matmul_at_b`] — `C[m×n] = Aᵀ · B` with `A[k×m]`
//! * [`matmul_a_bt`] — `C[m×n] = A · Bᵀ` with `B[n×k]`
//!
//! All kernels run over the **unreduced accumulator** of
//! [`Scalar::Acc`]: in the field domain, per-MAC `%` is replaced by
//! delayed reduction with one Barrett (or Mersenne shift-add) fold per
//! [`Scalar::FOLD_INTERVAL`] products, which is where the order-of-
//! magnitude speedup over the naive path comes from. Output tiles are
//! column-blocked so the live accumulator strip stays L1-resident, and
//! large products fan out across row ranges with `std::thread::scope`
//! (capped by [`crate::threads::max_threads`], i.e. the `DK_THREADS`
//! knob; small shapes stay serial).
//!
//! Every element is produced by the identical ascending-`k` recurrence
//! the naive kernels use, so results are **bit-for-bit identical** to
//! [`crate::reference`] in both domains and independent of the thread
//! count — see `tests/kernel_equivalence.rs` and
//! `tests/threaded_determinism.rs`.

use crate::scalar::Scalar;
use crate::threads::workers_for;

/// Output-column tile width: the accumulator strip (≤ 16 B/element) plus
/// one `B` row segment stays comfortably inside L1.
const COL_TILE: usize = 512;

/// Serial kernel: `C[rows×n] += A[rows×k] · B[k×n]` over one row range.
fn matmul_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    let mut acc: Vec<T::Acc> = vec![T::acc_zero(); n.min(COL_TILE)];
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j0 = 0;
        while j0 < n {
            let jw = (n - j0).min(COL_TILE);
            let acc = &mut acc[..jw];
            for (aj, &cj) in acc.iter_mut().zip(&crow[j0..j0 + jw]) {
                *aj = cj.acc_lift();
            }
            let mut unfolded = 0usize;
            for (p, &aip) in arow.iter().enumerate() {
                if aip == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    for aj in acc.iter_mut() {
                        *aj = T::acc_fold(*aj);
                    }
                    unfolded = 0;
                }
                let brow = &b[p * n + j0..p * n + j0 + jw];
                for (aj, &bj) in acc.iter_mut().zip(brow) {
                    *aj = T::mac(*aj, aip, bj);
                }
                unfolded += 1;
            }
            for (cj, &aj) in crow[j0..j0 + jw].iter_mut().zip(acc.iter()) {
                *cj = T::acc_finish(aj);
            }
            j0 += jw;
        }
    }
}

/// Serial kernel: `C[rows×n] = A[rows×k] · Bᵀ` with `B` stored `n×k`.
fn a_bt_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = T::acc_zero();
            let mut unfolded = 0usize;
            for (&x, &y) in arow.iter().zip(brow) {
                if T::SKIP_ZEROS && x == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    acc = T::acc_fold(acc);
                    unfolded = 0;
                }
                acc = T::mac(acc, x, y);
                unfolded += 1;
            }
            c[i * n + j] = T::acc_finish(acc);
        }
    }
}

/// Runs `block` over `c` split into contiguous row ranges, in parallel
/// when the shape clears the threading threshold.
fn run_row_partitioned<T, F>(a: &[T], c: &mut [T], m: usize, k: usize, n: usize, block: F)
where
    T: Scalar,
    F: Fn(&[T], &mut [T], usize) + Sync,
{
    let workers = workers_for(m, m.saturating_mul(k.max(1)).saturating_mul(n));
    if workers <= 1 {
        block(a, c, m);
        return;
    }
    let rows_per = m.div_ceil(workers);
    std::thread::scope(|s| {
        for (achunk, cchunk) in a.chunks(rows_per * k.max(1)).zip(c.chunks_mut(rows_per * n)) {
            let block = &block;
            s.spawn(move || block(achunk, cchunk, cchunk.len() / n));
        }
    });
}

/// `C[m×n] += A[m×k] · B[k×n]` over flat row-major slices.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_acc<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    run_row_partitioned(a, c, m, k, n, |ach, cch, rows| matmul_block(ach, b, cch, rows, k, n));
}

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_acc(a, b, &mut c, m, k, n);
    c
}

/// `C[m×n] = Aᵀ · B` where `A` is stored as `k×m`.
///
/// Materializes `Aᵀ` (an `O(km)` copy against an `O(mkn)` product) and
/// reuses the blocked [`matmul`] kernel, so the delayed-reduction and
/// threading machinery applies to this orientation too.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    let mut at = vec![T::zero(); m * k];
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        for (i, &v) in arow.iter().enumerate() {
            at[i * k + p] = v;
        }
    }
    matmul(&at, b, m, k, n)
}

/// `C[m×n] = A · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    let mut c = vec![T::zero(); m * n];
    if m == 0 || n == 0 {
        return c;
    }
    run_row_partitioned(a, &mut c, m, k, n, |ach, cch, rows| a_bt_block(ach, b, cch, rows, k, n));
    c
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]`.
///
/// Routes through the `A·Bᵀ` dot kernel, whose zero-skip is gated on
/// [`Scalar::SKIP_ZEROS`]: floats keep the branch-free loop of the
/// original `matvec`, so non-finite inputs (`0.0 · ∞ = NaN`) propagate
/// bit-identically to [`crate::reference::naive_matvec`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(x.len(), k, "x size");
    matmul_a_bt(a, x, m, k, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    fn naive<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let prod = a[i * k + p] * b[p * n + j];
                    c[i * n + j] += prod;
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_f32() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.25 - 1.0).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_matches_naive_field() {
        let (m, k, n) = (4, 3, 4);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 * 7 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 13 + 5)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_wide_output_crosses_col_tiles() {
        // n > COL_TILE exercises the column-tiling path.
        let (m, k, n) = (2, 3, COL_TILE + 37);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 31 + 2)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn at_b_matches_transposed_input() {
        let (m, k, n) = (3, 4, 2);
        // A stored k x m; build its transpose m x k and use plain matmul.
        let a_kxm: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut a_mxk = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a_mxk[i * k + p] = a_kxm[p * m + i];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| (i * i) as f32).collect();
        assert_eq!(matmul_at_b(&a_kxm, &b, m, k, n), matmul(&a_mxk, &b, m, k, n));
    }

    #[test]
    fn a_bt_matches_transposed_input() {
        let (m, k, n) = (2, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.1).collect();
        let b_nxk: Vec<f32> = (0..n * k).map(|i| i as f32 - 4.0).collect();
        let mut b_kxn = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b_kxn[p * n + j] = b_nxk[j * k + p];
            }
        }
        assert_eq!(matmul_a_bt(&a, &b_nxk, m, k, n), matmul(&a, &b_kxn, m, k, n));
    }

    #[test]
    fn matvec_matches_matmul() {
        let (m, k) = (4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
        let x: Vec<f32> = (0..k).map(|i| i as f32).collect();
        assert_eq!(matvec(&a, &x, m, k), matmul(&a, &x, m, k, 1));
    }

    #[test]
    fn identity_matmul() {
        let n = 4;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(matmul(&id, &b, n, n, n), b);
    }

    #[test]
    fn field_matmul_wraps_mod_p() {
        let a = vec![F25::new(dk_field::P25 - 1)]; // -1
        let b = vec![F25::new(dk_field::P25 - 1)]; // -1
        assert_eq!(matmul(&a, &b, 1, 1, 1)[0], F25::ONE);
    }

    #[test]
    fn empty_dims_are_fine() {
        assert!(matmul::<F25>(&[], &[], 0, 3, 0).is_empty());
        assert!(matmul::<F25>(&[], &[], 0, 0, 4).is_empty());
        let c = matmul::<F25>(&[], &[], 3, 0, 5);
        assert!(c.iter().all(|v| v.is_zero()));
        assert!(matmul_a_bt::<f32>(&[], &[], 0, 2, 0).is_empty());
        assert!(matmul_at_b::<f32>(&[], &[], 0, 0, 0).is_empty());
    }

    #[test]
    fn matmul_acc_accumulates_into_existing() {
        let (m, k, n) = (2, 3, 2);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 2)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 5 + 1)).collect();
        let mut c: Vec<F25> = (0..m * n).map(|i| F25::new(i as u64 * 100)).collect();
        let base = c.clone();
        matmul_acc(&a, &b, &mut c, m, k, n);
        let prod = matmul(&a, &b, m, k, n);
        for i in 0..m * n {
            assert_eq!(c[i], base[i] + prod[i]);
        }
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0f32; 5];
        let b = vec![0.0f32; 6];
        let _ = matmul(&a, &b, 2, 3, 2);
    }
}
