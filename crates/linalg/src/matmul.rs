//! Generic dense matrix multiplication kernels.
//!
//! Three orientations are provided because the convolution passes need
//! all of them without materializing transposes at the call sites:
//!
//! * [`matmul`] — `C[m×n] = A[m×k] · B[k×n]`
//! * [`matmul_at_b`] — `C[m×n] = Aᵀ · B` with `A[k×m]`
//! * [`matmul_a_bt`] — `C[m×n] = A · Bᵀ` with `B[n×k]`
//!
//! All kernels run over the **unreduced accumulator** of
//! [`Scalar::Acc`]: in the field domain, per-MAC `%` is replaced by
//! delayed reduction with one Barrett (or Mersenne shift-add) fold per
//! [`Scalar::FOLD_INTERVAL`] products. The inner loops are structured
//! as **struct-of-arrays lane strips**: [`LANES`] independent
//! accumulators (one per output column) held in a register array, with
//! the fold boundary hoisted *out* of the lane loop — the body the
//! autovectorizer sees is a branch-free `acc[l] += a · b[l]` over a
//! constant trip count, which it lowers to real vector
//! multiply-accumulates for both the float and the Barrett/Mersenne
//! paths. The `A·Bᵀ` dot orientation vectorizes along the reduction
//! dimension instead ([`Scalar::EXACT`] domains only; float dots keep
//! the reference recurrence order bit-for-bit — see [`a_bt_block`]).
//!
//! Large products fan out across row ranges on the persistent
//! [`crate::threadpool`] (capped by [`crate::threads::max_threads`],
//! i.e. the `DK_THREADS` knob; small shapes stay serial).
//!
//! Every kernel also has a `_into` variant writing into a
//! caller-provided buffer; the classic signatures are thin allocating
//! wrappers, so steady-state callers (layers, jobs, the encoding
//! scheme) route buffers through a [`crate::workspace::Workspace`] and
//! perform **zero heap allocations** per step. [`matmul_at_b_into`]
//! never materializes `Aᵀ`: it packs `k × AT_PANEL` panels of `A` into
//! a workspace-owned scratch strip, one panel per tile of output rows.
//!
//! Results are **bit-for-bit identical** to [`crate::reference`] in
//! both domains and independent of the thread count — see
//! `tests/kernel_equivalence.rs` and `tests/threaded_determinism.rs`.
//! In the outer-product orientations the lane strip only changes *which
//! column* a register serves, never the order of any element's
//! ascending-`k` recurrence; in the dot orientation the field kernels
//! do reassociate across lanes, which is value-transparent because
//! field arithmetic is exact ([`Scalar::EXACT`]), while the float
//! kernels never reassociate.

use crate::scalar::Scalar;
use crate::threadpool::{self, SendPtr};
use crate::threads::workers_for;
use crate::workspace::Workspace;

/// Width of the struct-of-arrays accumulator strip: independent
/// [`Scalar::Acc`] lanes held in registers across the whole reduction
/// dimension. Sixteen `u64` lanes are two AVX-512 registers, four AVX2
/// registers, or eight SSE2 registers — within budget everywhere.
pub(crate) const LANES: usize = 16;

/// Output rows packed per [`matmul_at_b_into`] panel: bounds the
/// scratch strip to `AT_PANEL × k` elements regardless of `m`.
const AT_PANEL: usize = 64;

/// Expands `$body` once per lane with `$l` bound to a **const** index.
///
/// Every access to the accumulator array must go through a constant
/// index (no slices, no iterators — their `&[T]` borrows make the array
/// address escape): that is what lets SROA split the array into sixteen
/// independent SSA scalars the SLP vectorizer packs into SIMD registers
/// for the whole reduction loop, instead of round-tripping the strip
/// through the stack per product.
macro_rules! per_lane {
    ($l:ident => $body:expr) => {{
        macro_rules! arm {
            ($idx:expr) => {{
                const $l: usize = $idx;
                $body;
            }};
        }
        arm!(0);
        arm!(1);
        arm!(2);
        arm!(3);
        arm!(4);
        arm!(5);
        arm!(6);
        arm!(7);
        arm!(8);
        arm!(9);
        arm!(10);
        arm!(11);
        arm!(12);
        arm!(13);
        arm!(14);
        arm!(15);
    }};
}
pub(crate) use per_lane;

/// One full-width lane strip: `cs[l] += arow · B[:, j+l]` for
/// `l = 0..LANES`.
///
/// The `k` loop is chunked at [`Scalar::FOLD_INTERVAL`] *positions* so
/// no lane ever exceeds its unreduced-product budget, and the fold runs
/// between chunks — outside the hot loop. Inside a chunk the body is
/// one zero-test on `a` (hoisted over all lanes) and a branch-free
/// fully-unrolled lane group ([`per_lane`]) that stays in registers.
/// Per output element the recurrence is the reference one: ascending
/// `p`, zero rows of `A` skipped, which for floats is bit-identical to
/// [`crate::reference::naive_matmul_acc`] (no folds ever fire:
/// `FOLD_INTERVAL` is `usize::MAX`).
#[inline]
fn lane_strip<T: Scalar>(arow: &[T], b: &[T], cs: &mut [T; LANES], n: usize, j: usize) {
    if crate::simd::try_f25_lane_strip(arow, b, cs, n, j) {
        return;
    }
    let k = arow.len();
    let mut acc = [T::acc_zero(); LANES];
    per_lane!(L => acc[L] = cs[L].acc_lift());
    let mut p0 = 0;
    while p0 < k {
        let pend = k.min(p0.saturating_add(T::FOLD_INTERVAL));
        for p in p0..pend {
            let aip = arow[p];
            if aip == T::zero() {
                continue;
            }
            let brow: &[T; LANES] = b[p * n + j..p * n + j + LANES].try_into().unwrap();
            per_lane!(L => acc[L] = T::mac(acc[L], aip, brow[L]));
        }
        p0 = pend;
        if p0 < k {
            per_lane!(L => acc[L] = T::acc_fold(acc[L]));
        }
    }
    per_lane!(L => cs[L] = T::acc_finish(acc[L]));
}

/// The variable-width remainder strip (`cs.len() < LANES`): identical
/// structure to [`lane_strip`], trip count taken from the slice.
fn lane_strip_tail<T: Scalar>(arow: &[T], b: &[T], cs: &mut [T], n: usize, j: usize) {
    let k = arow.len();
    let w = cs.len();
    debug_assert!(w < LANES);
    let mut acc = [T::acc_zero(); LANES];
    for (aj, &cj) in acc.iter_mut().zip(cs.iter()) {
        *aj = cj.acc_lift();
    }
    let mut p0 = 0;
    while p0 < k {
        let pend = k.min(p0.saturating_add(T::FOLD_INTERVAL));
        for p in p0..pend {
            let aip = arow[p];
            if aip == T::zero() {
                continue;
            }
            let brow = &b[p * n + j..p * n + j + w];
            for (aj, &bj) in acc[..w].iter_mut().zip(brow) {
                *aj = T::mac(*aj, aip, bj);
            }
        }
        p0 = pend;
        if p0 < k {
            for aj in acc[..w].iter_mut() {
                *aj = T::acc_fold(*aj);
            }
        }
    }
    for (cj, &aj) in cs.iter_mut().zip(acc[..w].iter()) {
        *cj = T::acc_finish(aj);
    }
}

/// Serial kernel: `C[rows×n] += A[rows×k] · B[k×n]` over one row range,
/// as [`LANES`]-wide register strips plus one remainder strip per row.
fn matmul_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        let mut j = 0;
        while j + LANES <= n {
            let cs: &mut [T; LANES] = (&mut crow[j..j + LANES]).try_into().unwrap();
            lane_strip(arow, b, cs, n, j);
            j += LANES;
        }
        if j < n {
            lane_strip_tail(arow, b, &mut crow[j..], n, j);
        }
    }
}

/// Exact-domain dot kernel: `C[rows×n] = A[rows×k] · Bᵀ`, vectorized
/// along the **reduction** dimension.
///
/// Each dot product runs [`LANES`] sub-accumulators striding `k`, so
/// both operand loads are contiguous SIMD loads. Chunks are capped at
/// [`Scalar::FOLD_INTERVAL`] *total* positions so the final lane merge
/// ([`Scalar::acc_add`], a raw integer sum) stays within the combined
/// capacity contract; this reassociates the reduction, which is
/// value-exact in a field and therefore still bit-identical to
/// [`crate::reference::naive_matmul_a_bt`]. Only [`Scalar::EXACT`]
/// domains take this path.
fn a_bt_block_exact<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    debug_assert!(T::EXACT && T::FOLD_INTERVAL >= LANES);
    // Positions per fold chunk, aligned down to the lane width; the
    // *sum* of all lanes' products per chunk stays within one
    // accumulator's budget.
    let chunk = T::FOLD_INTERVAL - T::FOLD_INTERVAL % LANES;
    let kv = k - k % LANES;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cj) in c[i * n..(i + 1) * n].iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = [T::acc_zero(); LANES];
            let mut p0 = 0;
            let mut merged = T::acc_zero();
            while p0 < kv {
                let pend = kv.min(p0.saturating_add(chunk));
                for p in (p0..pend).step_by(LANES) {
                    let av: &[T; LANES] = arow[p..p + LANES].try_into().unwrap();
                    let bv: &[T; LANES] = brow[p..p + LANES].try_into().unwrap();
                    per_lane!(L => acc[L] = T::mac(acc[L], av[L], bv[L]));
                }
                p0 = pend;
                if p0 < kv {
                    per_lane!(L => acc[L] = T::acc_fold(acc[L]));
                }
            }
            // Merge the lanes (raw sums — within the chunk's combined
            // budget), then run the scalar tail on the folded result.
            per_lane!(L => merged = T::acc_add(merged, acc[L]));
            if kv < k {
                merged = T::acc_fold(merged);
                for p in kv..k {
                    merged = T::mac(merged, arow[p], brow[p]);
                }
            }
            *cj = T::acc_finish(merged);
        }
    }
}

/// Ordered dot kernel: `C[rows×n] = A[rows×k] · Bᵀ` for domains where
/// reassociation changes results (floats).
///
/// Four rows of `B` are consumed per pass over the `A` row, each with
/// its own register accumulator, so every element keeps the exact
/// reference recurrence: ascending `p`, zero-skip gated on
/// [`Scalar::SKIP_ZEROS`] (off for floats — `0.0 · ∞ = NaN` must
/// propagate bit-identically to the naive kernel).
fn a_bt_block_ordered<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    const DOTS: usize = 4;
    for i in 0..rows {
        let arow = &a[i * k..(i + 1) * k];
        let mut j = 0;
        while j + DOTS <= n {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let mut acc = [T::acc_zero(); DOTS];
            let mut unfolded = 0usize;
            for (p, &x) in arow.iter().enumerate() {
                if T::SKIP_ZEROS && x == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    for aj in acc.iter_mut() {
                        *aj = T::acc_fold(*aj);
                    }
                    unfolded = 0;
                }
                acc[0] = T::mac(acc[0], x, b0[p]);
                acc[1] = T::mac(acc[1], x, b1[p]);
                acc[2] = T::mac(acc[2], x, b2[p]);
                acc[3] = T::mac(acc[3], x, b3[p]);
                unfolded += 1;
            }
            for (l, &aj) in acc.iter().enumerate() {
                c[i * n + j + l] = T::acc_finish(aj);
            }
            j += DOTS;
        }
        while j < n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = T::acc_zero();
            let mut unfolded = 0usize;
            for (&x, &y) in arow.iter().zip(brow) {
                if T::SKIP_ZEROS && x == T::zero() {
                    continue;
                }
                if unfolded == T::FOLD_INTERVAL {
                    acc = T::acc_fold(acc);
                    unfolded = 0;
                }
                acc = T::mac(acc, x, y);
                unfolded += 1;
            }
            c[i * n + j] = T::acc_finish(acc);
            j += 1;
        }
    }
}

/// Serial kernel: `C[rows×n] = A[rows×k] · Bᵀ` with `B` stored `n×k`.
fn a_bt_block<T: Scalar>(a: &[T], b: &[T], c: &mut [T], rows: usize, k: usize, n: usize) {
    if crate::simd::try_f25_a_bt_block(a, b, c, rows, k, n) {
        return;
    }
    if T::EXACT {
        a_bt_block_exact(a, b, c, rows, k, n);
    } else {
        a_bt_block_ordered(a, b, c, rows, k, n);
    }
}

/// Runs `block` over `c` split into contiguous row ranges, fanned out
/// on the persistent pool when the shape clears the threading
/// threshold. The task-index → row-range mapping is fixed by the shape
/// alone, so results are identical at every thread count.
fn run_row_partitioned<T, F>(a: &[T], c: &mut [T], m: usize, k: usize, n: usize, block: F)
where
    T: Scalar,
    F: Fn(&[T], &mut [T], usize) + Sync,
{
    let workers = workers_for(m, m.saturating_mul(k.max(1)).saturating_mul(n));
    if workers <= 1 {
        block(a, c, m);
        return;
    }
    let rows_per = m.div_ceil(workers);
    let tasks = m.div_ceil(rows_per);
    let cp = SendPtr(c.as_mut_ptr());
    threadpool::run_tasks(tasks, &move |t| {
        // Capture the whole `SendPtr` wrapper, not its raw-pointer field
        // (closures capture disjoint fields, and a bare `*mut T` is not
        // `Sync`).
        let cp = cp;
        let i0 = t * rows_per;
        let rows = rows_per.min(m - i0);
        let ach = &a[i0 * k..(i0 + rows) * k];
        // SAFETY: each task owns the disjoint output rows `i0..i0+rows`.
        let cch = unsafe { std::slice::from_raw_parts_mut(cp.0.add(i0 * n), rows * n) };
        block(ach, cch, rows);
    });
}

/// `C[m×n] += A[m×k] · B[k×n]` over flat row-major slices.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_acc<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    run_row_partitioned(a, c, m, k, n, |ach, cch, rows| matmul_block(ach, b, cch, rows, k, n));
}

/// `C[m×n] = A[m×k] · B[k×n]` into a caller-provided buffer
/// (overwritten; prior contents are irrelevant).
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_into<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(c.len(), m * n, "C size");
    for v in c.iter_mut() {
        *v = T::zero();
    }
    matmul_acc(a, b, c, m, k, n);
}

/// `C[m×n] = A[m×k] · B[k×n]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_acc(a, b, &mut c, m, k, n);
    c
}

/// Packs panel columns `i0..i0+iw` of `A[k×m]` into `scratch` as a
/// row-major `iw×k` strip and multiplies it against `B`, one panel of
/// output rows at a time. `c` covers output rows `i0..i0+rows`.
#[allow(clippy::too_many_arguments)]
fn at_b_panels<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut [T],
) {
    let panel = scratch.len() / k;
    debug_assert!(panel > 0);
    let mut is = 0;
    while is < rows {
        let iw = (rows - is).min(panel);
        for p in 0..k {
            let acol = &a[p * m + i0 + is..p * m + i0 + is + iw];
            for (r, &v) in acol.iter().enumerate() {
                scratch[r * k + p] = v;
            }
        }
        matmul_block(&scratch[..iw * k], b, &mut c[is * n..(is + iw) * n], iw, k, n);
        is += iw;
    }
}

/// `C[m×n] = Aᵀ · B` (with `A` stored `k×m`) into a caller-provided
/// buffer, packing `A` columns into a `AT_PANEL × k` workspace-owned
/// scratch strip per output-row tile instead of materializing the full
/// `m×k` transpose. The packed panel is the layout the lane-strip
/// [`matmul`] kernel wants, so the delayed-reduction machinery applies
/// to this orientation too.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b_into<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    m: usize,
    k: usize,
    n: usize,
    ws: &mut Workspace,
) {
    assert_eq!(a.len(), k * m, "A size");
    assert_eq!(b.len(), k * n, "B size");
    assert_eq!(c.len(), m * n, "C size");
    for v in c.iter_mut() {
        *v = T::zero();
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let workers = workers_for(m, m.saturating_mul(k).saturating_mul(n));
    // F25 on x86-64 skips the panel packing entirely: the SIMD strips
    // read A's columns with stride `m` directly (`a[p*m + i]` broadcast
    // per product — the same ascending-`p`, zero-skipping, chunk-folding
    // recurrence the packed path runs, so results are bit-identical).
    let direct = crate::simd::has_f25_at_b_direct::<T>();
    if workers <= 1 {
        if direct {
            crate::simd::f25_at_b_rows(a, b, c, 0, m, m, k, n);
        } else {
            let mut scratch = ws.take_zeroed::<T>(AT_PANEL.min(m) * k);
            at_b_panels(a, b, c, 0, m, m, k, n, &mut scratch);
            ws.give(scratch);
        }
        return;
    }
    let rows_per = m.div_ceil(workers);
    let tasks = m.div_ceil(rows_per);
    if direct {
        let cp = SendPtr(c.as_mut_ptr());
        threadpool::run_tasks(tasks, &move |t| {
            let cp = cp;
            let i0 = t * rows_per;
            let rows = rows_per.min(m - i0);
            // SAFETY: each task owns the disjoint output rows `i0..i0+rows`.
            let cch = unsafe { std::slice::from_raw_parts_mut(cp.0.add(i0 * n), rows * n) };
            crate::simd::f25_at_b_rows(a, b, cch, i0, rows, m, k, n);
        });
        return;
    }
    let panel = AT_PANEL.min(rows_per);
    let mut scratch = ws.take_zeroed::<T>(tasks * panel * k);
    let cp = SendPtr(c.as_mut_ptr());
    let sp = SendPtr(scratch.as_mut_ptr());
    let job = move |t: usize| {
        let (cp, sp) = (cp, sp);
        let i0 = t * rows_per;
        let rows = rows_per.min(m - i0);
        // SAFETY: each task owns the disjoint output rows `i0..i0+rows`
        // and its own `panel * k` slab of the scratch strip.
        let cch = unsafe { std::slice::from_raw_parts_mut(cp.0.add(i0 * n), rows * n) };
        let sl = unsafe { std::slice::from_raw_parts_mut(sp.0.add(t * panel * k), panel * k) };
        at_b_panels(a, b, cch, i0, rows, m, k, n, sl);
    };
    threadpool::run_tasks(tasks, &job);
    ws.give(scratch);
}

/// `C[m×n] = Aᵀ · B` where `A` is stored as `k×m`.
///
/// Thin allocating wrapper over [`matmul_at_b_into`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_at_b<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_at_b_into(a, b, &mut c, m, k, n, &mut Workspace::new());
    c
}

/// `C[m×n] = A · Bᵀ` (with `B` stored `n×k`) into a caller-provided
/// buffer (overwritten).
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt_into<T: Scalar>(a: &[T], b: &[T], c: &mut [T], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A size");
    assert_eq!(b.len(), n * k, "B size");
    assert_eq!(c.len(), m * n, "C size");
    if m == 0 || n == 0 {
        return;
    }
    run_row_partitioned(a, c, m, k, n, |ach, cch, rows| a_bt_block(ach, b, cch, rows, k, n));
}

/// `C[m×n] = A · Bᵀ` where `B` is stored as `n×k`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matmul_a_bt<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
    let mut c = vec![T::zero(); m * n];
    matmul_a_bt_into(a, b, &mut c, m, k, n);
    c
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]` into a caller-provided
/// buffer.
///
/// Routes through the `A·Bᵀ` dot kernel: fields take the
/// reduction-vectorized exact path, floats keep the branch-free ordered
/// loop of the original `matvec`, so non-finite inputs
/// (`0.0 · ∞ = NaN`) propagate bit-identically to
/// [`crate::reference::naive_matvec`].
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec_into<T: Scalar>(a: &[T], x: &[T], y: &mut [T], m: usize, k: usize) {
    assert_eq!(x.len(), k, "x size");
    matmul_a_bt_into(a, x, y, m, k, 1);
}

/// Matrix–vector product `y[m] = A[m×k] · x[k]`.
///
/// # Panics
///
/// Panics if slice lengths do not match the given dimensions.
pub fn matvec<T: Scalar>(a: &[T], x: &[T], m: usize, k: usize) -> Vec<T> {
    let mut y = vec![T::zero(); m];
    matvec_into(a, x, &mut y, m, k);
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    fn naive<T: Scalar>(a: &[T], b: &[T], m: usize, k: usize, n: usize) -> Vec<T> {
        let mut c = vec![T::zero(); m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let prod = a[i * k + p] * b[p * n + j];
                    c[i * n + j] += prod;
                }
            }
        }
        c
    }

    #[test]
    fn matmul_matches_naive_f32() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32) * 0.5 - 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| (i as f32) * 0.25 - 1.0).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_matches_naive_field() {
        let (m, k, n) = (4, 3, 4);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 * 7 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 13 + 5)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn matmul_wide_output_crosses_lane_strips() {
        // n far from a LANES multiple exercises both the full strips
        // and the variable-width remainder strip.
        let (m, k, n) = (2, 3, 33 * LANES + 3);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 31 + 2)).collect();
        assert_eq!(matmul(&a, &b, m, k, n), naive(&a, &b, m, k, n));
    }

    #[test]
    fn at_b_matches_transposed_input() {
        let (m, k, n) = (3, 4, 2);
        // A stored k x m; build its transpose m x k and use plain matmul.
        let a_kxm: Vec<f32> = (0..k * m).map(|i| i as f32).collect();
        let mut a_mxk = vec![0.0f32; m * k];
        for p in 0..k {
            for i in 0..m {
                a_mxk[i * k + p] = a_kxm[p * m + i];
            }
        }
        let b: Vec<f32> = (0..k * n).map(|i| (i * i) as f32).collect();
        assert_eq!(matmul_at_b(&a_kxm, &b, m, k, n), matmul(&a_mxk, &b, m, k, n));
    }

    #[test]
    fn at_b_crosses_panel_boundary() {
        // m > AT_PANEL forces multiple packed panels.
        let (m, k, n) = (AT_PANEL + 9, 5, 3);
        let a: Vec<F25> = (0..k * m).map(|i| F25::new(i as u64 % 97 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 % 89 + 2)).collect();
        let mut a_t = vec![F25::ZERO; m * k];
        for p in 0..k {
            for i in 0..m {
                a_t[i * k + p] = a[p * m + i];
            }
        }
        assert_eq!(matmul_at_b(&a, &b, m, k, n), matmul(&a_t, &b, m, k, n));
    }

    #[test]
    fn a_bt_matches_transposed_input() {
        let (m, k, n) = (2, 5, 3);
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.1).collect();
        let b_nxk: Vec<f32> = (0..n * k).map(|i| i as f32 - 4.0).collect();
        let mut b_kxn = vec![0.0f32; k * n];
        for j in 0..n {
            for p in 0..k {
                b_kxn[p * n + j] = b_nxk[j * k + p];
            }
        }
        assert_eq!(matmul_a_bt(&a, &b_nxk, m, k, n), matmul(&a, &b_kxn, m, k, n));
    }

    #[test]
    fn a_bt_field_crosses_lane_and_tail_boundaries() {
        // k straddling the vectorizable prefix (k % LANES != 0) plus a
        // multi-strip n exercises the exact-domain dot path end to end.
        let (m, k, n) = (3, 2 * LANES + 7, LANES + 5);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 * 17 + 3)).collect();
        let b_nxk: Vec<F25> = (0..n * k).map(|i| F25::new(i as u64 * 23 + 9)).collect();
        let mut b_kxn = vec![F25::ZERO; k * n];
        for j in 0..n {
            for p in 0..k {
                b_kxn[p * n + j] = b_nxk[j * k + p];
            }
        }
        assert_eq!(matmul_a_bt(&a, &b_nxk, m, k, n), matmul(&a, &b_kxn, m, k, n));
    }

    #[test]
    fn matvec_matches_matmul() {
        let (m, k) = (4, 6);
        let a: Vec<f32> = (0..m * k).map(|i| (i % 7) as f32).collect();
        let x: Vec<f32> = (0..k).map(|i| i as f32).collect();
        assert_eq!(matvec(&a, &x, m, k), matmul(&a, &x, m, k, 1));
    }

    #[test]
    fn identity_matmul() {
        let n = 4;
        let mut id = vec![0.0f32; n * n];
        for i in 0..n {
            id[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32).collect();
        assert_eq!(matmul(&id, &b, n, n, n), b);
    }

    #[test]
    fn field_matmul_wraps_mod_p() {
        let a = vec![F25::new(dk_field::P25 - 1)]; // -1
        let b = vec![F25::new(dk_field::P25 - 1)]; // -1
        assert_eq!(matmul(&a, &b, 1, 1, 1)[0], F25::ONE);
    }

    #[test]
    fn empty_dims_are_fine() {
        assert!(matmul::<F25>(&[], &[], 0, 3, 0).is_empty());
        assert!(matmul::<F25>(&[], &[], 0, 0, 4).is_empty());
        let c = matmul::<F25>(&[], &[], 3, 0, 5);
        assert!(c.iter().all(|v| v.is_zero()));
        assert!(matmul_a_bt::<f32>(&[], &[], 0, 2, 0).is_empty());
        assert!(matmul_at_b::<f32>(&[], &[], 0, 0, 0).is_empty());
        let c = matmul_at_b::<F25>(&[], &[], 3, 0, 2);
        assert!(c.iter().all(|v| v.is_zero()));
    }

    #[test]
    fn matmul_acc_accumulates_into_existing() {
        let (m, k, n) = (2, 3, 2);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 2)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 5 + 1)).collect();
        let mut c: Vec<F25> = (0..m * n).map(|i| F25::new(i as u64 * 100)).collect();
        let base = c.clone();
        matmul_acc(&a, &b, &mut c, m, k, n);
        let prod = matmul(&a, &b, m, k, n);
        for i in 0..m * n {
            assert_eq!(c[i], base[i] + prod[i]);
        }
    }

    #[test]
    fn into_variants_overwrite_stale_contents() {
        let (m, k, n) = (3, 4, 5);
        let a: Vec<F25> = (0..m * k).map(|i| F25::new(i as u64 + 1)).collect();
        let b: Vec<F25> = (0..k * n).map(|i| F25::new(i as u64 * 3 + 2)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_into(&a, &b, &mut c, m, k, n);
        assert_eq!(c, matmul(&a, &b, m, k, n));

        let bt: Vec<F25> = (0..n * k).map(|i| F25::new(i as u64 * 7 + 3)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_a_bt_into(&a, &bt, &mut c, m, k, n);
        assert_eq!(c, matmul_a_bt(&a, &bt, m, k, n));

        let at: Vec<F25> = (0..k * m).map(|i| F25::new(i as u64 * 11 + 4)).collect();
        let mut c = vec![F25::new(999); m * n];
        matmul_at_b_into(&at, &b, &mut c, m, k, n, &mut Workspace::new());
        assert_eq!(c, matmul_at_b(&at, &b, m, k, n));

        let x: Vec<F25> = (0..k).map(|i| F25::new(i as u64 + 5)).collect();
        let mut y = vec![F25::new(999); m];
        matvec_into(&a, &x, &mut y, m, k);
        assert_eq!(y, matvec(&a, &x, m, k));
    }

    #[test]
    #[should_panic(expected = "A size")]
    fn dimension_mismatch_panics() {
        let a = vec![0.0f32; 5];
        let b = vec![0.0f32; 6];
        let _ = matmul(&a, &b, 2, 3, 2);
    }
}
