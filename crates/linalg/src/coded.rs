//! Streaming kernels for the coding shapes: a small `(k+m) × S`
//! coefficient matrix against `S` stacked rows of enormous `n`.
//!
//! The generic blocked matmuls tile for square-ish operands, which is
//! exactly wrong here: encoding/decoding a virtual batch multiplies a
//! handful of coefficient rows (the whole matrix fits in registers)
//! against megabyte-scale data rows, so a row-at-a-time matmul re-reads
//! the huge operand once **per output row** and the stacking copy the
//! flat layout needs re-touches it again. The `coded_combine` family
//! instead streams each column chunk of the input rows exactly once and
//! accumulates **all** output rows in that single pass:
//!
//! * inputs stay as separate row vectors (`AsRef<[T]>`) — no stacking
//!   copy, no flat `(k+m)·n` buffer;
//! * the reduction dimension is register-grouped at [`PGROUP`]
//!   positions, and the inner loop is the PR-8 [`LANES`]-wide
//!   accumulator strip (SSE2/AVX2 `pmuludq`/`paddq` for `F25`, the
//!   autovectorized portable strip otherwise) with the delayed
//!   Barrett-fold schedule;
//! * a redundant-equation check ([`coded_combine_check_acc`]) can ride
//!   the same pass: the §4.4 integrity dot-product reads the worker
//!   outputs while they are hot instead of in a second sweep;
//! * [`coded_axpy_acc`] is the rank-1 update the fused-RNG encode
//!   streams freshly drawn noise chunks through;
//! * the `_write` variants ([`coded_combine_write`],
//!   [`coded_combine_check_write`]) overwrite instead of accumulating:
//!   the first reduction group runs store-mode strips whose
//!   accumulators start at zero and whose finished lanes go straight
//!   to the destination, so recycled output buffers need no `memset`
//!   and are never read — on the memory-bound coding shapes that
//!   roughly halves the traffic.
//!   `acc_lift(0) = 0` exactly in both domains, so the results are
//!   bit-identical to accumulating into zeroed rows.
//!
//! Threading partitions output **columns** (row partitioning cannot
//! split `k+m` rows): every task runs the identical per-element
//! recurrence over a disjoint [`LANES`]-aligned column range, so
//! results are bit-for-bit independent of the thread count in both
//! domains — columns never share an accumulator. Splitting the
//! reduction at [`PGROUP`] boundaries is equally invisible: the
//! intermediate `acc_finish`/`acc_lift` round-trip is the identity on
//! canonical values (exact in a field, a no-op for floats), so each
//! element still sees the single ascending-`p` reference recurrence of
//! [`crate::reference::naive_coded_combine_acc`].

use crate::matmul::{per_lane, LANES};
use crate::scalar::Scalar;
use crate::threadpool::{self, SendPtr};
use crate::threads::col_partition;

/// Reduction positions per register group: the coefficient sub-row and
/// the row-slice table both stay on the stack, and (for `F25`) the
/// whole group's products fit one unreduced accumulator.
const PGROUP: usize = 16;

/// Output rows per fan-out batch: bounds the stack array of row
/// pointers shared with the pool. Coding shapes use `k+m+1` rows, far
/// below this; larger row counts are processed in batches.
const MAX_FAN_ROWS: usize = 32;

/// Maximum reduction length (`x.len()`) the fused-check entry points
/// accept: one register group, so the predicted row is complete in the
/// same pass that produces the outputs.
pub const CHECK_MAX_KDIM: usize = PGROUP;

/// Maximum output-row count the fused-check entry points accept.
pub const CHECK_MAX_ROWS: usize = MAX_FAN_ROWS;

/// One full-width strip: `cs[l] += Σ_p crow[p] · xs[p][j+l]`. Same
/// structure as the matmul lane strip, but each reduction position
/// reads its own row slice.
#[inline]
fn coded_strip<T: Scalar>(crow: &[T], xs: &[&[T]], cs: &mut [T; LANES], j: usize) {
    if crate::simd::try_f25_coded_strip(crow, xs, cs, j) {
        return;
    }
    let kdim = crow.len();
    debug_assert_eq!(xs.len(), kdim);
    let mut acc = [T::acc_zero(); LANES];
    per_lane!(L => acc[L] = cs[L].acc_lift());
    let mut p0 = 0;
    while p0 < kdim {
        let pend = kdim.min(p0.saturating_add(T::FOLD_INTERVAL));
        for p in p0..pend {
            let aip = crow[p];
            if aip == T::zero() {
                continue;
            }
            let brow: &[T; LANES] = xs[p][j..j + LANES].try_into().unwrap();
            per_lane!(L => acc[L] = T::mac(acc[L], aip, brow[L]));
        }
        p0 = pend;
        if p0 < kdim {
            per_lane!(L => acc[L] = T::acc_fold(acc[L]));
        }
    }
    per_lane!(L => cs[L] = T::acc_finish(acc[L]));
}

/// Store-mode full-width strip: `out[l] = Σ_p crow[p] · xs[p][j+l]`
/// written straight through `out` without ever reading it. The
/// accumulators start from the canonical lift of zero, which is
/// exactly what accumulating into a zeroed strip produces — so this is
/// bit-identical to [`coded_strip`] on zeroed lanes, minus the
/// destination read and the zeroing traffic.
///
/// # Safety
///
/// `out` must be valid for `LANES` writes and every row in `xs` must
/// hold at least `j + LANES` elements.
#[inline]
unsafe fn coded_strip_store<T: Scalar>(crow: &[T], xs: &[&[T]], out: *mut T, j: usize) {
    // SAFETY: forwarded caller contract.
    if unsafe { crate::simd::try_f25_coded_strip_store(crow, xs, out, j) } {
        return;
    }
    let mut local = [T::zero(); LANES];
    coded_strip(crow, xs, &mut local, j);
    // SAFETY: `out` is valid for `LANES` writes; plain stores.
    unsafe { std::ptr::copy_nonoverlapping(local.as_ptr(), out, LANES) };
}

/// The variable-width remainder strip (`cs.len() < LANES`).
fn coded_strip_tail<T: Scalar>(crow: &[T], xs: &[&[T]], cs: &mut [T], j: usize) {
    let kdim = crow.len();
    let w = cs.len();
    debug_assert!(w < LANES);
    let mut acc = [T::acc_zero(); LANES];
    for (aj, &cj) in acc.iter_mut().zip(cs.iter()) {
        *aj = cj.acc_lift();
    }
    let mut p0 = 0;
    while p0 < kdim {
        let pend = kdim.min(p0.saturating_add(T::FOLD_INTERVAL));
        for p in p0..pend {
            let aip = crow[p];
            if aip == T::zero() {
                continue;
            }
            let brow = &xs[p][j..j + w];
            for (aj, &bj) in acc[..w].iter_mut().zip(brow) {
                *aj = T::mac(*aj, aip, bj);
            }
        }
        p0 = pend;
        if p0 < kdim {
            for aj in acc[..w].iter_mut() {
                *aj = T::acc_fold(*aj);
            }
        }
    }
    for (cj, &aj) in cs.iter_mut().zip(acc[..w].iter()) {
        *cj = T::acc_finish(aj);
    }
}

/// Streams columns `j0..j1` of every output row (and optionally the
/// check row) in one pass over the input rows, [`PGROUP`] reduction
/// positions at a time. Returns the mismatch count of the check row
/// (`0` when `check` is `None`).
///
/// # Safety
///
/// Every pointer in `ptrs` must reference an initialized row of at
/// least `j1` elements, exclusively owned for columns `j0..j1` (no two
/// concurrent callers may overlap column ranges on the same rows).
#[allow(clippy::too_many_arguments)]
unsafe fn coded_block<T: Scalar, S: AsRef<[T]>>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    ptrs: &[SendPtr<T>],
    j0: usize,
    j1: usize,
    check: Option<(&[T], &[T])>,
    init: bool,
) -> usize {
    let kdim = x.len();
    debug_assert!(kdim > 0);
    debug_assert!(check.is_none() || kdim <= PGROUP);
    let mut mismatches = 0usize;
    let mut p0 = 0;
    while p0 < kdim {
        let pw = (kdim - p0).min(PGROUP);
        // In write mode the first reduction group computes each strip
        // into a zeroed stack-local and raw-copies it out: `acc_lift`
        // of zero is zero exactly in every domain, so this is
        // bit-identical to accumulating into zeroed rows — without ever
        // reading the destination, which may be recycled pool capacity
        // that was never initialized.
        let store = init && p0 == 0;
        // Resolve the group's row slices once; the column loop then
        // streams every slice exactly once.
        let mut xs: [&[T]; PGROUP] = [&[]; PGROUP];
        for (s, xr) in xs.iter_mut().zip(&x[p0..p0 + pw]) {
            *s = xr.as_ref();
        }
        let xs = &xs[..pw];
        let mut j = j0;
        while j + LANES <= j1 {
            for (r, pr) in ptrs.iter().enumerate() {
                let base = r * cstride + col0 + p0;
                if store {
                    // SAFETY: disjoint column range per the caller
                    // contract; the strip writes all `LANES` lanes and
                    // never reads the destination.
                    unsafe { coded_strip_store(&coeff[base..base + pw], xs, pr.0.add(j), j) };
                } else {
                    // SAFETY: disjoint column range per the caller contract.
                    let cs = unsafe { &mut *(pr.0.add(j) as *mut [T; LANES]) };
                    coded_strip(&coeff[base..base + pw], xs, cs, j);
                }
            }
            if let Some((w, expect)) = check {
                // A checked combine is always a single reduction group
                // (`kdim <= PGROUP`), so the prediction is a complete
                // from-zero strip: store mode applies.
                let mut pred = [T::zero(); LANES];
                // SAFETY: `pred` is a local array of `LANES` lanes.
                unsafe { coded_strip_store(&w[p0..p0 + pw], xs, pred.as_mut_ptr(), j) };
                for (pv, &ev) in pred.iter().zip(&expect[j..j + LANES]) {
                    mismatches += usize::from(*pv != ev);
                }
            }
            j += LANES;
        }
        if j < j1 {
            let wdt = j1 - j;
            for (r, pr) in ptrs.iter().enumerate() {
                let base = r * cstride + col0 + p0;
                if store {
                    let mut local = [T::zero(); LANES];
                    coded_strip_tail(&coeff[base..base + pw], xs, &mut local[..wdt], j);
                    // SAFETY: as above; the tail never crosses `j1`.
                    unsafe { std::ptr::copy_nonoverlapping(local.as_ptr(), pr.0.add(j), wdt) };
                } else {
                    // SAFETY: as above; the tail never crosses `j1`.
                    let cs = unsafe { std::slice::from_raw_parts_mut(pr.0.add(j), wdt) };
                    coded_strip_tail(&coeff[base..base + pw], xs, cs, j);
                }
            }
            if let Some((w, expect)) = check {
                let mut pred = [T::zero(); LANES];
                coded_strip_tail(&w[p0..p0 + pw], xs, &mut pred[..wdt], j);
                for (pv, &ev) in pred[..wdt].iter().zip(&expect[j..j1]) {
                    mismatches += usize::from(*pv != ev);
                }
            }
        }
        p0 += pw;
    }
    mismatches
}

fn check_shapes<T: Scalar, S: AsRef<[T]>>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &[Vec<T>],
    n: usize,
) {
    for xr in x {
        assert_eq!(xr.as_ref().len(), n, "input row length");
    }
    for o in outs {
        assert_eq!(o.len(), n, "output row length");
    }
    if let Some(rows) = outs.len().checked_sub(1) {
        assert!(
            coeff.len() >= rows * cstride + col0 + x.len(),
            "coefficient matrix too small"
        );
    }
}

/// `outs[r][j] += Σ_p coeff[r·cstride + col0 + p] · x[p][j]` for every
/// output row `r` and column `j`, streaming each input row exactly once
/// (per [`PGROUP`] group) while all output rows accumulate in the same
/// pass. Coefficients for consecutive `p` are contiguous, so a scheme
/// coefficient row needs no gathering. Fans output columns across the
/// persistent pool on large shapes — bit-for-bit identical to serial.
///
/// # Panics
///
/// Panics if row lengths differ from `n` or `coeff` is too small.
pub fn coded_combine_acc<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
) {
    check_shapes(coeff, cstride, col0, x, outs, n);
    let (kdim, rows) = (x.len(), outs.len());
    if rows == 0 || kdim == 0 || n == 0 {
        return;
    }
    combine_driver(coeff, cstride, col0, x, outs, n, false);
}

/// [`coded_combine_acc`] with overwrite semantics and **no
/// pre-zeroing**: prior contents (and lengths) of the output rows are
/// irrelevant — each row is cleared, given capacity for `n`, written
/// entirely by the streaming pass, and set to length `n`. The first
/// reduction group stores instead of accumulating, which on the coding
/// shapes (`k+m ≤ 16`, one group) means every output byte is touched
/// exactly once per call — no `memset` and no read-back of zeroes.
/// Bit-identical to [`coded_combine_acc`] on zeroed rows.
///
/// # Panics
///
/// Panics if input row lengths differ from `n` or `coeff` is too small.
pub fn coded_combine_write<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
) {
    for xr in x {
        assert_eq!(xr.as_ref().len(), n, "input row length");
    }
    let (kdim, rows) = (x.len(), outs.len());
    if let Some(r) = rows.checked_sub(1) {
        assert!(coeff.len() >= r * cstride + col0 + kdim, "coefficient matrix too small");
    }
    if rows == 0 {
        return;
    }
    if kdim == 0 || n == 0 {
        for o in outs.iter_mut() {
            o.clear();
            o.resize(n, T::zero());
        }
        return;
    }
    for o in outs.iter_mut() {
        o.clear();
        o.reserve(n);
    }
    combine_driver(coeff, cstride, col0, x, outs, n, true);
    for o in outs.iter_mut() {
        // SAFETY: the write-mode pass stored all `n` elements of every
        // row (the column partition covers `0..n` and the first group
        // stores unconditionally), within the reserved capacity.
        unsafe { o.set_len(n) };
    }
}

/// Shared fan-out driver: batches rows at [`MAX_FAN_ROWS`], partitions
/// columns across the pool, dispatches [`coded_block`].
fn combine_driver<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
    init: bool,
) {
    let (kdim, rows) = (x.len(), outs.len());
    let macs = rows.saturating_mul(kdim).saturating_mul(n);
    let (tasks, cols_per) = col_partition(n, LANES, macs);
    let mut done = 0;
    while done < rows {
        let take = (rows - done).min(MAX_FAN_ROWS);
        let mut ptrs = [SendPtr(std::ptr::null_mut::<T>()); MAX_FAN_ROWS];
        for (pr, o) in ptrs.iter_mut().zip(outs[done..done + take].iter_mut()) {
            *pr = SendPtr(o.as_mut_ptr());
        }
        let ptrs = &ptrs[..take];
        let cbase = &coeff[done * cstride..];
        if tasks <= 1 {
            // SAFETY: full column range, exclusive access via `outs`.
            unsafe { coded_block(cbase, cstride, col0, x, ptrs, 0, n, None, init) };
        } else {
            threadpool::run_tasks(tasks, &|t| {
                let j0 = t * cols_per;
                let j1 = n.min(j0 + cols_per);
                // SAFETY: tasks own disjoint LANES-aligned column ranges.
                unsafe { coded_block(cbase, cstride, col0, x, ptrs, j0, j1, None, init) };
            });
        }
        done += take;
    }
}

/// [`coded_combine_acc`] into freshly zeroed outputs (overwrite
/// semantics on rows that already have length `n`).
pub fn coded_combine_into<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
) {
    for o in outs.iter_mut() {
        for v in o.iter_mut() {
            *v = T::zero();
        }
    }
    coded_combine_acc(coeff, cstride, col0, x, outs, n);
}

/// [`coded_combine_acc`] with a fused redundant-equation check: the
/// same streaming pass also evaluates `pred[j] = Σ_p check_w[p]·x[p][j]`
/// and counts positions where it differs from `check_against` — the
/// §4.4 integrity verification rides the decode pass, so the worker
/// outputs are read once for both. Returns the mismatch count (a sum
/// over disjoint column ranges, hence thread-count independent).
///
/// # Panics
///
/// Panics on shape mismatches, `x.len() > CHECK_MAX_KDIM` (the check
/// row must complete within one register group), or
/// `outs.len() > CHECK_MAX_ROWS`.
#[allow(clippy::too_many_arguments)]
pub fn coded_combine_check_acc<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
    check_w: &[T],
    check_against: &[T],
) -> usize {
    check_shapes(coeff, cstride, col0, x, outs, n);
    check_driver(coeff, cstride, col0, x, outs, n, check_w, check_against, false)
}

/// [`coded_combine_check_acc`] with the no-pre-zeroing overwrite
/// semantics of [`coded_combine_write`]: output rows are cleared,
/// written entirely by the fused pass, and set to length `n`.
/// Bit-identical results and mismatch count.
///
/// # Panics
///
/// As [`coded_combine_check_acc`], with no requirement on the output
/// rows' prior lengths.
#[allow(clippy::too_many_arguments)]
pub fn coded_combine_check_write<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
    check_w: &[T],
    check_against: &[T],
) -> usize {
    for xr in x {
        assert_eq!(xr.as_ref().len(), n, "input row length");
    }
    if let Some(r) = outs.len().checked_sub(1) {
        assert!(coeff.len() >= r * cstride + col0 + x.len(), "coefficient matrix too small");
    }
    if n == 0 {
        for o in outs.iter_mut() {
            o.clear();
        }
    } else {
        for o in outs.iter_mut() {
            o.clear();
            o.reserve(n);
        }
    }
    let mm = check_driver(coeff, cstride, col0, x, outs, n, check_w, check_against, true);
    for o in outs.iter_mut() {
        // SAFETY: the write-mode pass stored all `n` elements of every
        // row (single reduction group — `kdim ≤ PGROUP` — storing
        // unconditionally over the full column partition).
        unsafe { o.set_len(n) };
    }
    mm
}

#[allow(clippy::too_many_arguments)]
fn check_driver<T: Scalar, S: AsRef<[T]> + Sync>(
    coeff: &[T],
    cstride: usize,
    col0: usize,
    x: &[S],
    outs: &mut [Vec<T>],
    n: usize,
    check_w: &[T],
    check_against: &[T],
    init: bool,
) -> usize {
    let (kdim, rows) = (x.len(), outs.len());
    assert!((1..=CHECK_MAX_KDIM).contains(&kdim), "check needs 1..=CHECK_MAX_KDIM inputs");
    assert!(rows <= CHECK_MAX_ROWS, "too many output rows for fused check");
    assert_eq!(check_w.len(), kdim, "check weight length");
    assert_eq!(check_against.len(), n, "check row length");
    if n == 0 {
        return 0;
    }
    let macs = (rows + 1).saturating_mul(kdim).saturating_mul(n);
    let (tasks, cols_per) = col_partition(n, LANES, macs);
    let mut ptrs = [SendPtr(std::ptr::null_mut::<T>()); MAX_FAN_ROWS];
    for (pr, o) in ptrs.iter_mut().zip(outs.iter_mut()) {
        *pr = SendPtr(o.as_mut_ptr());
    }
    let ptrs = &ptrs[..rows];
    let check = Some((check_w, check_against));
    if tasks <= 1 {
        // SAFETY: full column range, exclusive access via `outs`.
        return unsafe { coded_block(coeff, cstride, col0, x, ptrs, 0, n, check, init) };
    }
    let total = std::sync::atomic::AtomicUsize::new(0);
    threadpool::run_tasks(tasks, &|t| {
        let j0 = t * cols_per;
        let j1 = n.min(j0 + cols_per);
        // SAFETY: tasks own disjoint LANES-aligned column ranges.
        let mm = unsafe { coded_block(coeff, cstride, col0, x, ptrs, j0, j1, check, init) };
        if mm > 0 {
            total.fetch_add(mm, std::sync::atomic::Ordering::Relaxed);
        }
    });
    total.into_inner()
}

/// Rank-1 column-chunk update:
/// `outs[r][j0 + l] += coeff[r·cstride + col] · chunk[l]` for every
/// output row. This is the noise pass of the fused-RNG encode: a
/// freshly drawn chunk is applied to all encodings while it is still in
/// cache, so the noise row as a whole is never materialized. Serial by
/// design (chunks are cache-sized); rows with a zero coefficient are
/// skipped, which is the identity in every domain (the strip's
/// `acc_finish(acc_lift(v))` round-trip is `v` on canonical values).
///
/// # Panics
///
/// Panics if `chunk` does not fit in every output row at `j0` or
/// `coeff` is too small.
pub fn coded_axpy_acc<T: Scalar>(
    coeff: &[T],
    cstride: usize,
    col: usize,
    chunk: &[T],
    outs: &mut [Vec<T>],
    j0: usize,
) {
    let w = chunk.len();
    if let Some(rows) = outs.len().checked_sub(1) {
        assert!(coeff.len() > rows * cstride + col, "coefficient matrix too small");
    }
    if w == 0 {
        return;
    }
    let xs: [&[T]; 1] = [chunk];
    for (r, out) in outs.iter_mut().enumerate() {
        let cval = [coeff[r * cstride + col]];
        if cval[0] == T::zero() {
            continue;
        }
        let dst = &mut out[j0..j0 + w];
        let mut l = 0;
        while l + LANES <= w {
            let cs: &mut [T; LANES] = (&mut dst[l..l + LANES]).try_into().unwrap();
            coded_strip(&cval, &xs, cs, l);
            l += LANES;
        }
        if l < w {
            coded_strip_tail(&cval, &xs, &mut dst[l..], l);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::naive_coded_combine_acc;
    use dk_field::F25;

    fn rows_of(vals: &[Vec<u64>]) -> Vec<Vec<F25>> {
        vals.iter().map(|r| r.iter().map(|&v| F25::new(v)).collect()).collect()
    }

    #[test]
    fn combine_matches_naive_small() {
        let coeff: Vec<F25> = (0..3 * 4).map(|i| F25::new(i as u64 * 7 + 1)).collect();
        let x = rows_of(&[
            (0..21).map(|i| i * 3 + 1).collect(),
            (0..21).map(|i| i * 5 + 2).collect(),
            (0..21).map(|i| i * 11 + 3).collect(),
            (0..21).map(|i| i * 13 + 4).collect(),
        ]);
        let mut outs = vec![vec![F25::ZERO; 21]; 3];
        let mut want = outs.clone();
        coded_combine_acc(&coeff, 4, 0, &x, &mut outs, 21);
        naive_coded_combine_acc(&coeff, 4, 0, &x, &mut want);
        assert_eq!(outs, want);
    }

    #[test]
    fn combine_crosses_pgroup_boundary() {
        // kdim > PGROUP forces multiple register groups; the canonical
        // finish/lift round-trip between groups must be invisible.
        let kdim = PGROUP + 7;
        let n = 2 * LANES + 5;
        let coeff: Vec<F25> = (0..2 * kdim).map(|i| F25::new(i as u64 * 17 + 2)).collect();
        let x: Vec<Vec<F25>> =
            (0..kdim).map(|p| (0..n).map(|j| F25::new((p * n + j) as u64 + 1)).collect()).collect();
        let mut outs = vec![vec![F25::ZERO; n]; 2];
        let mut want = outs.clone();
        coded_combine_acc(&coeff, kdim, 0, &x, &mut outs, n);
        naive_coded_combine_acc(&coeff, kdim, 0, &x, &mut want);
        assert_eq!(outs, want);
    }

    #[test]
    fn combine_accumulates_and_into_overwrites() {
        let coeff: Vec<F25> = (0..2 * 2).map(|i| F25::new(i as u64 + 3)).collect();
        let x = rows_of(&[vec![1, 2, 3], vec![4, 5, 6]]);
        let mut acc = vec![vec![F25::new(100); 3], vec![F25::new(200); 3]];
        let mut want = acc.clone();
        coded_combine_acc(&coeff, 2, 0, &x, &mut acc, 3);
        naive_coded_combine_acc(&coeff, 2, 0, &x, &mut want);
        assert_eq!(acc, want);
        let mut stale = vec![vec![F25::new(999); 3], vec![F25::new(999); 3]];
        coded_combine_into(&coeff, 2, 0, &x, &mut stale, 3);
        let mut fresh = vec![vec![F25::ZERO; 3]; 2];
        naive_coded_combine_acc(&coeff, 2, 0, &x, &mut fresh);
        assert_eq!(stale, fresh);
    }

    #[test]
    fn check_counts_exact_mismatches() {
        let n = LANES + 9;
        let coeff: Vec<F25> = (0..2 * 3).map(|i| F25::new(i as u64 * 5 + 1)).collect();
        let w: Vec<F25> = (0..3).map(|i| F25::new(i as u64 + 11)).collect();
        let x: Vec<Vec<F25>> =
            (0..3).map(|p| (0..n).map(|j| F25::new((p + j * 3) as u64 + 1)).collect()).collect();
        let mut pred = vec![vec![F25::ZERO; n]];
        naive_coded_combine_acc(&w, 3, 0, &x, &mut pred);
        let mut expect = pred.pop().unwrap();
        // Clean row: zero mismatches, outputs equal the plain combine.
        let mut outs = vec![vec![F25::ZERO; n]; 2];
        assert_eq!(coded_combine_check_acc(&coeff, 3, 0, &x, &mut outs, n, &w, &expect), 0);
        let mut want = vec![vec![F25::ZERO; n]; 2];
        naive_coded_combine_acc(&coeff, 3, 0, &x, &mut want);
        assert_eq!(outs, want);
        // Corrupt three positions (one in the tail): exactly 3 mismatches.
        expect[0] += F25::ONE;
        expect[LANES - 1] += F25::ONE;
        expect[n - 1] += F25::ONE;
        let mut outs = vec![vec![F25::ZERO; n]; 2];
        assert_eq!(coded_combine_check_acc(&coeff, 3, 0, &x, &mut outs, n, &w, &expect), 3);
    }

    #[test]
    fn axpy_matches_combine_pass() {
        let n = 3 * LANES + 4;
        let kdim = 5;
        let coeff: Vec<F25> = (0..4 * kdim).map(|i| F25::new(i as u64 * 3 + 1)).collect();
        let noise: Vec<F25> = (0..n).map(|j| F25::new(j as u64 * 7 + 2)).collect();
        // Applying the noise row as one combine pass...
        let mut want = vec![vec![F25::new(5); n]; 4];
        let mut outs = want.clone();
        coded_combine_acc(&coeff, kdim, 2, std::slice::from_ref(&noise), &mut want, n);
        // ...must equal applying it in uneven column chunks.
        let mut j0 = 0;
        for (i, step) in [7usize, LANES, 2 * LANES + 3, n].iter().enumerate() {
            let j1 = n.min(j0 + step + i);
            coded_axpy_acc(&coeff, kdim, 2, &noise[j0..j1], &mut outs, j0);
            j0 = j1;
        }
        assert_eq!(outs, want);
    }

    #[test]
    fn degenerate_shapes() {
        let coeff = vec![F25::ONE; 4];
        let mut none: [Vec<F25>; 0] = [];
        // n == 0
        let mut outs: Vec<Vec<F25>> = vec![Vec::new(); 2];
        coded_combine_acc(&coeff, 2, 0, &[&[][..], &[]], &mut outs, 0);
        assert!(outs.iter().all(Vec::is_empty));
        let x0: [&[F25]; 1] = [&[]];
        assert_eq!(coded_combine_check_acc(&coeff, 2, 0, &x0, &mut none, 0, &[F25::ONE], &[]), 0);
        // no input rows / no output rows
        let empty: &[&[F25]] = &[];
        coded_combine_acc(&coeff, 2, 0, empty, &mut outs, 0);
        let x = [&[F25::ONE][..]];
        coded_combine_acc(&coeff, 2, 0, &x, &mut none, 1);
        // n == 1 exercises the pure-tail path.
        let mut one = vec![vec![F25::new(9)]];
        coded_combine_acc(&[F25::new(3)], 1, 0, &x, &mut one, 1);
        assert_eq!(one[0][0], F25::new(12));
        coded_axpy_acc(&[F25::new(2)], 1, 0, &[F25::new(5)], &mut one, 0);
        assert_eq!(one[0][0], F25::new(22));
    }

    #[test]
    fn write_mode_matches_acc_from_zero() {
        // Output rows arrive with garbage lengths and contents (even
        // length 0 with stale capacity): the write pass must produce
        // exactly what accumulating into zeroed rows would.
        let kdim = PGROUP + 5; // crosses into an accumulating group
        let n = 2 * LANES + 3;
        let coeff: Vec<F25> = (0..3 * kdim).map(|i| F25::new(i as u64 * 13 + 1)).collect();
        let x: Vec<Vec<F25>> =
            (0..kdim).map(|p| (0..n).map(|j| F25::new((p * 7 + j) as u64 + 1)).collect()).collect();
        let mut want = vec![vec![F25::ZERO; n]; 3];
        coded_combine_acc(&coeff, kdim, 0, &x, &mut want, n);
        let mut outs = vec![vec![F25::new(777); n + 9], Vec::with_capacity(n), vec![F25::ONE; 1]];
        coded_combine_write(&coeff, kdim, 0, &x, &mut outs, n);
        assert_eq!(outs, want);
        // Float domain too.
        let cf: Vec<f32> = (0..2 * 3).map(|i| i as f32 - 2.5).collect();
        let xf: Vec<Vec<f32>> =
            (0..3).map(|p| (0..n).map(|j| (p * n + j) as f32 * 0.25).collect()).collect();
        let mut wantf = vec![vec![0.0f32; n]; 2];
        coded_combine_acc(&cf, 3, 0, &xf, &mut wantf, n);
        let mut outf = vec![vec![9.9f32; 2], Vec::new()];
        coded_combine_write(&cf, 3, 0, &xf, &mut outf, n);
        assert_eq!(outf, wantf);
        // Degenerate: kdim == 0 and n == 0 still leave length-n rows.
        let none: [&[F25]; 0] = [];
        let mut outs = vec![vec![F25::ONE; 5]];
        coded_combine_write(&coeff, kdim, 0, &none, &mut outs, 4);
        assert_eq!(outs, vec![vec![F25::ZERO; 4]]);
        coded_combine_write(&coeff, kdim, 0, &none, &mut outs, 0);
        assert!(outs[0].is_empty());
    }

    #[test]
    fn check_write_matches_check_acc() {
        let n = 2 * LANES + 6;
        let kdim = 4;
        let coeff: Vec<F25> = (0..3 * kdim).map(|i| F25::new(i as u64 * 9 + 2)).collect();
        let w: Vec<F25> = (0..kdim).map(|i| F25::new(i as u64 + 5)).collect();
        let x: Vec<Vec<F25>> =
            (0..kdim).map(|p| (0..n).map(|j| F25::new((p + j * 5) as u64 + 1)).collect()).collect();
        let mut expect = vec![vec![F25::ZERO; n]];
        naive_coded_combine_acc(&w, kdim, 0, &x, &mut expect);
        let mut expect = expect.pop().unwrap();
        expect[3] += F25::ONE;
        expect[n - 1] += F25::ONE;
        let mut want = vec![vec![F25::ZERO; n]; 3];
        let mm_acc = coded_combine_check_acc(&coeff, kdim, 0, &x, &mut want, n, &w, &expect);
        let mut outs = vec![vec![F25::new(5); 1], Vec::new(), vec![F25::new(8); n + 4]];
        let mm_w = coded_combine_check_write(&coeff, kdim, 0, &x, &mut outs, n, &w, &expect);
        assert_eq!((mm_w, outs), (mm_acc, want));
        assert_eq!(mm_w, 2);
    }

    #[test]
    fn combine_matches_naive_floats() {
        // Float domain: the strip recurrence (and the PGROUP split's
        // identity lift/finish) must reproduce the naive order exactly.
        let kdim = PGROUP + 3;
        let n = LANES + 7;
        let coeff: Vec<f32> = (0..2 * kdim).map(|i| i as f32 * 0.25 - 3.0).collect();
        let x: Vec<Vec<f32>> = (0..kdim)
            .map(|p| (0..n).map(|j| ((p * n + j) % 13) as f32 * 0.5 - 2.0).collect())
            .collect();
        let mut outs = vec![vec![0.5f32; n]; 2];
        let mut want = outs.clone();
        coded_combine_acc(&coeff, kdim, 0, &x, &mut outs, n);
        naive_coded_combine_acc(&coeff, kdim, 0, &x, &mut want);
        assert_eq!(outs, want);
    }
}
