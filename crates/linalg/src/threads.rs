//! Thread-count policy for the multi-threaded kernels.
//!
//! The blocked matmul kernels split output rows across the persistent
//! worker pool (see the `threadpool` module). How many lanes they may
//! use is resolved here, in priority order:
//!
//! 1. a programmatic override set with [`set_max_threads`] (used by
//!    tests and embedders),
//! 2. the `DK_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! Partitioning is by disjoint output-row (or output-column) ranges, and
//! every element is computed by the identical scalar recurrence, so
//! results are **bit-for-bit independent of the thread count** — in the
//! float domain too, since no accumulation order ever crosses a
//! partition boundary.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_DEFAULT: OnceLock<usize> = OnceLock::new();

/// Overrides the kernel thread cap for this process (`0` clears the
/// override and falls back to `DK_THREADS` / detected parallelism).
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// The maximum number of threads a kernel may fan out to (always ≥ 1).
pub fn max_threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => *ENV_DEFAULT.get_or_init(|| {
            std::env::var("DK_THREADS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                })
        }),
        n => n,
    }
}

/// Kernels stay serial below this many multiply-accumulates: thread
/// spawn/join overhead (~tens of µs) swamps any win on tiny shapes.
pub const PAR_MAC_THRESHOLD: usize = 1 << 18;

/// Resolves the worker count for a kernel processing `units`
/// partitionable output units with `macs` total multiply-accumulates.
pub(crate) fn workers_for(units: usize, macs: usize) -> usize {
    if macs < PAR_MAC_THRESHOLD || units < 2 {
        return 1;
    }
    max_threads().clamp(1, units)
}

/// Whether a kernel over `units` partitionable output units and `macs`
/// multiply-accumulates would fan out under the current policy.
///
/// Callers that choose between layouts depending on threading (e.g. a
/// flat matmul that threads vs. row-at-a-time products that avoid a
/// split copy) should consult this instead of re-deriving the policy.
pub fn would_parallelize(units: usize, macs: usize) -> bool {
    workers_for(units, macs) > 1
}

/// Resolves a **column**-range fan-out as `(tasks, cols_per_task)`.
///
/// Row partitioning cannot split the coding shapes — `k+m` output rows
/// against an enormous `n` — so the streaming coded kernels partition
/// output columns instead. `cols_per_task` is a multiple of `align`
/// (the SIMD strip width) so no strip ever straddles a partition
/// boundary; columns are independent accumulations, so the split is
/// bit-exact at every thread count in both domains. Returns `(1, n)`
/// when the shape stays serial under [`workers_for`].
pub(crate) fn col_partition(n: usize, align: usize, macs: usize) -> (usize, usize) {
    debug_assert!(align > 0);
    let chunks = n.div_ceil(align.max(1));
    let workers = workers_for(chunks, macs);
    if workers <= 1 {
        return (1, n);
    }
    let cols_per = chunks.div_ceil(workers) * align;
    (n.div_ceil(cols_per), cols_per)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the override is process-global state, and the test
    // harness runs #[test] functions concurrently.
    #[test]
    fn override_policy_and_serial_threshold() {
        set_max_threads(3);
        assert_eq!(max_threads(), 3);
        assert_eq!(workers_for(64, PAR_MAC_THRESHOLD), 3);
        // Below the MAC threshold or with a single unit: stay serial.
        assert_eq!(workers_for(64, PAR_MAC_THRESHOLD - 1), 1);
        assert_eq!(workers_for(1, PAR_MAC_THRESHOLD), 1);
        // Column partitioning: aligned ranges covering n exactly, serial
        // below the MAC threshold or when a single aligned chunk covers
        // everything.
        let (tasks, cols) = col_partition(1 << 14, 16, PAR_MAC_THRESHOLD);
        assert_eq!(tasks, 3);
        assert_eq!(cols % 16, 0);
        assert!(cols * tasks >= 1 << 14 && cols * (tasks - 1) < 1 << 14);
        assert_eq!(col_partition(1 << 14, 16, PAR_MAC_THRESHOLD - 1), (1, 1 << 14));
        assert_eq!(col_partition(16, 16, PAR_MAC_THRESHOLD), (1, 16));
        assert_eq!(col_partition(0, 16, PAR_MAC_THRESHOLD), (1, 0));
        set_max_threads(0);
        assert!(max_threads() >= 1);
    }
}
