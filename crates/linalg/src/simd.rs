//! Hand-vectorized `F25` inner kernels for x86-64.
//!
//! The generic lane-strip kernels in [`crate::matmul`] are written so
//! the autovectorizer *can* emit SIMD for them, and it does for floats —
//! but for the 25-bit field the widening `u32×u32→u64` multiply chain
//! defeats both the loop vectorizer (it keeps the accumulator strip
//! stack-resident) and the SLP vectorizer (it leaves eight scalar
//! `imul`s). The fix that actually sticks is ~60 lines of explicit
//! SSE2: canonical `F25` values are `u64`s below `2^25`, so the packed
//! widening multiply (`pmuludq`, which reads the low 32 bits of each
//! 64-bit lane) computes two exact unreduced products per instruction,
//! and `paddq` accumulates them — the same delayed-Barrett-fold
//! schedule as the generic kernel, two lanes at a time. An AVX2 version
//! (four lanes per instruction) is selected at runtime when the CPU has
//! it.
//!
//! Dispatch is by `TypeId` from the generic kernels: the comparison is
//! against a monomorphized constant, so every non-`F25` instantiation
//! const-folds the check away and keeps its portable loop. Field
//! arithmetic is exact ([`crate::Scalar::EXACT`]), so lane splits and
//! fold placement cannot change any result: these kernels remain
//! bit-for-bit identical to [`crate::reference`], which the
//! `kernel_equivalence` and proptest suites check on every run.
//!
//! On non-x86-64 targets every `try_*` entry point returns `false` and
//! the portable kernels run unchanged.

use crate::matmul::LANES;
use crate::scalar::Scalar;
use std::any::TypeId;

/// `true` iff the monomorphized element type is exactly [`dk_field::F25`].
/// Compares two constants, so it folds to `true`/`false` at compile time.
#[inline(always)]
fn is_f25<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<dk_field::F25>()
}

/// `C strip += arow · B[:, j..j+LANES]` — the full-width matmul strip.
/// Returns `false` (caller runs the portable kernel) unless `T` is
/// `F25` on x86-64.
#[inline(always)]
pub(crate) fn try_f25_lane_strip<T: Scalar>(
    arow: &[T],
    b: &[T],
    cs: &mut [T; LANES],
    n: usize,
    j: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if is_f25::<T>() {
            // SAFETY: `T == F25` (TypeId-checked), so these casts are
            // identities; `F25` is `repr(transparent)` over `u64`.
            let (arow, b, cs) = unsafe {
                (
                    cast_slice::<T>(arow),
                    cast_slice::<T>(b),
                    &mut *(cs as *mut [T; LANES] as *mut [dk_field::F25; LANES]),
                )
            };
            // SAFETY: strip callers guarantee `j + LANES <= n` and
            // `b.len() == k * n`; SSE2 is baseline on x86-64 and the
            // AVX2 body only runs behind `is_x86_feature_detected!`.
            unsafe {
                if x86::has_avx2() {
                    x86::lane_strip_avx2(arow, b, cs, n, j);
                } else {
                    x86::lane_strip_sse2(arow, b, cs, n, j);
                }
            }
            return true;
        }
    }
    let _ = (arow, b, cs, n, j);
    false
}

/// `C[rows×n] = A[rows×k] · Bᵀ` (`B` stored `n×k`) — the dot-orientation
/// block, vectorized along the reduction dimension. Returns `false`
/// unless `T` is `F25` on x86-64.
pub(crate) fn try_f25_a_bt_block<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    rows: usize,
    k: usize,
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if is_f25::<T>() {
            // SAFETY: identity casts as in `try_f25_lane_strip`.
            let (a, b, c) = unsafe {
                (
                    cast_slice::<T>(a),
                    cast_slice::<T>(b),
                    std::slice::from_raw_parts_mut(c.as_mut_ptr() as *mut dk_field::F25, c.len()),
                )
            };
            let avx2 = x86::has_avx2();
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                for (j, cj) in c[i * n..(i + 1) * n].iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    // SAFETY: equal-length rows; AVX2 body is detection-gated.
                    *cj = unsafe {
                        if avx2 {
                            x86::dot_avx2(arow, brow)
                        } else {
                            x86::dot_sse2(arow, brow)
                        }
                    };
                }
            }
            return true;
        }
    }
    let _ = (a, b, c, rows, k, n);
    false
}

/// `C strip += Σ_p crow[p] · xs[p][j..j+LANES]` — the coded-combine
/// strip, where each reduction position reads its **own** row slice
/// instead of a stride of one flat matrix. Returns `false` unless `T`
/// is `F25` on x86-64 and the group fits one register broadcast pass.
#[inline(always)]
pub(crate) fn try_f25_coded_strip<T: Scalar>(
    crow: &[T],
    xs: &[&[T]],
    cs: &mut [T; LANES],
    j: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        // A coefficient group never exceeds 16 positions (the caller
        // p-groups at that width), so the canonical strip init plus all
        // products stay far below the u64 budget — no mid-strip folds.
        if is_f25::<T>() && crow.len() <= 16 {
            debug_assert_eq!(xs.len(), crow.len());
            // SAFETY: identity casts as in `try_f25_lane_strip`.
            let crow_f = unsafe { cast_slice::<T>(crow) };
            let mut xp = [std::ptr::null::<dk_field::F25>(); 16];
            for (d, s) in xp.iter_mut().zip(xs.iter()) {
                debug_assert!(s.len() >= j + LANES);
                *d = s.as_ptr() as *const dk_field::F25;
            }
            let cs_f = unsafe { &mut *(cs as *mut [T; LANES] as *mut [dk_field::F25; LANES]) };
            // SAFETY: strip callers guarantee `j + LANES` elements in
            // every row; the AVX2 body is detection-gated.
            unsafe {
                if x86::has_avx2() {
                    x86::coded_strip_avx2(crow_f, &xp[..crow_f.len()], cs_f, j);
                } else {
                    x86::coded_strip_sse2(crow_f, &xp[..crow_f.len()], cs_f, j);
                }
            }
            return true;
        }
    }
    let _ = (crow, xs, cs, j);
    false
}

/// Store-mode variant of [`try_f25_coded_strip`]: accumulators start
/// from the canonical lift of zero and the finished lanes are written
/// straight through `out` — the destination is never read, so it may
/// be uninitialized (recycled pool capacity).
///
/// # Safety
///
/// `out` must be valid for [`LANES`] writes and every row in `xs` must
/// hold at least `j + LANES` elements.
pub(crate) unsafe fn try_f25_coded_strip_store<T: Scalar>(
    crow: &[T],
    xs: &[&[T]],
    out: *mut T,
    j: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if is_f25::<T>() && crow.len() <= 16 {
            debug_assert_eq!(xs.len(), crow.len());
            // SAFETY: identity casts as in `try_f25_lane_strip`.
            let crow_f = unsafe { cast_slice::<T>(crow) };
            let mut xp = [std::ptr::null::<dk_field::F25>(); 16];
            for (d, s) in xp.iter_mut().zip(xs.iter()) {
                debug_assert!(s.len() >= j + LANES);
                *d = s.as_ptr() as *const dk_field::F25;
            }
            let out_f = out as *mut dk_field::F25;
            // SAFETY: caller guarantees `j + LANES` elements per row and
            // `LANES` writable slots at `out`; AVX2 body detection-gated.
            unsafe {
                if x86::has_avx2() {
                    x86::coded_strip_store_avx2(crow_f, &xp[..crow_f.len()], out_f, j);
                } else {
                    x86::coded_strip_store_sse2(crow_f, &xp[..crow_f.len()], out_f, j);
                }
            }
            return true;
        }
    }
    let _ = (crow, xs, out, j);
    false
}

/// Whether the direct strided `Aᵀ·B` path applies to `T`: `F25` on
/// x86-64. Const-folds per monomorphization like the other dispatches.
#[inline(always)]
pub(crate) fn has_f25_at_b_direct<T: Scalar>() -> bool {
    cfg!(target_arch = "x86_64") && is_f25::<T>()
}

/// `C[rows×n] = Aᵀ·B` output rows `i0..i0+rows` (with `A` stored
/// `k×m`), reading `A`'s column `i` directly at stride `m` — no packed
/// panel. `c` covers only the `rows × n` slice being produced. Callers
/// must have checked [`has_f25_at_b_direct`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn f25_at_b_rows<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    i0: usize,
    rows: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: identity casts as in `try_f25_lane_strip`.
        let (a, b, c) = unsafe {
            (
                cast_slice::<T>(a),
                cast_slice::<T>(b),
                std::slice::from_raw_parts_mut(c.as_mut_ptr() as *mut dk_field::F25, c.len()),
            )
        };
        let avx2 = x86::has_avx2();
        for i in i0..i0 + rows {
            let crow = &mut c[(i - i0) * n..(i - i0 + 1) * n];
            let mut j = 0;
            while j + LANES <= n {
                let cs: &mut [dk_field::F25; LANES] =
                    (&mut crow[j..j + LANES]).try_into().unwrap();
                // SAFETY: `j + LANES <= n`; AVX2 body is detection-gated.
                unsafe {
                    if avx2 {
                        x86::at_b_strip_avx2(a, i, m, b, cs, n, j);
                    } else {
                        x86::at_b_strip_sse2(a, i, m, b, cs, n, j);
                    }
                }
                j += LANES;
            }
            if j < n {
                at_b_tail(a, i, m, b, &mut crow[j..], n, j, k);
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (a, b, c, i0, rows, m, k, n);
        unreachable!("has_f25_at_b_direct gates this path to x86-64");
    }
}

/// Scalar remainder columns of the direct `Aᵀ·B` path: the standard
/// delayed-reduction recurrence (ascending `p`, zero-skip, folds at
/// `FOLD_INTERVAL` positions) with the strided coefficient read.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
fn at_b_tail(
    a: &[dk_field::F25],
    i: usize,
    m: usize,
    b: &[dk_field::F25],
    ctail: &mut [dk_field::F25],
    n: usize,
    j0: usize,
    k: usize,
) {
    use dk_field::F25;
    for (l, cj) in ctail.iter_mut().enumerate() {
        let j = j0 + l;
        let mut acc = cj.acc_lift();
        let mut p0 = 0;
        while p0 < k {
            let pend = k.min(p0.saturating_add(<F25 as Scalar>::FOLD_INTERVAL));
            for p in p0..pend {
                let aip = a[p * m + i];
                if aip == <F25 as Scalar>::zero() {
                    continue;
                }
                acc = <F25 as Scalar>::mac(acc, aip, b[p * n + j]);
            }
            p0 = pend;
            if p0 < k {
                acc = <F25 as Scalar>::acc_fold(acc);
            }
        }
        *cj = <F25 as Scalar>::acc_finish(acc);
    }
}

/// Reinterprets `&[T]` as `&[F25]`. Caller must have proven `T == F25`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn cast_slice<T: 'static>(s: &[T]) -> &[dk_field::F25] {
    debug_assert!(is_f25::<T>());
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const dk_field::F25, s.len()) }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LANES;
    use crate::scalar::Scalar;
    use core::arch::x86_64::*;
    use dk_field::F25;
    use std::sync::OnceLock;

    // The strip kernels hard-code their register allocation: 16 lanes
    // are eight SSE2 or four AVX2 accumulators.
    const _: () = assert!(LANES == 16);

    /// One fold chunk: the per-lane unreduced-product budget of the
    /// `u64` accumulator (2^14 for the 25-bit prime).
    const CHUNK: usize = <F25 as Scalar>::FOLD_INTERVAL;

    pub(super) fn has_avx2() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// Barrett-folds both `u64` lanes back to canonical range.
    #[inline(always)]
    unsafe fn fold2(v: __m128i) -> __m128i {
        let mut t = [0u64; 2];
        unsafe { _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, v) };
        _mm_set_epi64x(
            F25::reduce_u64(t[1]).value() as i64,
            F25::reduce_u64(t[0]).value() as i64,
        )
    }

    /// Reduces both lanes to canonical `F25` and stores them at `out`.
    #[inline(always)]
    unsafe fn finish2(out: *mut F25, v: __m128i) {
        let mut t = [0u64; 2];
        unsafe {
            _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, v);
            *out = F25::reduce_u64(t[0]);
            *out.add(1) = F25::reduce_u64(t[1]);
        }
    }

    /// Reduces both `u64` lanes to canonical `F25` entirely
    /// in-register, for lanes bounded by the coded-strip budget:
    /// at most `PGROUP = 16` products plus one
    /// canonical carry-in, i.e. `v < 2^25 + 16·(P25−1)² < 2^54.1`.
    ///
    /// Two pseudo-Mersenne folds (`2^25 ≡ 39 (mod P25)`) bring the
    /// value under `2·P25`, then one masked subtract lands canonical —
    /// the canonical residue is unique, so the bits match the scalar
    /// Barrett [`F25::reduce_u64`] exactly. After the first fold
    /// `v₁ ≤ 2^25 + (2^29)·39 < 2^34.3`; after the second
    /// `v₂ ≤ 2^25 + 625·39 < 2·P25` and fits in 31 bits, so the
    /// 32-bit signed compare used for the subtract mask is exact (the
    /// high dwords are zero on both sides and compare false).
    #[inline(always)]
    unsafe fn reduce2_coded(v: __m128i) -> __m128i {
        {
            let mask = _mm_set1_epi64x((1i64 << 25) - 1);
            let c39 = _mm_set1_epi64x(39);
            let v1 = _mm_add_epi64(
                _mm_and_si128(v, mask),
                _mm_mul_epu32(_mm_srli_epi64(v, 25), c39),
            );
            let v2 = _mm_add_epi64(
                _mm_and_si128(v1, mask),
                _mm_mul_epu32(_mm_srli_epi64(v1, 25), c39),
            );
            let p = _mm_set1_epi64x(dk_field::P25 as i64);
            let gt = _mm_cmpgt_epi32(v2, _mm_set1_epi64x((dk_field::P25 - 1) as i64));
            _mm_sub_epi64(v2, _mm_and_si128(gt, p))
        }
    }

    /// Four-lane AVX2 counterpart of [`reduce2_coded`]; same `< 2^54.1`
    /// input bound, same canonical result.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce4_coded(v: __m256i) -> __m256i {
        {
            let mask = _mm256_set1_epi64x((1i64 << 25) - 1);
            let c39 = _mm256_set1_epi64x(39);
            let v1 = _mm256_add_epi64(
                _mm256_and_si256(v, mask),
                _mm256_mul_epu32(_mm256_srli_epi64(v, 25), c39),
            );
            let v2 = _mm256_add_epi64(
                _mm256_and_si256(v1, mask),
                _mm256_mul_epu32(_mm256_srli_epi64(v1, 25), c39),
            );
            let p = _mm256_set1_epi64x(dk_field::P25 as i64);
            let gt = _mm256_cmpgt_epi32(v2, _mm256_set1_epi64x((dk_field::P25 - 1) as i64));
            _mm256_sub_epi64(v2, _mm256_and_si256(gt, p))
        }
    }

    /// SSE2 matmul strip: sixteen column accumulators in eight `xmm`
    /// registers, two exact widening products per `pmuludq`.
    ///
    /// # Safety
    ///
    /// Requires `j + LANES <= n`, `b.len() >= arow.len() * n`.
    pub(super) unsafe fn lane_strip_sse2(
        arow: &[F25],
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = arow.len();
            let cp = cs.as_ptr() as *const __m128i;
            // acc starts from the lifted C strip, exactly like the
            // portable kernel (`acc_lift` is the canonical value).
            let mut a0 = _mm_loadu_si128(cp);
            let mut a1 = _mm_loadu_si128(cp.add(1));
            let mut a2 = _mm_loadu_si128(cp.add(2));
            let mut a3 = _mm_loadu_si128(cp.add(3));
            let mut a4 = _mm_loadu_si128(cp.add(4));
            let mut a5 = _mm_loadu_si128(cp.add(5));
            let mut a6 = _mm_loadu_si128(cp.add(6));
            let mut a7 = _mm_loadu_si128(cp.add(7));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = arow.get_unchecked(p).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m128i;
                    a0 = _mm_add_epi64(a0, _mm_mul_epu32(av, _mm_loadu_si128(bp)));
                    a1 = _mm_add_epi64(a1, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(1))));
                    a2 = _mm_add_epi64(a2, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(2))));
                    a3 = _mm_add_epi64(a3, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(3))));
                    a4 = _mm_add_epi64(a4, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(4))));
                    a5 = _mm_add_epi64(a5, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(5))));
                    a6 = _mm_add_epi64(a6, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(6))));
                    a7 = _mm_add_epi64(a7, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(7))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold2(a0);
                    a1 = fold2(a1);
                    a2 = fold2(a2);
                    a3 = fold2(a3);
                    a4 = fold2(a4);
                    a5 = fold2(a5);
                    a6 = fold2(a6);
                    a7 = fold2(a7);
                }
            }
            let out = cs.as_mut_ptr();
            finish2(out, a0);
            finish2(out.add(2), a1);
            finish2(out.add(4), a2);
            finish2(out.add(6), a3);
            finish2(out.add(8), a4);
            finish2(out.add(10), a5);
            finish2(out.add(12), a6);
            finish2(out.add(14), a7);
        }
    }

    /// Folds all four `u64` lanes back to canonical range.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold4(v: __m256i) -> __m256i {
        let mut t = [0u64; 4];
        unsafe { _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, v) };
        _mm256_set_epi64x(
            F25::reduce_u64(t[3]).value() as i64,
            F25::reduce_u64(t[2]).value() as i64,
            F25::reduce_u64(t[1]).value() as i64,
            F25::reduce_u64(t[0]).value() as i64,
        )
    }

    /// AVX2 matmul strip: sixteen column accumulators in four `ymm`
    /// registers, four exact widening products per `vpmuludq`.
    ///
    /// # Safety
    ///
    /// As [`lane_strip_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_strip_avx2(
        arow: &[F25],
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = arow.len();
            let cp = cs.as_ptr() as *const __m256i;
            let mut a0 = _mm256_loadu_si256(cp);
            let mut a1 = _mm256_loadu_si256(cp.add(1));
            let mut a2 = _mm256_loadu_si256(cp.add(2));
            let mut a3 = _mm256_loadu_si256(cp.add(3));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = arow.get_unchecked(p).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm256_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m256i;
                    a0 = _mm256_add_epi64(a0, _mm256_mul_epu32(av, _mm256_loadu_si256(bp)));
                    a1 = _mm256_add_epi64(a1, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(1))));
                    a2 = _mm256_add_epi64(a2, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(2))));
                    a3 = _mm256_add_epi64(a3, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(3))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold4(a0);
                    a1 = fold4(a1);
                    a2 = fold4(a2);
                    a3 = fold4(a3);
                }
            }
            let mut t = [0u64; LANES];
            _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, a0);
            _mm256_storeu_si256(t.as_mut_ptr().add(4) as *mut __m256i, a1);
            _mm256_storeu_si256(t.as_mut_ptr().add(8) as *mut __m256i, a2);
            _mm256_storeu_si256(t.as_mut_ptr().add(12) as *mut __m256i, a3);
            for (c, &v) in cs.iter_mut().zip(t.iter()) {
                *c = F25::reduce_u64(v);
            }
        }
    }

    /// SSE2 coded-combine strip: like [`lane_strip_sse2`] but each
    /// reduction position `p` loads from its own row pointer `xp[p]`
    /// (the stacked coding rows are separate workspace vectors, never
    /// copied flat). At most 16 positions per call — the canonical
    /// strip init plus 16 unreduced products stay below `2^55`, so no
    /// mid-strip folds are needed (`reduce_u64` takes any `u64`).
    ///
    /// # Safety
    ///
    /// Every `xp[p]` must be valid for `j + LANES` elements.
    pub(super) unsafe fn coded_strip_sse2(
        crow: &[F25],
        xp: &[*const F25],
        cs: &mut [F25; LANES],
        j: usize,
    ) {
        unsafe {
            let cp = cs.as_ptr() as *const __m128i;
            let mut a0 = _mm_loadu_si128(cp);
            let mut a1 = _mm_loadu_si128(cp.add(1));
            let mut a2 = _mm_loadu_si128(cp.add(2));
            let mut a3 = _mm_loadu_si128(cp.add(3));
            let mut a4 = _mm_loadu_si128(cp.add(4));
            let mut a5 = _mm_loadu_si128(cp.add(5));
            let mut a6 = _mm_loadu_si128(cp.add(6));
            let mut a7 = _mm_loadu_si128(cp.add(7));
            for (p, &xr) in xp.iter().enumerate() {
                let aip = crow.get_unchecked(p).value();
                if aip == 0 {
                    continue;
                }
                let av = _mm_set1_epi64x(aip as i64);
                let bp = xr.add(j) as *const __m128i;
                a0 = _mm_add_epi64(a0, _mm_mul_epu32(av, _mm_loadu_si128(bp)));
                a1 = _mm_add_epi64(a1, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(1))));
                a2 = _mm_add_epi64(a2, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(2))));
                a3 = _mm_add_epi64(a3, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(3))));
                a4 = _mm_add_epi64(a4, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(4))));
                a5 = _mm_add_epi64(a5, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(5))));
                a6 = _mm_add_epi64(a6, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(6))));
                a7 = _mm_add_epi64(a7, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(7))));
            }
            let out = cs.as_mut_ptr() as *mut __m128i;
            _mm_storeu_si128(out, reduce2_coded(a0));
            _mm_storeu_si128(out.add(1), reduce2_coded(a1));
            _mm_storeu_si128(out.add(2), reduce2_coded(a2));
            _mm_storeu_si128(out.add(3), reduce2_coded(a3));
            _mm_storeu_si128(out.add(4), reduce2_coded(a4));
            _mm_storeu_si128(out.add(5), reduce2_coded(a5));
            _mm_storeu_si128(out.add(6), reduce2_coded(a6));
            _mm_storeu_si128(out.add(7), reduce2_coded(a7));
        }
    }

    /// AVX2 coded-combine strip: four `ymm` accumulators, per-position
    /// row pointers as in [`coded_strip_sse2`].
    ///
    /// # Safety
    ///
    /// As [`coded_strip_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn coded_strip_avx2(
        crow: &[F25],
        xp: &[*const F25],
        cs: &mut [F25; LANES],
        j: usize,
    ) {
        unsafe {
            let cp = cs.as_ptr() as *const __m256i;
            let mut a0 = _mm256_loadu_si256(cp);
            let mut a1 = _mm256_loadu_si256(cp.add(1));
            let mut a2 = _mm256_loadu_si256(cp.add(2));
            let mut a3 = _mm256_loadu_si256(cp.add(3));
            for (p, &xr) in xp.iter().enumerate() {
                let aip = crow.get_unchecked(p).value();
                if aip == 0 {
                    continue;
                }
                let av = _mm256_set1_epi64x(aip as i64);
                let bp = xr.add(j) as *const __m256i;
                a0 = _mm256_add_epi64(a0, _mm256_mul_epu32(av, _mm256_loadu_si256(bp)));
                a1 = _mm256_add_epi64(a1, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(1))));
                a2 = _mm256_add_epi64(a2, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(2))));
                a3 = _mm256_add_epi64(a3, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(3))));
            }
            let out = cs.as_mut_ptr() as *mut __m256i;
            _mm256_storeu_si256(out, reduce4_coded(a0));
            _mm256_storeu_si256(out.add(1), reduce4_coded(a1));
            _mm256_storeu_si256(out.add(2), reduce4_coded(a2));
            _mm256_storeu_si256(out.add(3), reduce4_coded(a3));
        }
    }

    /// SSE2 coded-combine strip, store mode: the accumulators start at
    /// zero (the canonical lift of a zeroed strip, so bit-identical to
    /// accumulating into zeroed lanes) and the finished values go
    /// straight through `out` — the destination is never read.
    ///
    /// # Safety
    ///
    /// As [`coded_strip_sse2`], plus `out` must be valid for [`LANES`]
    /// writes.
    pub(super) unsafe fn coded_strip_store_sse2(
        crow: &[F25],
        xp: &[*const F25],
        out: *mut F25,
        j: usize,
    ) {
        unsafe {
            let mut a0 = _mm_setzero_si128();
            let mut a1 = _mm_setzero_si128();
            let mut a2 = _mm_setzero_si128();
            let mut a3 = _mm_setzero_si128();
            let mut a4 = _mm_setzero_si128();
            let mut a5 = _mm_setzero_si128();
            let mut a6 = _mm_setzero_si128();
            let mut a7 = _mm_setzero_si128();
            for (p, &xr) in xp.iter().enumerate() {
                let aip = crow.get_unchecked(p).value();
                if aip == 0 {
                    continue;
                }
                let av = _mm_set1_epi64x(aip as i64);
                let bp = xr.add(j) as *const __m128i;
                a0 = _mm_add_epi64(a0, _mm_mul_epu32(av, _mm_loadu_si128(bp)));
                a1 = _mm_add_epi64(a1, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(1))));
                a2 = _mm_add_epi64(a2, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(2))));
                a3 = _mm_add_epi64(a3, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(3))));
                a4 = _mm_add_epi64(a4, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(4))));
                a5 = _mm_add_epi64(a5, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(5))));
                a6 = _mm_add_epi64(a6, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(6))));
                a7 = _mm_add_epi64(a7, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(7))));
            }
            let op = out as *mut __m128i;
            _mm_storeu_si128(op, reduce2_coded(a0));
            _mm_storeu_si128(op.add(1), reduce2_coded(a1));
            _mm_storeu_si128(op.add(2), reduce2_coded(a2));
            _mm_storeu_si128(op.add(3), reduce2_coded(a3));
            _mm_storeu_si128(op.add(4), reduce2_coded(a4));
            _mm_storeu_si128(op.add(5), reduce2_coded(a5));
            _mm_storeu_si128(op.add(6), reduce2_coded(a6));
            _mm_storeu_si128(op.add(7), reduce2_coded(a7));
        }
    }

    /// AVX2 coded-combine strip, store mode: zero-initialized `ymm`
    /// accumulators, finished lanes written straight through `out`.
    ///
    /// # Safety
    ///
    /// As [`coded_strip_store_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn coded_strip_store_avx2(
        crow: &[F25],
        xp: &[*const F25],
        out: *mut F25,
        j: usize,
    ) {
        unsafe {
            let mut a0 = _mm256_setzero_si256();
            let mut a1 = _mm256_setzero_si256();
            let mut a2 = _mm256_setzero_si256();
            let mut a3 = _mm256_setzero_si256();
            for (p, &xr) in xp.iter().enumerate() {
                let aip = crow.get_unchecked(p).value();
                if aip == 0 {
                    continue;
                }
                let av = _mm256_set1_epi64x(aip as i64);
                let bp = xr.add(j) as *const __m256i;
                a0 = _mm256_add_epi64(a0, _mm256_mul_epu32(av, _mm256_loadu_si256(bp)));
                a1 = _mm256_add_epi64(a1, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(1))));
                a2 = _mm256_add_epi64(a2, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(2))));
                a3 = _mm256_add_epi64(a3, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(3))));
            }
            let op = out as *mut __m256i;
            _mm256_storeu_si256(op, reduce4_coded(a0));
            _mm256_storeu_si256(op.add(1), reduce4_coded(a1));
            _mm256_storeu_si256(op.add(2), reduce4_coded(a2));
            _mm256_storeu_si256(op.add(3), reduce4_coded(a3));
        }
    }

    /// SSE2 strided `Aᵀ·B` strip: [`lane_strip_sse2`] with the
    /// coefficient read `a[p*m + i]` (column `i` of the `k×m` operand)
    /// instead of a packed panel row — same zero-skip, same chunked
    /// fold schedule, so bit-identical to the packed path.
    ///
    /// # Safety
    ///
    /// Requires `j + LANES <= n`, `a.len() == k*m`, `b.len() >= k*n`.
    pub(super) unsafe fn at_b_strip_sse2(
        a: &[F25],
        i: usize,
        m: usize,
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = a.len() / m;
            let cp = cs.as_ptr() as *const __m128i;
            let mut a0 = _mm_loadu_si128(cp);
            let mut a1 = _mm_loadu_si128(cp.add(1));
            let mut a2 = _mm_loadu_si128(cp.add(2));
            let mut a3 = _mm_loadu_si128(cp.add(3));
            let mut a4 = _mm_loadu_si128(cp.add(4));
            let mut a5 = _mm_loadu_si128(cp.add(5));
            let mut a6 = _mm_loadu_si128(cp.add(6));
            let mut a7 = _mm_loadu_si128(cp.add(7));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = a.get_unchecked(p * m + i).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m128i;
                    a0 = _mm_add_epi64(a0, _mm_mul_epu32(av, _mm_loadu_si128(bp)));
                    a1 = _mm_add_epi64(a1, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(1))));
                    a2 = _mm_add_epi64(a2, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(2))));
                    a3 = _mm_add_epi64(a3, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(3))));
                    a4 = _mm_add_epi64(a4, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(4))));
                    a5 = _mm_add_epi64(a5, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(5))));
                    a6 = _mm_add_epi64(a6, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(6))));
                    a7 = _mm_add_epi64(a7, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(7))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold2(a0);
                    a1 = fold2(a1);
                    a2 = fold2(a2);
                    a3 = fold2(a3);
                    a4 = fold2(a4);
                    a5 = fold2(a5);
                    a6 = fold2(a6);
                    a7 = fold2(a7);
                }
            }
            let out = cs.as_mut_ptr();
            finish2(out, a0);
            finish2(out.add(2), a1);
            finish2(out.add(4), a2);
            finish2(out.add(6), a3);
            finish2(out.add(8), a4);
            finish2(out.add(10), a5);
            finish2(out.add(12), a6);
            finish2(out.add(14), a7);
        }
    }

    /// AVX2 strided `Aᵀ·B` strip.
    ///
    /// # Safety
    ///
    /// As [`at_b_strip_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn at_b_strip_avx2(
        a: &[F25],
        i: usize,
        m: usize,
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = a.len() / m;
            let cp = cs.as_ptr() as *const __m256i;
            let mut a0 = _mm256_loadu_si256(cp);
            let mut a1 = _mm256_loadu_si256(cp.add(1));
            let mut a2 = _mm256_loadu_si256(cp.add(2));
            let mut a3 = _mm256_loadu_si256(cp.add(3));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = a.get_unchecked(p * m + i).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm256_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m256i;
                    a0 = _mm256_add_epi64(a0, _mm256_mul_epu32(av, _mm256_loadu_si256(bp)));
                    a1 = _mm256_add_epi64(a1, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(1))));
                    a2 = _mm256_add_epi64(a2, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(2))));
                    a3 = _mm256_add_epi64(a3, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(3))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold4(a0);
                    a1 = fold4(a1);
                    a2 = fold4(a2);
                    a3 = fold4(a3);
                }
            }
            let mut t = [0u64; LANES];
            _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, a0);
            _mm256_storeu_si256(t.as_mut_ptr().add(4) as *mut __m256i, a1);
            _mm256_storeu_si256(t.as_mut_ptr().add(8) as *mut __m256i, a2);
            _mm256_storeu_si256(t.as_mut_ptr().add(12) as *mut __m256i, a3);
            for (c, &v) in cs.iter_mut().zip(t.iter()) {
                *c = F25::reduce_u64(v);
            }
        }
    }

    /// Adds the two `u64` halves of an `xmm` accumulator pair-tree and
    /// runs the scalar tail: shared epilogue of both dot kernels.
    ///
    /// Capacity: the caller guarantees at most [`CHUNK`] unreduced
    /// products (plus up to one canonical carry-over per sub-lane) are
    /// spread across the lanes being merged, which is within a single
    /// accumulator's budget — the same reassociation argument as the
    /// portable `a_bt_block_exact`, value-exact in a field.
    #[inline(always)]
    unsafe fn dot_tail(merged: __m128i, arow: &[F25], brow: &[F25], kv: usize) -> F25 {
        let mut t = [0u64; 2];
        unsafe { _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, merged) };
        let mut acc = t[0] + t[1];
        if kv < arow.len() {
            acc = F25::acc_fold(acc);
            for p in kv..arow.len() {
                acc = F25::mac(acc, arow[p], brow[p]);
            }
        }
        F25::acc_finish(acc)
    }

    /// SSE2 dot product along `k`: eight sub-accumulators in four `xmm`
    /// registers, merged exactly at the end.
    ///
    /// # Safety
    ///
    /// Requires `brow.len() >= arow.len()`.
    pub(super) unsafe fn dot_sse2(arow: &[F25], brow: &[F25]) -> F25 {
        unsafe {
            let k = arow.len();
            const STRIDE: usize = 8;
            let kv = k - k % STRIDE;
            let mut a0 = _mm_setzero_si128();
            let mut a1 = _mm_setzero_si128();
            let mut a2 = _mm_setzero_si128();
            let mut a3 = _mm_setzero_si128();
            let chunk = CHUNK - CHUNK % STRIDE;
            let mut p0 = 0;
            while p0 < kv {
                let pend = kv.min(p0.saturating_add(chunk));
                let mut p = p0;
                while p < pend {
                    let ap = arow.as_ptr().add(p) as *const __m128i;
                    let bp = brow.as_ptr().add(p) as *const __m128i;
                    a0 = _mm_add_epi64(
                        a0,
                        _mm_mul_epu32(_mm_loadu_si128(ap), _mm_loadu_si128(bp)),
                    );
                    a1 = _mm_add_epi64(
                        a1,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(1)), _mm_loadu_si128(bp.add(1))),
                    );
                    a2 = _mm_add_epi64(
                        a2,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(2)), _mm_loadu_si128(bp.add(2))),
                    );
                    a3 = _mm_add_epi64(
                        a3,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(3)), _mm_loadu_si128(bp.add(3))),
                    );
                    p += STRIDE;
                }
                p0 = pend;
                if p0 < kv {
                    a0 = fold2(a0);
                    a1 = fold2(a1);
                    a2 = fold2(a2);
                    a3 = fold2(a3);
                }
            }
            let merged = _mm_add_epi64(_mm_add_epi64(a0, a1), _mm_add_epi64(a2, a3));
            dot_tail(merged, arow, brow, kv)
        }
    }

    /// AVX2 dot product along `k`: sixteen sub-accumulators in four
    /// `ymm` registers.
    ///
    /// # Safety
    ///
    /// As [`dot_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(arow: &[F25], brow: &[F25]) -> F25 {
        unsafe {
            let k = arow.len();
            const STRIDE: usize = 16;
            let kv = k - k % STRIDE;
            let mut a0 = _mm256_setzero_si256();
            let mut a1 = _mm256_setzero_si256();
            let mut a2 = _mm256_setzero_si256();
            let mut a3 = _mm256_setzero_si256();
            let chunk = CHUNK - CHUNK % STRIDE;
            let mut p0 = 0;
            while p0 < kv {
                let pend = kv.min(p0.saturating_add(chunk));
                let mut p = p0;
                while p < pend {
                    let ap = arow.as_ptr().add(p) as *const __m256i;
                    let bp = brow.as_ptr().add(p) as *const __m256i;
                    a0 = _mm256_add_epi64(
                        a0,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap), _mm256_loadu_si256(bp)),
                    );
                    a1 = _mm256_add_epi64(
                        a1,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(1)), _mm256_loadu_si256(bp.add(1))),
                    );
                    a2 = _mm256_add_epi64(
                        a2,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(2)), _mm256_loadu_si256(bp.add(2))),
                    );
                    a3 = _mm256_add_epi64(
                        a3,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(3)), _mm256_loadu_si256(bp.add(3))),
                    );
                    p += STRIDE;
                }
                p0 = pend;
                if p0 < kv {
                    a0 = fold4(a0);
                    a1 = fold4(a1);
                    a2 = fold4(a2);
                    a3 = fold4(a3);
                }
            }
            let s = _mm256_add_epi64(_mm256_add_epi64(a0, a1), _mm256_add_epi64(a2, a3));
            let merged =
                _mm_add_epi64(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
            dot_tail(merged, arow, brow, kv)
        }
    }
}
