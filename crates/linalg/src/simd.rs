//! Hand-vectorized `F25` inner kernels for x86-64.
//!
//! The generic lane-strip kernels in [`crate::matmul`] are written so
//! the autovectorizer *can* emit SIMD for them, and it does for floats —
//! but for the 25-bit field the widening `u32×u32→u64` multiply chain
//! defeats both the loop vectorizer (it keeps the accumulator strip
//! stack-resident) and the SLP vectorizer (it leaves eight scalar
//! `imul`s). The fix that actually sticks is ~60 lines of explicit
//! SSE2: canonical `F25` values are `u64`s below `2^25`, so the packed
//! widening multiply (`pmuludq`, which reads the low 32 bits of each
//! 64-bit lane) computes two exact unreduced products per instruction,
//! and `paddq` accumulates them — the same delayed-Barrett-fold
//! schedule as the generic kernel, two lanes at a time. An AVX2 version
//! (four lanes per instruction) is selected at runtime when the CPU has
//! it.
//!
//! Dispatch is by `TypeId` from the generic kernels: the comparison is
//! against a monomorphized constant, so every non-`F25` instantiation
//! const-folds the check away and keeps its portable loop. Field
//! arithmetic is exact ([`crate::Scalar::EXACT`]), so lane splits and
//! fold placement cannot change any result: these kernels remain
//! bit-for-bit identical to [`crate::reference`], which the
//! `kernel_equivalence` and proptest suites check on every run.
//!
//! On non-x86-64 targets every `try_*` entry point returns `false` and
//! the portable kernels run unchanged.

use crate::matmul::LANES;
use crate::scalar::Scalar;
use std::any::TypeId;

/// `true` iff the monomorphized element type is exactly [`dk_field::F25`].
/// Compares two constants, so it folds to `true`/`false` at compile time.
#[inline(always)]
fn is_f25<T: 'static>() -> bool {
    TypeId::of::<T>() == TypeId::of::<dk_field::F25>()
}

/// `C strip += arow · B[:, j..j+LANES]` — the full-width matmul strip.
/// Returns `false` (caller runs the portable kernel) unless `T` is
/// `F25` on x86-64.
#[inline(always)]
pub(crate) fn try_f25_lane_strip<T: Scalar>(
    arow: &[T],
    b: &[T],
    cs: &mut [T; LANES],
    n: usize,
    j: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if is_f25::<T>() {
            // SAFETY: `T == F25` (TypeId-checked), so these casts are
            // identities; `F25` is `repr(transparent)` over `u64`.
            let (arow, b, cs) = unsafe {
                (
                    cast_slice::<T>(arow),
                    cast_slice::<T>(b),
                    &mut *(cs as *mut [T; LANES] as *mut [dk_field::F25; LANES]),
                )
            };
            // SAFETY: strip callers guarantee `j + LANES <= n` and
            // `b.len() == k * n`; SSE2 is baseline on x86-64 and the
            // AVX2 body only runs behind `is_x86_feature_detected!`.
            unsafe {
                if x86::has_avx2() {
                    x86::lane_strip_avx2(arow, b, cs, n, j);
                } else {
                    x86::lane_strip_sse2(arow, b, cs, n, j);
                }
            }
            return true;
        }
    }
    let _ = (arow, b, cs, n, j);
    false
}

/// `C[rows×n] = A[rows×k] · Bᵀ` (`B` stored `n×k`) — the dot-orientation
/// block, vectorized along the reduction dimension. Returns `false`
/// unless `T` is `F25` on x86-64.
pub(crate) fn try_f25_a_bt_block<T: Scalar>(
    a: &[T],
    b: &[T],
    c: &mut [T],
    rows: usize,
    k: usize,
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if is_f25::<T>() {
            // SAFETY: identity casts as in `try_f25_lane_strip`.
            let (a, b, c) = unsafe {
                (
                    cast_slice::<T>(a),
                    cast_slice::<T>(b),
                    std::slice::from_raw_parts_mut(c.as_mut_ptr() as *mut dk_field::F25, c.len()),
                )
            };
            let avx2 = x86::has_avx2();
            for i in 0..rows {
                let arow = &a[i * k..(i + 1) * k];
                for (j, cj) in c[i * n..(i + 1) * n].iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    // SAFETY: equal-length rows; AVX2 body is detection-gated.
                    *cj = unsafe {
                        if avx2 {
                            x86::dot_avx2(arow, brow)
                        } else {
                            x86::dot_sse2(arow, brow)
                        }
                    };
                }
            }
            return true;
        }
    }
    let _ = (a, b, c, rows, k, n);
    false
}

/// Reinterprets `&[T]` as `&[F25]`. Caller must have proven `T == F25`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn cast_slice<T: 'static>(s: &[T]) -> &[dk_field::F25] {
    debug_assert!(is_f25::<T>());
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const dk_field::F25, s.len()) }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LANES;
    use crate::scalar::Scalar;
    use core::arch::x86_64::*;
    use dk_field::F25;
    use std::sync::OnceLock;

    // The strip kernels hard-code their register allocation: 16 lanes
    // are eight SSE2 or four AVX2 accumulators.
    const _: () = assert!(LANES == 16);

    /// One fold chunk: the per-lane unreduced-product budget of the
    /// `u64` accumulator (2^14 for the 25-bit prime).
    const CHUNK: usize = <F25 as Scalar>::FOLD_INTERVAL;

    pub(super) fn has_avx2() -> bool {
        static AVX2: OnceLock<bool> = OnceLock::new();
        *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
    }

    /// Barrett-folds both `u64` lanes back to canonical range.
    #[inline(always)]
    unsafe fn fold2(v: __m128i) -> __m128i {
        let mut t = [0u64; 2];
        unsafe { _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, v) };
        _mm_set_epi64x(
            F25::reduce_u64(t[1]).value() as i64,
            F25::reduce_u64(t[0]).value() as i64,
        )
    }

    /// Reduces both lanes to canonical `F25` and stores them at `out`.
    #[inline(always)]
    unsafe fn finish2(out: *mut F25, v: __m128i) {
        let mut t = [0u64; 2];
        unsafe {
            _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, v);
            *out = F25::reduce_u64(t[0]);
            *out.add(1) = F25::reduce_u64(t[1]);
        }
    }

    /// SSE2 matmul strip: sixteen column accumulators in eight `xmm`
    /// registers, two exact widening products per `pmuludq`.
    ///
    /// # Safety
    ///
    /// Requires `j + LANES <= n`, `b.len() >= arow.len() * n`.
    pub(super) unsafe fn lane_strip_sse2(
        arow: &[F25],
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = arow.len();
            let cp = cs.as_ptr() as *const __m128i;
            // acc starts from the lifted C strip, exactly like the
            // portable kernel (`acc_lift` is the canonical value).
            let mut a0 = _mm_loadu_si128(cp);
            let mut a1 = _mm_loadu_si128(cp.add(1));
            let mut a2 = _mm_loadu_si128(cp.add(2));
            let mut a3 = _mm_loadu_si128(cp.add(3));
            let mut a4 = _mm_loadu_si128(cp.add(4));
            let mut a5 = _mm_loadu_si128(cp.add(5));
            let mut a6 = _mm_loadu_si128(cp.add(6));
            let mut a7 = _mm_loadu_si128(cp.add(7));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = arow.get_unchecked(p).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m128i;
                    a0 = _mm_add_epi64(a0, _mm_mul_epu32(av, _mm_loadu_si128(bp)));
                    a1 = _mm_add_epi64(a1, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(1))));
                    a2 = _mm_add_epi64(a2, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(2))));
                    a3 = _mm_add_epi64(a3, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(3))));
                    a4 = _mm_add_epi64(a4, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(4))));
                    a5 = _mm_add_epi64(a5, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(5))));
                    a6 = _mm_add_epi64(a6, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(6))));
                    a7 = _mm_add_epi64(a7, _mm_mul_epu32(av, _mm_loadu_si128(bp.add(7))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold2(a0);
                    a1 = fold2(a1);
                    a2 = fold2(a2);
                    a3 = fold2(a3);
                    a4 = fold2(a4);
                    a5 = fold2(a5);
                    a6 = fold2(a6);
                    a7 = fold2(a7);
                }
            }
            let out = cs.as_mut_ptr();
            finish2(out, a0);
            finish2(out.add(2), a1);
            finish2(out.add(4), a2);
            finish2(out.add(6), a3);
            finish2(out.add(8), a4);
            finish2(out.add(10), a5);
            finish2(out.add(12), a6);
            finish2(out.add(14), a7);
        }
    }

    /// Folds all four `u64` lanes back to canonical range.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn fold4(v: __m256i) -> __m256i {
        let mut t = [0u64; 4];
        unsafe { _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, v) };
        _mm256_set_epi64x(
            F25::reduce_u64(t[3]).value() as i64,
            F25::reduce_u64(t[2]).value() as i64,
            F25::reduce_u64(t[1]).value() as i64,
            F25::reduce_u64(t[0]).value() as i64,
        )
    }

    /// AVX2 matmul strip: sixteen column accumulators in four `ymm`
    /// registers, four exact widening products per `vpmuludq`.
    ///
    /// # Safety
    ///
    /// As [`lane_strip_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lane_strip_avx2(
        arow: &[F25],
        b: &[F25],
        cs: &mut [F25; LANES],
        n: usize,
        j: usize,
    ) {
        unsafe {
            let k = arow.len();
            let cp = cs.as_ptr() as *const __m256i;
            let mut a0 = _mm256_loadu_si256(cp);
            let mut a1 = _mm256_loadu_si256(cp.add(1));
            let mut a2 = _mm256_loadu_si256(cp.add(2));
            let mut a3 = _mm256_loadu_si256(cp.add(3));
            let mut p0 = 0;
            while p0 < k {
                let pend = k.min(p0.saturating_add(CHUNK));
                for p in p0..pend {
                    let aip = arow.get_unchecked(p).value();
                    if aip == 0 {
                        continue;
                    }
                    let av = _mm256_set1_epi64x(aip as i64);
                    let bp = b.as_ptr().add(p * n + j) as *const __m256i;
                    a0 = _mm256_add_epi64(a0, _mm256_mul_epu32(av, _mm256_loadu_si256(bp)));
                    a1 = _mm256_add_epi64(a1, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(1))));
                    a2 = _mm256_add_epi64(a2, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(2))));
                    a3 = _mm256_add_epi64(a3, _mm256_mul_epu32(av, _mm256_loadu_si256(bp.add(3))));
                }
                p0 = pend;
                if p0 < k {
                    a0 = fold4(a0);
                    a1 = fold4(a1);
                    a2 = fold4(a2);
                    a3 = fold4(a3);
                }
            }
            let mut t = [0u64; LANES];
            _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, a0);
            _mm256_storeu_si256(t.as_mut_ptr().add(4) as *mut __m256i, a1);
            _mm256_storeu_si256(t.as_mut_ptr().add(8) as *mut __m256i, a2);
            _mm256_storeu_si256(t.as_mut_ptr().add(12) as *mut __m256i, a3);
            for (c, &v) in cs.iter_mut().zip(t.iter()) {
                *c = F25::reduce_u64(v);
            }
        }
    }

    /// Adds the two `u64` halves of an `xmm` accumulator pair-tree and
    /// runs the scalar tail: shared epilogue of both dot kernels.
    ///
    /// Capacity: the caller guarantees at most [`CHUNK`] unreduced
    /// products (plus up to one canonical carry-over per sub-lane) are
    /// spread across the lanes being merged, which is within a single
    /// accumulator's budget — the same reassociation argument as the
    /// portable `a_bt_block_exact`, value-exact in a field.
    #[inline(always)]
    unsafe fn dot_tail(merged: __m128i, arow: &[F25], brow: &[F25], kv: usize) -> F25 {
        let mut t = [0u64; 2];
        unsafe { _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, merged) };
        let mut acc = t[0] + t[1];
        if kv < arow.len() {
            acc = F25::acc_fold(acc);
            for p in kv..arow.len() {
                acc = F25::mac(acc, arow[p], brow[p]);
            }
        }
        F25::acc_finish(acc)
    }

    /// SSE2 dot product along `k`: eight sub-accumulators in four `xmm`
    /// registers, merged exactly at the end.
    ///
    /// # Safety
    ///
    /// Requires `brow.len() >= arow.len()`.
    pub(super) unsafe fn dot_sse2(arow: &[F25], brow: &[F25]) -> F25 {
        unsafe {
            let k = arow.len();
            const STRIDE: usize = 8;
            let kv = k - k % STRIDE;
            let mut a0 = _mm_setzero_si128();
            let mut a1 = _mm_setzero_si128();
            let mut a2 = _mm_setzero_si128();
            let mut a3 = _mm_setzero_si128();
            let chunk = CHUNK - CHUNK % STRIDE;
            let mut p0 = 0;
            while p0 < kv {
                let pend = kv.min(p0.saturating_add(chunk));
                let mut p = p0;
                while p < pend {
                    let ap = arow.as_ptr().add(p) as *const __m128i;
                    let bp = brow.as_ptr().add(p) as *const __m128i;
                    a0 = _mm_add_epi64(
                        a0,
                        _mm_mul_epu32(_mm_loadu_si128(ap), _mm_loadu_si128(bp)),
                    );
                    a1 = _mm_add_epi64(
                        a1,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(1)), _mm_loadu_si128(bp.add(1))),
                    );
                    a2 = _mm_add_epi64(
                        a2,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(2)), _mm_loadu_si128(bp.add(2))),
                    );
                    a3 = _mm_add_epi64(
                        a3,
                        _mm_mul_epu32(_mm_loadu_si128(ap.add(3)), _mm_loadu_si128(bp.add(3))),
                    );
                    p += STRIDE;
                }
                p0 = pend;
                if p0 < kv {
                    a0 = fold2(a0);
                    a1 = fold2(a1);
                    a2 = fold2(a2);
                    a3 = fold2(a3);
                }
            }
            let merged = _mm_add_epi64(_mm_add_epi64(a0, a1), _mm_add_epi64(a2, a3));
            dot_tail(merged, arow, brow, kv)
        }
    }

    /// AVX2 dot product along `k`: sixteen sub-accumulators in four
    /// `ymm` registers.
    ///
    /// # Safety
    ///
    /// As [`dot_sse2`], plus the CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(arow: &[F25], brow: &[F25]) -> F25 {
        unsafe {
            let k = arow.len();
            const STRIDE: usize = 16;
            let kv = k - k % STRIDE;
            let mut a0 = _mm256_setzero_si256();
            let mut a1 = _mm256_setzero_si256();
            let mut a2 = _mm256_setzero_si256();
            let mut a3 = _mm256_setzero_si256();
            let chunk = CHUNK - CHUNK % STRIDE;
            let mut p0 = 0;
            while p0 < kv {
                let pend = kv.min(p0.saturating_add(chunk));
                let mut p = p0;
                while p < pend {
                    let ap = arow.as_ptr().add(p) as *const __m256i;
                    let bp = brow.as_ptr().add(p) as *const __m256i;
                    a0 = _mm256_add_epi64(
                        a0,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap), _mm256_loadu_si256(bp)),
                    );
                    a1 = _mm256_add_epi64(
                        a1,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(1)), _mm256_loadu_si256(bp.add(1))),
                    );
                    a2 = _mm256_add_epi64(
                        a2,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(2)), _mm256_loadu_si256(bp.add(2))),
                    );
                    a3 = _mm256_add_epi64(
                        a3,
                        _mm256_mul_epu32(_mm256_loadu_si256(ap.add(3)), _mm256_loadu_si256(bp.add(3))),
                    );
                    p += STRIDE;
                }
                p0 = pend;
                if p0 < kv {
                    a0 = fold4(a0);
                    a1 = fold4(a1);
                    a2 = fold4(a2);
                    a3 = fold4(a3);
                }
            }
            let s = _mm256_add_epi64(_mm256_add_epi64(a0, a1), _mm256_add_epi64(a2, a3));
            let merged =
                _mm_add_epi64(_mm256_castsi256_si128(s), _mm256_extracti128_si256(s, 1));
            dot_tail(merged, arow, brow, kv)
        }
    }
}
