//! Pooling kernels.
//!
//! Pooling is a *non-linear* operation in DarKnight's taxonomy: it always
//! executes inside the TEE on plaintext floats (§3.1, step 6), never on
//! the masked GPUs. The kernels are therefore implemented for `f32` only.

use crate::im2col::out_hw;
use crate::tensor::Tensor;

/// Static geometry of a 2-D pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool2dShape {
    /// Pooling window.
    pub kernel: (usize, usize),
    /// Stride.
    pub stride: (usize, usize),
    /// Symmetric zero padding.
    pub padding: (usize, usize),
}

impl Pool2dShape {
    /// Creates a pooling descriptor.
    ///
    /// # Panics
    ///
    /// Panics if any kernel/stride dimension is zero.
    pub fn new(kernel: (usize, usize), stride: (usize, usize), padding: (usize, usize)) -> Self {
        assert!(kernel.0 > 0 && kernel.1 > 0 && stride.0 > 0 && stride.1 > 0);
        Self { kernel, stride, padding }
    }

    /// The standard `k×k` window with stride `k` (non-overlapping).
    pub fn square(k: usize) -> Self {
        Self::new((k, k), (k, k), (0, 0))
    }

    /// Output spatial size for the given input spatial size.
    ///
    /// # Panics
    ///
    /// Panics if the window does not fit the padded input.
    pub fn out_hw(&self, hw: (usize, usize)) -> (usize, usize) {
        out_hw(hw, self.kernel, self.stride, self.padding)
    }
}

/// Max pooling forward with the pooled tensor drawn from `ws` and the
/// flat argmax bookkeeping written into the caller's reusable buffer —
/// the allocation-free form the layer hot path uses.
///
/// # Panics
///
/// Panics if `x` is not NCHW or the window does not fit.
pub fn maxpool2d_forward_ws(
    x: &Tensor<f32>,
    s: &Pool2dShape,
    ws: &mut crate::workspace::Workspace,
    arg: &mut Vec<usize>,
) -> Tensor<f32> {
    assert_eq!(x.ndim(), 4, "input must be NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let (oh, ow) = s.out_hw((h, w));
    let mut y = ws.take_tensor(&[n, c, oh, ow]);
    arg.clear();
    arg.resize(n * c * oh * ow, 0usize);
    let xs = x.as_slice();
    let mut oidx = 0;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = usize::MAX;
                    for ky in 0..s.kernel.0 {
                        let iy = (oy * s.stride.0 + ky) as isize - s.padding.0 as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..s.kernel.1 {
                            let ix = (ox * s.stride.1 + kx) as isize - s.padding.1 as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let idx = base + iy as usize * w + ix as usize;
                            if xs[idx] > best {
                                best = xs[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    // A window fully in padding would have no taps; the
                    // geometry check in out_hw prevents that.
                    debug_assert_ne!(best_idx, usize::MAX);
                    y.as_mut_slice()[oidx] = best;
                    arg[oidx] = best_idx;
                    oidx += 1;
                }
            }
        }
    }
    y
}

/// Max pooling forward. Returns the pooled tensor and the flat argmax
/// index (into the input tensor) of every output element, which the
/// backward pass scatters gradients through. Allocating wrapper over
/// [`maxpool2d_forward_ws`].
///
/// # Panics
///
/// Panics if `x` is not NCHW or the window does not fit.
pub fn maxpool2d_forward(x: &Tensor<f32>, s: &Pool2dShape) -> (Tensor<f32>, Vec<usize>) {
    let mut arg = Vec::new();
    let y = maxpool2d_forward_ws(x, s, &mut crate::workspace::Workspace::new(), &mut arg);
    (y, arg)
}

/// Max pooling backward with the gradient image drawn from `ws`:
/// routes each output gradient to the input element that won the
/// forward max.
///
/// # Panics
///
/// Panics if `dy.len() != argmax.len()`.
pub fn maxpool2d_backward_ws(
    dy: &Tensor<f32>,
    argmax: &[usize],
    input_shape: &[usize],
    ws: &mut crate::workspace::Workspace,
) -> Tensor<f32> {
    assert_eq!(dy.len(), argmax.len(), "argmax bookkeeping mismatch");
    let mut dx = ws.take_tensor(input_shape);
    let d = dx.as_mut_slice();
    for (&g, &a) in dy.as_slice().iter().zip(argmax) {
        d[a] += g;
    }
    dx
}

/// Max pooling backward. Allocating wrapper over
/// [`maxpool2d_backward_ws`].
///
/// # Panics
///
/// Panics if `dy.len() != argmax.len()`.
pub fn maxpool2d_backward(dy: &Tensor<f32>, argmax: &[usize], input_shape: &[usize]) -> Tensor<f32> {
    maxpool2d_backward_ws(dy, argmax, input_shape, &mut crate::workspace::Workspace::new())
}

/// Global average pooling `[n, c, h, w] → [n, c]` with the output
/// drawn from `ws`.
///
/// # Panics
///
/// Panics if `x` is not NCHW.
pub fn global_avg_pool_forward_ws(
    x: &Tensor<f32>,
    ws: &mut crate::workspace::Workspace,
) -> Tensor<f32> {
    assert_eq!(x.ndim(), 4, "input must be NCHW");
    let (n, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
    let inv = 1.0 / (h * w) as f32;
    let mut y = ws.take_tensor(&[n, c]);
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let s: f32 = x.as_slice()[base..base + h * w].iter().sum();
            y.set(&[ni, ci], s * inv);
        }
    }
    y
}

/// Global average pooling: `[n, c, h, w] → [n, c]`. Allocating wrapper
/// over [`global_avg_pool_forward_ws`].
///
/// # Panics
///
/// Panics if `x` is not NCHW.
pub fn global_avg_pool_forward(x: &Tensor<f32>) -> Tensor<f32> {
    global_avg_pool_forward_ws(x, &mut crate::workspace::Workspace::new())
}

/// Global average pooling backward with the gradient image drawn from
/// `ws`: broadcasts `dy/(h·w)` over the plane.
///
/// # Panics
///
/// Panics if `dy` is not `[n, c]` matching the input shape.
pub fn global_avg_pool_backward_ws(
    dy: &Tensor<f32>,
    input_shape: &[usize],
    ws: &mut crate::workspace::Workspace,
) -> Tensor<f32> {
    assert_eq!(input_shape.len(), 4);
    let (n, c, h, w) = (input_shape[0], input_shape[1], input_shape[2], input_shape[3]);
    assert_eq!(dy.shape(), &[n, c], "dy shape mismatch");
    let inv = 1.0 / (h * w) as f32;
    let mut dx = ws.take_tensor(input_shape);
    for ni in 0..n {
        for ci in 0..c {
            let g = dy.get(&[ni, ci]) * inv;
            let base = (ni * c + ci) * h * w;
            for v in &mut dx.as_mut_slice()[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

/// Global average pooling backward: broadcasts `dy/(h·w)` over the
/// plane. Allocating wrapper over [`global_avg_pool_backward_ws`].
///
/// # Panics
///
/// Panics if `dy` is not `[n, c]` matching the input shape.
pub fn global_avg_pool_backward(dy: &Tensor<f32>, input_shape: &[usize]) -> Tensor<f32> {
    global_avg_pool_backward_ws(dy, input_shape, &mut crate::workspace::Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_2x2_basic() {
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let (y, arg) = maxpool2d_forward(&x, &Pool2dShape::square(2));
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        assert_eq!(arg, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_negative_values() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![-5.0, -2.0, -8.0, -3.0]);
        let (y, _) = maxpool2d_forward(&x, &Pool2dShape::square(2));
        assert_eq!(y.as_slice(), &[-2.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]);
        let s = Pool2dShape::square(2);
        let (_, arg) = maxpool2d_forward(&x, &s);
        let dy = Tensor::from_vec(&[1, 1, 1, 1], vec![2.5]);
        let dx = maxpool2d_backward(&dy, &arg, &[1, 1, 2, 2]);
        assert_eq!(dx.as_slice(), &[0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn maxpool_overlapping_windows_accumulate_grad() {
        // stride 1 window 2: input max at center gets grads from several windows.
        let x = Tensor::from_vec(&[1, 1, 3, 3], vec![0., 0., 0., 0., 9., 0., 0., 0., 0.]);
        let s = Pool2dShape::new((2, 2), (1, 1), (0, 0));
        let (y, arg) = maxpool2d_forward(&x, &s);
        assert_eq!(y.as_slice(), &[9.0; 4]);
        let dy = Tensor::ones(&[1, 1, 2, 2]);
        let dx = maxpool2d_backward(&dy, &arg, &[1, 1, 3, 3]);
        assert_eq!(dx.get(&[0, 0, 1, 1]), 4.0);
    }

    #[test]
    fn maxpool_multichannel_batches() {
        let x = Tensor::from_fn(&[2, 3, 4, 4], |i| (i % 17) as f32);
        let (y, arg) = maxpool2d_forward(&x, &Pool2dShape::square(2));
        assert_eq!(y.shape(), &[2, 3, 2, 2]);
        assert_eq!(arg.len(), y.len());
        // Every argmax must point inside its own (n, c) plane.
        for (o, &a) in arg.iter().enumerate() {
            let plane = o / 4;
            assert_eq!(a / 16, plane, "argmax escaped its plane");
        }
    }

    #[test]
    fn numerical_gradient_maxpool() {
        let x = Tensor::from_fn(&[1, 2, 4, 4], |i| ((i * 7 + 3) % 11) as f32 * 0.1);
        let s = Pool2dShape::square(2);
        let (_, arg) = maxpool2d_forward(&x, &s);
        let dy = Tensor::ones(&[1, 2, 2, 2]);
        let dx = maxpool2d_backward(&dy, &arg, x.shape());
        let eps = 1e-3;
        for probe in [0usize, 5, 10, 21, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let lp = maxpool2d_forward(&xp, &s).0.sum();
            let lm = maxpool2d_forward(&xm, &s).0.sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dx.as_slice()[probe]).abs() < 1e-3, "probe {probe}");
        }
    }

    #[test]
    fn global_avg_pool_values() {
        let x = Tensor::from_fn(&[1, 2, 2, 2], |i| i as f32);
        let y = global_avg_pool_forward(&x);
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.as_slice(), &[1.5, 5.5]);
    }

    #[test]
    fn global_avg_pool_backward_broadcast() {
        let dy = Tensor::from_vec(&[1, 2], vec![4.0, 8.0]);
        let dx = global_avg_pool_backward(&dy, &[1, 2, 2, 2]);
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn pool_out_hw() {
        assert_eq!(Pool2dShape::square(2).out_hw((8, 8)), (4, 4));
        assert_eq!(Pool2dShape::new((3, 3), (2, 2), (1, 1)).out_hw((7, 7)), (4, 4));
    }
}
