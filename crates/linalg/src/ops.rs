//! Elementwise and activation operations (TEE-side, float domain).
//!
//! ReLU, bias addition, softmax and friends are the paper's "non-linear"
//! category: they always run inside the enclave on decoded plaintext
//! (§3.1 step 6), so they are float-only.

use crate::tensor::Tensor;

/// The one ReLU gate predicate: every forward/backward form below (and
/// therefore every execution path — clear-text reference and private
/// alike) routes through this, so the gating can never silently diverge
/// between paths.
#[inline]
fn relu_gate(v: f32, pass: f32) -> f32 {
    if v > 0.0 {
        pass
    } else {
        0.0
    }
}

/// ReLU forward: `max(0, x)` elementwise.
pub fn relu(x: &Tensor<f32>) -> Tensor<f32> {
    x.map(|v| relu_gate(v, v))
}

/// ReLU forward in place (the workspace hot path: callers copy `x`
/// into a recycled buffer first). Identical gating to [`relu`].
pub fn relu_in_place(y: &mut Tensor<f32>) {
    for v in y.as_mut_slice() {
        *v = relu_gate(*v, *v);
    }
}

/// ReLU backward: gates `dy` by the sign of the forward *input*.
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward(dy: &Tensor<f32>, x: &Tensor<f32>) -> Tensor<f32> {
    dy.zip_map(x, |g, v| relu_gate(v, g))
}

/// ReLU backward writing into a caller-provided tensor. Identical
/// gating to [`relu_backward`].
///
/// # Panics
///
/// Panics if shapes differ.
pub fn relu_backward_into(dy: &Tensor<f32>, x: &Tensor<f32>, dx: &mut Tensor<f32>) {
    assert_eq!(dy.shape(), x.shape(), "relu gradient shape mismatch");
    assert_eq!(dy.shape(), dx.shape(), "relu output shape mismatch");
    for ((d, &g), &v) in dx.as_mut_slice().iter_mut().zip(dy.as_slice()).zip(x.as_slice()) {
        *d = relu_gate(v, g);
    }
}

/// Adds a per-output-channel bias to an NCHW tensor in place.
///
/// # Panics
///
/// Panics if `bias.len()` differs from the channel count.
pub fn add_bias_nchw(y: &mut Tensor<f32>, bias: &[f32]) {
    assert_eq!(y.ndim(), 4);
    let (n, c, h, w) = (y.shape()[0], y.shape()[1], y.shape()[2], y.shape()[3]);
    assert_eq!(bias.len(), c, "bias per channel");
    let plane = h * w;
    let ys = y.as_mut_slice();
    for ni in 0..n {
        for (ci, &b) in bias.iter().enumerate() {
            let base = (ni * c + ci) * plane;
            for v in &mut ys[base..base + plane] {
                *v += b;
            }
        }
    }
}

/// Adds a per-feature bias to a `[n, f]` matrix in place.
///
/// # Panics
///
/// Panics if `bias.len()` differs from the feature count.
pub fn add_bias_rows(y: &mut Tensor<f32>, bias: &[f32]) {
    assert_eq!(y.ndim(), 2);
    let (n, f) = (y.shape()[0], y.shape()[1]);
    assert_eq!(bias.len(), f, "bias per feature");
    let ys = y.as_mut_slice();
    for ni in 0..n {
        for (v, &b) in ys[ni * f..(ni + 1) * f].iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Gradient of the NCHW bias: sums `dy` over batch and spatial dims.
///
/// # Panics
///
/// Panics if `dy` is not 4-D.
pub fn bias_grad_nchw(dy: &Tensor<f32>) -> Vec<f32> {
    assert_eq!(dy.ndim(), 4);
    let (n, c, h, w) = (dy.shape()[0], dy.shape()[1], dy.shape()[2], dy.shape()[3]);
    let plane = h * w;
    let mut g = vec![0.0f32; c];
    for ni in 0..n {
        for (ci, gc) in g.iter_mut().enumerate() {
            let base = (ni * c + ci) * plane;
            *gc += dy.as_slice()[base..base + plane].iter().sum::<f32>();
        }
    }
    g
}

/// Gradient of the row bias: sums `dy` over the batch dimension.
///
/// # Panics
///
/// Panics if `dy` is not 2-D.
pub fn bias_grad_rows(dy: &Tensor<f32>) -> Vec<f32> {
    assert_eq!(dy.ndim(), 2);
    let (n, f) = (dy.shape()[0], dy.shape()[1]);
    let mut g = vec![0.0f32; f];
    for ni in 0..n {
        for (gi, &v) in g.iter_mut().zip(&dy.as_slice()[ni * f..(ni + 1) * f]) {
            *gi += v;
        }
    }
    g
}

/// Numerically-stable row softmax for a `[n, classes]` matrix.
///
/// # Panics
///
/// Panics if `x` is not 2-D.
pub fn softmax_rows(x: &Tensor<f32>) -> Tensor<f32> {
    assert_eq!(x.ndim(), 2);
    let (n, f) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    for ni in 0..n {
        let row = &mut out.as_mut_slice()[ni * f..(ni + 1) * f];
        let m = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            z += *v;
        }
        let inv = 1.0 / z;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
    out
}

/// Index of the maximum element of each row of a `[n, f]` matrix.
///
/// # Panics
///
/// Panics if `x` is not 2-D or has zero-width rows.
pub fn argmax_rows(x: &Tensor<f32>) -> Vec<usize> {
    assert_eq!(x.ndim(), 2);
    let (n, f) = (x.shape()[0], x.shape()[1]);
    assert!(f > 0);
    (0..n)
        .map(|ni| {
            let row = &x.as_slice()[ni * f..(ni + 1) * f];
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN logits"))
                .map(|(i, _)| i)
                .expect("nonempty row")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&x).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_gates() {
        let x = Tensor::from_vec(&[4], vec![-1.0, 0.5, 2.0, -0.5]);
        let dy = Tensor::from_vec(&[4], vec![10.0, 10.0, 10.0, 10.0]);
        assert_eq!(relu_backward(&dy, &x).as_slice(), &[0.0, 10.0, 10.0, 0.0]);
    }

    #[test]
    fn bias_nchw_and_grad_are_adjoint() {
        let mut y = Tensor::zeros(&[2, 3, 2, 2]);
        add_bias_nchw(&mut y, &[1.0, 2.0, 3.0]);
        assert_eq!(y.get(&[0, 0, 0, 0]), 1.0);
        assert_eq!(y.get(&[1, 2, 1, 1]), 3.0);
        // grad of sum-loss wrt bias = count of elements per channel.
        let dy = Tensor::ones(&[2, 3, 2, 2]);
        assert_eq!(bias_grad_nchw(&dy), vec![8.0, 8.0, 8.0]);
    }

    #[test]
    fn bias_rows_and_grad() {
        let mut y = Tensor::zeros(&[2, 3]);
        add_bias_rows(&mut y, &[1.0, 2.0, 3.0]);
        assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let dy = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(bias_grad_rows(&dy), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(&[2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let s = softmax_rows(&x);
        for ni in 0..2 {
            let sum: f32 = s.as_slice()[ni * 3..(ni + 1) * 3].iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
        // Monotone in logits.
        assert!(s.get(&[0, 2]) > s.get(&[0, 1]));
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = Tensor::from_vec(&[1, 3], vec![1000.0, 1001.0, 1002.0]);
        let b = Tensor::from_vec(&[1, 3], vec![0.0, 1.0, 2.0]);
        let sa = softmax_rows(&a);
        let sb = softmax_rows(&b);
        assert!(sa.max_abs_diff(&sb) < 1e-6);
        assert!(sa.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn argmax_rows_basic() {
        let x = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.2, 0.7, 0.1, 0.3]);
        assert_eq!(argmax_rows(&x), vec![1, 0]);
    }
}
