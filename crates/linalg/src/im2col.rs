//! im2col / col2im lowering for 2-D convolution.
//!
//! Lowering convolution to matrix multiplication is how both the paper's
//! GPU path (cuDNN-style) and its SGX path (Intel DNNL) execute conv
//! layers, and it lets DarKnight reuse one masked matmul kernel for every
//! bilinear op. The routines here are generic over [`Scalar`] so the
//! identical lowering runs in the float and field domains.

use crate::scalar::Scalar;

/// Computes the output spatial size of a convolution/pooling window.
///
/// Returns `(out_h, out_w)` for input `(h, w)`, kernel `(kh, kw)`,
/// stride `(sh, sw)` and symmetric zero padding `(ph, pw)`.
///
/// # Panics
///
/// Panics if the window does not fit (output would be empty).
pub fn out_hw(
    (h, w): (usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ph, pw): (usize, usize),
) -> (usize, usize) {
    assert!(h + 2 * ph >= kh && w + 2 * pw >= kw, "kernel larger than padded input");
    ((h + 2 * ph - kh) / sh + 1, (w + 2 * pw - kw) / sw + 1)
}

/// Lowers one sample's channel block `[c, h, w]` into a caller-provided
/// column-matrix buffer of shape `[c*kh*kw, out_h*out_w]` (row-major,
/// flat). The buffer is fully overwritten (padding taps become
/// `T::zero()`), so a reused scratch buffer with stale contents is
/// fine — this is the allocation-free form the convolution hot paths
/// call with [`crate::workspace::Workspace`] scratch.
///
/// # Panics
///
/// Panics if `input.len() != c*h*w` or `out.len()` does not match the
/// geometry.
pub fn im2col_into<T: Scalar>(
    input: &[T],
    c: usize,
    (h, w): (usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ph, pw): (usize, usize),
    out: &mut [T],
) {
    assert_eq!(input.len(), c * h * w, "input volume mismatch");
    let (oh, ow) = out_hw((h, w), (kh, kw), (sh, sw), (ph, pw));
    let cols = oh * ow;
    assert_eq!(out.len(), c * kh * kw * cols, "column matrix volume mismatch");
    for v in out.iter_mut() {
        *v = T::zero();
    }
    for ci in 0..c {
        let plane = &input[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let dst = &mut out[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // whole row stays zero
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    for ox in 0..ow {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix >= 0 && ix < w as isize {
                            dst[oy * ow + ox] = src_row[ix as usize];
                        }
                    }
                }
            }
        }
    }
}

/// Allocating wrapper over [`im2col_into`], kept as the public
/// reference entry point for tests and cold paths.
///
/// # Panics
///
/// Panics if `input.len() != c*h*w`.
pub fn im2col<T: Scalar>(
    input: &[T],
    c: usize,
    hw: (usize, usize),
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
) -> Vec<T> {
    let (oh, ow) = out_hw(hw, k, s, p);
    let mut out = vec![T::zero(); c * k.0 * k.1 * oh * ow];
    im2col_into(input, c, hw, k, s, p, &mut out);
    out
}

/// Inverse of [`im2col`]: **scatter-adds** a column matrix into an
/// image block of shape `[c, h, w]`, accumulating on top of whatever
/// `out` already holds. This is the fused form the convolution
/// input-gradient pass uses — the old
/// `col2im → fresh image → elementwise add` triple pass collapses into
/// this single scatter, with contributions applied in the identical
/// order (so float results are bit-for-bit unchanged; field results
/// trivially so).
///
/// # Panics
///
/// Panics if `cols_mat.len()` or `out.len()` is inconsistent with the
/// geometry.
pub fn col2im_acc_into<T: Scalar>(
    cols_mat: &[T],
    c: usize,
    (h, w): (usize, usize),
    (kh, kw): (usize, usize),
    (sh, sw): (usize, usize),
    (ph, pw): (usize, usize),
    out: &mut [T],
) {
    let (oh, ow) = out_hw((h, w), (kh, kw), (sh, sw), (ph, pw));
    let cols = oh * ow;
    assert_eq!(cols_mat.len(), c * kh * kw * cols, "column matrix volume mismatch");
    assert_eq!(out.len(), c * h * w, "image volume mismatch");
    for ci in 0..c {
        let plane_off = ci * h * w;
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let src = &cols_mat[row * cols..(row + 1) * cols];
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    for ox in 0..ow {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix >= 0 && ix < w as isize {
                            out[plane_off + iy as usize * w + ix as usize] += src[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }
}

/// Allocating wrapper over [`col2im_acc_into`] starting from a zeroed
/// image (the classic col2im), kept for tests and cold paths.
///
/// # Panics
///
/// Panics if `cols_mat.len()` is inconsistent with the geometry.
pub fn col2im<T: Scalar>(
    cols_mat: &[T],
    c: usize,
    hw: (usize, usize),
    k: (usize, usize),
    s: (usize, usize),
    p: (usize, usize),
) -> Vec<T> {
    let mut out = vec![T::zero(); c * hw.0 * hw.1];
    col2im_acc_into(cols_mat, c, hw, k, s, p, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    #[test]
    fn out_hw_basic() {
        assert_eq!(out_hw((4, 4), (3, 3), (1, 1), (0, 0)), (2, 2));
        assert_eq!(out_hw((4, 4), (3, 3), (1, 1), (1, 1)), (4, 4));
        assert_eq!(out_hw((8, 8), (2, 2), (2, 2), (0, 0)), (4, 4));
        assert_eq!(out_hw((7, 7), (3, 3), (2, 2), (1, 1)), (4, 4));
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn kernel_too_big_panics() {
        let _ = out_hw((2, 2), (3, 3), (1, 1), (0, 0));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col matrix == input.
        let input: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let cols = im2col(&input, 3, (2, 2), (1, 1), (1, 1), (0, 0));
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_3x3_no_pad() {
        // Single channel 3x3, kernel 2x2 stride 1 -> 2x2 output, 4 rows.
        let input: Vec<f32> = (1..=9).map(|i| i as f32).collect();
        let cols = im2col(&input, 1, (3, 3), (2, 2), (1, 1), (0, 0));
        // rows: k(0,0), k(0,1), k(1,0), k(1,1); columns: 4 windows
        assert_eq!(cols.len(), 4 * 4);
        assert_eq!(&cols[0..4], &[1.0, 2.0, 4.0, 5.0]); // top-left tap of each window
        assert_eq!(&cols[12..16], &[5.0, 6.0, 8.0, 9.0]); // bottom-right tap
    }

    #[test]
    fn im2col_padding_zeros() {
        let input = vec![1.0f32; 4]; // 1ch 2x2 of ones
        let cols = im2col(&input, 1, (2, 2), (3, 3), (1, 1), (1, 1));
        // 2x2 output, each window has some zero (padding) taps.
        let (oh, ow) = out_hw((2, 2), (3, 3), (1, 1), (1, 1));
        assert_eq!((oh, ow), (2, 2));
        // Tap (0,0) of window (0,0) is padding -> zero.
        assert_eq!(cols[0], 0.0);
        // Center tap (1,1) of window (0,0) is input(0,0) = 1.
        let center_row = (3 + 1) * 4;
        assert_eq!(cols[center_row], 1.0);
    }

    #[test]
    fn col2im_roundtrip_counts_overlaps() {
        // im2col then col2im multiplies each pixel by its window coverage.
        let input: Vec<f32> = (1..=16).map(|i| i as f32).collect();
        let geom = ((4, 4), (3, 3), (1, 1), (0, 0));
        let cols = im2col(&input, 1, geom.0, geom.1, geom.2, geom.3);
        let back = col2im(&cols, 1, geom.0, geom.1, geom.2, geom.3);
        // Corner pixel participates in exactly 1 window, center in 4.
        assert_eq!(back[0], input[0]);
        assert_eq!(back[5], 4.0 * input[5]);
    }

    #[test]
    fn field_domain_im2col_matches_f32_pattern() {
        let input_f: Vec<f32> = (0..18).map(|i| i as f32).collect();
        let input_q: Vec<F25> = (0..18).map(|i| F25::new(i as u64)).collect();
        let cf = im2col(&input_f, 2, (3, 3), (2, 2), (1, 1), (0, 0));
        let cq = im2col(&input_q, 2, (3, 3), (2, 2), (1, 1), (0, 0));
        for (a, b) in cf.iter().zip(&cq) {
            assert_eq!(*a as u64, b.value());
        }
    }

    #[test]
    fn strided_dims() {
        let input = vec![0.5f32; 2 * 8 * 8];
        let cols = im2col(&input, 2, (8, 8), (3, 3), (2, 2), (1, 1));
        let (oh, ow) = out_hw((8, 8), (3, 3), (2, 2), (1, 1));
        assert_eq!((oh, ow), (4, 4));
        assert_eq!(cols.len(), 2 * 9 * oh * ow);
    }
}
