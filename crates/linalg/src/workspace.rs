//! Reusable buffer pools for the zero-allocation hot path.
//!
//! Every steady-state training/serving step used to re-allocate its
//! intermediates — im2col column matrices, matmul outputs, layer
//! activations, quantization buffers — on every layer of every batch.
//! Once the arithmetic itself is fast (delayed-reduction kernels,
//! pipelined lanes), allocator pressure, page faults and cache-cold
//! buffers dominate. A [`Workspace`] fixes that: it is a per-owner
//! (per TEE lane, per GPU worker, per [`Tensor`]-model) pool of `Vec`
//! buffers that callers *take* for the duration of an operation and
//! *give* back when done. After one warm-up step the same buffer
//! multiset cycles every step, so the steady state performs **zero heap
//! allocations** (asserted by the counting-allocator regression tests).
//!
//! Design rules:
//!
//! * A workspace is plain mutable state owned by exactly one execution
//!   lane — no locks, no sharing. Parallel kernels pre-take one scratch
//!   slab and split it with `chunks_mut`.
//! * Taking a buffer never changes numerical results: `take_zeroed`
//!   hands back exactly what `vec![T::zero(); len]` would, and
//!   `take_copy` what `slice.to_vec()` would. Exactness is a kernel
//!   property, not a buffer-provenance property.
//! * Buffers of any `Send + 'static` element live in one pool keyed by
//!   `TypeId`, so a single workspace serves `f32` activations, field
//!   vectors, and index buffers alike.
//! * [`WorkspaceStats`] tracks takes, misses (takes that had to touch
//!   the allocator) and the high-water mark of checked-out bytes, so
//!   regressions show up in `dk_bench --alloc` instead of in a heap
//!   profiler.

use crate::scalar::Scalar;
use crate::tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

static GLOBAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static GLOBAL_ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator — the enforcement
/// tool for the zero-allocation invariant. Test binaries and `dk_bench`
/// install it with `#[global_allocator]` and read [`alloc_counts`];
/// one shared implementation keeps every measurement surface (the CI
/// alloc gate, the regression tests) counting identically. The relaxed
/// atomics cost nothing measurable next to the kernels under test.
pub struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        GLOBAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        GLOBAL_ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// `(allocations, bytes requested)` recorded by an installed
/// [`CountingAllocator`] since process start.
pub fn alloc_counts() -> (u64, u64) {
    (GLOBAL_ALLOCS.load(Ordering::Relaxed), GLOBAL_ALLOC_BYTES.load(Ordering::Relaxed))
}

/// Allocation-behaviour counters of one [`Workspace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Buffers handed out in total.
    pub takes: u64,
    /// Takes that had to allocate or grow a buffer (cold pool). After
    /// warm-up this counter must stop moving — that is the
    /// zero-allocation invariant.
    pub misses: u64,
    /// Bytes currently checked out of the pool.
    pub live_bytes: usize,
    /// High-water mark of checked-out bytes.
    pub peak_bytes: usize,
}

/// A pool of reusable `Vec` buffers (see module docs).
#[derive(Default)]
pub struct Workspace {
    /// `TypeId::of::<T>() → Vec<Vec<T>>` (boxed, type-erased). The inner
    /// vec-of-vecs keeps its capacity across take/give cycles, so the
    /// steady state never touches the allocator.
    pools: HashMap<TypeId, Box<dyn Any + Send>>,
    /// Recycled tensor shape vectors (small, but a `Vec<usize>` per
    /// tensor per layer per batch is still an allocation).
    shapes: Vec<Vec<usize>>,
    stats: WorkspaceStats,
}

/// Cloning a workspace yields a fresh, empty pool: pooled buffers are
/// per-owner scratch with no semantic content, so a cloned owner (a
/// forked worker, a copied model) warms up its own pool.
impl Clone for Workspace {
    fn clone(&self) -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("pools", &self.pools.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Workspace {
    /// Creates an empty workspace. Allocation-free until first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocation counters so far.
    pub fn stats(&self) -> WorkspaceStats {
        self.stats
    }

    fn pool_mut<T: Send + 'static>(&mut self) -> &mut Vec<Vec<T>> {
        self.pools
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Box::new(Vec::<Vec<T>>::new()))
            .downcast_mut::<Vec<Vec<T>>>()
            .expect("workspace pool type confusion")
    }

    /// Pops the best-fitting pooled buffer: the smallest whose capacity
    /// covers `len`, else the largest available (which then grows —
    /// a miss), else a fresh allocation (also a miss). Returned cleared.
    fn pop_buffer<T: Send + 'static>(&mut self, len: usize) -> Vec<T> {
        self.stats.takes += 1;
        let pool = self.pool_mut::<T>();
        let mut best: Option<usize> = None;
        let mut largest: Option<usize> = None;
        for (i, b) in pool.iter().enumerate() {
            if b.capacity() >= len {
                if best.is_none_or(|j| b.capacity() < pool[j].capacity()) {
                    best = Some(i);
                }
            } else if largest.is_none_or(|j| b.capacity() > pool[j].capacity()) {
                largest = Some(i);
            }
        }
        let mut buf = match best.or(largest) {
            Some(i) => pool.swap_remove(i),
            None => Vec::new(),
        };
        buf.clear();
        if buf.capacity() < len {
            self.stats.misses += 1;
            buf.reserve_exact(len - buf.capacity());
        }
        self.stats.live_bytes += buf.capacity() * std::mem::size_of::<T>();
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        buf
    }

    /// Takes a buffer of exactly `len` elements, all `T::zero()` —
    /// bit-identical to `vec![T::zero(); len]`.
    pub fn take_zeroed<T: Scalar>(&mut self, len: usize) -> Vec<T> {
        let mut buf = self.pop_buffer::<T>(len);
        buf.resize(len, T::zero());
        buf
    }

    /// Takes an *empty* buffer with capacity for at least `cap`
    /// elements (for `push`/`extend` fills — quantization, stacking).
    pub fn take_cleared<T: Send + 'static>(&mut self, cap: usize) -> Vec<T> {
        self.pop_buffer::<T>(cap)
    }

    /// Takes a buffer holding a copy of `src` — bit-identical to
    /// `src.to_vec()`, single write pass.
    pub fn take_copy<T: Copy + Send + 'static>(&mut self, src: &[T]) -> Vec<T> {
        let mut buf = self.pop_buffer::<T>(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give<T: Send + 'static>(&mut self, buf: Vec<T>) {
        self.stats.live_bytes =
            self.stats.live_bytes.saturating_sub(buf.capacity() * std::mem::size_of::<T>());
        if buf.capacity() > 0 {
            self.pool_mut::<T>().push(buf);
        }
    }

    fn pop_shape(&mut self, shape: &[usize]) -> Vec<usize> {
        let mut s = self.shapes.pop().unwrap_or_default();
        s.clear();
        s.extend_from_slice(shape);
        s
    }

    /// Takes a recycled shape vector holding a copy of `shape` — for
    /// callers assembling tensors with [`Tensor::from_parts`] from
    /// buffers that did not come out of this pool.
    pub fn take_shape(&mut self, shape: &[usize]) -> Vec<usize> {
        self.pop_shape(shape)
    }

    /// Returns a shape vector to the pool.
    pub fn give_shape(&mut self, shape: Vec<usize>) {
        if shape.capacity() > 0 {
            self.shapes.push(shape);
        }
    }

    /// Takes a zeroed tensor of the given shape — bit-identical to
    /// [`Tensor::zeros`]. Both the data buffer and the shape vector come
    /// from the pool.
    pub fn take_tensor<T: Scalar>(&mut self, shape: &[usize]) -> Tensor<T> {
        let len = shape.iter().product();
        let data = self.take_zeroed::<T>(len);
        Tensor::from_parts(self.pop_shape(shape), data)
    }

    /// Takes a tensor of the given shape holding a copy of `src`.
    ///
    /// # Panics
    ///
    /// Panics if `src.len()` differs from the shape volume.
    pub fn take_tensor_copy<T: Scalar>(&mut self, shape: &[usize], src: &[T]) -> Tensor<T> {
        let data = self.take_copy(src);
        Tensor::from_parts(self.pop_shape(shape), data)
    }

    /// Returns a tensor's buffers (data and shape) to the pool.
    pub fn give_tensor<T: Scalar>(&mut self, t: Tensor<T>) {
        let (shape, data) = t.into_parts();
        if shape.capacity() > 0 {
            self.shapes.push(shape);
        }
        self.give(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    #[test]
    fn take_zeroed_matches_vec_macro() {
        let mut ws = Workspace::new();
        let b: Vec<f32> = ws.take_zeroed(5);
        assert_eq!(b, vec![0.0f32; 5]);
        let q: Vec<F25> = ws.take_zeroed(3);
        assert_eq!(q, vec![F25::ZERO; 3]);
    }

    #[test]
    fn buffers_are_recycled_without_misses() {
        let mut ws = Workspace::new();
        let b: Vec<f32> = ws.take_zeroed(100);
        ws.give(b);
        let before = ws.stats().misses;
        for _ in 0..10 {
            let b: Vec<f32> = ws.take_zeroed(100);
            ws.give(b);
            let c: Vec<f32> = ws.take_copy(&[1.0, 2.0]);
            ws.give(c);
        }
        assert_eq!(ws.stats().misses, before, "warm pool must not miss");
        assert!(ws.stats().takes >= 21);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        let big: Vec<f32> = ws.take_zeroed(1000);
        let small: Vec<f32> = ws.take_zeroed(10);
        let (bigcap, smallcap) = (big.capacity(), small.capacity());
        ws.give(big);
        ws.give(small);
        let got: Vec<f32> = ws.take_zeroed(8);
        assert_eq!(got.capacity(), smallcap);
        let got2: Vec<f32> = ws.take_zeroed(500);
        assert_eq!(got2.capacity(), bigcap);
    }

    #[test]
    fn distinct_types_pool_independently() {
        let mut ws = Workspace::new();
        let f: Vec<f32> = ws.take_zeroed(4);
        let q: Vec<F25> = ws.take_zeroed(4);
        let idx: Vec<usize> = ws.take_cleared(4);
        ws.give(f);
        ws.give(q);
        ws.give(idx);
        // Each type gets its own buffer back.
        assert_eq!(ws.take_zeroed::<f32>(4).len(), 4);
        assert_eq!(ws.take_zeroed::<F25>(4).len(), 4);
        assert_eq!(ws.take_cleared::<usize>(4).capacity(), 4);
    }

    #[test]
    fn tensors_recycle_shape_and_data() {
        let mut ws = Workspace::new();
        let t: Tensor<f32> = ws.take_tensor(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        ws.give_tensor(t);
        let misses = ws.stats().misses;
        let t2: Tensor<f32> = ws.take_tensor_copy(&[3, 2], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t2.shape(), &[3, 2]);
        assert_eq!(t2.get(&[0, 1]), 2.0);
        assert_eq!(ws.stats().misses, misses, "recycled tensor must not allocate");
        ws.give_tensor(t2);
    }

    #[test]
    fn peak_bytes_tracks_checkout_high_water() {
        let mut ws = Workspace::new();
        let a: Vec<f32> = ws.take_zeroed(100);
        let b: Vec<f32> = ws.take_zeroed(100);
        let peak = ws.stats().peak_bytes;
        assert!(peak >= 800);
        ws.give(a);
        ws.give(b);
        assert_eq!(ws.stats().live_bytes, 0);
        assert_eq!(ws.stats().peak_bytes, peak);
    }
}
