//! 2-D convolution: forward, input-gradient and weight-gradient passes.
//!
//! These are the three bilinear operations DarKnight offloads to GPUs:
//! the forward `⟨W, x⟩`, the backward data term `⟨δ_{l+1}, g'⟩` and the
//! backward weight term `⟨δ, x⟩` (Eq. 3 in the paper). All three are
//! implemented once, generically over [`Scalar`], via im2col lowering, so
//! the masked field execution is bit-identical in structure to the float
//! reference.
//!
//! Grouped convolution is supported (`groups > 1`); depthwise convolution
//! — the core of MobileNet — is the special case `groups == in_channels`.

use crate::im2col::{col2im_acc_into, im2col_into, out_hw};
use crate::matmul::{matmul_a_bt_into, matmul_acc, matmul_at_b_into};
use crate::scalar::Scalar;
use crate::tensor::Tensor;
use crate::workspace::Workspace;

/// Static geometry of a 2-D convolution layer.
///
/// Weights are laid out `[out_channels, in_channels/groups, kh, kw]` and
/// activations `[n, channels, h, w]` (NCHW).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dShape {
    /// Input channel count.
    pub in_channels: usize,
    /// Output channel count.
    pub out_channels: usize,
    /// Kernel height/width.
    pub kernel: (usize, usize),
    /// Stride.
    pub stride: (usize, usize),
    /// Symmetric zero padding.
    pub padding: (usize, usize),
    /// Channel groups (`in_channels` for depthwise).
    pub groups: usize,
}

impl Conv2dShape {
    /// Creates a shape descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `groups` does not divide both channel counts, or any
    /// dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
        groups: usize,
    ) -> Self {
        assert!(in_channels > 0 && out_channels > 0 && groups > 0);
        assert!(kernel.0 > 0 && kernel.1 > 0 && stride.0 > 0 && stride.1 > 0);
        assert_eq!(in_channels % groups, 0, "groups must divide in_channels");
        assert_eq!(out_channels % groups, 0, "groups must divide out_channels");
        Self { in_channels, out_channels, kernel, stride, padding, groups }
    }

    /// Convenience constructor for an ungrouped square convolution.
    pub fn simple(in_channels: usize, out_channels: usize, k: usize, stride: usize, pad: usize) -> Self {
        Self::new(in_channels, out_channels, (k, k), (stride, stride), (pad, pad), 1)
    }

    /// Depthwise convolution: one filter per channel.
    pub fn depthwise(channels: usize, k: usize, stride: usize, pad: usize) -> Self {
        Self::new(channels, channels, (k, k), (stride, stride), (pad, pad), channels)
    }

    /// Input channels per group.
    pub fn cg_in(&self) -> usize {
        self.in_channels / self.groups
    }

    /// Output channels per group.
    pub fn cg_out(&self) -> usize {
        self.out_channels / self.groups
    }

    /// Output spatial size for the given input spatial size.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the padded input.
    pub fn out_hw(&self, hw: (usize, usize)) -> (usize, usize) {
        out_hw(hw, self.kernel, self.stride, self.padding)
    }

    /// The weight tensor shape `[oc, ic/g, kh, kw]`.
    pub fn weight_shape(&self) -> [usize; 4] {
        [self.out_channels, self.cg_in(), self.kernel.0, self.kernel.1]
    }

    /// Multiply-accumulate count of one forward pass over an `n`-sample
    /// batch with the given input spatial size (used by the perf model).
    pub fn forward_macs(&self, n: usize, hw: (usize, usize)) -> u64 {
        let (oh, ow) = self.out_hw(hw);
        (n * self.out_channels * oh * ow * self.cg_in() * self.kernel.0 * self.kernel.1) as u64
    }

    fn check_weights<T: Scalar>(&self, w: &Tensor<T>) {
        assert_eq!(w.shape(), &self.weight_shape(), "weight tensor shape mismatch");
    }

    fn check_input<T: Scalar>(&self, x: &Tensor<T>) {
        assert_eq!(x.ndim(), 4, "input must be NCHW");
        assert_eq!(x.shape()[1], self.in_channels, "input channel mismatch");
    }
}

/// Forward convolution `y = W ∗ x` (no bias; bias lives in the layer),
/// with the output tensor and the im2col scratch drawn from `ws` —
/// the allocation-free hot path (give the returned tensor back to the
/// workspace when done with it).
///
/// `x: [n, ic, h, w]`, `w: [oc, ic/g, kh, kw]` → `y: [n, oc, oh, ow]`.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_forward_ws<T: Scalar>(
    x: &Tensor<T>,
    w: &Tensor<T>,
    s: &Conv2dShape,
    ws: &mut Workspace,
) -> Tensor<T> {
    s.check_input(x);
    s.check_weights(w);
    let n = x.shape()[0];
    let hw = (x.shape()[2], x.shape()[3]);
    let (oh, ow) = s.out_hw(hw);
    let (cgi, cgo) = (s.cg_in(), s.cg_out());
    let krows = cgi * s.kernel.0 * s.kernel.1;
    let ocols = oh * ow;
    let mut y = ws.take_tensor(&[n, s.out_channels, oh, ow]);
    let mut cols = ws.take_zeroed::<T>(krows * ocols);
    for ni in 0..n {
        let xi = x.batch_item(ni);
        let yi = y.batch_item_mut(ni);
        for g in 0..s.groups {
            let xg = &xi[g * cgi * hw.0 * hw.1..(g + 1) * cgi * hw.0 * hw.1];
            im2col_into(xg, cgi, hw, s.kernel, s.stride, s.padding, &mut cols);
            let wg = &w.as_slice()[g * cgo * krows..(g + 1) * cgo * krows];
            // Accumulate straight into the (zeroed) output block — same
            // blocked kernel, one less O(output) copy per group.
            let yg = &mut yi[g * cgo * ocols..(g + 1) * cgo * ocols];
            matmul_acc(wg, &cols, yg, cgo, krows, ocols);
        }
    }
    ws.give(cols);
    y
}

/// Forward convolution, allocating wrapper over [`conv2d_forward_ws`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_forward<T: Scalar>(x: &Tensor<T>, w: &Tensor<T>, s: &Conv2dShape) -> Tensor<T> {
    conv2d_forward_ws(x, w, s, &mut Workspace::new())
}

/// Convolution input gradient: `dx = Wᵀ ⊛ dy`.
///
/// `dy: [n, oc, oh, ow]` → `dx: [n, ic, h, w]` for the original input
/// spatial size `hw`.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_input_ws<T: Scalar>(
    dy: &Tensor<T>,
    w: &Tensor<T>,
    s: &Conv2dShape,
    hw: (usize, usize),
    ws: &mut Workspace,
) -> Tensor<T> {
    s.check_weights(w);
    assert_eq!(dy.shape()[1], s.out_channels, "dy channel mismatch");
    let n = dy.shape()[0];
    let (oh, ow) = s.out_hw(hw);
    assert_eq!((dy.shape()[2], dy.shape()[3]), (oh, ow), "dy spatial mismatch");
    let (cgi, cgo) = (s.cg_in(), s.cg_out());
    let krows = cgi * s.kernel.0 * s.kernel.1;
    let ocols = oh * ow;
    let mut dx = ws.take_tensor(&[n, s.in_channels, hw.0, hw.1]);
    let mut dcol = ws.take_zeroed::<T>(krows * ocols);
    for ni in 0..n {
        let dyi = dy.batch_item(ni);
        let dxi = dx.batch_item_mut(ni);
        for g in 0..s.groups {
            let wg = &w.as_slice()[g * cgo * krows..(g + 1) * cgo * krows];
            let dyg = &dyi[g * cgo * ocols..(g + 1) * cgo * ocols];
            // dcol[krows x ocols] = wgᵀ[krows x cgo] · dyg[cgo x ocols],
            // then one fused scatter-add into the (zero-initialized)
            // gradient image — contribution order is identical to the
            // old dcol → col2im → add triple pass, so float bits are
            // unchanged.
            matmul_at_b_into(wg, dyg, &mut dcol, krows, cgo, ocols, ws);
            let dst = &mut dxi[g * cgi * hw.0 * hw.1..(g + 1) * cgi * hw.0 * hw.1];
            col2im_acc_into(&dcol, cgi, hw, s.kernel, s.stride, s.padding, dst);
        }
    }
    ws.give(dcol);
    dx
}

/// Convolution input gradient, allocating wrapper over
/// [`conv2d_backward_input_ws`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_input<T: Scalar>(
    dy: &Tensor<T>,
    w: &Tensor<T>,
    s: &Conv2dShape,
    hw: (usize, usize),
) -> Tensor<T> {
    conv2d_backward_input_ws(dy, w, s, hw, &mut Workspace::new())
}

/// Convolution weight gradient: `dW = dy ⊛ x` summed over the batch.
///
/// This is the bilinear op of the paper's Eq. 3 — the one DarKnight's
/// backward encoding protects.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_weight_ws<T: Scalar>(
    dy: &Tensor<T>,
    x: &Tensor<T>,
    s: &Conv2dShape,
    ws: &mut Workspace,
) -> Tensor<T> {
    s.check_input(x);
    assert_eq!(dy.shape()[1], s.out_channels, "dy channel mismatch");
    let n = x.shape()[0];
    assert_eq!(dy.shape()[0], n, "batch mismatch");
    let hw = (x.shape()[2], x.shape()[3]);
    let (oh, ow) = s.out_hw(hw);
    let (cgi, cgo) = (s.cg_in(), s.cg_out());
    let krows = cgi * s.kernel.0 * s.kernel.1;
    let ocols = oh * ow;
    let mut dw = ws.take_tensor(&s.weight_shape());
    let mut cols = ws.take_zeroed::<T>(krows * ocols);
    let mut dwg = ws.take_zeroed::<T>(cgo * krows);
    for ni in 0..n {
        let xi = x.batch_item(ni);
        let dyi = dy.batch_item(ni);
        for g in 0..s.groups {
            let xg = &xi[g * cgi * hw.0 * hw.1..(g + 1) * cgi * hw.0 * hw.1];
            im2col_into(xg, cgi, hw, s.kernel, s.stride, s.padding, &mut cols);
            let dyg = &dyi[g * cgo * ocols..(g + 1) * cgo * ocols];
            // dwg[cgo x krows] = dyg[cgo x ocols] · colsᵀ[ocols x krows];
            // accumulated into dw as a separate elementwise pass so the
            // float summation order matches the allocating original.
            matmul_a_bt_into(dyg, &cols, &mut dwg, cgo, ocols, krows);
            let dst = &mut dw.as_mut_slice()[g * cgo * krows..(g + 1) * cgo * krows];
            for (d, &v) in dst.iter_mut().zip(dwg.iter()) {
                *d += v;
            }
        }
    }
    ws.give(dwg);
    ws.give(cols);
    dw
}

/// Convolution weight gradient, allocating wrapper over
/// [`conv2d_backward_weight_ws`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_weight<T: Scalar>(
    dy: &Tensor<T>,
    x: &Tensor<T>,
    s: &Conv2dShape,
) -> Tensor<T> {
    conv2d_backward_weight_ws(dy, x, s, &mut Workspace::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;

    /// Direct (nested-loop) convolution reference used to validate the
    /// im2col path.
    fn conv_reference(x: &Tensor<f32>, w: &Tensor<f32>, s: &Conv2dShape) -> Tensor<f32> {
        let n = x.shape()[0];
        let (h, wd) = (x.shape()[2], x.shape()[3]);
        let (oh, ow) = s.out_hw((h, wd));
        let (cgi, cgo) = (s.cg_in(), s.cg_out());
        let mut y = Tensor::zeros(&[n, s.out_channels, oh, ow]);
        for ni in 0..n {
            for oc in 0..s.out_channels {
                let g = oc / cgo;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..cgi {
                            let ic = g * cgi + ci;
                            for ky in 0..s.kernel.0 {
                                for kx in 0..s.kernel.1 {
                                    let iy = (oy * s.stride.0 + ky) as isize - s.padding.0 as isize;
                                    let ix = (ox * s.stride.1 + kx) as isize - s.padding.1 as isize;
                                    if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < wd
                                    {
                                        acc += x.get(&[ni, ic, iy as usize, ix as usize])
                                            * w.get(&[oc, ci, ky, kx]);
                                    }
                                }
                            }
                        }
                        y.set(&[ni, oc, oy, ox], acc);
                    }
                }
            }
        }
        y
    }

    fn seq_tensor(shape: &[usize], scale: f32, offset: f32) -> Tensor<f32> {
        Tensor::from_fn(shape, |i| (i as f32) * scale + offset)
    }

    #[test]
    fn forward_matches_reference_basic() {
        let s = Conv2dShape::simple(3, 4, 3, 1, 1);
        let x = seq_tensor(&[2, 3, 5, 5], 0.01, -0.5);
        let w = seq_tensor(&s.weight_shape(), 0.02, -0.3);
        let y = conv2d_forward(&x, &w, &s);
        let r = conv_reference(&x, &w, &s);
        assert!(y.max_abs_diff(&r) < 1e-4, "diff={}", y.max_abs_diff(&r));
    }

    #[test]
    fn forward_matches_reference_strided() {
        let s = Conv2dShape::simple(2, 3, 3, 2, 1);
        let x = seq_tensor(&[1, 2, 7, 7], 0.03, -1.0);
        let w = seq_tensor(&s.weight_shape(), -0.01, 0.2);
        assert!(conv2d_forward(&x, &w, &s).max_abs_diff(&conv_reference(&x, &w, &s)) < 1e-4);
    }

    #[test]
    fn forward_matches_reference_depthwise() {
        let s = Conv2dShape::depthwise(4, 3, 1, 1);
        let x = seq_tensor(&[2, 4, 6, 6], 0.05, -0.7);
        let w = seq_tensor(&s.weight_shape(), 0.04, -0.1);
        assert!(conv2d_forward(&x, &w, &s).max_abs_diff(&conv_reference(&x, &w, &s)) < 1e-4);
    }

    #[test]
    fn forward_matches_reference_grouped() {
        let s = Conv2dShape::new(4, 6, (3, 3), (1, 1), (0, 0), 2);
        let x = seq_tensor(&[1, 4, 5, 5], 0.02, 0.0);
        let w = seq_tensor(&s.weight_shape(), 0.03, -0.2);
        assert!(conv2d_forward(&x, &w, &s).max_abs_diff(&conv_reference(&x, &w, &s)) < 1e-4);
    }

    #[test]
    fn pointwise_conv_is_channel_matmul() {
        let s = Conv2dShape::simple(3, 2, 1, 1, 0);
        let x = seq_tensor(&[1, 3, 2, 2], 1.0, 0.0);
        let w = seq_tensor(&s.weight_shape(), 1.0, 0.0);
        let y = conv2d_forward(&x, &w, &s);
        // y[0,0,0,0] = sum_c w[0,c] * x[c,0,0] = 0*0 + 1*4 + 2*8 = 20
        assert_eq!(y.get(&[0, 0, 0, 0]), 20.0);
    }

    #[test]
    fn field_forward_matches_float_on_integers() {
        let s = Conv2dShape::simple(2, 2, 3, 1, 1);
        let xf = Tensor::<f32>::from_fn(&[1, 2, 4, 4], |i| (i % 5) as f32);
        let wf = Tensor::<f32>::from_fn(&s.weight_shape(), |i| (i % 3) as f32);
        let xq: Tensor<F25> = xf.map(|v| F25::new(v as u64));
        let wq: Tensor<F25> = wf.map(|v| F25::new(v as u64));
        let yf = conv2d_forward(&xf, &wf, &s);
        let yq = conv2d_forward(&xq, &wq, &s);
        for (a, b) in yf.as_slice().iter().zip(yq.as_slice()) {
            assert_eq!(*a as u64, b.value());
        }
    }

    /// Numerical-gradient check for the input gradient.
    #[test]
    fn backward_input_matches_numerical() {
        let s = Conv2dShape::simple(2, 2, 3, 1, 1);
        let x = seq_tensor(&[1, 2, 4, 4], 0.1, -0.5);
        let w = seq_tensor(&s.weight_shape(), 0.1, -0.2);
        // Loss = sum(y); dL/dy = ones.
        let (oh, ow) = s.out_hw((4, 4));
        let dy = Tensor::<f32>::ones(&[1, 2, oh, ow]);
        let dx = conv2d_backward_input(&dy, &w, &s, (4, 4));
        let eps = 1e-2;
        for probe in [0usize, 7, 15, 20, 31] {
            let mut xp = x.clone();
            xp.as_mut_slice()[probe] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[probe] -= eps;
            let lp = conv2d_forward(&xp, &w, &s).sum();
            let lm = conv2d_forward(&xm, &w, &s).sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = dx.as_slice()[probe];
            assert!((num - ana).abs() < 1e-2, "probe {probe}: num={num} ana={ana}");
        }
    }

    /// Numerical-gradient check for the weight gradient.
    #[test]
    fn backward_weight_matches_numerical() {
        let s = Conv2dShape::simple(2, 3, 3, 2, 1);
        let x = seq_tensor(&[2, 2, 5, 5], 0.07, -0.4);
        let w = seq_tensor(&s.weight_shape(), 0.05, -0.15);
        let (oh, ow) = s.out_hw((5, 5));
        let dy = Tensor::<f32>::ones(&[2, 3, oh, ow]);
        let dw = conv2d_backward_weight(&dy, &x, &s);
        let eps = 1e-2;
        for probe in [0usize, 10, 25, 40, dw.len() - 1] {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= eps;
            let lp = conv2d_forward(&x, &wp, &s).sum();
            let lm = conv2d_forward(&x, &wm, &s).sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = dw.as_slice()[probe];
            assert!((num - ana).abs() < 2e-2, "probe {probe}: num={num} ana={ana}");
        }
    }

    #[test]
    fn backward_weight_depthwise_matches_numerical() {
        let s = Conv2dShape::depthwise(3, 3, 1, 1);
        let x = seq_tensor(&[1, 3, 4, 4], 0.09, -0.3);
        let w = seq_tensor(&s.weight_shape(), 0.06, -0.1);
        let (oh, ow) = s.out_hw((4, 4));
        let dy = Tensor::<f32>::ones(&[1, 3, oh, ow]);
        let dw = conv2d_backward_weight(&dy, &x, &s);
        let eps = 1e-2;
        for probe in 0..dw.len() {
            let mut wp = w.clone();
            wp.as_mut_slice()[probe] += eps;
            let lp = conv2d_forward(&x, &wp, &s).sum();
            let mut wm = w.clone();
            wm.as_mut_slice()[probe] -= eps;
            let lm = conv2d_forward(&x, &wm, &s).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - dw.as_slice()[probe]).abs() < 2e-2, "probe {probe}");
        }
    }

    #[test]
    fn macs_counting() {
        // 3x3 conv, 3->4 channels, 5x5 input pad 1 -> 5x5 out.
        let s = Conv2dShape::simple(3, 4, 3, 1, 1);
        assert_eq!(s.forward_macs(1, (5, 5)), 4 * 25 * 3 * 9);
        // Depthwise halves... exactly: per out channel only 1 in channel.
        let d = Conv2dShape::depthwise(4, 3, 1, 1);
        assert_eq!(d.forward_macs(1, (5, 5)), 4 * 25 * 9);
    }

    #[test]
    #[should_panic(expected = "groups must divide")]
    fn bad_groups_panics() {
        let _ = Conv2dShape::new(3, 4, (3, 3), (1, 1), (1, 1), 2);
    }

    #[test]
    #[should_panic(expected = "weight tensor shape")]
    fn bad_weight_shape_panics() {
        let s = Conv2dShape::simple(3, 4, 3, 1, 1);
        let x = Tensor::<f32>::zeros(&[1, 3, 5, 5]);
        let w = Tensor::<f32>::zeros(&[4, 3, 2, 2]);
        let _ = conv2d_forward(&x, &w, &s);
    }
}
