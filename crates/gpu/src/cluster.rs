//! A cluster of `K'` workers and the dispatch logic.

use crate::behavior::Behavior;
use crate::job::{JobOutput, LinearJob};
use crate::worker::{GpuWorker, WorkerId};

/// A fleet of simulated accelerators.
///
/// DarKnight requires `K' >= K + M + 1` workers for a virtual batch of
/// `K`, collusion tolerance `M` and one integrity-check equation (§4.5
/// summary). The cluster enforces nothing itself — sizing is checked by
/// the `dk-core` session — it just executes.
#[derive(Debug, Clone)]
pub struct GpuCluster {
    workers: Vec<GpuWorker>,
    parallel: bool,
}

impl GpuCluster {
    /// Creates `n` honest workers.
    pub fn honest(n: usize, seed: u64) -> Self {
        Self::with_behaviors(&vec![Behavior::Honest; n], seed)
    }

    /// Creates workers with per-worker behaviours.
    pub fn with_behaviors(behaviors: &[Behavior], seed: u64) -> Self {
        let workers = behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| GpuWorker::new(WorkerId(i), b, seed))
            .collect();
        Self { workers, parallel: false }
    }

    /// Reassembles a cluster from workers previously moved into a
    /// dispatcher (state intact).
    pub(crate) fn from_workers(workers: Vec<GpuWorker>, parallel: bool) -> Self {
        Self { workers, parallel }
    }

    /// Enables multi-threaded dispatch (one OS thread per worker, as the
    /// real deployment drives GPUs concurrently).
    pub fn with_parallel_dispatch(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches a modeled accelerator latency profile to every worker
    /// (see [`crate::LatencyModel`]); `None` removes it. Used by the
    /// pipeline experiments so wall-clock comparisons reflect device
    /// occupancy rather than simulation speed.
    pub fn with_latency(mut self, latency: Option<crate::LatencyModel>) -> Self {
        for w in &mut self.workers {
            w.set_latency(latency);
        }
        self
    }

    /// Moves the fleet into a [`crate::GpuDispatcher`]: one persistent
    /// OS thread per worker behind a `queue_depth`-bounded inbox. This
    /// is the primary execution interface for pipelined workloads;
    /// [`crate::GpuDispatcher::join`] returns the fleet with all
    /// accumulated state.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0`.
    pub fn into_dispatcher(self, queue_depth: usize) -> crate::GpuDispatcher {
        crate::GpuDispatcher::spawn(self.workers, queue_depth, self.parallel)
    }

    /// Creates a fresh cluster over the *same fleet* — identical worker
    /// count and per-worker behaviours — but with reseeded worker RNGs
    /// and no accumulated state (stored encodings, observations,
    /// counters). Serving pools use this so every session thread drives
    /// its own independent view of one shared deployment: behaviours
    /// (including adversarial ones) follow the fleet, while execution
    /// state stays per-session. Use [`Clone`] instead when the
    /// accumulated state should travel too.
    pub fn fork(&self, seed: u64) -> Self {
        let behaviors: Vec<Behavior> = self.workers.iter().map(|w| w.behavior()).collect();
        let mut fork = Self::with_behaviors(&behaviors, seed).with_parallel_dispatch(self.parallel);
        for (w, old) in fork.workers.iter_mut().zip(&self.workers) {
            w.set_latency(old.latency());
        }
        fork
    }

    /// Number of workers (`K'`).
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True if the cluster has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Immutable access to a worker.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn worker(&self, id: WorkerId) -> &GpuWorker {
        &self.workers[id.0]
    }

    /// Mutable access to a worker.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn worker_mut(&mut self, id: WorkerId) -> &mut GpuWorker {
        &mut self.workers[id.0]
    }

    /// All workers.
    pub fn workers(&self) -> &[GpuWorker] {
        &self.workers
    }

    /// Stores per-worker forward encodings (worker `i` receives
    /// `encodings[i]`) under the given layer id.
    ///
    /// # Panics
    ///
    /// Panics if more encodings than workers are supplied.
    pub fn store_encodings(&mut self, layer_id: u64, encodings: Vec<dk_linalg::Tensor<dk_field::F25>>) {
        assert!(encodings.len() <= self.workers.len(), "more encodings than workers");
        for (w, e) in self.workers.iter_mut().zip(encodings) {
            w.store_encoding(layer_id, e);
        }
    }

    /// Executes `jobs[i]` on worker `i`, returning outputs in worker
    /// order. With parallel dispatch enabled the jobs run on OS threads.
    ///
    /// # Panics
    ///
    /// Panics if more jobs than workers are supplied.
    pub fn execute(&mut self, jobs: &[LinearJob]) -> Vec<JobOutput> {
        assert!(jobs.len() <= self.workers.len(), "more jobs ({}) than workers ({})", jobs.len(), self.workers.len());
        if self.parallel {
            let workers = &mut self.workers[..jobs.len()];
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(jobs.len());
                for (w, job) in workers.iter_mut().zip(jobs) {
                    handles.push(scope.spawn(move || w.execute(job)));
                }
                handles.into_iter().map(|h| h.join().expect("worker thread panicked")).collect()
            })
        } else {
            self.workers.iter_mut().zip(jobs).map(|(w, j)| w.execute(j)).collect()
        }
    }

    /// Executes the same job on a single worker by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> JobOutput {
        self.workers[id.0].execute(job)
    }

    /// Clears all stored encodings (virtual batch boundary).
    pub fn clear_encodings(&mut self) {
        for w in &mut self.workers {
            w.clear_encodings();
        }
    }

    /// Total MACs executed across all workers.
    pub fn total_macs(&self) -> u64 {
        self.workers.iter().map(|w| w.macs_executed()).sum()
    }
}

/// The blocking reference backend: one virtual batch in flight, jobs run
/// to completion inside `execute`. A [`Behavior::Crash`] worker whose
/// honest-job budget is spent is reported as
/// [`GpuError::WorkerLost`](crate::GpuError::WorkerLost) — the blocking
/// backend's rendition of a dead accelerator.
impl crate::GpuExec for GpuCluster {
    fn num_workers(&self) -> usize {
        self.len()
    }

    fn execute(
        &mut self,
        _tag: u64,
        jobs: &[LinearJob],
    ) -> Result<Vec<crate::WorkerResult>, crate::GpuError> {
        if jobs.len() > self.workers.len() {
            return Err(crate::GpuError::Oversubscribed {
                jobs: jobs.len(),
                workers: self.workers.len(),
            });
        }
        let run = |w: &mut GpuWorker, job: &LinearJob| -> crate::WorkerResult {
            if w.crash_pending() {
                Err(crate::GpuError::lost(w.id(), "worker crashed (simulated fail-stop)"))
            } else {
                Ok(w.execute(job))
            }
        };
        if self.parallel {
            let workers = &mut self.workers[..jobs.len()];
            Ok(std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(jobs.len());
                for (w, job) in workers.iter_mut().zip(jobs) {
                    handles.push(scope.spawn(move || run(w, job)));
                }
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(i, h)| {
                        h.join().unwrap_or_else(|_| {
                            Err(crate::GpuError::lost(WorkerId(i), "worker thread panicked"))
                        })
                    })
                    .collect()
            }))
        } else {
            Ok(self.workers.iter_mut().zip(jobs).map(|(w, j)| run(w, j)).collect())
        }
    }

    fn execute_into(
        &mut self,
        tag: u64,
        jobs: &[LinearJob],
        out: &mut Vec<crate::WorkerResult>,
    ) -> Result<(), crate::GpuError> {
        if jobs.len() > self.workers.len() {
            return Err(crate::GpuError::Oversubscribed {
                jobs: jobs.len(),
                workers: self.workers.len(),
            });
        }
        if self.parallel {
            // Parallel dispatch joins through fresh per-thread handles
            // anyway; reuse the allocating path and drain.
            out.append(&mut crate::GpuExec::execute(self, tag, jobs)?);
        } else {
            for (w, j) in self.workers.iter_mut().zip(jobs) {
                out.push(if w.crash_pending() {
                    Err(crate::GpuError::lost(w.id(), "worker crashed (simulated fail-stop)"))
                } else {
                    Ok(w.execute(j))
                });
            }
        }
        Ok(())
    }

    fn recycle_outputs(&mut self, outputs: &mut Vec<dk_linalg::Tensor<dk_field::F25>>) {
        // Worker `i` produced `outputs[i]`; hand each buffer back to the
        // workspace it was drawn from.
        for (i, t) in outputs.drain(..).enumerate() {
            if let Some(w) = self.workers.get_mut(i) {
                w.recycle_output(t);
            }
        }
    }

    fn execute_on(&mut self, id: WorkerId, job: &LinearJob) -> crate::WorkerResult {
        let w = &mut self.workers[id.0];
        if w.crash_pending() {
            return Err(crate::GpuError::lost(id, "worker crashed (simulated fail-stop)"));
        }
        Ok(GpuCluster::execute_on(self, id, job))
    }

    fn store_encodings(&mut self, ctx_id: u64, encodings: Vec<dk_linalg::Tensor<dk_field::F25>>) {
        GpuCluster::store_encodings(self, ctx_id, encodings);
    }

    fn release_contexts(&mut self, ctx_ids: &[u64]) {
        for w in &mut self.workers {
            for &c in ctx_ids {
                w.remove_encoding(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dk_field::F25;
    use dk_linalg::Tensor;
    use std::sync::Arc;

    fn dense_job(scale: u64) -> LinearJob {
        LinearJob::DenseForward {
            weights: Arc::new(Tensor::from_fn(&[2, 3], |i| F25::new(i as u64 + 1))),
            x: Tensor::from_fn(&[1, 3], move |i| F25::new((i as u64 + 1) * scale)),
        }
    }

    #[test]
    fn dispatch_in_worker_order() {
        let mut cluster = GpuCluster::honest(3, 1);
        let jobs: Vec<_> = (1..=3).map(dense_job).collect();
        let outs = cluster.execute(&jobs);
        assert_eq!(outs.len(), 3);
        // Output scales linearly with the input scale.
        for k in 0..3 {
            let expect = jobs[k].execute();
            assert_eq!(outs[k], expect);
        }
    }

    #[test]
    fn parallel_dispatch_matches_sequential() {
        let jobs: Vec<_> = (1..=4).map(dense_job).collect();
        let mut seq = GpuCluster::honest(4, 2);
        let mut par = GpuCluster::honest(4, 2).with_parallel_dispatch(true);
        assert_eq!(seq.execute(&jobs), par.execute(&jobs));
    }

    #[test]
    fn mixed_behaviors() {
        let mut cluster = GpuCluster::with_behaviors(
            &[Behavior::Honest, Behavior::ZeroOutput, Behavior::Honest],
            3,
        );
        let jobs: Vec<_> = (1..=3).map(dense_job).collect();
        let outs = cluster.execute(&jobs);
        assert_eq!(outs[0], jobs[0].execute());
        assert!(outs[1].as_slice().iter().all(|v| v.is_zero()));
        assert_eq!(outs[2], jobs[2].execute());
    }

    #[test]
    fn fork_preserves_fleet_but_not_state() {
        let mut cluster = GpuCluster::with_behaviors(
            &[Behavior::Honest, Behavior::Scale(3), Behavior::Honest],
            6,
        )
        .with_parallel_dispatch(true);
        let jobs: Vec<_> = (1..=3).map(dense_job).collect();
        let _ = cluster.execute(&jobs);
        cluster.store_encodings(0, vec![Tensor::from_fn(&[1, 2], |i| F25::new(i as u64))]);

        let fork = cluster.fork(99);
        assert_eq!(fork.len(), cluster.len());
        for (a, b) in fork.workers().iter().zip(cluster.workers()) {
            assert_eq!(a.behavior(), b.behavior());
            assert_eq!(a.jobs_executed(), 0, "fork must start with fresh counters");
            assert!(a.observations().is_empty(), "fork must not inherit observations");
        }
        assert!(fork.worker(WorkerId(0)).stored_encoding(0).is_none());
        // A clone, by contrast, carries the accumulated state.
        let clone = cluster.clone();
        assert_eq!(clone.worker(WorkerId(0)).jobs_executed(), 1);
        assert_eq!(
            clone.worker(WorkerId(0)).stored_encoding(0),
            cluster.worker(WorkerId(0)).stored_encoding(0)
        );
    }

    #[test]
    #[should_panic(expected = "more jobs")]
    fn too_many_jobs_panics() {
        let mut cluster = GpuCluster::honest(1, 4);
        let jobs: Vec<_> = (1..=2).map(dense_job).collect();
        let _ = cluster.execute(&jobs);
    }

    #[test]
    fn encoding_storage_per_worker() {
        let mut cluster = GpuCluster::honest(2, 5);
        let encs = vec![
            Tensor::from_fn(&[1, 2], |i| F25::new(i as u64)),
            Tensor::from_fn(&[1, 2], |i| F25::new(i as u64 + 10)),
        ];
        cluster.store_encodings(3, encs.clone());
        assert_eq!(cluster.worker(WorkerId(0)).stored_encoding(3), Some(&encs[0]));
        assert_eq!(cluster.worker(WorkerId(1)).stored_encoding(3), Some(&encs[1]));
        cluster.clear_encodings();
        assert!(cluster.worker(WorkerId(0)).stored_encoding(3).is_none());
    }
}
